//! Offline stand-in for the subset of the `proptest` crate this workspace
//! uses, wired in via Cargo dependency renaming so test files keep
//! writing `use proptest::prelude::*;` unchanged.
//!
//! The build container has no crates.io access, so external dependencies
//! cannot be resolved; everything here is first-party. Supported surface:
//! the [`proptest!`] macro (with `#![proptest_config(...)]`),
//! [`prop_assert!`]/[`prop_assert_eq!`], [`Strategy`] with
//! `prop_map`/`prop_flat_map`, integer-range strategies, [`any`] for
//! primitives, and [`collection::vec`]. Cases are generated from a seed
//! derived deterministically from the test name and case index, so runs
//! are reproducible; there is **no shrinking** — a failure reports the
//! exact generated inputs instead.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic case generator (SplitMix64), seeded per (test, case).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor; same seed, same value stream.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi]` (inclusive).
    pub fn usize_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "empty size range");
        let span = (hi as u128) - (lo as u128) + 1;
        lo + (self.next_u64() as u128 % span) as usize
    }
}

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking and no value tree; a
/// strategy is just a deterministic function of the per-case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// from it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                ((self.start as i128) + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = ((hi as i128) - (lo as i128) + 1) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                ((lo as i128) + off) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with a canonical whole-domain strategy ([`any`]).
pub trait Arbitrary: Debug + Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

/// The whole-domain strategy for `T`: `any::<u64>()`, `any::<bool>()`, ...
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// An inclusive length range for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_inclusive(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Derive the per-case seed from the test name and case index (FNV-1a),
/// so every test gets its own reproducible stream.
#[doc(hidden)]
pub fn case_seed(test_name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x1_0000_01b3);
    }
    h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Test-runner loop behind the [`proptest!`] macro. `case` fills
/// `inputs_dbg` with a rendering of the generated inputs before running
/// the body, so both `Err` returns (prop-assert failures) and panics can
/// report the exact inputs.
#[doc(hidden)]
pub fn run_cases(
    config: ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut TestRng, &mut String) -> Result<(), String>,
) {
    for i in 0..config.cases {
        let mut rng = TestRng::new(case_seed(test_name, i));
        let mut inputs = String::new();
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(&mut rng, &mut inputs)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => panic!(
                "proptest case {}/{} of `{}` failed: {}\n  inputs: {}",
                i + 1,
                config.cases,
                test_name,
                msg,
                inputs
            ),
            Err(payload) => {
                eprintln!(
                    "proptest case {}/{} of `{}` panicked\n  inputs: {}",
                    i + 1,
                    config.cases,
                    test_name,
                    inputs
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// Define property tests: `proptest! { #![proptest_config(...)] fn name(x
/// in strategy, ...) { body } ... }`. Bodies use [`prop_assert!`]-family
/// macros; plain `assert!`/panics also fail the case (inputs are printed,
/// no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(config, stringify!($name), |rng, inputs_dbg| {
                $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                *inputs_dbg = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                $body
                ::std::result::Result::Ok(())
            });
        }
    )*};
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", args...)`: fail the
/// current case (reporting its inputs) without panicking the process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `prop_assume!(cond)`: skip the current case when the precondition does
/// not hold. Unlike real proptest this shim does not draw a replacement
/// case — the case simply counts as passed — which keeps generation
/// deterministic and is fine at the assumption rates used here.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// `prop_assert_eq!(a, b)` / `prop_assert_eq!(a, b, "fmt", args...)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                a, b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                a, b, ::std::format!($($fmt)+)
            ));
        }
    }};
}

/// The usual glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        fn ranges_stay_in_bounds(
            x in 3usize..17,
            y in 1u8..=4,
            b in any::<bool>(),
            v in prop::collection::vec(0usize..10, 2..=5),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=4).contains(&y));
            prop_assert!(usize::from(b) <= 1, "bool arg generated: {}", b);
            prop_assert!(v.len() >= 2 && v.len() <= 5);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        fn flat_map_dependency(pair in (1usize..6).prop_flat_map(|n| {
            prop::collection::vec(0usize..n, n..=n).prop_map(move |v| (n, v))
        })) {
            let (n, v) = pair;
            prop_assert_eq!(v.len(), n);
            prop_assert!(v.iter().all(|&e| e < n));
        }
    }

    #[test]
    fn failures_report_inputs() {
        let caught = std::panic::catch_unwind(|| {
            crate::run_cases(ProptestConfig::with_cases(8), "demo", |rng, dbg| {
                let x = crate::Strategy::generate(&(0usize..100), rng);
                *dbg = format!("x = {x:?}; ");
                prop_assert!(x > 1000, "x too small: {}", x);
                Ok(())
            });
        });
        let msg = *caught
            .expect_err("must fail")
            .downcast::<String>()
            .expect("string panic");
        assert!(msg.contains("x too small"), "got: {msg}");
        assert!(msg.contains("inputs: x ="), "got: {msg}");
    }

    #[test]
    fn seeds_are_stable() {
        let a = crate::case_seed("some_test", 3);
        let b = crate::case_seed("some_test", 3);
        let c = crate::case_seed("other_test", 3);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
