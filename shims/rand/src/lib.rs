//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses (`StdRng::seed_from_u64` + `Rng::random_range`), wired in via
//! Cargo dependency renaming so callers keep writing `use rand::...`.
//!
//! The build container has no crates.io access, so external dependencies
//! cannot be resolved; everything here is first-party. The generator is
//! SplitMix64 — deterministic, seedable, and plenty for test-input
//! generation and synthetic meshes. It makes no statistical-quality or
//! value-stability promises beyond "same seed, same sequence, forever on
//! this shim". Range sampling uses simple modulo reduction, whose bias is
//! negligible for the small spans used here.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Source of raw random words (the subset of `rand_core::RngCore` we use).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a seed (the subset of `rand::SeedableRng` we use).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed. Same seed, same sequence.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range, e.g. `rng.random_range(0..n)` or
    /// `rng.random_range(0.0..1.0)`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types with uniform range sampling. Kept as a single generic
/// surface (like real rand's `SampleUniform`) so integer literals in
/// `rng.random_range(0..2)` unify with the surrounding expression's type
/// instead of falling back to `i32`.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty range");
                let span = ((hi as i128) - (lo as i128)) as u128;
                ((lo as i128) + (rng.next_u64() as u128 % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty range");
                let span = ((hi as i128) - (lo as i128) + 1) as u128;
                ((lo as i128) + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_exclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo < hi, "empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
    fn sample_inclusive<R: RngCore + ?Sized>(lo: f64, hi: f64, rng: &mut R) -> f64 {
        assert!(lo <= hi, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * unit
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// The usual glob-import surface: `use rand::prelude::*;`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: usize = a.random_range(3..17);
            assert!((3..17).contains(&x));
            assert_eq!(x, b.random_range(3..17));
        }
        let mut c = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: u8 = c.random_range(1..=4);
            assert!((1..=4).contains(&v));
            let f = c.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
