//! Offline stand-in for the subset of the `criterion` crate this
//! workspace uses, wired in via Cargo dependency renaming so bench files
//! keep writing `use criterion::...` unchanged.
//!
//! The build container has no crates.io access, so external dependencies
//! cannot be resolved; everything here is first-party. This harness does
//! a warm-up, then times iterations until the measurement window closes,
//! and prints one mean-ns/iter line per benchmark — no statistics,
//! no HTML reports, no comparison against saved baselines. It exists so
//! `cargo bench` builds and produces usable numbers offline, not to
//! replace criterion's rigor.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, one per `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Builder: number of samples a real criterion would take; here it
    /// only bounds the minimum iteration count.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 1);
        self.sample_size = n;
        self
    }

    /// Builder: how long to keep measuring.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Builder: how long to warm up before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(id, self.warm_up_time, self.measurement_time, f);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Bound the minimum iteration count (kept for API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1);
        self
    }

    /// Record the per-iteration workload size (printed, not analyzed).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        let (n, unit) = match t {
            Throughput::Elements(n) => (n, "elements"),
            Throughput::Bytes(n) => (n, "bytes"),
        };
        println!("{}: throughput {} {}/iter", self.name, n, unit);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.warm_up_time, self.measurement_time, f);
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.render());
        run_one(&full, self.warm_up_time, self.measurement_time, |b| {
            f(b, input)
        });
        self
    }

    /// Finish the group (prints nothing extra in this shim).
    pub fn finish(self) {}
}

/// A benchmark id with an optional parameter, `name/param`.
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Id for function `name` at parameter `param`.
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: name.to_string(),
            param: param.to_string(),
        }
    }

    fn render(&self) -> String {
        format!("{}/{}", self.name, self.param)
    }
}

/// Workload size per iteration, for throughput lines.
pub enum Throughput {
    /// Logical elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Measure `f`, called in a loop until the measurement window closes.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let warm_deadline = Instant::now() + self.warm_up_time;
        loop {
            black_box(f());
            if Instant::now() >= warm_deadline {
                break;
            }
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.result = Some((start.elapsed(), iters));
    }
}

fn run_one(id: &str, warm_up: Duration, measure: Duration, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        warm_up_time: warm_up,
        measurement_time: measure,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some((total, iters)) => {
            let ns = total.as_nanos() as f64 / iters as f64;
            println!("{id}: {ns:>14.1} ns/iter ({iters} iterations)");
        }
        None => println!("{id}: no measurement (Bencher::iter never called)"),
    }
}

/// Define a benchmark group: either `criterion_group!(name, fn_a, fn_b)`
/// or the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_measures() {
        let mut c = quick();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_api_works() {
        let mut c = quick();
        let mut g = c.benchmark_group("group");
        g.sample_size(10);
        g.throughput(Throughput::Elements(4));
        g.bench_function("direct", |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &p| {
            b.iter(|| black_box(p * p))
        });
        g.finish();
    }
}
