//! End-to-end tests of the model checker: exhaustive exploration of the
//! real protocols (which must pass in every interleaving), fault
//! injection, the mutation test (which must fail), and deterministic
//! counterexample replay from JSON.

use forestbal_comm::{reverse_notify_wildcard_bug, Comm};
use forestbal_mc::{replay, scenarios, Invariant, McConfig, Trace};
use forestbal_sim::{SimCluster, SimConfig, SimCtx};

#[test]
fn notify_p2_every_interleaving_satisfies_oracle() {
    let report = scenarios::check_notify(vec![vec![0, 1], vec![0]], McConfig::default());
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(!report.truncated, "P = 2 must be fully explored");
    assert!(report.runs >= 2, "reordering must create > 1 execution");
    assert!(report.states_visited >= 1);
}

#[test]
fn notify_p3_is_robust_even_without_fifo() {
    // The real Notify keys every level on its own tag and filters recv by
    // source, so it survives even same-pair overtaking — the checker
    // proves it across ALL orderings, not one jitter sample.
    let mut cfg = McConfig::default();
    cfg.sim.fifo = false;
    let report = scenarios::check_notify(vec![vec![1], vec![2], vec![0]], cfg);
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(!report.truncated);
    assert!(report.runs > 2);
}

#[test]
fn marker_exchange_p3_all_collective_orderings_agree() {
    let report = scenarios::check_markers(3, McConfig::default());
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(!report.truncated);
    assert!(
        report.states_pruned > 0,
        "collective resume orders must collapse via state hashing"
    );
}

#[test]
fn balance_p2_every_interleaving_matches_serial_oracle() {
    let report = scenarios::check_balance(2, McConfig::default());
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(!report.truncated);
}

#[test]
fn ghost_exchange_p2_every_interleaving_assembles_same_layer() {
    // The ghost exchange ships packed keys in tree runs (wire format
    // v2); every delivery ordering must decode to the identical layer.
    let report = scenarios::check_ghosts(2, McConfig::default());
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(!report.truncated);
    assert!(report.runs >= 2, "reordering must create > 1 execution");
}

#[test]
fn drop_fault_is_caught_as_termination_violation() {
    let report = scenarios::check_notify(
        vec![vec![0, 1], vec![0]],
        McConfig {
            max_drops: 1,
            ..McConfig::default()
        },
    );
    let v = report
        .violation
        .expect("losing a Notify message must deadlock");
    assert_eq!(v.invariant, "termination");
    assert!(v.message.contains("simulated deadlock"), "{}", v.message);
}

#[test]
fn duplicate_fault_is_caught_as_orphan_message() {
    let report = scenarios::check_notify(
        vec![vec![0, 1], vec![0]],
        McConfig {
            max_duplicates: 1,
            ..McConfig::default()
        },
    );
    let v = report
        .violation
        .expect("a duplicated Notify message is never consumed");
    assert_eq!(v.invariant, "no-orphan-messages");
    assert!(
        v.message.contains("quiescence violated")
            || v.message.contains("finished before the message arrived"),
        "{}",
        v.message
    );
}

fn mutant_closure(ctx: &SimCtx) -> Vec<usize> {
    let pattern = [vec![1], vec![2], vec![0]];
    reverse_notify_wildcard_bug(ctx, &pattern[ctx.rank()])
}

#[test]
fn mutation_is_invisible_to_the_default_schedule() {
    // The injected bug needs reordering to trigger: the single
    // time-ordered schedule (what a plain test would sample) passes.
    let out = SimCluster::run(3, SimConfig::default(), mutant_closure);
    assert_eq!(out.results, vec![vec![2], vec![0], vec![1]]);
}

#[test]
fn mutation_is_detected_minimized_and_replays_from_json() {
    let report = scenarios::check_notify_mutant(McConfig::default());
    let v = report
        .violation
        .as_ref()
        .expect("the checker must catch the injected reordering bug");
    assert_eq!(v.invariant, "notify-oracle");
    assert!(!v.trace.choices.is_empty(), "reordering needs a decision");

    // JSON round-trip, then deterministic replay through the sim.
    let json = v.trace.to_json();
    let parsed = Trace::from_json(&json).expect("trace JSON parses");
    assert_eq!(&parsed, &v.trace);
    let replayed = scenarios::replay_notify_mutant(&parsed)
        .expect("the minimized counterexample must still violate");
    assert_eq!(replayed.invariant, "notify-oracle");
    assert_eq!(replayed.message, v.message, "replay must be bit-identical");

    // The checker itself is deterministic: same config, same trace.
    let again = scenarios::check_notify_mutant(McConfig::default());
    assert_eq!(again.violation.unwrap().trace.choices, v.trace.choices);
}

#[test]
fn replaying_a_counterexample_against_fixed_code_passes() {
    let report = scenarios::check_notify_mutant(McConfig::default());
    let trace = report.violation.unwrap().trace;
    // The same adversarial schedule cannot hurt the correct Notify: the
    // trace replays clean once the bug is fixed.
    let pattern = vec![vec![1], vec![2], vec![0]];
    let expected = scenarios::transpose(&pattern);
    let invariants = [Invariant::oracle("notify-oracle", expected)];
    let fixed = replay(
        &trace,
        move |ctx: &SimCtx| forestbal_comm::reverse_notify(ctx, &pattern[ctx.rank()]),
        &invariants,
    );
    assert!(fixed.is_none(), "{fixed:?}");
}

#[test]
fn epochs_p2_every_interleaving_matches_full_balance_oracle() {
    // Two incremental-rebalance epochs: the changed-leaf exchange must
    // terminate, match the serial full-balance oracle bit for bit, and
    // keep the patched ghost layer a superset of a fresh exchange, in
    // every delivery interleaving.
    let report = scenarios::check_epochs(2, McConfig::default());
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(!report.truncated);
    assert!(report.runs >= 2, "reordering must create > 1 execution");
}

#[test]
fn epochs_p3_bounded_exploration_finds_no_violation() {
    // P = 3 is too large to exhaust; a bounded frontier still must not
    // find any interleaving that breaks the epoch invariants.
    let report = scenarios::check_epochs(
        3,
        McConfig {
            max_runs: 2_000,
            ..McConfig::default()
        },
    );
    assert!(report.violation.is_none(), "{:?}", report.violation);
    assert!(report.runs >= 2);
}
