//! The replaying exploration strategy: one simulator execution along a
//! prefix of recorded branch decisions, logging every choice point.
//!
//! A fresh [`ExploreStrategy`] is built per execution. While the trail is
//! shorter than the prefix it re-applies the prefix decision at each
//! choice point; beyond the prefix it takes arm 0 (deliver the first
//! candidate in canonical order). Because the simulator and the rank code
//! are deterministic, identical prefixes reproduce identical executions
//! bit-for-bit — which is what makes both DFS branching and JSON trace
//! replay exact.

use forestbal_sim::{Candidate, Choice, Delivered, DeliveryStrategy, MsgMeta, Op};
use std::collections::HashMap;

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mix(h: u64, v: u64) -> u64 {
    splitmix64(h ^ v)
}

/// Hash of a message *as the destination rank can observe it*: source,
/// destination, tag, length, payload content. The global `send_seq` is
/// deliberately excluded — it is path-dependent (allocation order varies
/// with the schedule), and including it would make equivalent abstract
/// states hash apart, defeating pruning.
fn msg_hash(m: &MsgMeta) -> u64 {
    let mut h = mix(0x4D53_4721, m.src as u64);
    h = mix(h, m.dst as u64);
    h = mix(h, m.tag as u64);
    h = mix(h, m.bytes as u64);
    mix(h, m.payload_hash)
}

/// One recorded choice point of an execution.
pub(crate) struct TrailPoint {
    /// Canonical abstract-state hash *before* the decision.
    pub state: u64,
    /// Number of enabled actions (always ≥ 2; forced points are not
    /// recorded).
    pub arms: u32,
    /// Index of the action taken.
    pub chosen: u32,
}

pub(crate) struct ExploreStrategy<'a> {
    prefix: &'a [u32],
    /// Choice points passed during this execution, in order.
    pub trail: Vec<TrailPoint>,
    /// Per-rank rolling hash of the delivery history. A rank's behavior
    /// is a deterministic function of the sequence of events delivered
    /// *to it*, so these hashes (plus the fault state) identify the
    /// global abstract state.
    rank_hash: Vec<u64>,
    /// Order-insensitive (xor-combined) hash of dropped messages: a drop
    /// is unobservable to every rank, so only the multiset matters.
    drop_hash: u64,
    drops_left: u32,
    dups_left: u32,
    eager_collectives: bool,
    check_fifo: bool,
    /// Last delivered send seq per (src, dst), for the FIFO invariant.
    last_seq: HashMap<(usize, usize), u64>,
    /// False if a same-pair message overtook an earlier one while the
    /// config promised FIFO.
    pub fifo_ok: bool,
}

impl<'a> ExploreStrategy<'a> {
    pub fn new(
        size: usize,
        prefix: &'a [u32],
        eager_collectives: bool,
        check_fifo: bool,
        max_drops: u32,
        max_duplicates: u32,
    ) -> Self {
        ExploreStrategy {
            prefix,
            trail: Vec::new(),
            rank_hash: vec![0; size],
            drop_hash: 0,
            drops_left: max_drops,
            dups_left: max_duplicates,
            eager_collectives,
            check_fifo,
            last_seq: HashMap::new(),
            fifo_ok: true,
        }
    }

    fn state_hash(&self) -> u64 {
        let mut h = mix(0x5747_4154, self.drop_hash);
        for (r, &rh) in self.rank_hash.iter().enumerate() {
            h = mix(h, mix(rh, r as u64));
        }
        h
    }
}

impl DeliveryStrategy for ExploreStrategy<'_> {
    fn choose(&mut self, candidates: &[Candidate]) -> Choice {
        // Candidates arrive in canonical order with collectives first.
        // Collective resumptions commute with each other and with message
        // deliveries (they carry no cross-rank information beyond the
        // already-fixed gather result), so delivering them eagerly is a
        // partial-order reduction — optional, because exploring their
        // orderings is itself a useful stress when cheap.
        if self.eager_collectives && matches!(candidates[0], Candidate::Collective { .. }) {
            return Choice {
                index: 0,
                op: Op::Deliver,
            };
        }
        let mut arms: Vec<Choice> = (0..candidates.len())
            .map(|index| Choice {
                index,
                op: Op::Deliver,
            })
            .collect();
        for (budget, op) in [(self.drops_left, Op::Drop), (self.dups_left, Op::Duplicate)] {
            if budget > 0 {
                arms.extend(
                    candidates
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| matches!(c, Candidate::Message(_)))
                        .map(|(index, _)| Choice { index, op }),
                );
            }
        }
        if arms.len() == 1 {
            return arms[0]; // forced: not a choice point, not recorded
        }
        let depth = self.trail.len();
        let chosen = match self.prefix.get(depth) {
            // Clamp so a malformed hand-edited trace degrades to a valid
            // execution instead of an index panic.
            Some(&c) => (c as usize).min(arms.len() - 1),
            None => 0,
        };
        self.trail.push(TrailPoint {
            state: self.state_hash(),
            arms: arms.len() as u32,
            chosen: chosen as u32,
        });
        arms[chosen]
    }

    fn delivered(&mut self, event: &Delivered) {
        match event {
            Delivered::Start { rank } => {
                self.rank_hash[*rank] = mix(self.rank_hash[*rank], 0x5354_4152);
            }
            Delivered::Message(m) | Delivered::Duplicated(m) => {
                if matches!(event, Delivered::Duplicated(_)) {
                    self.dups_left -= 1;
                }
                if self.check_fifo {
                    let last = self.last_seq.entry((m.src, m.dst)).or_insert(0);
                    if m.send_seq < *last {
                        self.fifo_ok = false;
                    }
                    *last = (*last).max(m.send_seq);
                }
                self.rank_hash[m.dst] = mix(self.rank_hash[m.dst], msg_hash(m));
            }
            Delivered::Collective { dst, gen } => {
                self.rank_hash[*dst] = mix(self.rank_hash[*dst], mix(0x0C01_1EC7, *gen));
            }
            Delivered::Dropped(m) => {
                self.drops_left -= 1;
                self.drop_hash ^= mix(0x0D20_99ED, msg_hash(m));
            }
        }
    }
}
