//! The pluggable invariant API: predicates over a completed execution.
//!
//! Structural invariants — termination (no simulated deadlock), no
//! orphan messages at quiescence, per-pair FIFO when configured — are
//! built into the [`Checker`](crate::Checker) because they surface as
//! scheduler panics or strategy observations rather than as properties
//! of the output. Everything else (oracles, agreement) is an
//! [`Invariant`] supplied per scenario.

use forestbal_sim::SimRunOutput;
use std::fmt::Debug;

/// A named predicate over the per-rank outputs of one execution.
pub struct Invariant<T> {
    name: &'static str,
    #[allow(clippy::type_complexity)]
    check: Box<dyn Fn(&SimRunOutput<T>) -> Result<(), String> + Send + Sync>,
}

impl<T> Invariant<T> {
    /// An invariant from an arbitrary predicate; `Err` carries the
    /// human-readable violation description.
    pub fn new(
        name: &'static str,
        check: impl Fn(&SimRunOutput<T>) -> Result<(), String> + Send + Sync + 'static,
    ) -> Self {
        Invariant {
            name,
            check: Box::new(check),
        }
    }

    /// The invariant's name (reported in violations and traces).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Evaluate against one execution's output.
    pub fn check(&self, out: &SimRunOutput<T>) -> Result<(), String> {
        (self.check)(out)
    }
}

impl<T: PartialEq + Debug + Send + Sync + 'static> Invariant<T> {
    /// Per-rank results must equal `expected` exactly — the oracle
    /// invariant (e.g. serial balance, pattern transpose).
    pub fn oracle(name: &'static str, expected: Vec<T>) -> Self {
        Invariant::new(name, move |out: &SimRunOutput<T>| {
            for (rank, (got, want)) in out.results.iter().zip(&expected).enumerate() {
                if got != want {
                    return Err(format!("rank {rank}: got {got:?}, oracle says {want:?}"));
                }
            }
            Ok(())
        })
    }

    /// Every rank must compute the same value (agreement).
    pub fn all_ranks_equal(name: &'static str) -> Self {
        Invariant::new(name, |out: &SimRunOutput<T>| {
            let first = &out.results[0];
            for (rank, got) in out.results.iter().enumerate().skip(1) {
                if got != first {
                    return Err(format!(
                        "rank {rank} disagrees with rank 0: {got:?} vs {first:?}"
                    ));
                }
            }
            Ok(())
        })
    }
}
