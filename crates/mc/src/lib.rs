//! Exhaustive model checking of the message protocols (Notify reversal,
//! marker exchange, one-pass balance) over the discrete-event simulator.
//!
//! The seeded-jitter fault model in `forestbal-sim` samples **one**
//! delivery schedule per `(seed, jitter_ns)` pair; a lucky draw can hide
//! an ordering bug forever. This crate instead drives
//! [`SimCluster::run_with_strategy`](forestbal_sim::SimCluster) through
//! **every** message delivery ordering (and, behind a budget flag,
//! duplicate/drop faults) for small P, in the style of compact stateless
//! model checkers for message-passing systems (dslab-mp, Stateright):
//!
//! - each *execution* replays the simulator from the initial state along
//!   a recorded prefix of branch decisions (exploration is deterministic,
//!   so replay is exact),
//! - at every point where more than one action is enabled the checker
//!   records a choice point with a canonical **state hash** (per-rank
//!   delivery histories + fault budgets — the abstract state that fully
//!   determines future behavior), and prunes branches whose state was
//!   already expanded (a sound partial-order reduction: delivery order
//!   *between* ranks never enters any per-rank history),
//! - [`Invariant`]s are checked after every execution: termination
//!   (no simulated deadlock), no orphan messages at quiescence, per-pair
//!   FIFO when configured, plus scenario oracles (bit-identical balanced
//!   forest vs. the serial oracle, exact sender lists vs. the pattern
//!   transpose),
//! - on violation the counterexample is minimized (shortest decision
//!   prefix that still fails) and serialized to a JSON [`Trace`] that
//!   [`replay`]s deterministically for debugging.
//!
//! The [`scenarios`] module wires the checker over the three protocol
//! surfaces, including a mutation test — an intentionally broken Notify
//! variant (`reverse_notify_wildcard_bug`) — proving the checker catches
//! real reordering defects.
//!
//! # Example
//!
//! ```
//! use forestbal_mc::{scenarios, McConfig};
//!
//! // Every delivery ordering of Notify at P = 2 satisfies the oracle.
//! let report = scenarios::check_notify(
//!     vec![vec![0, 1], vec![0]],
//!     McConfig::default(),
//! );
//! assert!(report.violation.is_none());
//! assert!(report.states_visited > 0);
//! ```

#![warn(missing_docs)]

pub mod checker;
mod explore;
pub mod invariant;
pub mod scenarios;
pub mod trace;

pub use checker::{replay, Checker, McConfig, McReport, Violation};
pub use invariant::Invariant;
pub use trace::Trace;
