//! Checker wirings over the three protocol surfaces: Notify reversal,
//! the partition-marker exchange, and the one-pass balance — plus the
//! mutation test (a deliberately broken Notify) that proves the checker
//! detects real reordering bugs.
//!
//! Each scenario comes as a `check_*` function (exhaustive exploration)
//! and a matching `replay_*` function (re-execute a serialized
//! counterexample trace through the same closure and invariants).

use crate::checker::{replay, Checker, McConfig, McReport, Violation};
use crate::invariant::Invariant;
use crate::trace::Trace;
use forestbal_comm::{reverse_notify, reverse_notify_wildcard_bug, Comm};
use forestbal_core::Condition;
use forestbal_forest::serial::is_forest_balanced;
use forestbal_forest::{serial_forest_balance, AdaptBatch, BalanceVariant, ReversalScheme};
use forestbal_mesh::fractal::fractal_forest_2d;
use forestbal_sim::{SimCtx, SimRunOutput};

/// The expected sender lists of a communication pattern: its transpose,
/// sorted and deduplicated — the oracle for every reversal scheme.
pub fn transpose(pattern: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut want = vec![Vec::new(); pattern.len()];
    for (p, receivers) in pattern.iter().enumerate() {
        for &q in receivers {
            want[q].push(p);
        }
    }
    for w in &mut want {
        w.sort_unstable();
        w.dedup();
    }
    want
}

/// Exhaustively check [`reverse_notify`] on `pattern` (rank `p` notifies
/// `pattern[p]`): in every delivery ordering each rank must compute
/// exactly the transpose.
pub fn check_notify(pattern: Vec<Vec<usize>>, cfg: McConfig) -> McReport {
    let size = pattern.len();
    let invariants = [Invariant::oracle("notify-oracle", transpose(&pattern))];
    Checker::new(cfg).check(
        size,
        move |ctx: &SimCtx| reverse_notify(ctx, &pattern[ctx.rank()]),
        &invariants,
    )
}

/// The ring pattern the mutant provably misroutes on under reordering:
/// at level 0, rank 2 sends items to ranks 0 and 1 in the same step, and
/// the mutant's wildcard single-tag `recv` lets rank 0 consume the
/// level-1 payload during level 0.
fn mutant_pattern() -> Vec<Vec<usize>> {
    vec![vec![1], vec![2], vec![0]]
}

/// Run the mutation test: explore the deliberately broken
/// [`reverse_notify_wildcard_bug`] at P = 3 with FIFO off. A correct
/// checker must report an oracle violation (the default time-ordered
/// schedule passes — only reordering exposes the bug).
pub fn check_notify_mutant(mut cfg: McConfig) -> McReport {
    cfg.sim.fifo = false;
    let pattern = mutant_pattern();
    let invariants = [Invariant::oracle("notify-oracle", transpose(&pattern))];
    Checker::new(cfg).check(
        3,
        move |ctx: &SimCtx| reverse_notify_wildcard_bug(ctx, &pattern[ctx.rank()]),
        &invariants,
    )
}

/// Replay a serialized mutant counterexample through the same closure and
/// oracle.
pub fn replay_notify_mutant(trace: &Trace) -> Option<Violation> {
    let pattern = mutant_pattern();
    let invariants = [Invariant::oracle("notify-oracle", transpose(&pattern))];
    replay(
        trace,
        move |ctx: &SimCtx| reverse_notify_wildcard_bug(ctx, &pattern[ctx.rank()]),
        &invariants,
    )
}

/// The marker-exchange closure: build the 2D fractal forest (uniform
/// refine + fractal refine, each re-exchanging partition markers) and
/// re-run the marker exchange once more; return a printable digest of
/// the markers plus the forest checksum.
fn markers_digest(ctx: &SimCtx) -> String {
    let mut f = fractal_forest_2d(ctx, 1, 1);
    f.update_markers(ctx);
    format!("markers={:?} checksum={:#x}", f.markers(), f.checksum(ctx))
}

/// Exhaustively check the partition-marker exchange at P = `size`:
/// explore every collective resume ordering (eager-collective reduction
/// off) and require every rank, in every ordering, to agree with the
/// default schedule's markers bit-for-bit.
pub fn check_markers(size: usize, mut cfg: McConfig) -> McReport {
    cfg.eager_collectives = false;
    let expected = forestbal_sim::SimCluster::run(size, cfg.sim, markers_digest).results;
    let invariants = [
        Invariant::oracle("markers-oracle", expected),
        Invariant::all_ranks_equal("markers-agreement"),
    ];
    Checker::new(cfg).check(size, markers_digest, &invariants)
}

/// The ghost-exchange closure: build the 2D fractal forest and collect
/// the ghost layer — the exchange ships packed keys in tree runs
/// (`forestbal_forest::codec`), so this drives the wire format v2
/// encoder and decoder under adversarial delivery orders. The digest
/// also cross-checks every ghost against the gathered global forest:
/// the octant must exist under its tree and the claimed owner must be a
/// different rank.
fn ghosts_digest(ctx: &SimCtx) -> String {
    let mut f = fractal_forest_2d(ctx, 1, 2);
    let ghosts = f.ghost_layer(ctx);
    let global = f.gather(ctx);
    let mut valid = true;
    let mut items: Vec<String> = Vec::new();
    for (t, owner, g) in ghosts.iter() {
        valid &= owner != ctx.rank();
        valid &= global.get(&t).is_some_and(|v| v.binary_search(g).is_ok());
        items.push(format!("{t}:{owner}:l{}@{:?}", g.level, g.coords));
    }
    items.sort();
    format!(
        "valid={valid} n={} ghosts={items:?} checksum={:#x}",
        ghosts.len(),
        f.checksum(ctx)
    )
}

/// Exhaustively check the ghost exchange at P = `size`: in every message
/// delivery ordering each rank must assemble exactly the ghost layer the
/// default schedule produces (the exchange is deterministic), every
/// ghost must decode to a real remote leaf, and ranks' layers must be
/// mutually consistent with the global forest.
pub fn check_ghosts(size: usize, cfg: McConfig) -> McReport {
    let expected = forestbal_sim::SimCluster::run(size, cfg.sim, ghosts_digest).results;
    let invariants = [Invariant::oracle("ghosts-oracle", expected)];
    Checker::new(cfg).check(size, ghosts_digest, &invariants)
}

/// The balance closure: fractal forest, one-pass balance
/// (`New` variant + `Notify` reversal), then compare the gathered result
/// against [`serial_forest_balance`] of the gathered input and check the
/// 2:1 condition globally. Returns `(matches_serial_oracle, balanced,
/// global_checksum)`.
fn balance_vs_oracle(ctx: &SimCtx) -> (bool, bool, u64) {
    let cond = Condition::full(2);
    let mut f = fractal_forest_2d(ctx, 1, 2);
    let before = f.gather(ctx);
    f.balance(ctx, cond, BalanceVariant::New, ReversalScheme::Notify);
    let after = f.gather(ctx);
    let conn = f.connectivity();
    let expected = serial_forest_balance(conn, &before, cond);
    (
        after == expected,
        is_forest_balanced(conn, &after, cond),
        f.checksum(ctx),
    )
}

/// Exhaustively check the one-pass balance at P = `size` (2D fractal
/// forest): in every message delivery ordering the result must be
/// bit-identical to the serial oracle and 2:1-balanced.
pub fn check_balance(size: usize, cfg: McConfig) -> McReport {
    let invariants = [
        Invariant::new(
            "balance-serial-oracle",
            |out: &SimRunOutput<(bool, bool, u64)>| {
                for (rank, &(matches, _, _)) in out.results.iter().enumerate() {
                    if !matches {
                        return Err(format!(
                            "rank {rank}: balanced forest differs from the serial oracle"
                        ));
                    }
                }
                Ok(())
            },
        ),
        Invariant::new("balance-2to1", |out: &SimRunOutput<(bool, bool, u64)>| {
            for (rank, &(_, balanced, _)) in out.results.iter().enumerate() {
                if !balanced {
                    return Err(format!("rank {rank}: 2:1 condition violated"));
                }
            }
            Ok(())
        }),
        Invariant::all_ranks_equal("balance-agreement"),
    ];
    Checker::new(cfg).check(size, balance_vs_oracle, &invariants)
}

/// The incremental-epoch closure: a balanced 2D fractal forest with its
/// ghost layer, then two targeted adaptation epochs committed through
/// `apply_edits` + `balance_incremental` — the changed-leaf exchange of
/// [`forestbal_forest::incremental`], with the ghost layer patched in
/// place across epochs. Per epoch the result is compared against
/// [`serial_forest_balance`] of the gathered post-edit forest. Returns
/// `(matches_serial_oracle, balanced, ghosts_superset, checksum)`,
/// where `ghosts_superset` verifies the patched layer still holds every
/// entry a fresh exchange would produce.
fn epochs_digest(ctx: &SimCtx) -> (bool, bool, bool, u64) {
    let cond = Condition::full(2);
    let mut f = fractal_forest_2d(ctx, 1, 2);
    f.balance(ctx, cond, BalanceVariant::New, ReversalScheme::Notify);
    let mut ghosts = f.ghost_layer(ctx);
    let mut oracle_ok = true;
    for epoch in 0..2u32 {
        let mut batch = AdaptBatch::new();
        if epoch == 0 {
            // Refine each rank's deepest leaf: forces splits across the
            // partition boundary in both directions.
            let deepest = f
                .trees()
                .flat_map(|(t, v)| v.iter().map(move |o| (t, o)))
                .max_by_key(|(_, o)| o.level);
            if let Some((t, o)) = deepest {
                batch.refine(t, &o);
            }
        } else {
            // Coarsen each rank's first family (or refine the first
            // leaf): simultaneous bilateral edits against patched ghosts.
            let first = f.trees().next().map(|(t, v)| (t, v.get(0)));
            if let Some((t, o)) = first {
                if o.level > 0 && o.child_id() == 0 {
                    batch.coarsen(t, &o.parent());
                } else {
                    batch.refine(t, &o);
                }
            }
        }
        let dirty = f.apply_edits(&batch, 5);
        let before = f.gather(ctx);
        f.balance_incremental(ctx, cond, &dirty, &mut ghosts);
        let expected = serial_forest_balance(f.connectivity(), &before, cond);
        oracle_ok &= f.gather(ctx) == expected;
    }
    let after = f.gather(ctx);
    let balanced = is_forest_balanced(f.connectivity(), &after, cond);
    let fresh = f.ghost_layer(ctx);
    let superset = fresh.iter().all(|(t, o, g)| ghosts.contains(t, o, g));
    (oracle_ok, balanced, superset, f.checksum(ctx))
}

/// Exhaustively check two incremental epochs at P = `size`: in every
/// delivery interleaving the exchange terminates (the checker's
/// built-in quiescence), each epoch's result is bit-identical to the
/// full-balance serial oracle, the final forest is 2:1-balanced, the
/// patched ghost layer retains every fresh-exchange entry, and all
/// ranks agree on the checksum.
pub fn check_epochs(size: usize, cfg: McConfig) -> McReport {
    let invariants = [
        Invariant::new(
            "epochs-serial-oracle",
            |out: &SimRunOutput<(bool, bool, bool, u64)>| {
                for (rank, &(matches, _, _, _)) in out.results.iter().enumerate() {
                    if !matches {
                        return Err(format!(
                            "rank {rank}: incremental epoch differs from the serial oracle"
                        ));
                    }
                }
                Ok(())
            },
        ),
        Invariant::new(
            "epochs-2to1",
            |out: &SimRunOutput<(bool, bool, bool, u64)>| {
                for (rank, &(_, balanced, _, _)) in out.results.iter().enumerate() {
                    if !balanced {
                        return Err(format!("rank {rank}: 2:1 condition violated"));
                    }
                }
                Ok(())
            },
        ),
        Invariant::new(
            "epochs-ghost-superset",
            |out: &SimRunOutput<(bool, bool, bool, u64)>| {
                for (rank, &(_, _, superset, _)) in out.results.iter().enumerate() {
                    if !superset {
                        return Err(format!(
                            "rank {rank}: patched ghost layer lost a fresh-exchange entry"
                        ));
                    }
                }
                Ok(())
            },
        ),
        Invariant::all_ranks_equal("epochs-agreement"),
    ];
    Checker::new(cfg).check(size, epochs_digest, &invariants)
}
