//! CI smoke entry point for the model checker.
//!
//! Runs the checker exhaustively on Notify at P = 2, the marker exchange
//! at P = 3 (bounded depth), the one-pass balance at P = 2, the
//! packed-wire ghost exchange at P = 2, and two incremental-rebalance
//! epochs at P = 2; then the mutation test (the
//! deliberately broken Notify must be caught, and its minimized
//! counterexample must replay identically from JSON).
//!
//! Per scenario it prints one `MC {...}` line with the exploration
//! counters. Any counterexample trace is written as JSON under the
//! artifact directory (`--out DIR`, default `mc-artifacts`). Exit status
//! is nonzero if a real protocol violates, the mutant is *not* detected,
//! or the replay diverges.

use forestbal_mc::{scenarios, McConfig, McReport, Trace};
use std::path::{Path, PathBuf};

fn report_line(name: &str, r: &McReport) {
    let violated = r
        .violation
        .as_ref()
        .map(|v| format!("\"{}\"", v.invariant))
        .unwrap_or_else(|| "null".into());
    println!(
        "MC {{\"scenario\":\"{name}\",\"runs\":{},\"states_visited\":{},\
         \"states_pruned\":{},\"max_depth_seen\":{},\"truncated\":{},\
         \"violation\":{violated}}}",
        r.runs, r.states_visited, r.states_pruned, r.max_depth_seen, r.truncated,
    );
}

fn write_artifact(dir: &Path, name: &str, trace: &Trace) {
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("mc_smoke: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.trace.json"));
    match std::fs::write(&path, trace.to_json()) {
        Ok(()) => println!("MC wrote counterexample {}", path.display()),
        Err(e) => eprintln!("mc_smoke: cannot write {}: {e}", path.display()),
    }
}

fn main() {
    let mut out_dir = PathBuf::from("mc-artifacts");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("mc_smoke: --out needs a directory");
                    std::process::exit(2);
                }))
            }
            other => {
                eprintln!("mc_smoke: unknown argument {other:?} (usage: mc_smoke [--out DIR])");
                std::process::exit(2);
            }
        }
    }
    let mut failed = false;

    // Real protocols: every interleaving must satisfy every invariant.
    let notify = scenarios::check_notify(vec![vec![0, 1], vec![0]], McConfig::default());
    report_line("notify-p2", &notify);
    let markers = scenarios::check_markers(
        3,
        McConfig {
            max_depth: 64,
            max_runs: 20_000,
            ..McConfig::default()
        },
    );
    report_line("markers-p3", &markers);
    let balance = scenarios::check_balance(
        2,
        McConfig {
            max_runs: 20_000,
            ..McConfig::default()
        },
    );
    report_line("balance-p2", &balance);
    let ghosts = scenarios::check_ghosts(
        2,
        McConfig {
            max_runs: 20_000,
            ..McConfig::default()
        },
    );
    report_line("ghosts-p2", &ghosts);
    let epochs = scenarios::check_epochs(
        2,
        McConfig {
            max_runs: 20_000,
            ..McConfig::default()
        },
    );
    report_line("epochs-p2", &epochs);
    for (name, r) in [
        ("notify-p2", &notify),
        ("markers-p3", &markers),
        ("balance-p2", &balance),
        ("ghosts-p2", &ghosts),
        ("epochs-p2", &epochs),
    ] {
        if let Some(v) = &r.violation {
            eprintln!("mc_smoke: {name} violated {}: {}", v.invariant, v.message);
            write_artifact(&out_dir, name, &v.trace);
            failed = true;
        }
    }

    // Mutation test: the broken Notify MUST be caught...
    let mutant = scenarios::check_notify_mutant(McConfig::default());
    report_line("notify-mutant-p3", &mutant);
    match &mutant.violation {
        None => {
            eprintln!("mc_smoke: mutation test FAILED — the injected bug went undetected");
            failed = true;
        }
        Some(v) => {
            // ...and its minimized counterexample must survive a JSON
            // round-trip and replay to the same violation.
            write_artifact(&out_dir, "notify-mutant-p3", &v.trace);
            let json = v.trace.to_json();
            let parsed = Trace::from_json(&json).expect("own trace JSON parses");
            match scenarios::replay_notify_mutant(&parsed) {
                Some(rv) if rv.invariant == v.invariant => {
                    println!(
                        "MC mutant caught ({} choice(s)) and replayed: {}",
                        parsed.choices.len(),
                        rv.invariant
                    );
                }
                other => {
                    eprintln!("mc_smoke: replay diverged: {other:?}");
                    failed = true;
                }
            }
        }
    }

    std::process::exit(if failed { 1 } else { 0 });
}
