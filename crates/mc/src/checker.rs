//! The DFS exploration engine: exhaustively executes every delivery
//! ordering (within configured fault budgets and bounds), checking
//! invariants after each execution and minimizing counterexamples.

use crate::explore::ExploreStrategy;
use crate::invariant::Invariant;
use crate::trace::Trace;
use forestbal_sim::{SimCluster, SimConfig, SimCtx, SimRunOutput};
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Checker configuration: the simulator config under test plus
/// exploration bounds and fault budgets.
#[derive(Clone, Copy, Debug)]
pub struct McConfig {
    /// Base simulator configuration. `sim.fifo` decides whether same-pair
    /// reorderings are explored (and checked as an invariant when kept
    /// on); jitter/latency only shape virtual clocks, never the explored
    /// orderings.
    pub sim: SimConfig,
    /// Deliver completed-collective resumptions eagerly instead of
    /// exploring their orderings (a sound partial-order reduction; turn
    /// off to stress collective resume orders, e.g. the marker exchange).
    pub eager_collectives: bool,
    /// Per-execution budget of injected message-drop faults. `0` (the
    /// default) disables drop branching.
    pub max_drops: u32,
    /// Per-execution budget of injected duplicate-delivery faults.
    pub max_duplicates: u32,
    /// Choice points deeper than this are executed (with arm 0) but not
    /// branched on; sets [`McReport::truncated`] when hit.
    pub max_depth: usize,
    /// Stop after this many executions, marking the report truncated.
    pub max_runs: usize,
    /// Stop once this many distinct states were expanded, marking the
    /// report truncated.
    pub max_states: usize,
}

impl Default for McConfig {
    fn default() -> Self {
        McConfig {
            sim: SimConfig::default(),
            eager_collectives: true,
            max_drops: 0,
            max_duplicates: 0,
            max_depth: 10_000,
            max_runs: 100_000,
            max_states: 1_000_000,
        }
    }
}

/// A confirmed invariant violation with its minimized counterexample.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Name of the violated invariant (`"termination"`,
    /// `"no-orphan-messages"`, `"fifo"`, `"no-panic"`, or a scenario
    /// invariant's name).
    pub invariant: String,
    /// Human-readable description from the violating execution.
    pub message: String,
    /// Minimized, JSON-serializable, deterministically replayable trace.
    pub trace: Trace,
}

/// Exploration statistics and outcome.
#[derive(Clone, Debug, Default)]
pub struct McReport {
    /// Number of complete simulator executions performed (including the
    /// few extra runs used to minimize a counterexample).
    pub runs: usize,
    /// Distinct abstract states expanded at choice points.
    pub states_visited: usize,
    /// Choice points skipped because their state was already expanded
    /// (the payoff of canonical state hashing).
    pub states_pruned: usize,
    /// Deepest choice-point trail seen in any execution.
    pub max_depth_seen: usize,
    /// True if any bound (`max_depth`, `max_runs`, `max_states`) cut the
    /// exploration short — absence of a violation is then *not* a proof.
    pub truncated: bool,
    /// The first violation found, if any (exploration stops on it).
    pub violation: Option<Violation>,
}

/// Outcome of a single execution before invariant evaluation.
struct RunRecord<T> {
    outcome: Result<SimRunOutput<T>, String>,
    /// `(state, arms, chosen)` at each recorded choice point.
    trail: Vec<(u64, u32, u32)>,
    fifo_ok: bool,
}

/// The exhaustive model checker. See the [crate docs](crate) for the
/// exploration algorithm.
pub struct Checker {
    cfg: McConfig,
}

impl Checker {
    /// A checker over `cfg`.
    pub fn new(cfg: McConfig) -> Self {
        Checker { cfg }
    }

    /// The configuration this checker explores under.
    pub fn config(&self) -> &McConfig {
        &self.cfg
    }

    /// Explore every delivery ordering of `f` on `size` ranks, checking
    /// the built-in structural invariants plus `invariants` after each
    /// execution. Stops at the first violation (minimized into
    /// [`McReport::violation`]) or when the space — or a bound — is
    /// exhausted.
    pub fn check<T, F>(&self, size: usize, f: F, invariants: &[Invariant<T>]) -> McReport
    where
        T: Send,
        F: Fn(&SimCtx) -> T + Send + Sync,
    {
        let mut report = McReport::default();
        let mut visited: HashSet<u64> = HashSet::new();
        // DFS worklist of decision prefixes; executions continue past
        // their prefix with arm 0.
        let mut stack: Vec<Vec<u32>> = vec![Vec::new()];
        while let Some(prefix) = stack.pop() {
            if report.runs >= self.cfg.max_runs || visited.len() >= self.cfg.max_states {
                report.truncated = true;
                break;
            }
            report.runs += 1;
            let rec = self.run_once(size, &f, &prefix);
            report.max_depth_seen = report.max_depth_seen.max(rec.trail.len());
            if let Some((name, message)) = self.classify(&rec, invariants) {
                let executed: Vec<u32> = rec.trail.iter().map(|&(_, _, c)| c).collect();
                report.violation = Some(self.minimize(
                    size,
                    &f,
                    invariants,
                    &name,
                    message,
                    executed,
                    &mut report.runs,
                ));
                break;
            }
            // Expand alternatives at every *newly reached* choice point
            // beyond the prefix (points inside the prefix were expanded
            // by the ancestor execution that pushed this prefix).
            let executed: Vec<u32> = rec.trail.iter().map(|&(_, _, c)| c).collect();
            for (i, &(state, arms, chosen)) in rec.trail.iter().enumerate() {
                if i < prefix.len() {
                    continue;
                }
                if i >= self.cfg.max_depth {
                    report.truncated = true;
                    break;
                }
                if !visited.insert(state) {
                    report.states_pruned += 1;
                    continue;
                }
                for arm in 0..arms {
                    if arm != chosen {
                        let mut branch = executed[..i].to_vec();
                        branch.push(arm);
                        stack.push(branch);
                    }
                }
            }
        }
        report.states_visited = visited.len();
        report
    }

    /// One deterministic execution along `prefix`.
    fn run_once<T, F>(&self, size: usize, f: &F, prefix: &[u32]) -> RunRecord<T>
    where
        T: Send,
        F: Fn(&SimCtx) -> T + Send + Sync,
    {
        let mut strat = ExploreStrategy::new(
            size,
            prefix,
            self.cfg.eager_collectives,
            self.cfg.sim.fifo,
            self.cfg.max_drops,
            self.cfg.max_duplicates,
        );
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            SimCluster::run_with_strategy(size, self.cfg.sim, &mut strat, f)
        }))
        .map_err(|payload| {
            payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "rank panicked with a non-string payload".into())
        });
        RunRecord {
            outcome,
            trail: strat
                .trail
                .iter()
                .map(|t| (t.state, t.arms, t.chosen))
                .collect(),
            fifo_ok: strat.fifo_ok,
        }
    }

    /// Map an execution record to the first violated invariant, if any.
    fn classify<T>(
        &self,
        rec: &RunRecord<T>,
        invariants: &[Invariant<T>],
    ) -> Option<(String, String)> {
        match &rec.outcome {
            Err(msg) if msg.contains("simulated deadlock") => {
                return Some(("termination".into(), msg.clone()));
            }
            // "finished before the message arrived" is the same defect
            // class observed mid-run instead of at quiescence: a message
            // exists that no receive will ever consume.
            Err(msg)
                if msg.contains("quiescence violated")
                    || msg.contains("finished before the message arrived") =>
            {
                return Some(("no-orphan-messages".into(), msg.clone()));
            }
            Err(msg) => return Some(("no-panic".into(), msg.clone())),
            Ok(_) => {}
        }
        if !rec.fifo_ok {
            return Some((
                "fifo".into(),
                "a same-pair message was delivered out of send order despite fifo: true".into(),
            ));
        }
        let out = rec.outcome.as_ref().ok().unwrap();
        for inv in invariants {
            if let Err(msg) = inv.check(out) {
                return Some((inv.name().to_string(), msg));
            }
        }
        None
    }

    /// Shrink a violating decision sequence to the shortest prefix that
    /// still violates the *same* invariant, and package it as a trace.
    #[allow(clippy::too_many_arguments)]
    fn minimize<T, F>(
        &self,
        size: usize,
        f: &F,
        invariants: &[Invariant<T>],
        name: &str,
        message: String,
        executed: Vec<u32>,
        runs: &mut usize,
    ) -> Violation
    where
        T: Send,
        F: Fn(&SimCtx) -> T + Send + Sync,
    {
        let mut best = (executed.clone(), message);
        for cut in 0..executed.len() {
            *runs += 1;
            let rec = self.run_once(size, f, &executed[..cut]);
            if let Some((n, m)) = self.classify(&rec, invariants) {
                if n == name {
                    best = (executed[..cut].to_vec(), m);
                    break;
                }
            }
        }
        // Trailing arm-0 decisions are what an empty suffix replays to
        // anyway; strip them so the stored trace is minimal.
        let mut choices = best.0;
        while choices.last() == Some(&0) {
            choices.pop();
        }
        Violation {
            invariant: name.to_string(),
            message: best.1,
            trace: Trace {
                version: 1,
                size,
                fifo: self.cfg.sim.fifo,
                eager_collectives: self.cfg.eager_collectives,
                max_drops: self.cfg.max_drops,
                max_duplicates: self.cfg.max_duplicates,
                choices,
                invariant: name.to_string(),
                message: String::new(),
            },
        }
    }
}

/// Deterministically re-execute a serialized counterexample `trace`
/// against scenario closure `f`, returning the violation it reproduces
/// (`None` if the trace no longer violates anything — e.g. after a fix).
/// The simulator configuration is reconstructed from the trace itself.
pub fn replay<T, F>(trace: &Trace, f: F, invariants: &[Invariant<T>]) -> Option<Violation>
where
    T: Send,
    F: Fn(&SimCtx) -> T + Send + Sync,
{
    let cfg = McConfig {
        sim: SimConfig {
            fifo: trace.fifo,
            ..SimConfig::default()
        },
        eager_collectives: trace.eager_collectives,
        max_drops: trace.max_drops,
        max_duplicates: trace.max_duplicates,
        ..McConfig::default()
    };
    let checker = Checker::new(cfg);
    let rec = checker.run_once(trace.size, &f, &trace.choices);
    checker
        .classify(&rec, invariants)
        .map(|(invariant, message)| Violation {
            invariant,
            message,
            trace: trace.clone(),
        })
}
