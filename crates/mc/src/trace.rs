//! Counterexample traces: the minimal decision prefix that reproduces a
//! violation, serialized to JSON for artifacts and deterministic replay.
//!
//! A trace is *self-describing*: it embeds every configuration field that
//! influences the schedule (cluster size, FIFO mode, eager-collective
//! reduction, fault budgets), so [`crate::replay`] reconstructs the exact
//! execution from the JSON alone plus the scenario closure. The format is
//! a single flat JSON object, written and parsed by hand because the
//! workspace is dependency-free.

/// A serializable counterexample: replaying `choices` through the
/// exploration strategy reproduces the violating execution exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Format version (currently 1).
    pub version: u32,
    /// Cluster size the scenario ran at.
    pub size: usize,
    /// Whether the simulator enforced per-pair FIFO delivery.
    pub fifo: bool,
    /// Whether collective resumptions were delivered eagerly (not
    /// explored as choice points).
    pub eager_collectives: bool,
    /// Per-execution drop-fault budget.
    pub max_drops: u32,
    /// Per-execution duplicate-fault budget.
    pub max_duplicates: u32,
    /// Decision taken at each choice point, in order; executions longer
    /// than the list continue with arm 0.
    pub choices: Vec<u32>,
    /// Name of the violated invariant.
    pub invariant: String,
    /// Human-readable violation description from the original run.
    pub message: String,
}

impl Trace {
    /// Serialize to a single-object JSON string.
    pub fn to_json(&self) -> String {
        let choices: Vec<String> = self.choices.iter().map(u32::to_string).collect();
        format!(
            "{{\"version\":{},\"size\":{},\"fifo\":{},\"eager_collectives\":{},\
             \"max_drops\":{},\"max_duplicates\":{},\"choices\":[{}],\
             \"invariant\":{},\"message\":{}}}",
            self.version,
            self.size,
            self.fifo,
            self.eager_collectives,
            self.max_drops,
            self.max_duplicates,
            choices.join(","),
            json_string(&self.invariant),
            json_string(&self.message),
        )
    }

    /// Parse a trace written by [`Trace::to_json`] (tolerates reordered
    /// keys and arbitrary whitespace).
    pub fn from_json(s: &str) -> Result<Trace, String> {
        let mut p = Parser {
            s: s.as_bytes(),
            i: 0,
        };
        p.skip_ws();
        p.expect(b'{')?;
        let mut t = Trace {
            version: 1,
            size: 0,
            fifo: true,
            eager_collectives: true,
            max_drops: 0,
            max_duplicates: 0,
            choices: Vec::new(),
            invariant: String::new(),
            message: String::new(),
        };
        loop {
            p.skip_ws();
            if p.eat(b'}') {
                break;
            }
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            match key.as_str() {
                "version" => t.version = p.number()? as u32,
                "size" => t.size = p.number()? as usize,
                "fifo" => t.fifo = p.boolean()?,
                "eager_collectives" => t.eager_collectives = p.boolean()?,
                "max_drops" => t.max_drops = p.number()? as u32,
                "max_duplicates" => t.max_duplicates = p.number()? as u32,
                "choices" => t.choices = p.number_array()?,
                "invariant" => t.invariant = p.string()?,
                "message" => t.message = p.string()?,
                other => return Err(format!("unknown trace key {other:?}")),
            }
            p.skip_ws();
            if !p.eat(b',') {
                p.skip_ws();
                p.expect(b'}')?;
                break;
            }
        }
        if t.size == 0 {
            return Err("trace is missing a nonzero \"size\"".into());
        }
        Ok(t)
    }
}

/// Escape a string as a JSON literal (control chars, quotes, backslash).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && self.s[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.i < self.s.len() && self.s[self.i] == b {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {} of trace JSON",
                b as char, self.i
            ))
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.i;
        while self.i < self.s.len() && self.s[self.i].is_ascii_digit() {
            self.i += 1;
        }
        if self.i == start {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.s[start..self.i])
            .unwrap()
            .parse()
            .map_err(|e| format!("bad number at byte {start}: {e}"))
    }

    fn boolean(&mut self) -> Result<bool, String> {
        if self.s[self.i..].starts_with(b"true") {
            self.i += 4;
            Ok(true)
        } else if self.s[self.i..].starts_with(b"false") {
            self.i += 5;
            Ok(false)
        } else {
            Err(format!("expected true/false at byte {}", self.i))
        }
    }

    fn number_array(&mut self) -> Result<Vec<u32>, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        loop {
            self.skip_ws();
            if self.eat(b']') {
                break;
            }
            out.push(self.number()? as u32);
            self.skip_ws();
            if !self.eat(b',') {
                self.skip_ws();
                self.expect(b']')?;
                break;
            }
        }
        Ok(out)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        while self.i < self.s.len() {
            match self.s[self.i] {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    let esc = *self
                        .s
                        .get(self.i)
                        .ok_or("unterminated escape in trace JSON")?;
                    self.i += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .s
                                .get(self.i..self.i + 4)
                                .ok_or("truncated \\u escape")?;
                            self.i += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Copy the full UTF-8 sequence starting here.
                    let rest = std::str::from_utf8(&self.s[self.i..])
                        .map_err(|_| "trace JSON is not UTF-8")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
        Err("unterminated string in trace JSON".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let t = Trace {
            version: 1,
            size: 3,
            fifo: false,
            eager_collectives: true,
            max_drops: 1,
            max_duplicates: 0,
            choices: vec![2, 0, 1],
            invariant: "oracle".into(),
            message: "rank 0: got [1], oracle says [2]\n\"quoted\"".into(),
        };
        let j = t.to_json();
        assert_eq!(Trace::from_json(&j).unwrap(), t);
    }

    #[test]
    fn parse_tolerates_whitespace_and_reordering() {
        let j = "{ \"size\": 2 , \"choices\" : [ ] ,\n \"fifo\": true, \
                 \"version\":1, \"eager_collectives\":false, \"max_drops\":0, \
                 \"max_duplicates\":0, \"invariant\":\"x\", \"message\":\"\" }";
        let t = Trace::from_json(j).unwrap();
        assert_eq!(t.size, 2);
        assert!(t.choices.is_empty());
        assert!(!t.eager_collectives);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Trace::from_json("not json").is_err());
        assert!(Trace::from_json("{\"bogus\":1}").is_err());
        // A size of 0 can never replay.
        assert!(Trace::from_json("{\"version\":1}").is_err());
    }
}
