//! Property-based tests for octant arithmetic and linear-octree operations.

use forestbal_octant::{
    complete_subtree, is_complete, is_linear, key, linearize, morton, sort_octants,
    sort_octants_with, Octant, OctantSet, OctantTable, SortScratch, MAX_LEVEL, ROOT_LEN,
};
use proptest::prelude::*;

/// Strategy: a random in-root octant built by a random child-id path.
fn arb_octant<const D: usize>(max_depth: u8) -> impl Strategy<Value = Octant<D>> {
    prop::collection::vec(0usize..(1 << D), 0..=max_depth as usize).prop_map(|path| {
        let mut o = Octant::<D>::root();
        for id in path {
            o = o.child(id);
        }
        o
    })
}

/// Strategy: a random sorted linear set of octants (descend-and-prune).
fn arb_linear_set<const D: usize>(max_depth: u8) -> impl Strategy<Value = Vec<Octant<D>>> {
    prop::collection::vec(arb_octant::<D>(max_depth), 1..40).prop_map(|mut v| {
        linearize(&mut v);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parent_contains_child_2d(o in arb_octant::<2>(8)) {
        if o.level > 0 {
            let p = o.parent();
            prop_assert!(p.is_ancestor_of(&o));
            prop_assert!(p.contains(&o));
            prop_assert!(p < o);
            prop_assert_eq!(p.child(o.child_id()), o);
        }
    }

    #[test]
    fn parent_contains_child_3d(o in arb_octant::<3>(8)) {
        if o.level > 0 {
            let p = o.parent();
            prop_assert!(p.is_ancestor_of(&o));
            prop_assert_eq!(p.child(o.child_id()), o);
        }
    }

    #[test]
    fn morton_matches_index_2d(a in arb_octant::<2>(8), b in arb_octant::<2>(8)) {
        // For disjoint octants the coordinate comparison agrees with the
        // interleaved-index comparison.
        if !a.overlaps(&b) {
            prop_assert_eq!(a.cmp(&b), a.index().cmp(&b.index()));
        } else {
            // Overlapping octants: the ancestor comes first.
            let (anc, desc) = if a.contains(&b) { (a, b) } else { (b, a) };
            if anc != desc {
                prop_assert!(anc < desc);
            }
        }
    }

    #[test]
    fn morton_matches_index_3d(a in arb_octant::<3>(6), b in arb_octant::<3>(6)) {
        if !a.overlaps(&b) {
            prop_assert_eq!(a.cmp(&b), a.index().cmp(&b.index()));
        }
    }

    #[test]
    fn nca_is_common_and_nearest_3d(a in arb_octant::<3>(6), b in arb_octant::<3>(6)) {
        let n = a.nearest_common_ancestor(&b);
        prop_assert!(n.contains(&a) && n.contains(&b));
        // No strictly deeper common ancestor exists.
        if n.level < a.level.min(b.level) {
            let deeper = a.ancestor(n.level + 1);
            prop_assert!(!(deeper.contains(&a) && deeper.contains(&b)));
        }
    }

    #[test]
    fn linearize_idempotent_2d(v in prop::collection::vec(arb_octant::<2>(7), 1..50)) {
        let mut once = v.clone();
        linearize(&mut once);
        prop_assert!(is_linear(&once));
        let mut twice = once.clone();
        linearize(&mut twice);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn linearize_keeps_finest_2d(v in prop::collection::vec(arb_octant::<2>(7), 1..50)) {
        let mut lin = v.clone();
        linearize(&mut lin);
        // Every input octant is represented: it survives or an input
        // descendant of it survives.
        for o in &v {
            prop_assert!(
                lin.iter().any(|l| o.contains(l)),
                "input octant {:?} lost entirely", o
            );
        }
    }

    #[test]
    fn completion_is_complete_2d(v in arb_linear_set::<2>(7)) {
        let root = Octant::<2>::root();
        let full = complete_subtree(&root, &v);
        prop_assert!(is_linear(&full));
        prop_assert!(is_complete(&full, &root));
        for o in &v {
            prop_assert!(full.binary_search(o).is_ok(), "pinned leaf lost");
        }
    }

    #[test]
    fn completion_is_complete_3d(v in arb_linear_set::<3>(5)) {
        let root = Octant::<3>::root();
        let full = complete_subtree(&root, &v);
        prop_assert!(is_linear(&full));
        prop_assert!(is_complete(&full, &root));
        for o in &v {
            prop_assert!(full.binary_search(o).is_ok());
        }
    }

    #[test]
    fn completion_is_coarsest_2d(v in arb_linear_set::<2>(6)) {
        // No filler octant could be replaced by its parent without
        // overlapping a pinned leaf or another filler outside the parent.
        let root = Octant::<2>::root();
        let full = complete_subtree(&root, &v);
        let pinned: std::collections::BTreeSet<_> = v.iter().copied().collect();
        for o in &full {
            if pinned.contains(o) || o.level == 0 {
                continue;
            }
            let p = o.parent();
            // Replacing o by p must break something: p overlaps a pinned
            // leaf not inside o, or p's extent is not fully covered by
            // fillers (i.e. some sibling region holds a pinned leaf or a
            // finer structure).
            let p_ok = full
                .iter()
                .filter(|f| p.contains(f))
                .all(|f| !pinned.contains(f))
                && full.iter().filter(|f| p.contains(f)).map(|f| f.cell_count()).sum::<u128>()
                    == p.cell_count()
                && full.iter().filter(|f| p.contains(f)).all(|f| f.level == o.level);
            prop_assert!(!p_ok, "filler {:?} could be coarsened to {:?}", o, p);
        }
    }

    #[test]
    fn descendant_indices_nest_3d(o in arb_octant::<3>(6)) {
        if o.level < MAX_LEVEL {
            for i in 0..8 {
                let c = o.child(i);
                prop_assert!(c.index() >= o.index());
                prop_assert!(c.last_index() <= o.last_index());
            }
            prop_assert_eq!(o.child(0).index(), o.index());
            prop_assert_eq!(o.child(7).last_index(), o.last_index());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn key_is_order_isomorphic_2d(a in arb_octant::<2>(8), b in arb_octant::<2>(8)) {
        // The packed u128 key orders exactly like the Morton comparison
        // and round-trips.
        prop_assert_eq!(a.key().cmp(&b.key()), a.cmp(&b));
        prop_assert_eq!(Octant::<2>::from_key(a.key()), a);
    }

    #[test]
    fn path_roundtrips_3d(o in arb_octant::<3>(8)) {
        prop_assert_eq!(Octant::<3>::from_path(&o.path()), Some(o));
    }

    #[test]
    fn next_at_level_is_successor_3d(o in arb_octant::<3>(6)) {
        match o.next_at_level() {
            Some(n) => {
                prop_assert_eq!(n.level, o.level);
                prop_assert_eq!(n.index(), o.last_index() + 1);
                prop_assert_eq!(n.prev_at_level(), Some(o));
            }
            None => prop_assert_eq!(
                o.last_index(),
                Octant::<3>::root().last_index(),
                "only the curve's last octant has no successor"
            ),
        }
    }
}

/// Strategy: a random octant that may lie outside the root cube, shifted by
/// up to one root length per axis — the full range the balance algorithms
/// produce and the packed-key codec supports.
fn arb_shifted_octant<const D: usize>(max_depth: u8) -> impl Strategy<Value = Octant<D>> {
    arb_octant::<D>(max_depth).prop_flat_map(|o| {
        prop::collection::vec(-1i32..=1, D).prop_map(move |shifts| {
            let mut o = o;
            for (c, s) in o.coords.iter_mut().zip(shifts) {
                *c += s * ROOT_LEN;
            }
            o
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn packed_key_roundtrips_2d(o in arb_shifted_octant::<2>(10)) {
        prop_assert!(key::packable(&o));
        prop_assert_eq!(key::unpack::<2>(key::pack(&o)), o);
        prop_assert_eq!(key::unpack64::<2>(key::pack64(&o)), o);
    }

    #[test]
    fn packed_key_roundtrips_3d(o in arb_shifted_octant::<3>(10)) {
        prop_assert_eq!(key::unpack::<3>(key::pack(&o)), o);
    }

    #[test]
    fn packed_key_order_matches_morton_2d(
        a in arb_shifted_octant::<2>(10),
        b in arb_shifted_octant::<2>(10),
    ) {
        prop_assert_eq!(key::pack(&a).cmp(&key::pack(&b)), morton::cmp(&a, &b));
        prop_assert_eq!(key::pack64(&a).cmp(&key::pack64(&b)), morton::cmp(&a, &b));
    }

    #[test]
    fn packed_key_order_matches_morton_3d(
        a in arb_shifted_octant::<3>(10),
        b in arb_shifted_octant::<3>(10),
    ) {
        prop_assert_eq!(key::pack(&a).cmp(&key::pack(&b)), morton::cmp(&a, &b));
    }

    #[test]
    fn radix_sort_matches_sort_unstable_2d(
        v in prop::collection::vec(arb_shifted_octant::<2>(9), 0..300),
    ) {
        let mut radix = v.clone();
        let mut cmp = v;
        sort_octants(&mut radix);
        cmp.sort_unstable();
        prop_assert_eq!(radix, cmp);
    }

    #[test]
    fn radix_sort_matches_sort_unstable_3d(
        v in prop::collection::vec(arb_shifted_octant::<3>(9), 0..300),
    ) {
        let mut radix = v.clone();
        let mut cmp = v;
        let mut s = SortScratch::new();
        sort_octants_with(&mut radix, &mut s);
        cmp.sort_unstable();
        prop_assert_eq!(radix, cmp);
    }

    #[test]
    fn octant_table_matches_octant_set_2d(
        v in prop::collection::vec(arb_shifted_octant::<2>(8), 1..200),
        probes in prop::collection::vec(arb_shifted_octant::<2>(8), 0..50),
    ) {
        let mut table = OctantTable::<2>::with_capacity_for(v.len());
        let mut set = OctantSet::<2>::default();
        for o in &v {
            prop_assert_eq!(table.insert(o), set.insert(*o));
        }
        prop_assert_eq!(table.len(), set.len());
        prop_assert_eq!(table.grow_count(), 0, "pre-sized table regrew");
        for o in v.iter().chain(&probes) {
            prop_assert_eq!(table.contains(o), set.contains(o));
        }
    }

    #[test]
    fn octant_table_matches_octant_set_3d(
        v in prop::collection::vec(arb_shifted_octant::<3>(8), 1..200),
        probes in prop::collection::vec(arb_shifted_octant::<3>(8), 0..50),
    ) {
        let mut table = OctantTable::<3>::with_capacity_for(v.len());
        let mut set = OctantSet::<3>::default();
        for o in &v {
            prop_assert_eq!(table.insert(o), set.insert(*o));
        }
        prop_assert_eq!(table.len(), set.len());
        prop_assert_eq!(table.grow_count(), 0, "pre-sized table regrew");
        for o in v.iter().chain(&probes) {
            prop_assert_eq!(table.contains(o), set.contains(o));
        }
        let mut drained = vec![];
        table.drain_into(&mut drained);
        drained.sort_unstable();
        let mut expect: Vec<_> = set.iter().copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(drained, expect);
    }
}
