//! Property-based tests for octant arithmetic and linear-octree operations.

use forestbal_octant::{complete_subtree, is_complete, is_linear, linearize, Octant, MAX_LEVEL};
use proptest::prelude::*;

/// Strategy: a random in-root octant built by a random child-id path.
fn arb_octant<const D: usize>(max_depth: u8) -> impl Strategy<Value = Octant<D>> {
    prop::collection::vec(0usize..(1 << D), 0..=max_depth as usize).prop_map(|path| {
        let mut o = Octant::<D>::root();
        for id in path {
            o = o.child(id);
        }
        o
    })
}

/// Strategy: a random sorted linear set of octants (descend-and-prune).
fn arb_linear_set<const D: usize>(max_depth: u8) -> impl Strategy<Value = Vec<Octant<D>>> {
    prop::collection::vec(arb_octant::<D>(max_depth), 1..40).prop_map(|mut v| {
        linearize(&mut v);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parent_contains_child_2d(o in arb_octant::<2>(8)) {
        if o.level > 0 {
            let p = o.parent();
            prop_assert!(p.is_ancestor_of(&o));
            prop_assert!(p.contains(&o));
            prop_assert!(p < o);
            prop_assert_eq!(p.child(o.child_id()), o);
        }
    }

    #[test]
    fn parent_contains_child_3d(o in arb_octant::<3>(8)) {
        if o.level > 0 {
            let p = o.parent();
            prop_assert!(p.is_ancestor_of(&o));
            prop_assert_eq!(p.child(o.child_id()), o);
        }
    }

    #[test]
    fn morton_matches_index_2d(a in arb_octant::<2>(8), b in arb_octant::<2>(8)) {
        // For disjoint octants the coordinate comparison agrees with the
        // interleaved-index comparison.
        if !a.overlaps(&b) {
            prop_assert_eq!(a.cmp(&b), a.index().cmp(&b.index()));
        } else {
            // Overlapping octants: the ancestor comes first.
            let (anc, desc) = if a.contains(&b) { (a, b) } else { (b, a) };
            if anc != desc {
                prop_assert!(anc < desc);
            }
        }
    }

    #[test]
    fn morton_matches_index_3d(a in arb_octant::<3>(6), b in arb_octant::<3>(6)) {
        if !a.overlaps(&b) {
            prop_assert_eq!(a.cmp(&b), a.index().cmp(&b.index()));
        }
    }

    #[test]
    fn nca_is_common_and_nearest_3d(a in arb_octant::<3>(6), b in arb_octant::<3>(6)) {
        let n = a.nearest_common_ancestor(&b);
        prop_assert!(n.contains(&a) && n.contains(&b));
        // No strictly deeper common ancestor exists.
        if n.level < a.level.min(b.level) {
            let deeper = a.ancestor(n.level + 1);
            prop_assert!(!(deeper.contains(&a) && deeper.contains(&b)));
        }
    }

    #[test]
    fn linearize_idempotent_2d(v in prop::collection::vec(arb_octant::<2>(7), 1..50)) {
        let mut once = v.clone();
        linearize(&mut once);
        prop_assert!(is_linear(&once));
        let mut twice = once.clone();
        linearize(&mut twice);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn linearize_keeps_finest_2d(v in prop::collection::vec(arb_octant::<2>(7), 1..50)) {
        let mut lin = v.clone();
        linearize(&mut lin);
        // Every input octant is represented: it survives or an input
        // descendant of it survives.
        for o in &v {
            prop_assert!(
                lin.iter().any(|l| o.contains(l)),
                "input octant {:?} lost entirely", o
            );
        }
    }

    #[test]
    fn completion_is_complete_2d(v in arb_linear_set::<2>(7)) {
        let root = Octant::<2>::root();
        let full = complete_subtree(&root, &v);
        prop_assert!(is_linear(&full));
        prop_assert!(is_complete(&full, &root));
        for o in &v {
            prop_assert!(full.binary_search(o).is_ok(), "pinned leaf lost");
        }
    }

    #[test]
    fn completion_is_complete_3d(v in arb_linear_set::<3>(5)) {
        let root = Octant::<3>::root();
        let full = complete_subtree(&root, &v);
        prop_assert!(is_linear(&full));
        prop_assert!(is_complete(&full, &root));
        for o in &v {
            prop_assert!(full.binary_search(o).is_ok());
        }
    }

    #[test]
    fn completion_is_coarsest_2d(v in arb_linear_set::<2>(6)) {
        // No filler octant could be replaced by its parent without
        // overlapping a pinned leaf or another filler outside the parent.
        let root = Octant::<2>::root();
        let full = complete_subtree(&root, &v);
        let pinned: std::collections::BTreeSet<_> = v.iter().copied().collect();
        for o in &full {
            if pinned.contains(o) || o.level == 0 {
                continue;
            }
            let p = o.parent();
            // Replacing o by p must break something: p overlaps a pinned
            // leaf not inside o, or p's extent is not fully covered by
            // fillers (i.e. some sibling region holds a pinned leaf or a
            // finer structure).
            let p_ok = full
                .iter()
                .filter(|f| p.contains(f))
                .all(|f| !pinned.contains(f))
                && full.iter().filter(|f| p.contains(f)).map(|f| f.cell_count()).sum::<u128>()
                    == p.cell_count()
                && full.iter().filter(|f| p.contains(f)).all(|f| f.level == o.level);
            prop_assert!(!p_ok, "filler {:?} could be coarsened to {:?}", o, p);
        }
    }

    #[test]
    fn descendant_indices_nest_3d(o in arb_octant::<3>(6)) {
        if o.level < MAX_LEVEL {
            for i in 0..8 {
                let c = o.child(i);
                prop_assert!(c.index() >= o.index());
                prop_assert!(c.last_index() <= o.last_index());
            }
            prop_assert_eq!(o.child(0).index(), o.index());
            prop_assert_eq!(o.child(7).last_index(), o.last_index());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn key_is_order_isomorphic_2d(a in arb_octant::<2>(8), b in arb_octant::<2>(8)) {
        // The packed u128 key orders exactly like the Morton comparison
        // and round-trips.
        prop_assert_eq!(a.key().cmp(&b.key()), a.cmp(&b));
        prop_assert_eq!(Octant::<2>::from_key(a.key()), a);
    }

    #[test]
    fn path_roundtrips_3d(o in arb_octant::<3>(8)) {
        prop_assert_eq!(Octant::<3>::from_path(&o.path()), Some(o));
    }

    #[test]
    fn next_at_level_is_successor_3d(o in arb_octant::<3>(6)) {
        match o.next_at_level() {
            Some(n) => {
                prop_assert_eq!(n.level, o.level);
                prop_assert_eq!(n.index(), o.last_index() + 1);
                prop_assert_eq!(n.prev_at_level(), Some(o));
            }
            None => prop_assert_eq!(
                o.last_index(),
                Octant::<3>::root().last_index(),
                "only the curve's last octant has no successor"
            ),
        }
    }
}
