//! Morton (z-order) comparison and indexing.
//!
//! The total order on octants traverses the leaves of the octree left to
//! right along a z-shaped space-filling curve (Figure 2 of the paper), with
//! an ancestor ordered *before* its descendants (preorder / "Morton order").
//!
//! Comparison uses the classic XOR-most-significant-bit technique on the
//! coordinates directly, so no interleaved key is materialized; octants with
//! negative (out-of-root) coordinates compare consistently as if the curve
//! were extended to a `3x` larger cube centered on the root.

use crate::coords::{Coord, MAX_LEVEL};
use crate::octant::Octant;
use std::cmp::Ordering;

/// Interleaved Morton index of a unit cell; 72 bits are used in 3D.
pub type MortonIndex = u128;

/// Shift a possibly-negative coordinate into an unsigned space that
/// preserves order (the z-order curve extended to negative coordinates).
#[inline]
fn zmap(c: Coord) -> u64 {
    (c as i64 + (1i64 << 31)) as u64
}

/// Morton-order comparison of two octants (ancestor-first preorder).
#[inline]
pub fn cmp<const D: usize>(a: &Octant<D>, b: &Octant<D>) -> Ordering {
    let mut high_axis = usize::MAX;
    let mut high_msb = -1i32;
    for i in 0..D {
        let x = zmap(a.coords[i]) ^ zmap(b.coords[i]);
        if x != 0 {
            let msb = 63 - x.leading_zeros() as i32;
            // On ties the higher axis dominates: within one level of the
            // interleaved key, axis D-1 holds the most significant bit.
            if msb > high_msb || (msb == high_msb && i > high_axis) {
                high_msb = msb;
                high_axis = i;
            }
        }
    }
    if high_axis == usize::MAX {
        // Same corner: the coarser octant is the ancestor and comes first.
        a.level.cmp(&b.level)
    } else {
        a.coords[high_axis].cmp(&b.coords[high_axis])
    }
}

/// Interleave in-root coordinates into a Morton index
/// (axis 0 occupies the least significant bit of each level group).
pub fn interleave<const D: usize>(coords: &[Coord; D]) -> MortonIndex {
    debug_assert!(coords.iter().all(|&c| c >= 0));
    let mut idx: MortonIndex = 0;
    for bit in 0..MAX_LEVEL as u32 {
        for (i, &c) in coords.iter().enumerate() {
            let b = ((c as u64 >> bit) & 1) as MortonIndex;
            idx |= b << (bit * D as u32 + i as u32);
        }
    }
    idx
}

/// Inverse of [`interleave`].
pub fn deinterleave<const D: usize>(idx: MortonIndex) -> [Coord; D] {
    let mut coords = [0 as Coord; D];
    for bit in 0..MAX_LEVEL as u32 {
        for (i, c) in coords.iter_mut().enumerate() {
            let b = ((idx >> (bit * D as u32 + i as u32)) & 1) as Coord;
            *c |= b << bit;
        }
    }
    coords
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::ROOT_LEN;

    type Oct2 = Octant<2>;
    type Oct3 = Octant<3>;

    #[test]
    fn children_sort_in_child_id_order() {
        let r = Oct3::root();
        let mut prev = r;
        for i in 0..8 {
            let c = r.child(i);
            assert!(prev < c || prev == r);
            if i > 0 {
                assert!(r.child(i - 1) < c);
            }
            prev = c;
        }
    }

    #[test]
    fn ancestor_sorts_first() {
        let r = Oct2::root();
        for i in 0..4 {
            let c = r.child(i);
            assert!(r < c, "root must precede child {i}");
            for j in 0..4 {
                assert!(c < c.child(j));
            }
        }
    }

    #[test]
    fn order_matches_interleaved_index_for_disjoint() {
        // For non-overlapping in-root octants the XOR comparison must agree
        // with comparison of interleaved indices.
        let r = Oct3::root();
        let mut octs = vec![];
        for i in 0..8 {
            for j in 0..8 {
                octs.push(r.child(i).child(j));
            }
        }
        for a in &octs {
            for b in &octs {
                if a != b {
                    assert_eq!(cmp(a, b), a.index().cmp(&b.index()), "{a:?} vs {b:?}");
                }
            }
        }
    }

    #[test]
    fn negative_coordinates_precede_root() {
        let o = Oct2::root().child(0);
        let left = o.neighbor(&[-1, 0]);
        assert!(left < o);
        assert!(left < Oct2::root());
        let below = o.neighbor(&[0, -1]);
        assert!(below < o);
        // y outranks x in the z-order.
        assert!(below < left);
    }

    #[test]
    fn beyond_root_follows_root() {
        let last = Oct2::root().child(3);
        let beyond = last.neighbor(&[1, 0]);
        assert!(last < beyond);
        assert_eq!(beyond.coords[0], ROOT_LEN);
    }

    #[test]
    fn interleave_roundtrip_exhaustive_small() {
        for x in 0..4 {
            for y in 0..4 {
                for z in 0..4 {
                    let c = [x, y, z];
                    assert_eq!(deinterleave::<3>(interleave::<3>(&c)), c);
                }
            }
        }
    }

    #[test]
    fn index_is_contiguous_along_curve() {
        // Unit cells at MAX_LEVEL enumerate 0..2^(D*MAX_LEVEL) in Morton
        // order; check that consecutive children of one parent are
        // consecutive indices.
        let p = Oct3::root().child(1).first_descendant(MAX_LEVEL - 1);
        for i in 0..7usize {
            assert_eq!(p.child(i).index() + 1, p.child(i + 1).index());
        }
    }

    #[test]
    fn total_order_transitive_sample() {
        let r = Oct2::root();
        let mut v = [
            r,
            r.child(0),
            r.child(0).child(3),
            r.child(1),
            r.child(2).child(0),
            r.child(3),
            r.child(0).neighbor(&[-1, -1]),
        ];
        v.sort();
        for w in v.windows(2) {
            assert!(cmp(&w[0], &w[1]) != Ordering::Greater);
        }
    }
}
