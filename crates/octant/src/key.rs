//! Packed Morton keys: one integer per octant, ordered like [`crate::morton::cmp`].
//!
//! The balance kernels are dominated by hash membership tests and sorts on
//! 16-byte [`Octant`] structs. Packing an octant into a single integer —
//! interleaved coordinates plus the level in the low bits — turns both into
//! integer operations: the natural `<` on keys equals the Morton preorder,
//! so sorts become LSD radix sorts and hash tables become flat
//! open-addressing probes (see `sort` and `table`). This mirrors the packed
//! Morton-index quadrant representation of Burstedde et al.
//! (arXiv:2308.13615) for the p4est kernels.
//!
//! # Layout
//!
//! ```text
//! key = interleave(coords + KEY_BIAS) << 5  |  level
//! ```
//!
//! * Each coordinate is biased by [`KEY_BIAS`]` = 4 * ROOT_LEN = 2^26` into
//!   an unsigned 27-bit field, then bit-interleaved (axis `i` at bit
//!   `j*D + i` of bit-level `j`, exactly like [`crate::morton::interleave`]).
//! * The level occupies the low 5 bits (`MAX_LEVEL = 24 < 32`).
//!
//! Bit budget: 2D keys use `2*27 + 5 = 59` bits and fit a `u64`; 3D keys
//! use `3*27 + 5 = 86` bits and fit a `u128`.
//!
//! # Why the ordering matches
//!
//! For in-root octants, `cmp` agrees with comparison of unit-cell Morton
//! indices for disjoint octants, and puts ancestors first for overlapping
//! ones. An ancestor shares its corner's interleave prefix with every
//! descendant and has an index `<=` theirs, so the interleaved field alone
//! orders all pairs except "same corner, different level" — which the level
//! field resolves ancestor-first (coarser level = smaller key).
//!
//! For out-of-root octants, `cmp` compares coordinates shifted by `2^31`
//! (see [`crate::morton`]), which makes any sign-mixed coordinate pair
//! diverge *above* every in-range bit. The bias `2^26` reproduces this
//! exactly on the supported range `[-ROOT_LEN, 2*ROOT_LEN)`: negative
//! coordinates map to `[3*ROOT_LEN, 4*ROOT_LEN)` (bit 26 clear) and
//! non-negative ones to `[4*ROOT_LEN, 6*ROOT_LEN)` (bit 26 set), so mixed
//! pairs diverge at bit 26 while same-sign pairs diverge at bit `< 26` with
//! the same XOR as under the `2^31` shift. The supported range covers every
//! octant the algorithms construct: insulation layers and auxiliary octants
//! reach at most one root length outside the root cube.

use crate::coords::{Coord, ROOT_LEN};
use crate::octant::Octant;

/// Bits per packed coordinate field.
pub const KEY_COORD_BITS: u32 = 27;

/// Bits reserved for the level in the low end of the key.
pub const KEY_LEVEL_BITS: u32 = 5;

/// Coordinate bias shifting the supported range into unsigned 27-bit space
/// while preserving the order of [`crate::morton::cmp`].
pub const KEY_BIAS: Coord = 4 * ROOT_LEN;

/// Total key bits for dimension `D` (`D*27 + 5`).
pub const fn key_bits<const D: usize>() -> u32 {
    D as u32 * KEY_COORD_BITS + KEY_LEVEL_BITS
}

/// Can this octant be packed? True for every octant within one root length
/// of the root cube — all octants the balance algorithms construct.
#[inline]
pub fn packable<const D: usize>(o: &Octant<D>) -> bool {
    D <= 4
        && o.coords
            .iter()
            .all(|&c| (-ROOT_LEN..2 * ROOT_LEN).contains(&c))
}

/// Are all octants packable? Equivalent to `a.iter().all(packable)`, but
/// dispatches to the AVX2 kernel when the `simd` feature is enabled and the
/// CPU supports it — this check guards the radix-sort and wire-codec fast
/// paths, so it runs over every hot octant array.
#[inline]
pub fn packable_all<const D: usize>(a: &[Octant<D>]) -> bool {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if crate::simd::avx2_available() {
        // SAFETY: avx2 support was just detected at runtime.
        return unsafe { crate::simd::packable_all_avx2(a) };
    }
    a.iter().all(packable)
}

/// Spread the low 32 bits of `v` to even bit positions (stride 2).
#[inline]
fn spread2(v: u64) -> u64 {
    let mut x = v & 0xFFFF_FFFF;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`spread2`]: gather every second bit into the low 32.
#[inline]
fn compact2(v: u64) -> u64 {
    let mut x = v & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x
}

/// Spread the low 21 bits of `v` to every third bit position (stride 3).
#[inline]
fn spread3(v: u64) -> u64 {
    let mut x = v & 0x1F_FFFF;
    x = (x | (x << 32)) & 0x1F_0000_0000_FFFF;
    x = (x | (x << 16)) & 0x1F_0000_FF00_00FF;
    x = (x | (x << 8)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x << 4)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Inverse of [`spread3`].
#[inline]
fn compact3(v: u64) -> u64 {
    let mut x = v & 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x >> 4)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x >> 8)) & 0x1F_0000_FF00_00FF;
    x = (x | (x >> 16)) & 0x1F_0000_0000_FFFF;
    x = (x | (x >> 32)) & 0x1F_FFFF;
    x
}

/// Spread a 27-bit value to stride 3 as a `u128` (split 21 + 6).
#[inline]
fn spread3_27(v: u64) -> u128 {
    spread3(v & 0x1F_FFFF) as u128 | (spread3(v >> 21) as u128) << 63
}

/// Inverse of [`spread3_27`].
#[inline]
fn compact3_27(v: u128) -> u64 {
    compact3(v as u64 & 0x1249_2492_4924_9249) | compact3((v >> 63) as u64) << 21
}

#[inline]
fn bias(c: Coord) -> u64 {
    debug_assert!(
        (-ROOT_LEN..2 * ROOT_LEN).contains(&c),
        "coord {c} outside packable range"
    );
    (c + KEY_BIAS) as u64
}

#[inline]
fn unbias(b: u64) -> Coord {
    b as Coord - KEY_BIAS
}

/// Pack an octant into a `u128` key whose natural order equals
/// [`crate::morton::cmp`]. Supports `D <= 4` and coordinates in
/// `[-ROOT_LEN, 2*ROOT_LEN)` (checked in debug builds; see [`packable`]).
#[inline]
pub fn pack<const D: usize>(o: &Octant<D>) -> u128 {
    debug_assert!(packable(o), "unpackable octant {o:?}");
    let interleaved: u128 = match D {
        2 => pack2_interleave(bias(o.coords[0]), bias(o.coords[1])) as u128,
        3 => {
            spread3_27(bias(o.coords[0]))
                | spread3_27(bias(o.coords[1])) << 1
                | spread3_27(bias(o.coords[2])) << 2
        }
        _ => {
            // Generic bit loop for the rare other dimensions (D <= 4).
            let mut idx: u128 = 0;
            for bit in 0..KEY_COORD_BITS {
                for (i, &c) in o.coords.iter().enumerate() {
                    let b = ((bias(c) >> bit) & 1) as u128;
                    idx |= b << (bit * D as u32 + i as u32);
                }
            }
            idx
        }
    };
    interleaved << KEY_LEVEL_BITS | o.level as u128
}

#[inline]
fn pack2_interleave(bx: u64, by: u64) -> u64 {
    spread2(bx) | spread2(by) << 1
}

/// Pack into a `u64` — only valid for `D <= 2` (59 bits used in 2D).
#[inline]
pub fn pack64<const D: usize>(o: &Octant<D>) -> u64 {
    debug_assert!(D <= 2, "u64 keys only hold D <= 2");
    pack::<D>(o) as u64
}

/// Invert [`pack`].
#[inline]
pub fn unpack<const D: usize>(key: u128) -> Octant<D> {
    let level = (key & ((1 << KEY_LEVEL_BITS) - 1)) as u8;
    let idx = key >> KEY_LEVEL_BITS;
    let coords: [Coord; D] = match D {
        2 => {
            let i = idx as u64;
            std::array::from_fn(|a| unbias(compact2(i >> a)))
        }
        3 => std::array::from_fn(|a| unbias(compact3_27(idx >> a))),
        _ => {
            let mut coords = [0u64; D];
            for bit in 0..KEY_COORD_BITS {
                for (i, c) in coords.iter_mut().enumerate() {
                    let b = ((idx >> (bit * D as u32 + i as u32)) & 1) as u64;
                    *c |= b << bit;
                }
            }
            std::array::from_fn(|a| unbias(coords[a]))
        }
    };
    Octant { coords, level }
}

/// Invert [`pack64`].
#[inline]
pub fn unpack64<const D: usize>(key: u64) -> Octant<D> {
    unpack::<D>(key as u128)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::MAX_LEVEL;
    use crate::morton;

    type Oct2 = Octant<2>;
    type Oct3 = Octant<3>;

    /// All octants of the first `depth` levels of the subtree at `root`,
    /// in construction order.
    fn all_octants<const D: usize>(root: Octant<D>, depth: u8) -> Vec<Octant<D>> {
        let mut out = vec![root];
        let mut frontier = vec![root];
        for _ in 0..depth {
            let mut next = vec![];
            for o in frontier {
                for i in 0..Octant::<D>::NUM_CHILDREN {
                    let c = o.child(i);
                    out.push(c);
                    next.push(c);
                }
            }
            frontier = next;
        }
        out
    }

    #[test]
    fn key_bits_fit_the_integer() {
        assert!(key_bits::<2>() <= 64);
        assert!(key_bits::<3>() <= 128);
        assert!(key_bits::<4>() <= 128);
    }

    #[test]
    fn roundtrip_exhaustive_2d() {
        for o in all_octants(Oct2::root(), 3) {
            assert_eq!(unpack::<2>(pack(&o)), o);
            assert_eq!(unpack64::<2>(pack64(&o)), o);
        }
    }

    #[test]
    fn roundtrip_exhaustive_3d() {
        for o in all_octants(Oct3::root(), 2) {
            assert_eq!(unpack::<3>(pack(&o)), o, "{o:?}");
        }
    }

    #[test]
    fn roundtrip_deepest_level() {
        let o = Oct3::root().first_descendant(MAX_LEVEL);
        assert_eq!(unpack::<3>(pack(&o)), o);
        let l = Oct3::root().last_descendant(MAX_LEVEL);
        assert_eq!(unpack::<3>(pack(&l)), l);
    }

    #[test]
    fn roundtrip_out_of_root() {
        let o = Oct2::root().child(0).neighbor(&[-1, -1]);
        assert!(packable(&o));
        assert_eq!(unpack::<2>(pack(&o)), o);
        let b = Oct3::root().child(7).neighbor(&[1, 1, 1]);
        assert!(packable(&b));
        assert_eq!(unpack::<3>(pack(&b)), b);
        // Extremes of the supported range.
        let lo = Octant::<2> {
            coords: [-ROOT_LEN; 2],
            level: 0,
        };
        assert!(packable(&lo));
        assert_eq!(unpack::<2>(pack(&lo)), lo);
    }

    #[test]
    fn order_matches_morton_exhaustive_2d() {
        // Include out-of-root translations on both sides of the root.
        let mut octs = all_octants(Oct2::root(), 3);
        let shifted: Vec<Oct2> = octs
            .iter()
            .flat_map(|o| {
                [[-1, 0], [0, -1], [1, 1], [-1, -1]]
                    .iter()
                    .map(|d| {
                        let mut c = o.coords;
                        for (x, s) in c.iter_mut().zip(d) {
                            *x += s * ROOT_LEN;
                        }
                        Octant {
                            coords: c,
                            level: o.level,
                        }
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        octs.extend(shifted);
        for a in &octs {
            for b in &octs {
                assert_eq!(
                    pack(a).cmp(&pack(b)),
                    morton::cmp(a, b),
                    "key order diverges for {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn order_matches_morton_exhaustive_3d() {
        let mut octs = all_octants(Oct3::root(), 2);
        let shifted: Vec<Oct3> = octs
            .iter()
            .map(|o| {
                let mut c = o.coords;
                c[0] -= ROOT_LEN;
                c[2] += ROOT_LEN;
                Octant {
                    coords: c,
                    level: o.level,
                }
            })
            .collect();
        octs.extend(shifted);
        for a in &octs {
            for b in &octs {
                assert_eq!(
                    pack(a).cmp(&pack(b)),
                    morton::cmp(a, b),
                    "key order diverges for {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn u64_keys_preserve_2d_order() {
        let octs = all_octants(Oct2::root(), 3);
        for a in &octs {
            for b in &octs {
                assert_eq!(pack64(a).cmp(&pack64(b)), morton::cmp(a, b));
            }
        }
    }

    #[test]
    fn ancestor_key_is_smaller() {
        let r = Oct3::root();
        let mut o = r;
        for i in [3usize, 5, 0, 7] {
            let c = o.child(i);
            assert!(pack(&o) < pack(&c));
            o = c;
        }
    }

    #[test]
    fn spread_compact_inverses() {
        for v in [0u64, 1, 0x1F_FFFF, 0x7FF_FFFF, 0x555_5555, 0x2AA_AAAA] {
            assert_eq!(compact2(spread2(v & 0xFFFF_FFFF)), v & 0xFFFF_FFFF);
            assert_eq!(compact3(spread3(v & 0x1F_FFFF)), v & 0x1F_FFFF);
            assert_eq!(compact3_27(spread3_27(v & 0x7FF_FFFF)), v & 0x7FF_FFFF);
        }
    }
}
