//! Human-readable octant paths, compact sort keys, and curve traversal.
//!
//! * A *path* writes an octant as the child-id sequence from the root
//!   (`"r"` for the root itself, `"0.3.1"` for `root.child(0).child(3)
//!   .child(1)`), handy in logs, tests, and tools.
//! * The *key* packs `(Morton index, level)` into one `u128` whose
//!   natural integer order equals the octant Morton order — a drop-in
//!   sort/dedup key for external containers.
//! * [`Octant::next_at_level`] steps along the space-filling curve.

use crate::coords::MAX_LEVEL;
use crate::morton::MortonIndex;
use crate::octant::Octant;

impl<const D: usize> Octant<D> {
    /// The child-id path from the root, e.g. `"0.3.1"`; `"r"` for the
    /// root. Requires an in-root octant.
    pub fn path(&self) -> String {
        if self.level == 0 {
            return "r".to_string();
        }
        let mut ids = Vec::with_capacity(self.level as usize);
        let mut o = *self;
        while o.level > 0 {
            ids.push(o.child_id());
            o = o.parent();
        }
        ids.reverse();
        ids.iter()
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(".")
    }

    /// Parse a path produced by [`Octant::path`]. Returns `None` for
    /// malformed input, out-of-range child ids, or paths deeper than
    /// `MAX_LEVEL`.
    pub fn from_path(s: &str) -> Option<Octant<D>> {
        let mut o = Octant::<D>::root();
        if s == "r" {
            return Some(o);
        }
        for part in s.split('.') {
            let id: usize = part.parse().ok()?;
            if id >= Self::NUM_CHILDREN || o.level >= MAX_LEVEL {
                return None;
            }
            o = o.child(id);
        }
        Some(o)
    }

    /// Pack `(Morton index, level)` into a `u128` whose integer order is
    /// exactly the octant Morton order (ancestors share the index of
    /// their first descendant and sort first via the level bits).
    /// In-root octants only.
    pub fn key(&self) -> u128 {
        const { assert!(MAX_LEVEL < 32) };
        (self.index() << 5) | self.level as u128
    }

    /// Inverse of [`Octant::key`].
    pub fn from_key(key: u128) -> Octant<D> {
        let level = (key & 31) as u8;
        Octant::from_index(key >> 5, level)
    }

    /// The next octant of the same size along the space-filling curve,
    /// or `None` after the last one. In-root octants only.
    pub fn next_at_level(&self) -> Option<Octant<D>> {
        debug_assert!(self.is_inside_root());
        let mut o = *self;
        loop {
            if o.level == 0 {
                return None; // self was the last octant at its level
            }
            let id = o.child_id();
            if id + 1 < Self::NUM_CHILDREN {
                let next = o.sibling(id + 1);
                return Some(next.first_descendant(self.level));
            }
            o = o.parent();
        }
    }

    /// The previous octant of the same size along the curve, or `None`
    /// before the first one.
    pub fn prev_at_level(&self) -> Option<Octant<D>> {
        debug_assert!(self.is_inside_root());
        let mut o = *self;
        loop {
            if o.level == 0 {
                return None;
            }
            let id = o.child_id();
            if id > 0 {
                let prev = o.sibling(id - 1);
                return Some(prev.last_descendant(self.level));
            }
            o = o.parent();
        }
    }

    /// The directions in which this octant touches the root boundary
    /// (one entry per axis: `-1`, `+1`, or both as separate flags).
    /// Returns `(low, high)` flag arrays.
    pub fn boundary_flags(&self) -> ([bool; D], [bool; D]) {
        let lo = std::array::from_fn(|i| self.coords[i] == 0);
        let hi = std::array::from_fn(|i| self.coords[i] + self.len() == crate::coords::ROOT_LEN);
        (lo, hi)
    }

    /// Does the octant touch the root boundary at all?
    pub fn on_root_boundary(&self) -> bool {
        let (lo, hi) = self.boundary_flags();
        lo.iter().chain(hi.iter()).any(|&b| b)
    }

    /// Iterate all octants at `level` in curve order.
    pub fn level_iter(level: u8) -> impl Iterator<Item = Octant<D>> {
        let mut cur = Some(Octant::<D>::root().first_descendant(level));
        std::iter::from_fn(move || {
            let o = cur?;
            cur = o.next_at_level();
            Some(o)
        })
    }
}

/// Ordered key type alias for external use.
pub type OctKey = MortonIndex;

#[cfg(test)]
mod tests {
    use super::*;

    type Oct2 = Octant<2>;
    type Oct3 = Octant<3>;

    #[test]
    fn path_roundtrip() {
        let o = Oct3::root().child(5).child(0).child(7);
        assert_eq!(o.path(), "5.0.7");
        assert_eq!(Oct3::from_path("5.0.7"), Some(o));
        assert_eq!(Oct3::root().path(), "r");
        assert_eq!(Oct3::from_path("r"), Some(Oct3::root()));
    }

    #[test]
    fn path_rejects_garbage() {
        assert_eq!(Oct2::from_path(""), None);
        assert_eq!(Oct2::from_path("4"), None); // child id out of range in 2D
        assert_eq!(Oct2::from_path("1.x"), None);
        assert_eq!(Oct3::from_path("8"), None);
        // Too deep.
        let deep = vec!["0"; MAX_LEVEL as usize + 1].join(".");
        assert_eq!(Oct2::from_path(&deep), None);
        let max = vec!["0"; MAX_LEVEL as usize].join(".");
        assert!(Oct2::from_path(&max).is_some());
    }

    #[test]
    fn key_order_matches_morton_order() {
        let r = Oct2::root();
        let mut octs = vec![
            r,
            r.child(0),
            r.child(0).child(3),
            r.child(2),
            r.child(3).child(1),
        ];
        octs.sort();
        let keys: Vec<u128> = octs.iter().map(|o| o.key()).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        for o in &octs {
            assert_eq!(Oct2::from_key(o.key()), *o);
        }
    }

    #[test]
    fn next_prev_traverse_the_level() {
        let all: Vec<Oct2> = Oct2::level_iter(2).collect();
        assert_eq!(all.len(), 16);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
        // prev inverts next.
        for w in all.windows(2) {
            assert_eq!(w[1].prev_at_level(), Some(w[0]));
        }
        assert_eq!(all[0].prev_at_level(), None);
        assert_eq!(all[15].next_at_level(), None);
    }

    #[test]
    fn next_crosses_subtree_boundaries() {
        // Last descendant of child 0 -> first descendant of child 1.
        let r = Oct3::root();
        let last_in_0 = r.child(0).last_descendant(3);
        let first_in_1 = r.child(1).first_descendant(3);
        assert_eq!(last_in_0.next_at_level(), Some(first_in_1));
    }

    #[test]
    fn boundary_flags_2d() {
        let r = Oct2::root();
        let corner = r.child(0).child(0);
        let (lo, hi) = corner.boundary_flags();
        assert_eq!(lo, [true, true]);
        assert_eq!(hi, [false, false]);
        assert!(corner.on_root_boundary());
        let inner = r.child(0).child(3);
        assert!(!inner.on_root_boundary());
        let (lo, hi) = r.boundary_flags();
        assert_eq!(lo, [true, true]);
        assert_eq!(hi, [true, true]);
    }

    #[test]
    fn level_iter_matches_indices() {
        for (i, o) in Oct3::level_iter(1).enumerate() {
            assert_eq!(o, Oct3::root().child(i));
        }
    }
}
