//! [`PackedOctant`]: octant arithmetic directly on packed Morton keys.
//!
//! PR 3 introduced the packed key (see [`crate::key`]) as a *sort* device:
//! octants were packed, radix-sorted, and immediately unpacked. This module
//! promotes the key to a first-class octant representation: every relation
//! the balance algorithms use on hot paths — parent/ancestor, child,
//! child-id, first/last descendant, containment, neighbors — is computed
//! with shifts and masks on the key itself, without ever materializing
//! coordinates. This is what lets the forest store flat `Vec<u128>` arrays
//! (SoA) and operate on them with zero conversions, following the
//! Morton-index quadrant representation of Kirilin & Burstedde
//! (arXiv:2308.13615).
//!
//! # How the arithmetic works
//!
//! Recall the layout (`L = MAX_LEVEL`, `l = level`, `idx = key >> 5`):
//!
//! ```text
//! key = interleave(coords + KEY_BIAS) << 5  |  level
//! ```
//!
//! Bit-level `j` of the interleaved index holds bit `j` of every biased
//! coordinate; an octant of level `l` is aligned to `2^(L-l)`, so the low
//! `D*(L-l)` bits of `idx` are zero. The derived identities:
//!
//! * `ancestor(a)`: clear the low `D*(L-a)` index bits (coarser alignment),
//!   set the level field to `a`. Valid even for out-of-root octants because
//!   the bias `2^26` is itself a multiple of every octant length.
//! * `child(i)`: child `i` adds `bit(i,j) * len/2` to coordinate `j`; in the
//!   interleaved index the `D` bits of `i` land contiguously at bit
//!   `D*(L-l-1)`, and the level increments — one add on the whole key.
//! * `child_id`: read the `D` index bits at `D*(L-l)`. Works for negative
//!   coordinates because bits below 26 of the biased coordinate equal the
//!   two's-complement bits of the raw coordinate.
//! * `contains`: prefix equality of the indices above the ancestor's
//!   alignment, plus the level comparison.
//! * `neighbor(dir)`: per-axis *dilated* add/subtract — mask the axis'
//!   bit-plane, add the single bit `len` at that axis' stride, letting the
//!   carry ripple through the foreign-axis bits (filled with ones), then
//!   mask back. This is the classic Morton dilated-integer increment.
//! * `is_inside_root`: biased in-root coordinates are exactly those with
//!   bit 26 set and bits 24–25 clear, so one shift and compare of the top
//!   three bit-planes tests all `D` coordinates at once.
//!
//! The natural integer order on keys equals [`crate::morton::cmp`]
//! (ancestors first), so sorted key arrays are linear octrees and
//! `binary_search`/`partition_point` work unchanged.

use crate::coords::{Coord, MAX_LEVEL};
use crate::direction::Direction;
use crate::key::{self, KEY_COORD_BITS, KEY_LEVEL_BITS};
use crate::morton::MortonIndex;
use crate::octant::Octant;

const L: u32 = MAX_LEVEL as u32;

/// Mask of the level field in the low bits of a key.
const LEVEL_MASK: u128 = (1 << KEY_LEVEL_BITS) - 1;

/// Bit-plane mask of axis 0 for dimension `d`: bit `b*d` for `b < 27`.
/// Axis `j`'s plane is this mask shifted left by `j`.
const fn axis_plane(d: usize) -> u128 {
    let mut m: u128 = 0;
    let mut b = 0;
    while b < KEY_COORD_BITS as usize {
        m |= 1 << (b * d);
        b += 1;
    }
    m
}

/// An octant stored as its packed Morton key (see [`crate::key`] for the
/// layout). `Ord` equals the Morton preorder of [`crate::morton::cmp`], so
/// sorted slices of packed octants are linear octrees.
///
/// All relations assume the key is valid (produced by [`key::pack`] or by
/// the arithmetic here) and that results stay within the packable
/// coordinate window `[-ROOT_LEN, 2*ROOT_LEN)` — the same contract as the
/// struct [`Octant`] operations, checked in debug builds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct PackedOctant<const D: usize>(pub u128);

impl<const D: usize> std::fmt::Debug for PackedOctant<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Packed({:?})", self.octant())
    }
}

impl<const D: usize> PackedOctant<D> {
    /// Number of children (and siblings) of any non-leaf octant: `2^D`.
    pub const NUM_CHILDREN: usize = 1 << D;

    /// The root octant: every biased coordinate is exactly `2^26`, so the
    /// index is the bit-plane 26 with all axes set.
    #[inline]
    pub const fn root() -> Self {
        PackedOctant((((1u128 << D) - 1) << (26 * D)) << KEY_LEVEL_BITS)
    }

    /// Pack a struct octant (see [`key::pack`] for the supported range).
    #[inline]
    pub fn new(o: &Octant<D>) -> Self {
        PackedOctant(key::pack(o))
    }

    /// Decode back into the struct view.
    #[inline]
    pub fn octant(self) -> Octant<D> {
        key::unpack(self.0)
    }

    /// Refinement level: 0 is the root, `MAX_LEVEL` the finest.
    #[inline]
    pub fn level(self) -> u8 {
        (self.0 & LEVEL_MASK) as u8
    }

    /// The interleaved (biased) coordinate index — the key above the level
    /// field.
    #[inline]
    pub fn idx(self) -> u128 {
        self.0 >> KEY_LEVEL_BITS
    }

    /// Side length in integer coordinates (never zero — an octant is a
    /// cube, not a container, so there is no `is_empty`).
    #[allow(clippy::len_without_is_empty)]
    #[inline]
    pub fn len(self) -> Coord {
        1 << (L - self.level() as u32)
    }

    /// The ancestor at the given coarser (or equal) level.
    #[inline]
    pub fn ancestor(self, level: u8) -> Self {
        debug_assert!(level <= self.level());
        let s = D as u32 * (L - level as u32) + KEY_LEVEL_BITS;
        PackedOctant(((self.0 >> s) << s) | level as u128)
    }

    /// The octant containing `self` that is twice as large.
    #[inline]
    pub fn parent(self) -> Self {
        debug_assert!(self.level() > 0, "root has no parent");
        self.ancestor(self.level() - 1)
    }

    /// `i-child`: the child touching the `i`-th corner. Bit `j` of `i`
    /// selects the upper half along axis `j`. The child's corner bits land
    /// contiguously at bit-level `L - l - 1`, and the level increments, so
    /// the whole operation is one add on the key.
    #[inline]
    pub fn child(self, i: usize) -> Self {
        let l = self.level() as u32;
        debug_assert!(l < L);
        debug_assert!(i < Self::NUM_CHILDREN);
        PackedOctant(self.0 + ((i as u128) << (D as u32 * (L - l - 1) + KEY_LEVEL_BITS)) + 1)
    }

    /// The index `i` such that `parent().child(i) == self`.
    #[inline]
    pub fn child_id(self) -> usize {
        let l = self.level() as u32;
        debug_assert!(l > 0);
        ((self.idx() >> (D as u32 * (L - l))) & ((1 << D) - 1)) as usize
    }

    /// `i-sibling`: `parent().child(i)`.
    #[inline]
    pub fn sibling(self, i: usize) -> Self {
        self.parent().child(i)
    }

    /// The first (Morton-least) descendant at `level`: same corner, finer
    /// level field.
    #[inline]
    pub fn first_descendant(self, level: u8) -> Self {
        debug_assert!(level >= self.level());
        PackedOctant((self.0 & !LEVEL_MASK) | level as u128)
    }

    /// The last (Morton-greatest) descendant at `level`: set every index
    /// bit between the two alignments.
    #[inline]
    pub fn last_descendant(self, level: u8) -> Self {
        let l = self.level() as u32;
        debug_assert!(level as u32 >= l);
        let ones = ((1u128 << (D as u32 * (L - l))) - 1)
            ^ ((1u128 << (D as u32 * (L - level as u32))) - 1);
        PackedOctant(((self.0 | (ones << KEY_LEVEL_BITS)) & !LEVEL_MASK) | level as u128)
    }

    /// Is `self` a (strict or equal) ancestor of `other`? Prefix equality
    /// of the indices above `self`'s alignment.
    #[inline]
    pub fn contains(self, other: Self) -> bool {
        let sl = self.level();
        let s = D as u32 * (L - sl as u32);
        sl <= other.level() && (other.idx() >> s) == (self.idx() >> s)
    }

    /// Is `self` a strict ancestor of `other`?
    #[inline]
    pub fn is_ancestor_of(self, other: Self) -> bool {
        self.level() < other.level() && self.contains(other)
    }

    /// Do the two octants overlap (one contains the other)?
    #[inline]
    pub fn overlaps(self, other: Self) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// Does the octant lie fully inside the root cube `[0, ROOT_LEN)^D`?
    /// Biased in-root coordinates have bit 26 set and bits 24–25 clear, so
    /// the top three bit-planes of the index decide all axes at once.
    #[inline]
    pub fn is_inside_root(self) -> bool {
        (self.idx() >> (24 * D)) == ((1u128 << D) - 1) << (2 * D)
    }

    /// Morton index of the first unit cell covered. Only valid for in-root
    /// octants: masking off the three bias planes leaves exactly
    /// [`crate::morton::interleave`] of the raw coordinates.
    #[inline]
    pub fn index(self) -> MortonIndex {
        debug_assert!(self.is_inside_root());
        self.idx() & ((1 << (24 * D)) - 1)
    }

    /// Number of unit (finest-level) cells covered.
    #[inline]
    pub fn cell_count(self) -> MortonIndex {
        1u128 << (D as u32 * (L - self.level() as u32))
    }

    /// Morton index of the last unit cell covered (inclusive).
    #[inline]
    pub fn last_index(self) -> MortonIndex {
        self.index() + (self.cell_count() - 1)
    }

    /// The same-size neighbor across direction `dir`, by per-axis dilated
    /// add/subtract on the interleaved index. The result may lie outside
    /// the root cube (but must stay inside the packable window — debug
    /// checked, same contract as [`Octant::neighbor`]).
    #[inline]
    pub fn neighbor(self, dir: &Direction<D>) -> Self {
        let l = self.level() as u32;
        let mut idx = self.idx();
        let plane0 = axis_plane(D);
        for (j, &d) in dir.iter().enumerate() {
            if d == 0 {
                continue;
            }
            let m = plane0 << j;
            let step = 1u128 << ((L - l) * D as u32 + j as u32);
            let axis = if d > 0 {
                // Dilated add: fill foreign bits with ones so the carry
                // ripples across them to the next bit of this axis.
                ((idx & m) | !m).wrapping_add(step) & m
            } else {
                // Dilated subtract: foreign bits are zero, so the borrow
                // ripples across them symmetrically.
                (idx & m).wrapping_sub(step) & m
            };
            debug_assert!(
                axis & !((1u128 << (KEY_COORD_BITS as usize * D)) - 1) == 0,
                "neighbor left the packable window"
            );
            idx = (idx & !m) | axis;
        }
        PackedOctant(idx << KEY_LEVEL_BITS | l as u128)
    }
}

/// Batches at and above this many octants chunk across the
/// `forestbal-par` pool. Position `i` of the output is a pure function of
/// position `i` of the input, so any contiguous partition reproduces the
/// serial result exactly — the cheapest possible determinism argument.
const PAR_BATCH_MIN: usize = 1 << 15;

/// Minimum octants per parallel codec chunk.
const PAR_BATCH_CHUNK: usize = 1 << 13;

/// Slice core of [`pack_batch`]: encode `src[i]` into `dst[i]`, dispatching
/// to the BMI2 `pdep` kernel when available. Bit-identical either way.
#[inline]
fn pack_into<const D: usize>(src: &[Octant<D>], dst: &mut [u128]) {
    debug_assert_eq!(src.len(), dst.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if crate::simd::bmi2_available() && (D == 2 || D == 3) {
        // SAFETY: bmi2 support was just detected at runtime.
        unsafe { crate::simd::pack_slice_bmi2(src, dst) };
        return;
    }
    for (slot, o) in dst.iter_mut().zip(src) {
        *slot = key::pack(o);
    }
}

/// Slice core of [`unpack_batch`], with the same BMI2 (`pext`) dispatch.
#[inline]
fn unpack_into<const D: usize>(src: &[u128], dst: &mut [Octant<D>]) {
    debug_assert_eq!(src.len(), dst.len());
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    if crate::simd::bmi2_available() && (D == 2 || D == 3) {
        // SAFETY: bmi2 support was just detected at runtime.
        unsafe { crate::simd::unpack_slice_bmi2(src, dst) };
        return;
    }
    for (slot, &k) in dst.iter_mut().zip(src) {
        *slot = key::unpack(k);
    }
}

/// Pack a batch of octants into keys, appending to `dst`. Dispatches to the
/// BMI2 `pdep` kernel when the `simd` feature is enabled and the CPU
/// supports it, and chunks across the `forestbal-par` pool at
/// `PAR_BATCH_MIN` octants — the two compose, and every path is
/// bit-identical.
pub fn pack_batch<const D: usize>(src: &[Octant<D>], dst: &mut Vec<u128>) {
    let base = dst.len();
    dst.resize(base + src.len(), 0);
    let out = &mut dst[base..];
    if src.len() >= PAR_BATCH_MIN {
        let pool = forestbal_par::current();
        if pool.threads() > 1 {
            let ranges = pool.chunk_ranges(src.len(), PAR_BATCH_CHUNK);
            let shared = forestbal_par::DisjointSlice::new(out);
            pool.run(ranges.len(), |c, _| {
                let r = ranges[c].clone();
                // SAFETY: `chunk_ranges` yields non-overlapping ranges and
                // each task index runs exactly once.
                pack_into(&src[r.clone()], unsafe { shared.range_mut(r) });
            });
            return;
        }
    }
    pack_into(src, out);
}

/// Decode a batch of keys into octants, appending to `dst`. The inverse of
/// [`pack_batch`], with the same BMI2 + pool dispatch.
pub fn unpack_batch<const D: usize>(src: &[u128], dst: &mut Vec<Octant<D>>) {
    let base = dst.len();
    dst.resize(
        base + src.len(),
        Octant {
            coords: [0; D],
            level: 0,
        },
    );
    let out = &mut dst[base..];
    if src.len() >= PAR_BATCH_MIN {
        let pool = forestbal_par::current();
        if pool.threads() > 1 {
            let ranges = pool.chunk_ranges(src.len(), PAR_BATCH_CHUNK);
            let shared = forestbal_par::DisjointSlice::new(out);
            pool.run(ranges.len(), |c, _| {
                let r = ranges[c].clone();
                // SAFETY: `chunk_ranges` yields non-overlapping ranges and
                // each task index runs exactly once.
                unpack_into(&src[r.clone()], unsafe { shared.range_mut(r) });
            });
            return;
        }
    }
    unpack_into(src, out);
}

/// Which accelerated kernels are active at runtime, for BENCH reporting:
/// `(bmi2_pack, avx2_packable)`. Both are `false` unless the crate was
/// built with the `simd` feature on x86_64 and the CPU supports them.
pub fn simd_active() -> (bool, bool) {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        (crate::simd::bmi2_available(), crate::simd::avx2_available())
    }
    #[cfg(not(all(feature = "simd", target_arch = "x86_64")))]
    {
        (false, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::ROOT_LEN;
    use crate::direction::directions;

    type P2 = PackedOctant<2>;
    type P3 = PackedOctant<3>;

    /// All octants of the first `depth` levels under `root`, plus
    /// out-of-root translations of the level-`depth` frontier.
    fn zoo<const D: usize>(depth: u8, shifts: &[[Coord; D]]) -> Vec<Octant<D>> {
        let mut out = vec![Octant::<D>::root()];
        let mut frontier = vec![Octant::<D>::root()];
        for _ in 0..depth {
            let mut next = vec![];
            for o in frontier {
                for i in 0..Octant::<D>::NUM_CHILDREN {
                    let c = o.child(i);
                    out.push(c);
                    next.push(c);
                }
            }
            frontier = next;
        }
        let shifted: Vec<_> = out
            .iter()
            .flat_map(|o| {
                shifts.iter().map(|s| {
                    let mut c = o.coords;
                    for (x, d) in c.iter_mut().zip(s) {
                        *x += d * ROOT_LEN;
                    }
                    Octant {
                        coords: c,
                        level: o.level,
                    }
                })
            })
            .collect();
        out.extend(shifted);
        out
    }

    #[test]
    fn root_constant_matches_pack() {
        assert_eq!(P2::root(), P2::new(&Octant::root()));
        assert_eq!(P3::root(), P3::new(&Octant::root()));
    }

    fn batch_codec_thread_invariant<const D: usize>() {
        // Above `PAR_BATCH_MIN` the batch codecs chunk across the pool;
        // packed keys and decoded octants must not depend on the width,
        // appending after existing content and reusing buffers included.
        use forestbal_par::Pool;
        use std::sync::Arc;
        let n = PAR_BATCH_MIN + 321;
        let src: Vec<Octant<D>> = (0..n)
            .map(|i| Octant::<D>::root().child(i % 4).child((i / 4) % 4))
            .collect();

        let serial = Arc::new(Pool::new(1));
        let (base_keys, base_back) = serial.install(|| {
            let mut keys = vec![7u128]; // pre-existing content survives
            pack_batch(&src, &mut keys);
            let mut back = Vec::new();
            unpack_batch(&keys[1..], &mut back);
            (keys, back)
        });
        assert_eq!(base_back, src);

        for threads in [2, 3, 8] {
            let pool = Arc::new(Pool::new(threads));
            pool.install(|| {
                let mut keys = Vec::new();
                let mut back = Vec::new();
                for _ in 0..2 {
                    keys.clear();
                    keys.push(7u128);
                    pack_batch(&src, &mut keys);
                    assert_eq!(keys, base_keys, "{threads} threads: pack diverged");
                    back.clear();
                    unpack_batch(&keys[1..], &mut back);
                    assert_eq!(back, base_back, "{threads} threads: unpack diverged");
                }
            });
        }
    }

    #[test]
    fn batch_codec_bit_identical_across_thread_counts() {
        batch_codec_thread_invariant::<2>();
        batch_codec_thread_invariant::<3>();
    }

    #[test]
    fn relations_match_struct_2d() {
        for o in zoo::<2>(3, &[[-1, 0], [1, 1], [-1, -1]]) {
            let p = P2::new(&o);
            assert_eq!(p.octant(), o);
            assert_eq!(p.level(), o.level);
            assert_eq!(p.len(), o.len());
            if o.level > 0 {
                assert_eq!(p.parent().octant(), o.parent());
                assert_eq!(p.child_id(), o.child_id());
                for i in 0..4 {
                    assert_eq!(p.sibling(i).octant(), o.sibling(i));
                }
            }
            for a in 0..=o.level {
                assert_eq!(p.ancestor(a).octant(), o.ancestor(a));
            }
            if o.level < MAX_LEVEL {
                for i in 0..4 {
                    assert_eq!(p.child(i).octant(), o.child(i), "{o:?} child {i}");
                }
            }
            for lv in [o.level, MAX_LEVEL] {
                assert_eq!(p.first_descendant(lv).octant(), o.first_descendant(lv));
                assert_eq!(p.last_descendant(lv).octant(), o.last_descendant(lv));
            }
            assert_eq!(p.is_inside_root(), o.is_inside_root());
            if o.is_inside_root() {
                assert_eq!(p.index(), o.index());
                assert_eq!(p.last_index(), o.last_index());
                assert_eq!(p.cell_count(), o.cell_count());
            }
            for dir in directions::<2>() {
                let n = o.neighbor(&dir);
                if key::packable(&n) {
                    assert_eq!(p.neighbor(&dir).octant(), n, "{o:?} dir {dir:?}");
                }
            }
        }
    }

    #[test]
    fn relations_match_struct_3d() {
        for o in zoo::<3>(2, &[[-1, 0, 1], [1, 1, 1]]) {
            let p = P3::new(&o);
            assert_eq!(p.octant(), o);
            assert_eq!(p.level(), o.level);
            if o.level > 0 {
                assert_eq!(p.parent().octant(), o.parent());
                assert_eq!(p.child_id(), o.child_id());
            }
            if o.level < MAX_LEVEL {
                for i in 0..8 {
                    assert_eq!(p.child(i).octant(), o.child(i));
                }
            }
            assert_eq!(
                p.last_descendant(MAX_LEVEL).octant(),
                o.last_descendant(MAX_LEVEL)
            );
            assert_eq!(p.is_inside_root(), o.is_inside_root());
            if o.is_inside_root() {
                assert_eq!(p.index(), o.index());
                assert_eq!(p.last_index(), o.last_index());
            }
            for dir in directions::<3>() {
                let n = o.neighbor(&dir);
                if key::packable(&n) {
                    assert_eq!(p.neighbor(&dir).octant(), n, "{o:?} dir {dir:?}");
                }
            }
        }
    }

    #[test]
    fn containment_matches_struct() {
        let octs = zoo::<2>(3, &[[-1, 1]]);
        for a in &octs {
            let pa = P2::new(a);
            for b in &octs {
                let pb = P2::new(b);
                assert_eq!(pa.contains(pb), a.contains(b), "{a:?} vs {b:?}");
                assert_eq!(pa.is_ancestor_of(pb), a.is_ancestor_of(b));
                assert_eq!(pa.overlaps(pb), a.overlaps(b));
            }
        }
    }

    #[test]
    fn deep_chain_roundtrip() {
        let mut p = P3::root();
        let mut o = Octant::<3>::root();
        for i in [5usize, 0, 7, 3, 1, 6, 2, 4] {
            p = p.child(i);
            o = o.child(i);
            assert_eq!(p.octant(), o);
            assert_eq!(p.child_id(), i);
        }
        for _ in 0..8 {
            p = p.parent();
            o = o.parent();
            assert_eq!(p.octant(), o);
        }
        assert_eq!(p, P3::root());
    }

    #[test]
    fn neighbor_at_max_level() {
        // Finest-level neighbor: the dilated add must carry across many
        // foreign bits.
        let o = Octant::<2>::root().last_descendant(MAX_LEVEL);
        let p = P2::new(&o);
        for dir in directions::<2>() {
            assert_eq!(p.neighbor(&dir).octant(), o.neighbor(&dir));
        }
    }

    #[test]
    fn batch_roundtrip() {
        let octs = zoo::<3>(2, &[[-1, 0, 0]]);
        let mut keys = vec![];
        pack_batch(&octs, &mut keys);
        assert_eq!(keys.len(), octs.len());
        for (o, &k) in octs.iter().zip(&keys) {
            assert_eq!(k, key::pack(o));
        }
        let mut back = vec![];
        unpack_batch(&keys, &mut back);
        assert_eq!(back, octs);
    }

    #[test]
    fn batch_roundtrip_2d() {
        let octs = zoo::<2>(3, &[[1, -1]]);
        let mut keys = vec![];
        pack_batch(&octs, &mut keys);
        let mut back = vec![];
        unpack_batch(&keys, &mut back);
        assert_eq!(back, octs);
        for (o, &k) in octs.iter().zip(&keys) {
            assert_eq!(k, key::pack(o));
        }
    }
}
