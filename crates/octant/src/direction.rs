//! Neighbor directions in `{-1, 0, 1}^D` grouped by codimension.
//!
//! A direction selects a boundary object of an octant: directions with one
//! nonzero component cross a *face* (codimension 1), two nonzero components
//! an *edge* in 3D or a *corner* in 2D (codimension 2), and so on. The
//! `k`-balance conditions of the paper constrain neighbors across boundary
//! objects of codimension `<= k`.

/// A neighbor direction; each component is `-1`, `0`, or `1`.
pub type Direction<const D: usize> = [i8; D];

/// Codimension of the boundary object selected by `dir` (number of nonzero
/// components). The zero direction has codimension 0 (the octant itself).
#[inline]
pub fn codim<const D: usize>(dir: &Direction<D>) -> u8 {
    dir.iter().map(|&d| (d != 0) as u8).sum()
}

/// All `3^D - 1` nonzero directions, in a fixed deterministic order.
pub fn directions<const D: usize>() -> impl Iterator<Item = Direction<D>> {
    let total = 3usize.pow(D as u32);
    (0..total).filter_map(move |mut code| {
        let mut dir = [0i8; D];
        let mut nonzero = false;
        for d in dir.iter_mut() {
            *d = (code % 3) as i8 - 1;
            nonzero |= *d != 0;
            code /= 3;
        }
        nonzero.then_some(dir)
    })
}

/// All nonzero directions whose codimension is `<= k` — the directions
/// constrained by the `k`-balance condition.
pub fn directions_up_to_codim<const D: usize>(k: u8) -> impl Iterator<Item = Direction<D>> {
    directions::<D>().filter(move |d| codim(d) <= k)
}

/// Number of boundary objects of exactly codimension `c` on a `D`-cube:
/// `2^c * binom(D, c)`. (Faces: `2D`; 3D edges: 12; corners: `2^D`.)
pub fn count_at_codim(d: u32, c: u32) -> u32 {
    debug_assert!(c >= 1 && c <= d);
    let binom = |n: u32, k: u32| -> u32 {
        let mut r = 1;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    };
    (1 << c) * binom(d, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_counts() {
        assert_eq!(directions::<2>().count(), 8);
        assert_eq!(directions::<3>().count(), 26);
    }

    #[test]
    fn codim_partition_2d() {
        let faces = directions::<2>().filter(|d| codim(d) == 1).count();
        let corners = directions::<2>().filter(|d| codim(d) == 2).count();
        assert_eq!(faces, 4);
        assert_eq!(corners, 4);
        assert_eq!(count_at_codim(2, 1), 4);
        assert_eq!(count_at_codim(2, 2), 4);
    }

    #[test]
    fn codim_partition_3d() {
        let faces = directions::<3>().filter(|d| codim(d) == 1).count();
        let edges = directions::<3>().filter(|d| codim(d) == 2).count();
        let corners = directions::<3>().filter(|d| codim(d) == 3).count();
        assert_eq!(faces, 6);
        assert_eq!(edges, 12);
        assert_eq!(corners, 8);
        assert_eq!(count_at_codim(3, 1), 6);
        assert_eq!(count_at_codim(3, 2), 12);
        assert_eq!(count_at_codim(3, 3), 8);
    }

    #[test]
    fn balance_condition_filters() {
        assert_eq!(directions_up_to_codim::<3>(1).count(), 6);
        assert_eq!(directions_up_to_codim::<3>(2).count(), 18);
        assert_eq!(directions_up_to_codim::<3>(3).count(), 26);
        assert_eq!(directions_up_to_codim::<2>(1).count(), 4);
        assert_eq!(directions_up_to_codim::<2>(2).count(), 8);
    }

    #[test]
    fn directions_are_unique() {
        let dirs: Vec<_> = directions::<3>().collect();
        for (i, a) in dirs.iter().enumerate() {
            for b in &dirs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
