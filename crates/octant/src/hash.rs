//! A fast integer hasher for octant hash tables.
//!
//! The balance algorithms are dominated by hash-set membership tests on
//! octants (small fixed-size integer keys). Rust's default SipHash is
//! DoS-resistant but slow for such keys; this module provides an
//! Fx-style multiplicative hasher (the rustc approach recommended by the
//! Rust Performance Book) and type aliases for octant sets and maps.

use crate::octant::Octant;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const K: u64 = 0x517c_c1b7_2722_0a95;

/// Fx-style multiplicative hasher: fast on small integer keys, not
/// HashDoS-resistant (octant keys are program-generated, not adversarial).
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.state = (self.state.rotate_left(5) ^ v).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(v as u64);
    }

    #[inline]
    fn write_i32(&mut self, v: i32) {
        self.mix(v as u32 as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Hash set of octants with the fast hasher.
pub type OctantSet<const D: usize> = HashSet<Octant<D>, FxBuildHasher>;

/// Hash map keyed by octants with the fast hasher.
pub type OctantMap<const D: usize, V> = HashMap<Octant<D>, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_roundtrip() {
        let r = Octant::<3>::root();
        let mut s: OctantSet<3> = OctantSet::default();
        for i in 0..8 {
            assert!(s.insert(r.child(i)));
        }
        for i in 0..8 {
            assert!(s.contains(&r.child(i)));
            assert!(!s.insert(r.child(i)));
        }
        assert!(!s.contains(&r));
        assert_eq!(s.len(), 8);
    }

    #[test]
    fn hash_differs_between_levels() {
        // An octant and its first descendant share coordinates but must
        // hash differently (level participates).
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let hash = |o: &Octant<2>| b.hash_one(o);
        let r = Octant::<2>::root();
        assert_ne!(hash(&r), hash(&r.first_descendant(3)));
    }

    #[test]
    fn map_roundtrip() {
        let r = Octant::<2>::root();
        let mut m: OctantMap<2, usize> = OctantMap::default();
        for i in 0..4 {
            m.insert(r.child(i), i);
        }
        for i in 0..4 {
            assert_eq!(m[&r.child(i)], i);
        }
    }
}
