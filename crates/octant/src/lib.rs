//! Octant arithmetic and linear-octree array operations.
//!
//! This crate is the dimension-generic substrate underneath the 2:1 balance
//! algorithms: the [`Octant`] value type (a `d`-dimensional cube with integer
//! corner coordinates and a power-of-two side length), the Morton
//! (space-filling-curve) total order on octants, neighborhood enumeration,
//! and the classic sorted-array algorithms on *linear octrees* (octrees
//! stored as sorted arrays of leaves): `linearize`, `complete`, and friends.
//!
//! Conventions
//! -----------
//! * The root octant has `level == 0` and side length [`ROOT_LEN`] `== 2^MAX_LEVEL`.
//!   An octant of `level == l` has side length `2^(MAX_LEVEL - l)`.
//!   The paper indexes octants the other way around (an "`l`-octant" has side
//!   `2^l`); [`Octant::size_log2`] returns that paper-convention size.
//! * Coordinates are `i32` and may leave `[0, ROOT_LEN)` transiently: balance
//!   algorithms construct neighbors across tree boundaries exactly like
//!   p4est does. Octants with out-of-root coordinates support all relations
//!   except those that require an in-root Morton index.
//! * The Morton order sorts an ancestor *before* its descendants (preorder).
//!
//! # Example
//!
//! ```
//! use forestbal_octant::{complete_subtree, is_complete, linearize, Octant};
//!
//! // Build octants by walking child ids from the root.
//! let root = Octant::<3>::root();
//! let deep = root.child(5).child(0).child(7);
//! assert_eq!(deep.level, 3);
//! assert!(root.is_ancestor_of(&deep));
//! assert_eq!(deep.ancestor(1), root.child(5));
//!
//! // Morton order: ancestors first, then curve order.
//! assert!(root.child(5) < deep);
//! assert!(deep < root.child(6));
//!
//! // Complete the coarsest linear octree pinning `deep` as a leaf.
//! let mesh = complete_subtree(&root, &[deep]);
//! assert!(is_complete(&mesh, &root));
//! assert!(mesh.binary_search(&deep).is_ok());
//!
//! // Linearize resolves overlaps toward the finest octants.
//! let mut v = vec![root.child(5), deep];
//! linearize(&mut v);
//! assert_eq!(v, vec![deep]);
//! ```

#![warn(missing_docs)]

pub mod coords;
pub mod direction;
pub mod hash;
pub mod key;
pub mod linear;
pub mod morton;
pub mod octant;
pub mod packed;
pub mod path;
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
pub mod simd;
pub mod sort;
pub mod table;

pub use coords::{Coord, MAX_LEVEL, ROOT_LEN};
pub use direction::{codim, directions, directions_up_to_codim, Direction};
pub use hash::{FxBuildHasher, OctantMap, OctantSet};
pub use key::{packable, packable_all};
pub use linear::{
    complete_region, complete_subtree, is_complete, is_linear, is_linear_keys, is_sorted_strict,
    linearize, linearize_with, merge_sorted,
};
pub use morton::MortonIndex;
pub use octant::{OctBuf, Octant};
pub use packed::{pack_batch, simd_active, unpack_batch, PackedOctant};
pub use sort::{
    sort_keys_with, sort_octants, sort_octants_with, SortScratch, PAR_MIN_LEN, RADIX_MIN_LEN,
};
pub use table::OctantTable;
