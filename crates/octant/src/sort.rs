//! LSD radix sort of octants through their packed Morton keys.
//!
//! [`sort_octants`] packs each octant into a single integer key (see
//! [`crate::key`]), radix-sorts the keys least-significant-digit first with
//! 8-bit digits, and unpacks in place. Because key order equals
//! [`crate::morton::cmp`], the result is exactly what
//! `sort_unstable` produces — the proptests assert this — at O(n) per digit
//! instead of O(n log n) comparisons through the XOR-MSB comparator.
//!
//! Two fast paths keep the common cases cheap: an already-sorted input
//! returns after one linear scan, and trivial digit positions (all keys
//! sharing a byte, which is the norm — 2D keys use 59 of 64 bits and real
//! coordinate distributions cluster high bytes) are skipped entirely using
//! histograms gathered in a single pass over the keys.
//!
//! Inputs containing octants outside the packable coordinate range fall
//! back to `sort_unstable`; the balance algorithms never produce such
//! octants (see [`crate::key::packable`]), but the fallback keeps the
//! routine total.
//!
//! # Parallel path
//!
//! At [`PAR_MIN_LEN`] keys and above, the scatter passes run across the
//! [`forestbal_par`] pool under its determinism contract: the key array is
//! split into contiguous chunks (pure arithmetic, load-independent), each
//! worker histograms and scatters its own chunk, and every chunk's scatter
//! destination is *precomputed* as
//!
//! ```text
//! offset(chunk c, digit d) = Σ_{d' < d} total[d']  +  Σ_{c' < c} count[c'][d]
//! ```
//!
//! — exactly the position serial stable LSD would assign, for any chunk
//! count. Chunks write disjoint ranges, no ordering between workers can
//! leak into the output, and the trivial-pass decision uses the summed
//! totals (permutation-invariant), so the executed pass set matches serial
//! too. Output and `SortScratch` counters are therefore bit-identical for
//! every thread count, including 1.

use crate::key::{self, key_bits};
use crate::octant::Octant;
use forestbal_par::Pool;

/// Reusable buffers for [`sort_octants_with`]. One scratch serves any
/// number of sorts of any dimension; buffers grow to the high-water mark
/// and are retained across calls. The counters are cumulative and feed the
/// `forestbal-trace` kernel counters.
#[derive(Clone, Default)]
pub struct SortScratch {
    k64: Vec<u64>,
    t64: Vec<u64>,
    k128: Vec<u128>,
    t128: Vec<u128>,
    /// Radix passes actually executed (trivial single-byte passes excluded).
    pub radix_passes: u64,
    /// Sorts satisfied by the already-sorted early-out.
    pub presorted_hits: u64,
    /// Sorts routed through the radix path.
    pub radix_sorts: u64,
    /// Sorts that fell back to comparison sort (unpackable input).
    pub comparison_fallbacks: u64,
}

impl SortScratch {
    /// New scratch with empty buffers and zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Below this length a comparison sort beats packing + histogramming.
///
/// The kernel bench (`timings --exp kernel`) showed the previous cutoff of
/// 64 was too eager: at n≈330 the radix path ran at 0.90× of
/// `sort_unstable` — the fixed cost of gathering 8–11 byte histograms
/// dominates until the O(n log n) comparisons have a few thousand elements
/// to lose on. The crossover is pinned by the
/// `small_input_crossover_pins_cutoff` test.
pub const RADIX_MIN_LEN: usize = 512;

/// At and above this many keys the scatter passes run on the
/// [`forestbal_par`] pool (when it has more than one thread). Below it the
/// per-pass fork-join overhead outweighs the memory-bandwidth win.
pub const PAR_MIN_LEN: usize = 1 << 15;

/// Minimum keys per parallel chunk; bounds scheduling overhead per task.
const PAR_MIN_CHUNK: usize = 1 << 13;

/// Sort octants into Morton order (ancestors first), equivalent to
/// `a.sort_unstable()`. Allocates its own scratch; prefer
/// [`sort_octants_with`] on hot paths.
pub fn sort_octants<const D: usize>(a: &mut [Octant<D>]) {
    sort_octants_with(a, &mut SortScratch::new());
}

/// [`sort_octants`] with caller-provided scratch buffers.
pub fn sort_octants_with<const D: usize>(a: &mut [Octant<D>], s: &mut SortScratch) {
    if a.len() < 2 {
        return;
    }
    if is_sorted(a) {
        s.presorted_hits += 1;
        return;
    }
    if a.len() < RADIX_MIN_LEN || !key::packable_all(a) {
        s.comparison_fallbacks += 1;
        a.sort_unstable();
        return;
    }
    s.radix_sorts += 1;
    if D <= 2 {
        pack_keys(a, &mut s.k64, key::pack64::<D>);
        s.radix_passes += radix_lsd(&mut s.k64, &mut s.t64, key_bits::<D>());
        unpack_keys(a, &s.k64, key::unpack64::<D>);
    } else {
        pack_keys(a, &mut s.k128, key::pack::<D>);
        s.radix_passes += radix_lsd(&mut s.k128, &mut s.t128, key_bits::<D>());
        unpack_keys(a, &s.k128, key::unpack::<D>);
    }
}

/// Radix-sort an array of packed keys in place — the native sort of the
/// SoA forest storage, where leaves already live as `u128` keys and no
/// pack/unpack conversion is needed at all. `D` selects the key width
/// actually populated ([`key_bits`]); passes over bytes above it are
/// skipped. Shares the early-outs and counters of [`sort_octants_with`].
pub fn sort_keys_with<const D: usize>(keys: &mut Vec<u128>, s: &mut SortScratch) {
    if keys.len() < 2 {
        return;
    }
    if keys.windows(2).all(|w| w[0] <= w[1]) {
        s.presorted_hits += 1;
        return;
    }
    if keys.len() < RADIX_MIN_LEN {
        s.comparison_fallbacks += 1;
        keys.sort_unstable();
        return;
    }
    s.radix_sorts += 1;
    s.radix_passes += radix_lsd(keys, &mut s.t128, key_bits::<D>());
}

#[inline]
fn is_sorted<const D: usize>(a: &[Octant<D>]) -> bool {
    a.windows(2).all(|w| w[0] <= w[1])
}

#[inline]
fn pack_keys<const D: usize, K>(
    a: &[Octant<D>],
    keys: &mut Vec<K>,
    pack: impl Fn(&Octant<D>) -> K,
) {
    keys.clear();
    keys.extend(a.iter().map(pack));
}

#[inline]
fn unpack_keys<const D: usize, K: Copy>(
    a: &mut [Octant<D>],
    keys: &[K],
    unpack: impl Fn(K) -> Octant<D>,
) {
    for (o, &k) in a.iter_mut().zip(keys) {
        *o = unpack(k);
    }
}

/// An unsigned integer usable as a radix-sort key.
trait RadixKey: Copy + Default + Send + Sync {
    fn byte(self, i: u32) -> usize;
}

impl RadixKey for u64 {
    #[inline]
    fn byte(self, i: u32) -> usize {
        (self >> (8 * i)) as u8 as usize
    }
}

impl RadixKey for u128 {
    #[inline]
    fn byte(self, i: u32) -> usize {
        (self >> (8 * i)) as u8 as usize
    }
}

/// LSD radix sort of `keys` using `tmp` as the ping-pong buffer, visiting
/// only the low `bits` bits. Dispatches to the parallel scatter at
/// [`PAR_MIN_LEN`]; both paths produce bit-identical output and pass
/// counts. Returns the number of scatter passes executed.
fn radix_lsd<K: RadixKey>(keys: &mut Vec<K>, tmp: &mut Vec<K>, bits: u32) -> u64 {
    if keys.len() >= PAR_MIN_LEN {
        let pool = forestbal_par::current();
        if pool.threads() > 1 {
            return radix_lsd_par(keys, tmp, bits, &pool);
        }
    }
    radix_lsd_serial(keys, tmp, bits)
}

/// Serial LSD radix sort — the specification the parallel path must match
/// bit-for-bit. Histograms for every digit position are gathered in one
/// pass, and positions where all keys share one byte value are skipped.
fn radix_lsd_serial<K: RadixKey>(keys: &mut Vec<K>, tmp: &mut Vec<K>, bits: u32) -> u64 {
    let n = keys.len();
    debug_assert!(n < u32::MAX as usize);
    let num_digits = bits.div_ceil(8) as usize;
    debug_assert!(num_digits <= 16);
    let mut hist = [[0u32; 256]; 16];
    for &k in keys.iter() {
        for (b, h) in hist.iter_mut().enumerate().take(num_digits) {
            h[k.byte(b as u32)] += 1;
        }
    }
    tmp.clear();
    tmp.resize(n, K::default());
    let mut passes = 0u64;
    // `keys` always holds the current data; after each scatter the buffers
    // swap so the loop body never cares which allocation it started in.
    for (b, h) in hist.iter_mut().enumerate().take(num_digits) {
        // Trivial pass: every key has the same byte here — order unchanged.
        if h.iter().any(|&c| c as usize == n) {
            continue;
        }
        let mut sum = 0u32;
        for c in h.iter_mut() {
            let start = sum;
            sum += *c;
            *c = start;
        }
        for &k in keys.iter() {
            let d = k.byte(b as u32);
            tmp[h[d] as usize] = k;
            h[d] += 1;
        }
        std::mem::swap(keys, tmp);
        passes += 1;
    }
    passes
}

/// Raw destination slice for the parallel scatter. Chunks write disjoint
/// index ranges (see the module docs for the offset construction), so
/// concurrent writes never alias.
struct ScatterDst<K>(*mut K);
// SAFETY: access is partitioned by precomputed disjoint offset ranges.
unsafe impl<K: Send> Sync for ScatterDst<K> {}
impl<K> ScatterDst<K> {
    #[inline]
    fn write(&self, i: usize, v: K) {
        // SAFETY: `i` lies in this chunk's precomputed disjoint range, which
        // is in bounds of the `tmp` allocation (resized to n before use).
        unsafe { self.0.add(i).write(v) }
    }
}

/// Parallel LSD radix sort: per-chunk histograms, precomputed stable
/// scatter offsets, disjoint chunk writes. Bit-identical to
/// [`radix_lsd_serial`] for any chunk count — the differential proptests
/// pin this across thread counts {1, 2, 3, 8}.
fn radix_lsd_par<K: RadixKey>(keys: &mut Vec<K>, tmp: &mut Vec<K>, bits: u32, pool: &Pool) -> u64 {
    let n = keys.len();
    debug_assert!(n < u32::MAX as usize);
    let num_digits = bits.div_ceil(8) as usize;
    debug_assert!(num_digits <= 16);
    let ranges = pool.chunk_ranges(n, PAR_MIN_CHUNK);
    let chunks = ranges.len();
    if chunks < 2 {
        return radix_lsd_serial(keys, tmp, bits);
    }
    // One parallel scan gathers every digit position's histogram per chunk,
    // mirroring the serial one-scan gather.
    let first_hists: Vec<Box<[[u32; 256]]>> = {
        let src: &[K] = keys;
        let ranges = &ranges;
        pool.map(chunks, |c, _| {
            let mut h = vec![[0u32; 256]; num_digits].into_boxed_slice();
            for &k in &src[ranges[c].clone()] {
                for (b, hb) in h.iter_mut().enumerate() {
                    hb[k.byte(b as u32)] += 1;
                }
            }
            h
        })
    };
    // Per-digit totals are permutation-invariant, so the trivial-pass
    // decisions below match the serial path exactly.
    let mut totals = vec![[0u32; 256]; num_digits];
    for h in &first_hists {
        for (t, hb) in totals.iter_mut().zip(h.iter()) {
            for (td, &hd) in t.iter_mut().zip(hb.iter()) {
                *td += hd;
            }
        }
    }
    tmp.clear();
    tmp.resize(n, K::default());
    let mut passes = 0u64;
    for b in 0..num_digits {
        if totals[b].iter().any(|&c| c as usize == n) {
            continue;
        }
        // Per-chunk digit counts for the *current* arrangement: the
        // first executed pass can reuse the initial scan; later passes see
        // reshuffled chunks and must recount this digit.
        let counts: Vec<[u32; 256]> = if passes == 0 {
            first_hists.iter().map(|h| h[b]).collect()
        } else {
            let src: &[K] = keys;
            let ranges = &ranges;
            pool.map(chunks, |c, _| {
                let mut h = [0u32; 256];
                for &k in &src[ranges[c].clone()] {
                    h[k.byte(b as u32)] += 1;
                }
                h
            })
        };
        // starts[c][d] = (exclusive prefix of totals over digits) +
        // (exclusive prefix of counts over earlier chunks) — the exact
        // position serial stable scatter would use.
        let mut starts = vec![[0u32; 256]; chunks];
        let mut digit_base = 0u32;
        for d in 0..256 {
            let mut run = digit_base;
            for c in 0..chunks {
                starts[c][d] = run;
                run += counts[c][d];
            }
            digit_base += totals[b][d];
        }
        {
            let src: &[K] = keys;
            let ranges = &ranges;
            let dst = ScatterDst(tmp.as_mut_ptr());
            pool.for_each_mut(&mut starts, |c, row, _| {
                for &k in &src[ranges[c].clone()] {
                    let d = k.byte(b as u32);
                    dst.write(row[d] as usize, k);
                    row[d] += 1;
                }
            });
        }
        std::mem::swap(keys, tmp);
        passes += 1;
    }
    passes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::ROOT_LEN;

    type Oct3 = Octant<3>;

    /// Deterministic xorshift octant soup: random descent paths from root.
    fn soup<const D: usize>(n: usize, seed: u64, max_depth: u8) -> Vec<Octant<D>> {
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|_| {
                let depth = (rng() % (max_depth as u64 + 1)) as u8;
                let mut o = Octant::<D>::root();
                for _ in 0..depth {
                    o = o.child(rng() as usize % Octant::<D>::NUM_CHILDREN);
                }
                o
            })
            .collect()
    }

    #[test]
    fn matches_sort_unstable_3d() {
        for seed in [1, 7, 99] {
            let mut a = soup::<3>(500, seed, 10);
            let mut b = a.clone();
            a.sort_unstable();
            sort_octants(&mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn matches_sort_unstable_2d() {
        let mut a = soup::<2>(777, 42, 14);
        let mut b = a.clone();
        a.sort_unstable();
        sort_octants(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn presorted_early_out() {
        let mut a = soup::<3>(300, 5, 8);
        a.sort_unstable();
        let mut s = SortScratch::new();
        sort_octants_with(&mut a, &mut s);
        assert_eq!(s.presorted_hits, 1);
        assert_eq!(s.radix_sorts, 0);
        assert_eq!(s.radix_passes, 0);
    }

    #[test]
    fn out_of_root_still_sorts() {
        // Shift half the soup a full root length negative: still packable,
        // still must match the comparison sort.
        let mut a = soup::<3>(400, 11, 6);
        for (i, o) in a.iter_mut().enumerate() {
            if i % 2 == 0 {
                o.coords[0] -= ROOT_LEN;
            }
        }
        let mut b = a.clone();
        a.sort_unstable();
        sort_octants(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn unpackable_falls_back() {
        let mut a = soup::<3>(200, 3, 6);
        a[0].coords[0] = -2 * ROOT_LEN; // outside the packable window
        let mut b = a.clone();
        let mut s = SortScratch::new();
        sort_octants_with(&mut a, &mut s);
        assert_eq!(s.comparison_fallbacks, 1);
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn small_and_empty_inputs() {
        let mut v: Vec<Oct3> = vec![];
        sort_octants(&mut v);
        let r = Oct3::root();
        let mut v = vec![r.child(3), r.child(1)];
        sort_octants(&mut v);
        assert_eq!(v, vec![r.child(1), r.child(3)]);
    }

    #[test]
    fn scratch_reuse_across_dimensions() {
        let mut s = SortScratch::new();
        let mut a2 = soup::<2>(2000, 9, 9);
        let mut a3 = soup::<3>(2000, 9, 9);
        let (mut b2, mut b3) = (a2.clone(), a3.clone());
        sort_octants_with(&mut a2, &mut s);
        sort_octants_with(&mut a3, &mut s);
        assert_eq!(s.radix_sorts, 2);
        assert!(s.radix_passes > 0);
        b2.sort_unstable();
        b3.sort_unstable();
        assert_eq!(a2, b2);
        assert_eq!(a3, b3);
    }

    #[test]
    fn small_input_crossover_pins_cutoff() {
        // One octant below the cutoff: the comparison fallback must run
        // (no histogram cost on tiny inputs — the n≈330 regression fix).
        let mut below = soup::<3>(RADIX_MIN_LEN - 1, 21, 9);
        let mut s = SortScratch::new();
        sort_octants_with(&mut below, &mut s);
        assert_eq!((s.comparison_fallbacks, s.radix_sorts), (1, 0));
        assert!(below.windows(2).all(|w| w[0] <= w[1]));
        // At the cutoff: the radix path must take over.
        let mut at = soup::<3>(RADIX_MIN_LEN, 21, 9);
        let mut s = SortScratch::new();
        sort_octants_with(&mut at, &mut s);
        assert_eq!((s.comparison_fallbacks, s.radix_sorts), (0, 1));
        assert!(at.windows(2).all(|w| w[0] <= w[1]));
        // Same crossover on the native packed-key path.
        let mut keys: Vec<u128> = soup::<2>(RADIX_MIN_LEN, 33, 12)
            .iter()
            .map(key::pack::<2>)
            .collect();
        let mut s = SortScratch::new();
        sort_keys_with::<2>(&mut keys, &mut s);
        assert_eq!((s.comparison_fallbacks, s.radix_sorts), (0, 1));
        keys.truncate(RADIX_MIN_LEN - 1);
        keys.reverse(); // definitely unsorted
        let mut s = SortScratch::new();
        sort_keys_with::<2>(&mut keys, &mut s);
        assert_eq!((s.comparison_fallbacks, s.radix_sorts), (1, 0));
    }

    /// The parallel radix must be bit-identical to serial (threads = 1) for
    /// every thread count, both key widths, including reused-scratch steady
    /// state. This is the kernel-level half of the determinism contract;
    /// the forest-level half lives in `crates/forest/tests/par_differential`.
    #[test]
    fn parallel_radix_bit_identical_across_thread_counts() {
        use std::sync::Arc;
        let n = PAR_MIN_LEN + 4321; // above the parallel threshold
        for seed in [3u64, 17] {
            let base2 = soup::<2>(n, seed, 13);
            let base3 = soup::<3>(n, seed, 13);
            let serial_pool = Arc::new(Pool::new(1));
            let (expected2, expected3, expected_counters) = serial_pool.install(|| {
                let mut s = SortScratch::new();
                let (mut a2, mut a3) = (base2.clone(), base3.clone());
                sort_octants_with(&mut a2, &mut s);
                sort_octants_with(&mut a3, &mut s);
                // Steady state: sort again pre-sorted, then a reshuffled copy.
                sort_octants_with(&mut a2, &mut s);
                let mut again = base3.clone();
                sort_octants_with(&mut again, &mut s);
                assert_eq!(again, a3);
                (a2, a3, (s.radix_passes, s.presorted_hits, s.radix_sorts))
            });
            for threads in [2usize, 3, 8] {
                let pool = Arc::new(Pool::new(threads));
                pool.install(|| {
                    let mut s = SortScratch::new();
                    let (mut a2, mut a3) = (base2.clone(), base3.clone());
                    sort_octants_with(&mut a2, &mut s);
                    sort_octants_with(&mut a3, &mut s);
                    sort_octants_with(&mut a2, &mut s);
                    let mut again = base3.clone();
                    sort_octants_with(&mut again, &mut s);
                    assert_eq!(a2, expected2, "threads={threads} seed={seed} 2D");
                    assert_eq!(a3, expected3, "threads={threads} seed={seed} 3D");
                    assert_eq!(again, expected3);
                    assert_eq!(
                        (s.radix_passes, s.presorted_hits, s.radix_sorts),
                        expected_counters,
                        "threads={threads}: counters must be schedule-invariant"
                    );
                });
            }
        }
    }

    #[test]
    fn parallel_key_sort_matches_serial() {
        use std::sync::Arc;
        let n = PAR_MIN_LEN * 2 + 77;
        let octs = soup::<3>(n, 41, 14);
        let base: Vec<u128> = octs.iter().map(key::pack::<3>).collect();
        let mut expected = base.clone();
        expected.sort_unstable();
        for threads in [1usize, 2, 3, 8] {
            let pool = Arc::new(Pool::new(threads));
            pool.install(|| {
                let mut s = SortScratch::new();
                let mut keys = base.clone();
                sort_keys_with::<3>(&mut keys, &mut s);
                assert_eq!(keys, expected, "threads={threads}");
                assert!(s.radix_passes > 0);
            });
        }
    }
}
