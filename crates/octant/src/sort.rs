//! LSD radix sort of octants through their packed Morton keys.
//!
//! [`sort_octants`] packs each octant into a single integer key (see
//! [`crate::key`]), radix-sorts the keys least-significant-digit first with
//! 8-bit digits, and unpacks in place. Because key order equals
//! [`crate::morton::cmp`], the result is exactly what
//! `sort_unstable` produces — the proptests assert this — at O(n) per digit
//! instead of O(n log n) comparisons through the XOR-MSB comparator.
//!
//! Two fast paths keep the common cases cheap: an already-sorted input
//! returns after one linear scan, and trivial digit positions (all keys
//! sharing a byte, which is the norm — 2D keys use 59 of 64 bits and real
//! coordinate distributions cluster high bytes) are skipped entirely using
//! histograms gathered in a single pass over the keys.
//!
//! Inputs containing octants outside the packable coordinate range fall
//! back to `sort_unstable`; the balance algorithms never produce such
//! octants (see [`crate::key::packable`]), but the fallback keeps the
//! routine total.

use crate::key::{self, key_bits};
use crate::octant::Octant;

/// Reusable buffers for [`sort_octants_with`]. One scratch serves any
/// number of sorts of any dimension; buffers grow to the high-water mark
/// and are retained across calls. The counters are cumulative and feed the
/// `forestbal-trace` kernel counters.
#[derive(Clone, Default)]
pub struct SortScratch {
    k64: Vec<u64>,
    t64: Vec<u64>,
    k128: Vec<u128>,
    t128: Vec<u128>,
    /// Radix passes actually executed (trivial single-byte passes excluded).
    pub radix_passes: u64,
    /// Sorts satisfied by the already-sorted early-out.
    pub presorted_hits: u64,
    /// Sorts routed through the radix path.
    pub radix_sorts: u64,
    /// Sorts that fell back to comparison sort (unpackable input).
    pub comparison_fallbacks: u64,
}

impl SortScratch {
    /// New scratch with empty buffers and zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Below this length a comparison sort beats packing + histogramming.
const RADIX_MIN_LEN: usize = 64;

/// Sort octants into Morton order (ancestors first), equivalent to
/// `a.sort_unstable()`. Allocates its own scratch; prefer
/// [`sort_octants_with`] on hot paths.
pub fn sort_octants<const D: usize>(a: &mut [Octant<D>]) {
    sort_octants_with(a, &mut SortScratch::new());
}

/// [`sort_octants`] with caller-provided scratch buffers.
pub fn sort_octants_with<const D: usize>(a: &mut [Octant<D>], s: &mut SortScratch) {
    if a.len() < 2 {
        return;
    }
    if is_sorted(a) {
        s.presorted_hits += 1;
        return;
    }
    if a.len() < RADIX_MIN_LEN || !key::packable_all(a) {
        s.comparison_fallbacks += 1;
        a.sort_unstable();
        return;
    }
    s.radix_sorts += 1;
    if D <= 2 {
        pack_keys(a, &mut s.k64, key::pack64::<D>);
        s.radix_passes += radix_lsd(&mut s.k64, &mut s.t64, key_bits::<D>());
        unpack_keys(a, &s.k64, key::unpack64::<D>);
    } else {
        pack_keys(a, &mut s.k128, key::pack::<D>);
        s.radix_passes += radix_lsd(&mut s.k128, &mut s.t128, key_bits::<D>());
        unpack_keys(a, &s.k128, key::unpack::<D>);
    }
}

/// Radix-sort an array of packed keys in place — the native sort of the
/// SoA forest storage, where leaves already live as `u128` keys and no
/// pack/unpack conversion is needed at all. `D` selects the key width
/// actually populated ([`key_bits`]); passes over bytes above it are
/// skipped. Shares the early-outs and counters of [`sort_octants_with`].
pub fn sort_keys_with<const D: usize>(keys: &mut Vec<u128>, s: &mut SortScratch) {
    if keys.len() < 2 {
        return;
    }
    if keys.windows(2).all(|w| w[0] <= w[1]) {
        s.presorted_hits += 1;
        return;
    }
    if keys.len() < RADIX_MIN_LEN {
        s.comparison_fallbacks += 1;
        keys.sort_unstable();
        return;
    }
    s.radix_sorts += 1;
    s.radix_passes += radix_lsd(keys, &mut s.t128, key_bits::<D>());
}

#[inline]
fn is_sorted<const D: usize>(a: &[Octant<D>]) -> bool {
    a.windows(2).all(|w| w[0] <= w[1])
}

#[inline]
fn pack_keys<const D: usize, K>(
    a: &[Octant<D>],
    keys: &mut Vec<K>,
    pack: impl Fn(&Octant<D>) -> K,
) {
    keys.clear();
    keys.extend(a.iter().map(pack));
}

#[inline]
fn unpack_keys<const D: usize, K: Copy>(
    a: &mut [Octant<D>],
    keys: &[K],
    unpack: impl Fn(K) -> Octant<D>,
) {
    for (o, &k) in a.iter_mut().zip(keys) {
        *o = unpack(k);
    }
}

/// An unsigned integer usable as a radix-sort key.
trait RadixKey: Copy + Default {
    fn byte(self, i: u32) -> usize;
}

impl RadixKey for u64 {
    #[inline]
    fn byte(self, i: u32) -> usize {
        (self >> (8 * i)) as u8 as usize
    }
}

impl RadixKey for u128 {
    #[inline]
    fn byte(self, i: u32) -> usize {
        (self >> (8 * i)) as u8 as usize
    }
}

/// LSD radix sort of `keys` using `tmp` as the ping-pong buffer, visiting
/// only the low `bits` bits. Histograms for every digit position are
/// gathered in one pass, and positions where all keys share one byte value
/// are skipped. Returns the number of scatter passes executed.
fn radix_lsd<K: RadixKey>(keys: &mut Vec<K>, tmp: &mut Vec<K>, bits: u32) -> u64 {
    let n = keys.len();
    debug_assert!(n < u32::MAX as usize);
    let num_digits = bits.div_ceil(8) as usize;
    debug_assert!(num_digits <= 16);
    let mut hist = [[0u32; 256]; 16];
    for &k in keys.iter() {
        for (b, h) in hist.iter_mut().enumerate().take(num_digits) {
            h[k.byte(b as u32)] += 1;
        }
    }
    tmp.clear();
    tmp.resize(n, K::default());
    let mut passes = 0u64;
    // `keys` always holds the current data; after each scatter the buffers
    // swap so the loop body never cares which allocation it started in.
    for (b, h) in hist.iter_mut().enumerate().take(num_digits) {
        // Trivial pass: every key has the same byte here — order unchanged.
        if h.iter().any(|&c| c as usize == n) {
            continue;
        }
        let mut sum = 0u32;
        for c in h.iter_mut() {
            let start = sum;
            sum += *c;
            *c = start;
        }
        for &k in keys.iter() {
            let d = k.byte(b as u32);
            tmp[h[d] as usize] = k;
            h[d] += 1;
        }
        std::mem::swap(keys, tmp);
        passes += 1;
    }
    passes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coords::ROOT_LEN;

    type Oct3 = Octant<3>;

    /// Deterministic xorshift octant soup: random descent paths from root.
    fn soup<const D: usize>(n: usize, seed: u64, max_depth: u8) -> Vec<Octant<D>> {
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|_| {
                let depth = (rng() % (max_depth as u64 + 1)) as u8;
                let mut o = Octant::<D>::root();
                for _ in 0..depth {
                    o = o.child(rng() as usize % Octant::<D>::NUM_CHILDREN);
                }
                o
            })
            .collect()
    }

    #[test]
    fn matches_sort_unstable_3d() {
        for seed in [1, 7, 99] {
            let mut a = soup::<3>(500, seed, 10);
            let mut b = a.clone();
            a.sort_unstable();
            sort_octants(&mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn matches_sort_unstable_2d() {
        let mut a = soup::<2>(777, 42, 14);
        let mut b = a.clone();
        a.sort_unstable();
        sort_octants(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn presorted_early_out() {
        let mut a = soup::<3>(300, 5, 8);
        a.sort_unstable();
        let mut s = SortScratch::new();
        sort_octants_with(&mut a, &mut s);
        assert_eq!(s.presorted_hits, 1);
        assert_eq!(s.radix_sorts, 0);
        assert_eq!(s.radix_passes, 0);
    }

    #[test]
    fn out_of_root_still_sorts() {
        // Shift half the soup a full root length negative: still packable,
        // still must match the comparison sort.
        let mut a = soup::<3>(400, 11, 6);
        for (i, o) in a.iter_mut().enumerate() {
            if i % 2 == 0 {
                o.coords[0] -= ROOT_LEN;
            }
        }
        let mut b = a.clone();
        a.sort_unstable();
        sort_octants(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn unpackable_falls_back() {
        let mut a = soup::<3>(200, 3, 6);
        a[0].coords[0] = -2 * ROOT_LEN; // outside the packable window
        let mut b = a.clone();
        let mut s = SortScratch::new();
        sort_octants_with(&mut a, &mut s);
        assert_eq!(s.comparison_fallbacks, 1);
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn small_and_empty_inputs() {
        let mut v: Vec<Oct3> = vec![];
        sort_octants(&mut v);
        let r = Oct3::root();
        let mut v = vec![r.child(3), r.child(1)];
        sort_octants(&mut v);
        assert_eq!(v, vec![r.child(1), r.child(3)]);
    }

    #[test]
    fn scratch_reuse_across_dimensions() {
        let mut s = SortScratch::new();
        let mut a2 = soup::<2>(300, 9, 9);
        let mut a3 = soup::<3>(300, 9, 9);
        let (mut b2, mut b3) = (a2.clone(), a3.clone());
        sort_octants_with(&mut a2, &mut s);
        sort_octants_with(&mut a3, &mut s);
        assert_eq!(s.radix_sorts, 2);
        assert!(s.radix_passes > 0);
        b2.sort_unstable();
        b3.sort_unstable();
        assert_eq!(a2, b2);
        assert_eq!(a3, b3);
    }
}
