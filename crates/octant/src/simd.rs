//! x86_64 SIMD kernels behind the `simd` feature: BMI2 `pdep`/`pext` key
//! codecs and an AVX2 packable-range check.
//!
//! Every kernel here is bit-identical to its scalar counterpart — the
//! scalar path is the specification, the tests assert equality, and the CI
//! matrix pins the end-to-end BENCH checksums equal across feature
//! configurations. Dispatch is by runtime detection
//! (`is_x86_feature_detected!`), performed once per *batch* so the branch
//! never sits inside a per-octant loop; single-octant operations always use
//! the scalar path, where the dispatch overhead would dominate.
//!
//! What is (and isn't) vectorized:
//!
//! * **Key pack/unpack** ([`pack_batch_bmi2`]/[`unpack_batch_bmi2`]): the
//!   Morton bit-interleave is exactly `pdep` with a stride mask, replacing
//!   the 5–6 shift/mask rounds of the scalar spread/compact ladders with
//!   one instruction per coordinate. This is the dominant cost of the wire
//!   codec and of struct↔key conversion at the API edges.
//! * **Packable-range check** ([`packable_all_avx2`]): the sort and codec
//!   fast paths must first verify every coordinate lies in
//!   `[-ROOT_LEN, 2*ROOT_LEN)`; AVX2 compares 8 lanes per cycle with the
//!   level words masked out by constant blends.
//! * **Radix digit histograms stay scalar**: the scatter pass is
//!   memory-bound and the histogram gather is a data-dependent byte
//!   extract; profiling in PR 3 showed the sort at memory bandwidth
//!   already, so there is no arithmetic headroom for SIMD to reclaim.

#![allow(unsafe_code)]

use crate::coords::ROOT_LEN;
use crate::key::KEY_LEVEL_BITS;
use crate::octant::Octant;

#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::*;

/// Is the BMI2 (`pdep`/`pext`) path available on this CPU?
#[inline]
pub fn bmi2_available() -> bool {
    is_x86_feature_detected!("bmi2")
}

/// Is the AVX2 packable-check path available on this CPU?
#[inline]
pub fn avx2_available() -> bool {
    is_x86_feature_detected!("avx2")
}

/// Stride-2 bit plane of axis 0 in 2D.
const M2: u64 = 0x5555_5555_5555_5555;
/// Stride-3 bit plane of axis 0 (low 21 coordinate bits).
const M3_LO: u64 = 0x1249_2492_4924_9249;
/// Stride-3 bit plane of axis 0 (coordinate bits 21..27, after `>> 63`).
const M3_HI: u64 = 0x9249;

/// Slice core of [`pack_batch_bmi2`]: encode `src[i]` into `dst[i]`.
/// This form chunks cleanly across the `forestbal-par` pool — each task
/// packs into its own disjoint destination range.
///
/// # Safety
/// The caller must have verified BMI2 support ([`bmi2_available`]).
#[target_feature(enable = "bmi2")]
pub unsafe fn pack_slice_bmi2<const D: usize>(src: &[Octant<D>], dst: &mut [u128]) {
    debug_assert!(D == 2 || D == 3);
    debug_assert_eq!(src.len(), dst.len());
    for (slot, o) in dst.iter_mut().zip(src) {
        debug_assert!(crate::key::packable(o), "unpackable octant {o:?}");
        let key = match D {
            2 => {
                let bx = (o.coords[0] + crate::key::KEY_BIAS) as u64;
                let by = (o.coords[1] + crate::key::KEY_BIAS) as u64;
                ((_pdep_u64(bx, M2) | _pdep_u64(by, M2 << 1)) as u128) << KEY_LEVEL_BITS
                    | o.level as u128
            }
            _ => {
                let mut idx: u128 = 0;
                for (j, &c) in o.coords.iter().enumerate() {
                    let b = (c + crate::key::KEY_BIAS) as u64;
                    let lo = _pdep_u64(b & 0x1F_FFFF, M3_LO);
                    let hi = _pdep_u64(b >> 21, M3_HI);
                    idx |= (lo as u128 | (hi as u128) << 63) << j;
                }
                idx << KEY_LEVEL_BITS | o.level as u128
            }
        };
        *slot = key;
    }
}

/// Batch [`crate::key::pack`] using `pdep` for the bit spread.
///
/// # Safety
/// The caller must have verified BMI2 support ([`bmi2_available`]).
#[target_feature(enable = "bmi2")]
pub unsafe fn pack_batch_bmi2<const D: usize>(src: &[Octant<D>], dst: &mut Vec<u128>) {
    let base = dst.len();
    dst.resize(base + src.len(), 0);
    // SAFETY: caller verified BMI2.
    unsafe { pack_slice_bmi2(src, &mut dst[base..]) };
}

/// Slice core of [`unpack_batch_bmi2`]: decode `src[i]` into `dst[i]`.
///
/// # Safety
/// The caller must have verified BMI2 support ([`bmi2_available`]).
#[target_feature(enable = "bmi2")]
pub unsafe fn unpack_slice_bmi2<const D: usize>(src: &[u128], dst: &mut [Octant<D>]) {
    debug_assert!(D == 2 || D == 3);
    debug_assert_eq!(src.len(), dst.len());
    for (slot, &key) in dst.iter_mut().zip(src) {
        let level = (key & ((1 << KEY_LEVEL_BITS) - 1)) as u8;
        let idx = key >> KEY_LEVEL_BITS;
        let coords = std::array::from_fn(|j| {
            let b = match D {
                2 => _pext_u64(idx as u64, M2 << j),
                _ => {
                    let shifted = idx >> j;
                    _pext_u64(shifted as u64, M3_LO)
                        | _pext_u64((shifted >> 63) as u64, M3_HI) << 21
                }
            };
            b as crate::coords::Coord - crate::key::KEY_BIAS
        });
        *slot = Octant { coords, level };
    }
}

/// Batch [`crate::key::unpack`] using `pext` for the bit compact.
///
/// # Safety
/// The caller must have verified BMI2 support ([`bmi2_available`]).
#[target_feature(enable = "bmi2")]
pub unsafe fn unpack_batch_bmi2<const D: usize>(src: &[u128], dst: &mut Vec<Octant<D>>) {
    let base = dst.len();
    dst.resize(
        base + src.len(),
        Octant {
            coords: [0; D],
            level: 0,
        },
    );
    // SAFETY: caller verified BMI2.
    unsafe { unpack_slice_bmi2(src, &mut dst[base..]) };
}

/// AVX2 check that every coordinate of every octant lies in the packable
/// window `[-ROOT_LEN, 2*ROOT_LEN)` — equivalent to
/// `a.iter().all(key::packable)`.
///
/// `Octant<3>` is 16 bytes (three coordinate words plus the level word), so
/// two octants fill one `__m256i` with the level words in lanes 3 and 7.
/// `Octant<2>` is 12 bytes, so eight octants fill three registers with the
/// level words rotating through lanes `{2,5}`, `{0,3,6}`, `{1,4,7}`. Level
/// lanes are replaced by zero (always in range) with constant blends before
/// the range compare.
///
/// # Safety
/// The caller must have verified AVX2 support ([`avx2_available`]).
#[target_feature(enable = "avx2")]
pub unsafe fn packable_all_avx2<const D: usize>(a: &[Octant<D>]) -> bool {
    // The raw word loads assume coords-first layout with the level in the
    // trailing word; `Octant` is repr(Rust), so verify before committing.
    if (D != 2 && D != 3)
        || std::mem::offset_of!(Octant<D>, coords) != 0
        || std::mem::offset_of!(Octant<D>, level) != 4 * D
        || std::mem::size_of::<Octant<D>>() != 4 * D + 4
    {
        return a.iter().all(crate::key::packable);
    }
    let lo = _mm256_set1_epi32(-ROOT_LEN - 1);
    let hi = _mm256_set1_epi32(2 * ROOT_LEN);
    // In-range test for one register: lo < c && c < hi for every lane.
    let in_range = |v: __m256i| -> bool {
        let ok = _mm256_and_si256(_mm256_cmpgt_epi32(v, lo), _mm256_cmpgt_epi32(hi, v));
        _mm256_movemask_epi8(ok) == -1i32
    };
    let ptr = a.as_ptr() as *const i32;
    let words = std::mem::size_of_val(a) / 4;
    let mut w = 0;
    if D == 3 {
        // 2 octants per register; lanes 3 and 7 are level words.
        while w + 8 <= words {
            let v = _mm256_loadu_si256(ptr.add(w) as *const __m256i);
            let v = _mm256_blend_epi32(v, _mm256_setzero_si256(), 0b1000_1000);
            if !in_range(v) {
                return false;
            }
            w += 8;
        }
    } else {
        // 8 octants per 3 registers; level words rotate through the lanes.
        while w + 24 <= words {
            let v0 = _mm256_loadu_si256(ptr.add(w) as *const __m256i);
            let v1 = _mm256_loadu_si256(ptr.add(w + 8) as *const __m256i);
            let v2 = _mm256_loadu_si256(ptr.add(w + 16) as *const __m256i);
            let z = _mm256_setzero_si256();
            let v0 = _mm256_blend_epi32(v0, z, 0b0010_0100);
            let v1 = _mm256_blend_epi32(v1, z, 0b0100_1001);
            let v2 = _mm256_blend_epi32(v2, z, 0b1001_0010);
            if !(in_range(v0) && in_range(v1) && in_range(v2)) {
                return false;
            }
            w += 24;
        }
    }
    // Scalar tail.
    a[w / (std::mem::size_of::<Octant<D>>() / 4)..]
        .iter()
        .all(crate::key::packable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key;

    fn soup<const D: usize>(n: usize, seed: u64) -> Vec<Octant<D>> {
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|_| {
                let mut o = Octant::<D>::root();
                for _ in 0..(rng() % 12) {
                    o = o.child(rng() as usize % Octant::<D>::NUM_CHILDREN);
                }
                if rng() % 3 == 0 {
                    o.coords[rng() as usize % D] -= ROOT_LEN;
                }
                o
            })
            .collect()
    }

    #[test]
    fn bmi2_pack_matches_scalar() {
        if !bmi2_available() {
            return;
        }
        for seed in [1u64, 9, 77] {
            let a2 = soup::<2>(257, seed);
            let a3 = soup::<3>(257, seed);
            let (mut k2, mut k3) = (vec![], vec![]);
            unsafe {
                pack_batch_bmi2(&a2, &mut k2);
                pack_batch_bmi2(&a3, &mut k3);
            }
            assert!(k2.iter().zip(&a2).all(|(&k, o)| k == key::pack(o)));
            assert!(k3.iter().zip(&a3).all(|(&k, o)| k == key::pack(o)));
            let (mut b2, mut b3) = (vec![], vec![]);
            unsafe {
                unpack_batch_bmi2(&k2, &mut b2);
                unpack_batch_bmi2(&k3, &mut b3);
            }
            assert_eq!(b2, a2);
            assert_eq!(b3, a3);
        }
    }

    #[test]
    fn avx2_packable_matches_scalar() {
        if !avx2_available() {
            return;
        }
        for seed in [2u64, 31] {
            // Various lengths exercise the vector body and the scalar tail.
            for n in [0usize, 1, 7, 8, 24, 25, 100, 256] {
                let mut a2 = soup::<2>(n, seed);
                let mut a3 = soup::<3>(n, seed);
                unsafe {
                    assert!(packable_all_avx2(&a2));
                    assert!(packable_all_avx2(&a3));
                }
                if n > 0 {
                    // Poison one octant; the check must notice regardless of
                    // where it lands relative to the vector blocks.
                    let i = (seed as usize * 7) % n;
                    a2[i].coords[0] = -2 * ROOT_LEN;
                    a3[i].coords[i % 3] = 2 * ROOT_LEN;
                    unsafe {
                        assert!(!packable_all_avx2(&a2), "n={n} i={i}");
                        assert!(!packable_all_avx2(&a3), "n={n} i={i}");
                    }
                }
            }
        }
    }
}
