//! Coordinate conventions shared by every octant operation.

/// Integer coordinate type of octant corners.
///
/// Signed so that neighbor constructions may leave the root cube transiently
/// (e.g. when an insulation layer reaches into an adjacent tree of the
/// forest), mirroring p4est's use of signed quadrant coordinates.
pub type Coord = i32;

/// Maximum refinement depth: the finest octant has side length `1` on a
/// root of side `2^MAX_LEVEL`.
///
/// 24 levels leave ample headroom in an `i32` for out-of-root excursions of
/// up to a full root length on either side, and keep the interleaved Morton
/// index of a 3D octant within 72 bits (`u128`).
pub const MAX_LEVEL: u8 = 24;

/// Side length of the root octant in integer coordinates.
pub const ROOT_LEN: Coord = 1 << MAX_LEVEL;

/// Side length of an octant at `level` (level 0 = root).
#[inline]
pub fn len_at(level: u8) -> Coord {
    debug_assert!(level <= MAX_LEVEL);
    1 << (MAX_LEVEL - level)
}

/// The paper's "size" of an octant at `level`: its side length is
/// `2^size_log2_at(level)`.
#[inline]
pub fn size_log2_at(level: u8) -> u8 {
    debug_assert!(level <= MAX_LEVEL);
    MAX_LEVEL - level
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_len_is_consistent() {
        assert_eq!(len_at(0), ROOT_LEN);
        assert_eq!(len_at(MAX_LEVEL), 1);
        assert_eq!(size_log2_at(0), MAX_LEVEL);
        assert_eq!(size_log2_at(MAX_LEVEL), 0);
    }

    #[test]
    fn lengths_halve_per_level() {
        for l in 0..MAX_LEVEL {
            assert_eq!(len_at(l), 2 * len_at(l + 1));
        }
    }
}
