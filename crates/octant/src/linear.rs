//! Operations on *linear octrees*: sorted arrays of non-overlapping octants.
//!
//! A linear octree stores only leaves, in Morton order. Two additional
//! predicates matter throughout the balance algorithms: *linearity* (no
//! octant is an ancestor of another) and *completeness* (no holes between
//! successive octants). `linearize` restores the former by dropping
//! ancestors, `complete_subtree` restores the latter by filling every gap
//! with the coarsest possible octants.

use crate::morton::MortonIndex;
use crate::octant::Octant;
use crate::sort::{sort_octants_with, SortScratch};

/// Is the slice strictly sorted in Morton order?
pub fn is_sorted_strict<const D: usize>(a: &[Octant<D>]) -> bool {
    a.windows(2).all(|w| w[0] < w[1])
}

/// Is the sorted slice linear, i.e. free of overlapping octants?
///
/// Because ancestors sort immediately before their first descendant, it
/// suffices to check adjacent entries.
pub fn is_linear<const D: usize>(a: &[Octant<D>]) -> bool {
    a.windows(2)
        .all(|w| w[0] < w[1] && !w[0].is_ancestor_of(&w[1]))
}

/// [`is_linear`] over packed keys: strictly sorted (integer order equals
/// Morton preorder) with no ancestor/descendant pairs. The native check of
/// the SoA forest storage — no decode.
pub fn is_linear_keys<const D: usize>(keys: &[u128]) -> bool {
    use crate::packed::PackedOctant;
    keys.windows(2)
        .all(|w| w[0] < w[1] && !PackedOctant::<D>(w[0]).is_ancestor_of(PackedOctant(w[1])))
}

/// Is the sorted linear slice a complete octree of `root` (no holes)?
pub fn is_complete<const D: usize>(a: &[Octant<D>], root: &Octant<D>) -> bool {
    if a.is_empty() {
        return false;
    }
    if a[0].index() != root.index() {
        return false;
    }
    if a[a.len() - 1].last_index() != root.last_index() {
        return false;
    }
    a.windows(2).all(|w| w[0].last_index() + 1 == w[1].index())
}

/// Sort the array and remove every octant that overlaps a finer one (and
/// exact duplicates), keeping the finest octants — the `Linearize` step of
/// the old balance algorithm (Figure 6 of the paper).
///
/// Runs in O(n) per radix digit for the sort plus O(n) for the sweep, and
/// skips sorting entirely when the input is already strictly sorted (the
/// common case for splice and completion outputs).
pub fn linearize<const D: usize>(a: &mut Vec<Octant<D>>) {
    linearize_with(a, &mut SortScratch::new());
}

/// [`linearize`] with caller-provided sort scratch for hot loops.
pub fn linearize_with<const D: usize>(a: &mut Vec<Octant<D>>, s: &mut SortScratch) {
    if !is_sorted_strict(a) {
        sort_octants_with(a, s);
        a.dedup();
    }
    // An ancestor sorts directly before its first present descendant, so a
    // single backward-looking sweep removes all overlaps.
    let mut w = 0;
    for r in 0..a.len() {
        while w > 0 && a[w - 1].is_ancestor_of(&a[r]) {
            w -= 1;
        }
        a[w] = a[r];
        w += 1;
    }
    a.truncate(w);
}

/// Append to `out` the coarsest octants exactly covering the inclusive
/// Morton-index interval `[lo, hi]` (indices of unit cells at `MAX_LEVEL`).
///
/// This is the canonical decomposition of an SFC interval into maximal
/// aligned octants; it produces octants in Morton order.
pub fn complete_region<const D: usize>(lo: MortonIndex, hi: MortonIndex, out: &mut Vec<Octant<D>>) {
    use crate::coords::MAX_LEVEL;
    if lo > hi {
        return;
    }
    let d = D as u32;
    let mut pos = lo;
    while pos <= hi {
        // Largest granularity allowed by the alignment of `pos`...
        let align = if pos == 0 {
            MAX_LEVEL as u32
        } else {
            (pos.trailing_zeros() / d).min(MAX_LEVEL as u32)
        };
        // ...and by the remaining extent of the interval.
        let remaining = hi - pos + 1;
        let extent = (127 - remaining.leading_zeros()) / d;
        let s = align.min(extent);
        out.push(Octant::from_index(pos, MAX_LEVEL - s as u8));
        pos += 1u128 << (d * s);
    }
}

/// Complete the subtree rooted at `root`: given sorted, linear, pinned
/// leaves inside `root`, fill every gap (before the first leaf, between
/// successive leaves, and after the last leaf) with the coarsest octants.
///
/// The result is a complete linear octree of `root` containing every input
/// octant as a leaf. With an empty input the result is `[root]`.
pub fn complete_subtree<const D: usize>(root: &Octant<D>, leaves: &[Octant<D>]) -> Vec<Octant<D>> {
    debug_assert!(is_linear(leaves));
    debug_assert!(leaves.iter().all(|o| root.contains(o)), "leaf outside root");
    let mut out = Vec::with_capacity(leaves.len() * 2 + 1);
    let mut cursor = root.index();
    for leaf in leaves {
        let start = leaf.index();
        if start > cursor {
            complete_region(cursor, start - 1, &mut out);
        }
        out.push(*leaf);
        cursor = leaf.last_index() + 1;
    }
    if cursor <= root.last_index() {
        complete_region(cursor, root.last_index(), &mut out);
    }
    out
}

/// Merge two sorted octant arrays into one sorted array (duplicates kept).
pub fn merge_sorted<const D: usize>(a: &[Octant<D>], b: &[Octant<D>]) -> Vec<Octant<D>> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    type Oct2 = Octant<2>;
    type Oct3 = Octant<3>;

    #[test]
    fn linearize_removes_ancestors() {
        let r = Oct2::root();
        let mut v = vec![r, r.child(0), r.child(0).child(2), r.child(3), r.child(0)];
        linearize(&mut v);
        assert_eq!(v, vec![r.child(0).child(2), r.child(3)]);
        assert!(is_linear(&v));
    }

    #[test]
    fn linearize_handles_ancestor_chains() {
        let r = Oct3::root();
        let deep = r.child(0).child(0).child(5);
        let mut v = vec![r, r.child(0), r.child(0).child(0), deep];
        linearize(&mut v);
        assert_eq!(v, vec![deep]);
    }

    #[test]
    fn linearize_sorted_fast_path_preserves_semantics() {
        // Strictly sorted input with ancestor chains: the fast path skips
        // the sort but must still run the ancestor sweep.
        let r = Oct3::root();
        let deep = r.child(0).child(0).child(5);
        let mut fast = vec![r, r.child(0), r.child(0).child(0), deep, r.child(2)];
        assert!(is_sorted_strict(&fast));
        let mut slow = fast.clone();
        slow.reverse(); // force the sorting path
        let mut s = SortScratch::new();
        linearize_with(&mut fast, &mut s);
        assert_eq!(s.presorted_hits + s.radix_sorts + s.comparison_fallbacks, 0);
        linearize(&mut slow);
        assert_eq!(fast, slow);
        assert_eq!(fast, vec![deep, r.child(2)]);
    }

    #[test]
    fn uniform_tree_is_complete() {
        let r = Oct2::root();
        let mut v: Vec<_> = (0..4)
            .flat_map(|i| (0..4).map(move |j| (i, j)))
            .map(|(i, j)| r.child(i).child(j))
            .collect();
        v.sort();
        assert!(is_linear(&v));
        assert!(is_complete(&v, &r));
    }

    #[test]
    fn incomplete_tree_detected() {
        let r = Oct2::root();
        let v = vec![r.child(0), r.child(1), r.child(3)];
        assert!(is_linear(&v));
        assert!(!is_complete(&v, &r));
    }

    #[test]
    fn complete_region_whole_root() {
        let r = Oct3::root();
        let mut out = vec![];
        complete_region::<3>(r.index(), r.last_index(), &mut out);
        assert_eq!(out, vec![r]);
    }

    #[test]
    fn complete_region_three_siblings() {
        // Gap from after child 0 to end of root = children 1, 2, 3.
        let r = Oct2::root();
        let c0 = r.child(0);
        let mut out = vec![];
        complete_region::<2>(c0.last_index() + 1, r.last_index(), &mut out);
        assert_eq!(out, vec![r.child(1), r.child(2), r.child(3)]);
    }

    #[test]
    fn complete_subtree_empty_input() {
        let root = Oct2::root().child(2);
        let out = complete_subtree(&root, &[]);
        assert_eq!(out, vec![root]);
    }

    #[test]
    fn complete_subtree_single_deep_leaf() {
        let root = Oct2::root();
        let leaf = root.child(0).child(0).child(0);
        let out = complete_subtree(&root, &[leaf]);
        assert!(is_linear(&out));
        assert!(is_complete(&out, &root));
        assert!(out.contains(&leaf));
        // Coarsest completion: siblings of the leaf at each level.
        // 3 siblings at level 3, 3 at level 2, 3 at level 1, plus leaf.
        assert_eq!(out.len(), 10);
        // Everything other than the chain to the leaf stays maximal.
        assert!(out.contains(&root.child(3)));
        assert!(out.contains(&root.child(0).child(3)));
        assert!(out.contains(&root.child(0).child(0).child(3)));
    }

    #[test]
    fn complete_subtree_preserves_pins() {
        let root = Oct3::root();
        let pins = {
            let mut p = vec![
                root.child(1).child(7),
                root.child(4),
                root.child(6).child(0).child(0),
            ];
            p.sort();
            p
        };
        let out = complete_subtree(&root, &pins);
        assert!(is_linear(&out));
        assert!(is_complete(&out, &root));
        for p in &pins {
            assert!(out.contains(p), "pinned leaf {p:?} missing");
        }
    }

    #[test]
    fn complete_region_matches_cell_counts() {
        // Total cells covered equals interval length.
        let r = Oct2::root();
        let a = r.child(0).child(1).child(2);
        let b = r.child(3).child(0);
        let mut out = vec![];
        complete_region::<2>(a.last_index() + 1, b.index() - 1, &mut out);
        let total: u128 = out.iter().map(|o| o.cell_count()).sum();
        assert_eq!(total, b.index() - a.last_index() - 1);
        assert!(is_linear(&out));
    }

    #[test]
    fn merge_sorted_interleaves() {
        let r = Oct2::root();
        let a = vec![r.child(0), r.child(2)];
        let b = vec![r.child(1), r.child(3)];
        let m = merge_sorted(&a, &b);
        assert_eq!(m, vec![r.child(0), r.child(1), r.child(2), r.child(3)]);
    }
}
