//! Flat open-addressing octant membership table over packed integer keys.
//!
//! [`OctantTable`] replaces the `HashSet`-backed [`crate::hash::OctantSet`]
//! in the balance kernels. It stores one packed key per slot in a
//! power-of-two `Vec<u128>`, probes linearly from a hashed home slot, and
//! never stores the 16-byte octant struct at all — membership is a compare
//! of integers in a cache-friendly flat array, with no buckets and no
//! per-entry allocation.
//!
//! Unlike the sort path's Morton codec ([`crate::key`]), the table's key
//! places the biased coordinates *side by side* rather than interleaved:
//! a membership table never compares keys for order, so it can skip the
//! bit-spread entirely and encode an octant with a handful of shifts.
//! The layout shares the sort codec's bias and field widths and is
//! injective over the same domain ([`crate::key::packable`]).
//!
//! Pre-size with [`OctantTable::with_capacity_for`] (or
//! [`OctantTable::reset_for`], which also reuses the allocation across
//! kernel invocations): the kernels know an upper bound on insertions from
//! `input.len()`, so in steady state the table never regrows —
//! [`OctantTable::grow_count`] stays zero, which the kernel tests assert.
//!
//! ## Probe locality
//!
//! Probes walk a side array of one-byte *tags* (a 7-bit hash fragment,
//! high bit set; `0` marks an empty slot) and only touch the 16-byte key
//! slot on a tag match. At 16 slots per cache line the tag array of even
//! a large table stays cache-resident, so a miss chain costs byte reads
//! instead of full-width slot loads — the same reasoning as SwissTable's
//! control bytes, minus the SIMD group scan. Tag collisions merely cost
//! one extra slot compare (rate ≈ 1/128 per probe step). The probe
//! *sequence* is tag-independent, so the probe/lookup counters are
//! identical to the plain-slot implementation's.

use std::cell::Cell;

use crate::key::{packable, KEY_BIAS, KEY_COORD_BITS, KEY_LEVEL_BITS};
use crate::octant::Octant;

/// Fill value for unwritten key slots. Occupancy is tracked by the tag
/// array alone; this sentinel (never a valid key: packed keys use at most
/// 113 bits, so `u128::MAX` cannot be produced by [`encode`]) only keeps
/// uninitialized slots visibly invalid in a debugger.
const EMPTY: u128 = u128::MAX;

/// Injective octant→integer encoding for membership: biased coordinates
/// side by side above the level bits. No Morton interleave — the table
/// never orders keys, and skipping the bit-spread makes every `contains`
/// and `insert` a few shifts instead of the full codec.
#[inline]
fn encode<const D: usize>(o: &Octant<D>) -> u128 {
    debug_assert!(packable(o), "unencodable octant {o:?}");
    let mut key = o.level as u128;
    for (i, &c) in o.coords.iter().enumerate() {
        let biased = (c + KEY_BIAS) as u128;
        key |= biased << (KEY_LEVEL_BITS + i as u32 * KEY_COORD_BITS);
    }
    key
}

/// Inverse of [`encode`], for iteration and draining.
#[inline]
fn decode<const D: usize>(key: u128) -> Octant<D> {
    let level = (key & ((1 << KEY_LEVEL_BITS) - 1)) as u8;
    let coords = std::array::from_fn(|i| {
        let shift = KEY_LEVEL_BITS + i as u32 * KEY_COORD_BITS;
        let biased = (key >> shift) & ((1 << KEY_COORD_BITS) - 1);
        biased as i32 - KEY_BIAS
    });
    Octant { coords, level }
}

/// Maximum load factor of 1/2: capacity is at least twice the expected
/// insertion count, keeping linear-probe chains short.
const LOAD_NUM: usize = 2;

const MIN_CAP: usize = 16;

/// An insert-and-query set of octants backed by a flat array of packed
/// integer keys with linear probing.
///
/// Supports the operations the balance kernels need — `insert`,
/// `contains`, iteration, `clear` — plus probe/grow counters for the
/// `forestbal-trace` instrumentation. Unlike `HashSet` it does not support
/// removal (the kernels never remove).
pub struct OctantTable<const D: usize> {
    slots: Vec<u128>,
    /// One tag byte per slot: `0` = empty, else `0x80 | top7(hash)`.
    /// Probes scan this array and touch `slots` only on a tag match.
    tags: Vec<u8>,
    mask: usize,
    len: usize,
    grows: u64,
    // Probe statistics cover reads too; `contains` takes `&self`, so the
    // counters live in `Cell`s (the table is per-rank, never shared).
    probes: Cell<u64>,
    lookups: Cell<u64>,
}

/// Tag of an occupied slot: the hash's top seven bits with the high bit
/// forced on, so no occupied tag collides with the empty marker `0`.
#[inline]
fn tag_of(h: u64) -> u8 {
    0x80 | (h >> 57) as u8
}

impl<const D: usize> OctantTable<D> {
    /// New empty table with minimal capacity.
    pub fn new() -> Self {
        Self::with_capacity_for(0)
    }

    /// New table sized so `n` insertions trigger no regrowth.
    pub fn with_capacity_for(n: usize) -> Self {
        let cap = Self::capacity_for(n);
        OctantTable {
            slots: vec![EMPTY; cap],
            tags: vec![0; cap],
            mask: cap - 1,
            len: 0,
            grows: 0,
            probes: Cell::new(0),
            lookups: Cell::new(0),
        }
    }

    fn capacity_for(n: usize) -> usize {
        (n * LOAD_NUM).next_power_of_two().max(MIN_CAP)
    }

    /// Clear the table and ensure capacity for `n` insertions without
    /// regrowth, keeping the existing allocation when it is large enough.
    /// Counters are cumulative across resets.
    pub fn reset_for(&mut self, n: usize) {
        let want = Self::capacity_for(n);
        if want > self.slots.len() {
            self.slots.clear();
            self.slots.resize(want, EMPTY);
            self.tags.clear();
            self.tags.resize(want, 0);
            self.mask = want - 1;
        } else {
            // Only the tag array needs wiping: probes consult `slots`
            // strictly after a tag match, and a zero tag ends the chain.
            self.tags.fill(0);
        }
        self.len = 0;
    }

    /// Number of stored octants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the table empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Times the table regrew because an insert exceeded the load factor.
    /// Zero whenever the pre-sizing bound held.
    pub fn grow_count(&self) -> u64 {
        self.grows
    }

    /// Total slots inspected across all lookups and inserts (a perfectly
    /// collision-free workload costs exactly one probe per operation).
    pub fn probe_count(&self) -> u64 {
        self.probes.get()
    }

    /// Total lookup/insert operations.
    pub fn lookup_count(&self) -> u64 {
        self.lookups.get()
    }

    /// Hash the folded key with an fmix64-style avalanche (two
    /// multiply/xor-shift rounds). Packed keys of a complete octree are
    /// highly structured — neighbors share almost every bit — and a single
    /// Fibonacci multiply leaves enough correlation in the masked bits to
    /// cluster linear probes; full avalanche keeps chains near the
    /// load-factor optimum. The top bits feed the tag byte, so the whole
    /// width must avalanche, not just the masked low bits.
    #[inline]
    fn hash(key: u128) -> u64 {
        let mut h = (key as u64) ^ ((key >> 64) as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        h = h.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
        h ^= h >> 33;
        h
    }

    /// Walk the probe sequence for `key`; returns the slot index holding
    /// the key, or the first empty slot. Only tag bytes are read until a
    /// tag matches; the sequence itself never depends on the tags, so the
    /// probe counter counts slots inspected exactly as a plain-slot walk
    /// would.
    #[inline]
    fn probe(&self, key: u128) -> usize {
        self.lookups.set(self.lookups.get() + 1);
        let h = Self::hash(key);
        let tag = tag_of(h);
        let mut i = h as usize & self.mask;
        let mut steps = 1u64;
        loop {
            let t = self.tags[i];
            if (t == tag && self.slots[i] == key) || t == 0 {
                self.probes.set(self.probes.get() + steps);
                return i;
            }
            i = (i + 1) & self.mask;
            steps += 1;
        }
    }

    /// Is the octant present?
    #[inline]
    pub fn contains(&self, o: &Octant<D>) -> bool {
        self.tags[self.probe(encode(o))] != 0
    }

    /// Insert an octant; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, o: &Octant<D>) -> bool {
        let key = encode(o);
        let i = self.probe(key);
        if self.tags[i] != 0 {
            return false;
        }
        self.slots[i] = key;
        self.tags[i] = tag_of(Self::hash(key));
        self.len += 1;
        if self.len * LOAD_NUM > self.slots.len() {
            self.grow();
        }
        true
    }

    fn grow(&mut self) {
        self.grows += 1;
        let new_cap = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; new_cap]);
        let old_tags = std::mem::replace(&mut self.tags, vec![0; new_cap]);
        self.mask = new_cap - 1;
        for (key, t) in old.into_iter().zip(old_tags) {
            if t != 0 {
                let i = self.probe(key);
                self.slots[i] = key;
                self.tags[i] = t;
            }
        }
    }

    /// Iterate the stored octants in slot (arbitrary) order.
    pub fn iter(&self) -> impl Iterator<Item = Octant<D>> + '_ {
        self.tags
            .iter()
            .zip(&self.slots)
            .filter(|(&t, _)| t != 0)
            .map(|(_, &k)| decode::<D>(k))
    }

    /// Append all stored octants to `out` (arbitrary order) and clear the
    /// table, keeping its allocation.
    pub fn drain_into(&mut self, out: &mut Vec<Octant<D>>) {
        out.reserve(self.len);
        for (t, k) in self.tags.iter_mut().zip(&self.slots) {
            if *t != 0 {
                out.push(decode::<D>(*k));
                *t = 0;
            }
        }
        self.len = 0;
    }
}

impl<const D: usize> Default for OctantTable<D> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::OctantSet;

    type Oct3 = Octant<3>;

    fn soup<const D: usize>(n: usize, seed: u64) -> Vec<Octant<D>> {
        let mut state = seed | 1;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..n)
            .map(|_| {
                let depth = (rng() % 9) as u8;
                let mut o = Octant::<D>::root();
                for _ in 0..depth {
                    o = o.child(rng() as usize % Octant::<D>::NUM_CHILDREN);
                }
                o
            })
            .collect()
    }

    #[test]
    fn insert_contains_basic() {
        let mut t = OctantTable::<3>::new();
        let r = Oct3::root();
        assert!(!t.contains(&r));
        assert!(t.insert(&r));
        assert!(!t.insert(&r));
        assert!(t.contains(&r));
        assert_eq!(t.len(), 1);
        assert!(!t.contains(&r.child(0)));
    }

    #[test]
    fn matches_octant_set() {
        let octs = soup::<3>(2000, 31);
        let mut t = OctantTable::<3>::with_capacity_for(octs.len());
        let mut h = OctantSet::<3>::default();
        for o in &octs {
            assert_eq!(t.insert(o), h.insert(*o), "insert diverges on {o:?}");
        }
        assert_eq!(t.len(), h.len());
        for o in &octs {
            assert!(t.contains(o));
            // Probe some absent octants too.
            let miss = o.first_descendant((o.level + 1).min(crate::coords::MAX_LEVEL));
            assert_eq!(t.contains(&miss), h.contains(&miss));
        }
        let mut from_t: Vec<_> = t.iter().collect();
        let mut from_h: Vec<_> = h.iter().copied().collect();
        from_t.sort_unstable();
        from_h.sort_unstable();
        assert_eq!(from_t, from_h);
    }

    #[test]
    fn presized_table_never_grows() {
        let octs = soup::<3>(1000, 77);
        let mut t = OctantTable::<3>::with_capacity_for(octs.len());
        for o in &octs {
            t.insert(o);
        }
        assert_eq!(t.grow_count(), 0);
        assert!(t.probe_count() >= t.lookup_count());
    }

    #[test]
    fn undersized_table_grows_correctly() {
        let octs = soup::<2>(600, 5);
        let mut t = OctantTable::<2>::with_capacity_for(4);
        let mut h = OctantSet::<2>::default();
        for o in &octs {
            t.insert(o);
            h.insert(*o);
        }
        assert!(t.grow_count() > 0);
        assert_eq!(t.len(), h.len());
        for o in h.iter() {
            assert!(t.contains(o));
        }
    }

    #[test]
    fn reset_reuses_allocation() {
        let mut t = OctantTable::<3>::with_capacity_for(500);
        let cap = t.capacity();
        for o in soup::<3>(500, 13).iter() {
            t.insert(o);
        }
        t.reset_for(100);
        assert_eq!(t.capacity(), cap, "reset shrank the allocation");
        assert!(t.is_empty());
        let r = Oct3::root();
        assert!(!t.contains(&r));
        assert!(t.insert(&r));
    }

    #[test]
    fn drain_into_empties_table() {
        let octs = soup::<2>(300, 3);
        let mut t = OctantTable::<2>::with_capacity_for(octs.len());
        let mut uniq = OctantSet::<2>::default();
        for o in &octs {
            t.insert(o);
            uniq.insert(*o);
        }
        let mut out = vec![];
        t.drain_into(&mut out);
        assert_eq!(out.len(), uniq.len());
        assert!(t.is_empty());
        out.sort_unstable();
        let mut expect: Vec<_> = uniq.iter().copied().collect();
        expect.sort_unstable();
        assert_eq!(out, expect);
    }

    #[test]
    fn out_of_root_members() {
        let mut t = OctantTable::<2>::new();
        let o = Octant::<2>::root().child(0).neighbor(&[-1, -1]);
        assert!(t.insert(&o));
        assert!(t.contains(&o));
        assert!(!t.contains(&o.neighbor(&[1, 0])));
    }
}
