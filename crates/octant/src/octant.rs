//! The [`Octant`] value type and the octant relations of the paper's Table I.

use crate::coords::{len_at, size_log2_at, Coord, MAX_LEVEL, ROOT_LEN};
use crate::direction::Direction;
use crate::morton;

/// A `D`-dimensional octant: an axis-aligned cube whose side length is
/// `2^(MAX_LEVEL - level)` and whose corner coordinates are multiples of the
/// side length.
///
/// Octants are `Copy` (16 bytes in 3D) and totally ordered by the Morton
/// space-filling curve with ancestors sorting before descendants; see
/// [`crate::morton`].
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Octant<const D: usize> {
    /// Coordinates of the corner closest to the origin.
    pub coords: [Coord; D],
    /// Refinement level: 0 is the root, `MAX_LEVEL` the finest.
    pub level: u8,
}

impl<const D: usize> std::fmt::Debug for Octant<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Oct(l={} @ {:?})", self.level, self.coords)
    }
}

impl<const D: usize> Octant<D> {
    /// Number of children (and of siblings) of any non-leaf octant: `2^D`.
    pub const NUM_CHILDREN: usize = 1 << D;

    /// The root octant covering the whole tree.
    #[inline]
    pub const fn root() -> Self {
        Octant {
            coords: [0; D],
            level: 0,
        }
    }

    /// Construct an octant, checking coordinate alignment in debug builds.
    #[inline]
    pub fn new(coords: [Coord; D], level: u8) -> Self {
        let o = Octant { coords, level };
        debug_assert!(o.is_aligned(), "misaligned octant {o:?}");
        o
    }

    /// Side length in integer coordinates.
    #[inline]
    #[allow(clippy::len_without_is_empty)] // a side length, not a container
    pub fn len(&self) -> Coord {
        len_at(self.level)
    }

    /// The paper's "size": the side length is `2^size_log2`.
    #[inline]
    pub fn size_log2(&self) -> u8 {
        size_log2_at(self.level)
    }

    /// Are the coordinates multiples of the side length?
    #[inline]
    pub fn is_aligned(&self) -> bool {
        let mask = self.len() - 1;
        self.level <= MAX_LEVEL && self.coords.iter().all(|&c| c & mask == 0)
    }

    /// Does the octant lie fully inside the root cube `[0, ROOT_LEN)^D`?
    #[inline]
    pub fn is_inside_root(&self) -> bool {
        self.coords.iter().all(|&c| (0..ROOT_LEN).contains(&c))
            && self.coords.iter().all(|&c| c + self.len() <= ROOT_LEN)
    }

    /// The octant containing `self` that is twice as large (`parent(o)`).
    ///
    /// # Panics
    /// Panics in debug builds if `self` is the root.
    #[inline]
    pub fn parent(&self) -> Self {
        debug_assert!(self.level > 0, "root has no parent");
        self.ancestor(self.level - 1)
    }

    /// The ancestor at the given coarser (or equal) level.
    #[inline]
    pub fn ancestor(&self, level: u8) -> Self {
        debug_assert!(level <= self.level);
        let mask = !(len_at(level) - 1);
        let mut coords = self.coords;
        for c in coords.iter_mut() {
            *c &= mask;
        }
        Octant { coords, level }
    }

    /// `i-child(p)`: the child touching the `i`-th corner of `self`.
    ///
    /// Bit `j` of `i` selects the upper half along axis `j`.
    #[inline]
    pub fn child(&self, i: usize) -> Self {
        debug_assert!(self.level < MAX_LEVEL);
        debug_assert!(i < Self::NUM_CHILDREN);
        let clen = len_at(self.level + 1);
        let mut coords = self.coords;
        for (j, c) in coords.iter_mut().enumerate() {
            *c += ((i >> j) & 1) as Coord * clen;
        }
        Octant {
            coords,
            level: self.level + 1,
        }
    }

    /// `child-id(o)`: the index `i` such that `i-child(parent(o)) == o`.
    #[inline]
    pub fn child_id(&self) -> usize {
        debug_assert!(self.level > 0);
        let len = self.len();
        let mut id = 0;
        for (j, &c) in self.coords.iter().enumerate() {
            // The child bit is the bit of the coordinate at this octant's
            // own length; works for negative coordinates too since `len`
            // is a power of two.
            if c & len != 0 {
                id |= 1 << j;
            }
        }
        id
    }

    /// `i-sibling(o)`: `i-child(parent(o))`.
    #[inline]
    pub fn sibling(&self, i: usize) -> Self {
        debug_assert!(self.level > 0);
        self.parent().child(i)
    }

    /// The family of `self`: all `2^D` siblings including `self`, in
    /// child-id (Morton) order.
    #[inline]
    pub fn family(&self) -> OctBuf<D> {
        let p = self.parent();
        let mut buf = OctBuf::new();
        for i in 0..Self::NUM_CHILDREN {
            buf.push(p.child(i));
        }
        buf
    }

    /// Is `self` a (strict or equal) ancestor of `other`?
    #[inline]
    pub fn contains(&self, other: &Self) -> bool {
        self.level <= other.level && other.ancestor(self.level).coords == self.coords
    }

    /// Is `self` a strict ancestor of `other`?
    #[inline]
    pub fn is_ancestor_of(&self, other: &Self) -> bool {
        self.level < other.level && other.ancestor(self.level).coords == self.coords
    }

    /// Do the two octants overlap (one contains the other)?
    #[inline]
    pub fn overlaps(&self, other: &Self) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// The first (Morton-least) descendant at `level`.
    #[inline]
    pub fn first_descendant(&self, level: u8) -> Self {
        debug_assert!(level >= self.level);
        Octant {
            coords: self.coords,
            level,
        }
    }

    /// The last (Morton-greatest) descendant at `level`.
    #[inline]
    pub fn last_descendant(&self, level: u8) -> Self {
        debug_assert!(level >= self.level);
        let shift = self.len() - len_at(level);
        let mut coords = self.coords;
        for c in coords.iter_mut() {
            *c += shift;
        }
        Octant { coords, level }
    }

    /// The same-size neighbor across direction `dir`. The result may lie
    /// outside the root cube.
    #[inline]
    pub fn neighbor(&self, dir: &Direction<D>) -> Self {
        let len = self.len();
        let mut coords = self.coords;
        for (c, &d) in coords.iter_mut().zip(dir.iter()) {
            *c += d as Coord * len;
        }
        Octant {
            coords,
            level: self.level,
        }
    }

    /// The nearest common ancestor of two in-root octants.
    pub fn nearest_common_ancestor(&self, other: &Self) -> Self {
        debug_assert!(self.is_inside_root() && other.is_inside_root());
        let mut xall: u32 = 0;
        for i in 0..D {
            xall |= (self.coords[i] ^ other.coords[i]) as u32;
        }
        let agree_level = if xall == 0 {
            MAX_LEVEL
        } else {
            let h = 31 - xall.leading_zeros() as u8; // highest differing bit
            MAX_LEVEL - (h + 1)
        };
        let level = agree_level.min(self.level).min(other.level);
        self.ancestor(level)
    }

    /// Morton index of the first unit cell covered by this octant.
    /// Only valid for in-root octants.
    #[inline]
    pub fn index(&self) -> morton::MortonIndex {
        morton::interleave::<D>(&self.coords)
    }

    /// Number of unit (finest-level) cells covered: `2^(D * size_log2)`.
    #[inline]
    pub fn cell_count(&self) -> morton::MortonIndex {
        1u128 << (D as u32 * (MAX_LEVEL - self.level) as u32)
    }

    /// Morton index of the last unit cell covered (inclusive).
    #[inline]
    pub fn last_index(&self) -> morton::MortonIndex {
        self.index() + (self.cell_count() - 1)
    }

    /// Reconstruct the octant covering the index range
    /// `[index, index + 2^(D*(MAX_LEVEL-level)))`.
    #[inline]
    pub fn from_index(index: morton::MortonIndex, level: u8) -> Self {
        let coords = morton::deinterleave::<D>(index);
        Octant::new(coords, level)
    }
}

impl<const D: usize> PartialOrd for Octant<D> {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<const D: usize> Ord for Octant<D> {
    /// Morton (space-filling curve) order; an ancestor sorts before its
    /// descendants (preorder traversal).
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        morton::cmp(self, other)
    }
}

/// A small fixed-capacity buffer of octants, sized for the largest
/// neighborhood any algorithm enumerates (the 3^3 - 1 = 26 member insulation
/// layer, or 8 children). Avoids heap allocation on hot paths.
#[derive(Clone, Copy)]
pub struct OctBuf<const D: usize> {
    buf: [Octant<D>; 27],
    len: u8,
}

impl<const D: usize> OctBuf<D> {
    /// New empty buffer.
    #[inline]
    pub fn new() -> Self {
        OctBuf {
            buf: [Octant::root(); 27],
            len: 0,
        }
    }

    /// Append an octant. Panics if the buffer is full (capacity 27).
    #[inline]
    pub fn push(&mut self, o: Octant<D>) {
        self.buf[self.len as usize] = o;
        self.len += 1;
    }

    /// Contents as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Octant<D>] {
        &self.buf[..self.len as usize]
    }

    /// Number of stored octants.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Is the buffer empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<const D: usize> Default for OctBuf<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const D: usize> std::ops::Deref for OctBuf<D> {
    type Target = [Octant<D>];
    #[inline]
    fn deref(&self) -> &[Octant<D>] {
        self.as_slice()
    }
}

impl<'a, const D: usize> IntoIterator for &'a OctBuf<D> {
    type Item = &'a Octant<D>;
    type IntoIter = std::slice::Iter<'a, Octant<D>>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<const D: usize> std::fmt::Debug for OctBuf<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Oct2 = Octant<2>;
    type Oct3 = Octant<3>;

    #[test]
    fn root_relations() {
        let r = Oct3::root();
        assert_eq!(r.len(), ROOT_LEN);
        assert_eq!(r.size_log2(), MAX_LEVEL);
        assert!(r.is_inside_root());
        assert!(r.is_aligned());
    }

    #[test]
    fn child_parent_roundtrip() {
        let r = Oct3::root();
        for i in 0..8 {
            let c = r.child(i);
            assert_eq!(c.parent(), r);
            assert_eq!(c.child_id(), i);
            assert_eq!(c.level, 1);
            assert!(r.is_ancestor_of(&c));
            assert!(r.contains(&c));
            assert!(!c.contains(&r));
        }
    }

    #[test]
    fn deep_child_chain() {
        let mut o = Oct2::root();
        let ids = [3usize, 0, 2, 1, 3, 2];
        for &i in &ids {
            o = o.child(i);
        }
        for &i in ids.iter().rev() {
            assert_eq!(o.child_id(), i);
            o = o.parent();
        }
        assert_eq!(o, Oct2::root());
    }

    #[test]
    fn family_is_all_children_of_parent() {
        let o = Oct2::root().child(2).child(1);
        let fam = o.family();
        assert_eq!(fam.len(), 4);
        assert!(fam.as_slice().contains(&o));
        for (i, f) in fam.into_iter().enumerate() {
            assert_eq!(f.child_id(), i);
            assert_eq!(f.parent(), o.parent());
        }
        // Family is sorted in Morton order.
        assert!(fam.as_slice().windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn sibling_table_i() {
        // i-sibling(o) = i-child(parent(o))
        let o = Oct3::root().child(5).child(3);
        for i in 0..8 {
            assert_eq!(o.sibling(i), o.parent().child(i));
        }
        assert_eq!(o.sibling(o.child_id()), o);
    }

    #[test]
    fn first_last_descendant() {
        let o = Oct2::root().child(1);
        let fd = o.first_descendant(MAX_LEVEL);
        let ld = o.last_descendant(MAX_LEVEL);
        assert_eq!(fd.coords, o.coords);
        assert_eq!(
            ld.coords,
            [o.coords[0] + o.len() - 1, o.coords[1] + o.len() - 1]
        );
        assert!(o.contains(&fd));
        assert!(o.contains(&ld));
        assert_eq!(fd.index(), o.index());
        assert_eq!(ld.index(), o.last_index());
    }

    #[test]
    fn neighbor_in_and_out_of_root() {
        let o = Oct2::root().child(0); // lower-left quadrant
        let right = o.neighbor(&[1, 0]);
        assert!(right.is_inside_root());
        assert_eq!(right, Oct2::root().child(1));
        let left = o.neighbor(&[-1, 0]);
        assert!(!left.is_inside_root());
        assert_eq!(left.coords, [-o.len(), 0]);
        // Neighbor of neighbor in the opposite direction is the original.
        assert_eq!(left.neighbor(&[1, 0]), o);
    }

    #[test]
    fn nca_of_cousins() {
        let a = Oct2::root().child(0).child(3);
        let b = Oct2::root().child(3).child(0);
        assert_eq!(a.nearest_common_ancestor(&b), Oct2::root());
        let c = Oct2::root().child(0).child(1);
        assert_eq!(a.nearest_common_ancestor(&c), Oct2::root().child(0));
        assert_eq!(a.nearest_common_ancestor(&a), a);
    }

    #[test]
    fn nca_with_ancestor() {
        let p = Oct3::root().child(2);
        let d = p.child(7).child(1);
        assert_eq!(p.nearest_common_ancestor(&d), p);
        assert_eq!(d.nearest_common_ancestor(&p), p);
    }

    #[test]
    fn cell_counts() {
        let o = Oct3::root();
        assert_eq!(o.cell_count(), 1u128 << (3 * MAX_LEVEL as u32));
        let c = o.child(0);
        assert_eq!(c.cell_count() * 8, o.cell_count());
    }

    #[test]
    fn index_roundtrip() {
        let o = Oct3::root().child(6).child(1).child(4);
        let idx = o.index();
        assert_eq!(Oct3::from_index(idx, o.level), o);
    }

    #[test]
    fn child_id_of_negative_coords() {
        // Child ids remain meaningful for out-of-root octants.
        let o = Octant::<2>::root().child(0).neighbor(&[-1, 0]);
        let c = o.child(3);
        assert_eq!(c.child_id(), 3);
        assert_eq!(c.parent(), o);
    }

    #[test]
    fn octbuf_basics() {
        let mut b = OctBuf::<3>::new();
        assert!(b.is_empty());
        for i in 0..8 {
            b.push(Oct3::root().child(i));
        }
        assert_eq!(b.len(), 8);
        assert_eq!(b.as_slice().len(), 8);
    }
}
