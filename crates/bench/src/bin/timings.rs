//! `timings` — regenerate the paper's evaluation tables and figures.
//!
//! Named after the p4est `timings` example the paper invokes ("The code
//! to reproduce our results ... can be invoked by the timings example").
//!
//! ```text
//! timings [--exp weak|strong|notify|subtree|kernel|wire|seeds|ripple|local|simscale|weakscale|all] [--max-ranks N] [--big]
//!         [--threads N] [--trace-out trace.json]
//! ```
//!
//! `--threads N` fixes the intra-rank fork-join pool width
//! (`forestbal-par`) for every experiment in the run; the default is
//! `FORESTBAL_THREADS`, else the host's core count. Results are
//! bit-identical at every width by the pool's determinism contract —
//! `--exp kernel` measures and asserts exactly that.
//!
//! Each experiment prints a table whose rows mirror a figure of the
//! paper; see EXPERIMENTS.md for the mapping and for paper-vs-measured
//! notes. Absolute times are laptop-scale; shapes are the deliverable.
//!
//! `--exp simscale` is the exception: it runs on the discrete-event
//! simulator at the paper's rank counts (P = 1024/4096, 16384 with
//! `--big`), reports deterministic *virtual* time, and additionally
//! emits machine-readable `BENCH {...}` JSON lines. It is not part of
//! `all` — run it explicitly (and in release mode).
//!
//! `--trace-out <path>` (simscale only) additionally runs one traced
//! P = 1024 balance and writes a chrome://tracing / Perfetto trace-event
//! JSON file with one process per simulated rank; see EXPERIMENTS.md for
//! the viewing recipe.

use forestbal_bench::experiments::*;
use forestbal_bench::report::{ratio, BenchRecord, Table};
use forestbal_forest::{BalanceVariant, ReversalScheme};
use forestbal_mesh::IceSheetParams;
use forestbal_sim::SimConfig;

type PhaseGetter = fn(&forestbal_forest::BalanceTimings) -> std::time::Duration;

fn phase_table(title: &str, rows: &[ScalingRow], normalize: bool) -> Vec<Table> {
    let phases: [(&str, PhaseGetter); 5] = [
        ("Full one-pass algorithm", |t| t.total),
        ("Local balance", |t| t.local_balance),
        ("Query and Response", |t| t.query_response),
        ("Local rebalance", |t| t.rebalance),
        ("Notify/reversal", |t| t.reversal),
    ];
    phases
        .iter()
        .map(|(name, get)| {
            let header: [&str; 6] = if normalize {
                [
                    "P",
                    "level",
                    "Moct",
                    "old s/(Moct/rank)",
                    "new s/(Moct/rank)",
                    "speedup",
                ]
            } else {
                [
                    "P",
                    "level",
                    "Moct",
                    "old seconds",
                    "new seconds",
                    "speedup",
                ]
            };
            let mut t = Table::new(&format!("{title}: {name}"), &header);
            for r in rows {
                let old = get(&r.old.timings).as_secs_f64();
                let new = get(&r.new.timings).as_secs_f64();
                let (o, n) = if normalize {
                    // Seconds per (million octants per rank): Figure 15's
                    // y-axis.
                    let m_per_rank = r.octants_out as f64 / 1e6 / r.ranks as f64;
                    (old / m_per_rank, new / m_per_rank)
                } else {
                    (old, new)
                };
                t.row(vec![
                    r.ranks.to_string(),
                    r.level.to_string(),
                    format!("{:.3}", r.octants_out as f64 / 1e6),
                    format!("{o:.4}"),
                    format!("{n:.4}"),
                    ratio(o, n),
                ]);
            }
            t
        })
        .collect()
}

fn run_weak(max_ranks: usize, big: bool) {
    let base = if big { 3 } else { 2 };
    let spread = 4; // the paper's four levels of size difference
    let mut points = vec![(1usize, base)];
    let mut p = 2;
    while p <= max_ranks {
        // One level per 8x ranks keeps octants/rank roughly constant.
        let level = base + (p.ilog2() as u8).div_ceil(3);
        points.push((p, level));
        p *= 2;
    }
    println!("\n#### Weak scaling (Figures 14/15): fractal forest, corner balance");
    let rows = weak_scaling_experiment(&points, spread);
    for t in phase_table("Weak scaling", &rows, true) {
        t.print();
    }
    volume_table(&rows).print();
}

fn run_strong(max_ranks: usize, big: bool) {
    let params = if big {
        IceSheetParams {
            nx: 8,
            ny: 8,
            base_level: 2,
            max_level: 7,
            seed: 2012,
        }
    } else {
        IceSheetParams {
            nx: 4,
            ny: 4,
            base_level: 2,
            max_level: 5,
            seed: 2012,
        }
    };
    let mut ranks = vec![];
    let mut p = 1;
    while p <= max_ranks {
        ranks.push(p);
        p *= 2;
    }
    println!("\n#### Strong scaling (Figures 16/17): synthetic ice sheet, corner balance");
    let rows = strong_scaling_experiment(&ranks, params);
    println!(
        "mesh: {} -> {} octants after balance (paper: 55M -> 85M on Antarctica)",
        rows[0].octants_in, rows[0].octants_out
    );
    for t in phase_table("Strong scaling", &rows, false) {
        t.print();
    }
    // Perfect-scaling reference for the full algorithm (the red line of
    // Figure 17): T(P) = T(1) / P.
    let mut t = Table::new(
        "Strong scaling: parallel efficiency (new algorithm)",
        &["P", "new seconds", "perfect", "efficiency"],
    );
    let t0 = rows[0].new.timings.total.as_secs_f64() * rows[0].ranks as f64;
    for r in &rows {
        let perfect = t0 / r.ranks as f64;
        let actual = r.new.timings.total.as_secs_f64();
        t.row(vec![
            r.ranks.to_string(),
            format!("{actual:.4}"),
            format!("{perfect:.4}"),
            format!("{:.0}%", 100.0 * perfect / actual.max(1e-12)),
        ]);
    }
    t.print();
    volume_table(&rows).print();
}

/// Query/response communication volume, old vs new (the paper's
/// "much reduced communication volume" claim for seed responses).
fn volume_table(rows: &[ScalingRow]) -> Table {
    let mut t = Table::new(
        "Query/response volume (cluster totals)",
        &[
            "P",
            "old query B",
            "old resp B",
            "new query B",
            "new resp B",
            "resp reduction",
        ],
    );
    for r in rows {
        t.row(vec![
            r.ranks.to_string(),
            r.old.query_bytes.to_string(),
            r.old.response_bytes.to_string(),
            r.new.query_bytes.to_string(),
            r.new.response_bytes.to_string(),
            ratio(r.old.response_bytes as f64, r.new.response_bytes as f64),
        ]);
    }
    t
}

fn run_notify(max_ranks: usize) {
    let mut ranks = vec![];
    let mut p = 4;
    while p <= max_ranks.max(4) {
        ranks.push(p);
        // Include non-powers-of-two like the paper's 12-core nodes.
        if p * 3 / 2 <= max_ranks {
            ranks.push(p * 3 / 2);
        }
        p *= 2;
    }
    ranks.sort_unstable();
    ranks.dedup();
    println!("\n#### Pattern reversal (Section V, Figures 12/13/15e)");
    let rows = notify_experiment(&ranks, 4, 25);
    let mut t = Table::new(
        "Reversal schemes: time and data moved",
        &[
            "P",
            "naive s",
            "ranges s",
            "notify s",
            "naive coll B",
            "ranges coll B",
            "notify p2p B",
            "notify msgs",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.ranks.to_string(),
            format!("{:.5}", r.naive.seconds),
            format!("{:.5}", r.ranges.seconds),
            format!("{:.5}", r.notify.seconds),
            r.naive.stats.collective_bytes.to_string(),
            r.ranges.stats.collective_bytes.to_string(),
            r.notify.stats.bytes_sent.to_string(),
            r.notify.stats.messages_sent.to_string(),
        ]);
    }
    t.print();
}

fn run_subtree(big: bool) {
    let sizes: &[usize] = if big {
        &[1_000, 10_000, 100_000, 400_000]
    } else {
        &[500, 5_000, 50_000]
    };
    println!("\n#### Subtree balance (Section III, Figures 6-8): old vs new");
    let rows = subtree_experiment(sizes);
    let mut t = Table::new(
        "Serial subtree balance, 3D corner balance",
        &[
            "input",
            "output",
            "old s",
            "new s",
            "speedup",
            "hash q old",
            "hash q new",
            "sort old",
            "sort new",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.input_len.to_string(),
            r.new_stats.output_len.to_string(),
            format!("{:.4}", r.old_seconds),
            format!("{:.4}", r.new_seconds),
            ratio(r.old_seconds, r.new_seconds),
            r.old_stats.hash_queries.to_string(),
            r.new_stats.hash_queries.to_string(),
            r.old_stats.sorted_len.to_string(),
            r.new_stats.sorted_len.to_string(),
        ]);
    }
    t.print();
}

fn run_kernel(big: bool) {
    let sizes: &[usize] = if big {
        &[1_000, 10_000, 100_000, 400_000]
    } else {
        &[500, 5_000, 50_000]
    };
    println!("\n#### Packed-key kernels: radix sort, octant table, scratch reuse");
    let rows = kernel_experiment(sizes);
    let us = |s: f64| format!("{:.1}", s * 1e6);
    let ns = |s: f64| format!("{:.1}", s * 1e9);

    let mut t = Table::new(
        "Octant sort: struct comparison vs packed radix (µs per sort)",
        &["input", "struct", "radix", "speedup", "presorted", "passes"],
    );
    for r in &rows {
        t.row(vec![
            r.input_len.to_string(),
            us(r.sort_struct_seconds),
            us(r.sort_radix_seconds),
            ratio(r.sort_struct_seconds, r.sort_radix_seconds),
            us(r.sort_presorted_seconds),
            r.radix_passes.to_string(),
        ]);
    }
    t.print();

    let mut t = Table::new(
        "Octant membership: HashSet vs open-addressing table",
        &[
            "input",
            "set build µs",
            "table build µs",
            "speedup",
            "set query ns",
            "table query ns",
            "speedup",
            "probes/op",
            "grows",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.input_len.to_string(),
            us(r.set_build_seconds),
            us(r.table_build_seconds),
            ratio(r.set_build_seconds, r.table_build_seconds),
            ns(r.set_query_seconds),
            ns(r.table_query_seconds),
            ratio(r.set_query_seconds, r.table_query_seconds),
            format!("{:.2}", r.table_probes_per_op),
            r.table_grows.to_string(),
        ]);
    }
    t.print();

    let mut t = Table::new(
        "New-kernel subtree balance end to end: HashSet baseline vs packed (µs)",
        &[
            "input",
            "hashset",
            "packed fresh",
            "packed scratch",
            "speedup",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.input_len.to_string(),
            us(r.balance_hashset_seconds),
            us(r.balance_fresh_seconds),
            us(r.balance_scratch_seconds),
            ratio(r.balance_hashset_seconds, r.balance_scratch_seconds),
        ]);
    }
    t.print();

    let threads = forestbal_par::current().threads() as u64;
    for r in &rows {
        BenchRecord::new("kernel")
            .u("threads", threads)
            .u("input_len", r.input_len as u64)
            .f("sort_struct_s", r.sort_struct_seconds)
            .f("sort_radix_s", r.sort_radix_seconds)
            .f("sort_presorted_s", r.sort_presorted_seconds)
            .f(
                "radix_speedup",
                r.sort_struct_seconds / r.sort_radix_seconds.max(1e-12),
            )
            .u("radix_passes", r.radix_passes)
            .f("set_build_s", r.set_build_seconds)
            .f("table_build_s", r.table_build_seconds)
            .f("set_query_s", r.set_query_seconds)
            .f("table_query_s", r.table_query_seconds)
            .f(
                "table_query_speedup",
                r.set_query_seconds / r.table_query_seconds.max(1e-12),
            )
            .f("table_probes_per_op", r.table_probes_per_op)
            .u("table_grows", r.table_grows)
            .f("balance_hashset_s", r.balance_hashset_seconds)
            .f("balance_fresh_s", r.balance_fresh_seconds)
            .f("balance_scratch_s", r.balance_scratch_seconds)
            .f(
                "balance_speedup",
                r.balance_hashset_seconds / r.balance_scratch_seconds.max(1e-12),
            )
            .emit();
    }

    run_par(big);
    run_wire();
}

/// The intra-rank parallelism study: serial vs pooled hot kernels on one
/// rank, with bit-identity asserted inside the run. The speedup columns
/// only mean something on a multi-core host (`timings` reports the pool
/// width it actually used); the checksum column is meaningful anywhere
/// and is what the CI `par-matrix` job compares across thread counts.
fn run_par(big: bool) {
    let keys = 250_000;
    let (level, spread) = if big { (3, 4) } else { (2, 4) };
    println!("\n#### Intra-rank parallelism: pooled kernels vs one thread");
    let r = par_kernel_experiment(keys, level, spread);
    println!(
        "pool width: {} thread(s) (set with --threads N or FORESTBAL_THREADS)",
        r.threads
    );
    let ms = |s: f64| format!("{:.3}", s * 1e3);
    let mut t = Table::new(
        "Deterministic pooled kernels (ms, best of reps; identical output checked)",
        &["kernel", "input", "serial", "pooled", "speedup", "checksum"],
    );
    t.row(vec![
        "radix key sort".into(),
        r.keys.to_string(),
        ms(r.sort_serial_seconds),
        ms(r.sort_par_seconds),
        ratio(r.sort_serial_seconds, r.sort_par_seconds),
        "= serial".into(),
    ]);
    t.row(vec![
        "one-pass balance".into(),
        r.octants_out.to_string(),
        ms(r.balance_serial_seconds),
        ms(r.balance_par_seconds),
        ratio(r.balance_serial_seconds, r.balance_par_seconds),
        format!("{:016x}", r.forest_checksum),
    ]);
    t.print();

    BenchRecord::new("kernel_par")
        .u("threads", r.threads as u64)
        .u("keys", r.keys as u64)
        .f("sort_serial_s", r.sort_serial_seconds)
        .f("sort_par_s", r.sort_par_seconds)
        .f(
            "par_radix_speedup",
            r.sort_serial_seconds / r.sort_par_seconds.max(1e-12),
        )
        .f("balance_serial_s", r.balance_serial_seconds)
        .f("balance_par_s", r.balance_par_seconds)
        .f(
            "par_balance_speedup",
            r.balance_serial_seconds / r.balance_par_seconds.max(1e-12),
        )
        .u("octants_out", r.octants_out)
        .u("forest_checksum", r.forest_checksum)
        .emit();
}

/// The wire-format study alone: cheap enough for the CI feature matrix,
/// which compares the emitted forest checksums across `simd` / default /
/// `--no-default-features` builds.
fn run_wire() {
    let us = |s: f64| format!("{:.1}", s * 1e6);
    println!("\n#### Packed wire format: bytes per octant and codec throughput");
    let (simd_pack, simd_packable) = forestbal_octant::simd_active();
    println!(
        "SIMD kernels active: bmi2 pack/unpack = {simd_pack}, avx2 packable = {simd_packable}"
    );
    let wire = wire_experiment();
    let mut t = Table::new(
        "Wire codec: fixed-width packed keys with tree-run framing",
        &[
            "dim",
            "key bytes",
            "octants",
            "runs",
            "wire bytes",
            "bytes/oct",
            "encode µs",
            "decode µs",
            "checksum",
        ],
    );
    for r in &wire {
        t.row(vec![
            r.dim.to_string(),
            r.key_bytes.to_string(),
            r.octants.to_string(),
            r.runs.to_string(),
            r.wire_bytes.to_string(),
            format!("{:.2}", r.wire_bytes as f64 / r.octants.max(1) as f64),
            us(r.encode_seconds),
            us(r.decode_seconds),
            format!("{:016x}", r.checksum),
        ]);
    }
    t.print();

    let threads = forestbal_par::current().threads() as u64;
    for r in &wire {
        BenchRecord::new("kernel_wire")
            .u("threads", threads)
            .u("dim", r.dim as u64)
            .u("key_bytes", r.key_bytes as u64)
            .u("octants", r.octants as u64)
            .u("runs", r.runs as u64)
            .u("wire_bytes", r.wire_bytes as u64)
            .f(
                "bytes_per_octant",
                r.wire_bytes as f64 / r.octants.max(1) as f64,
            )
            .f("encode_s", r.encode_seconds)
            .f("decode_s", r.decode_seconds)
            .u("forest_checksum", r.checksum)
            .u("simd_pack", simd_pack as u64)
            .u("simd_packable", simd_packable as u64)
            .emit();
    }
}

fn run_seeds() {
    println!("\n#### Balancing remote octants (Section IV, Figures 4b/9)");
    let depths: Vec<u8> = (4..=12).step_by(2).collect();
    let rows = seeds_distance_experiment(&depths, 20);
    let mut t = Table::new(
        "T_k(o) ∩ r reconstruction: auxiliary cascade vs seeds",
        &[
            "scale levels",
            "overlap",
            "seeds",
            "old s",
            "new s",
            "speedup",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.scale_levels.to_string(),
            r.overlap_len.to_string(),
            r.seed_count.to_string(),
            format!("{:.6}", r.old_seconds),
            format!("{:.6}", r.new_seconds),
            ratio(r.old_seconds, r.new_seconds),
        ]);
    }
    t.print();
}

fn run_ripple(max_ranks: usize) {
    println!("\n#### Ripple baseline ablation (Section II-B)");
    let mut ranks = vec![];
    let mut p = 2;
    while p <= max_ranks {
        ranks.push(p);
        p *= 2;
    }
    let rows = ripple_ablation_experiment(&ranks, 2, 4);
    let mut t = Table::new(
        "One-pass vs multi-round ripple, fractal forest",
        &[
            "P",
            "one-pass s",
            "ripple s",
            "ripple rounds",
            "one-pass msgs",
            "ripple msgs",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.ranks.to_string(),
            format!("{:.4}", r.one_pass_seconds),
            format!("{:.4}", r.ripple_seconds),
            r.ripple_rounds.to_string(),
            r.one_pass_msgs.to_string(),
            r.ripple_msgs.to_string(),
        ]);
    }
    t.print();
}

/// The traced simscale run behind `--trace-out`: one P = 1024 balance
/// (new variant, Notify reversal) with per-rank recording, exported as
/// chrome-trace JSON plus an aggregate table and a `BENCH` counter line.
fn run_traced(path: &str, cfg: SimConfig) {
    let p = 1024;
    let traced = sim_balance_traced(p, 2, 3, BalanceVariant::New, ReversalScheme::Notify, cfg);
    let json = traced.trace.chrome_trace_json();
    forestbal_trace::validate_json(&json).expect("exporter must emit valid JSON");
    std::fs::write(path, &json).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!(
        "\nwrote {path}: {} ranks, {} bytes (open in https://ui.perfetto.dev)",
        traced.trace.ranks.len(),
        json.len()
    );

    let mut t = Table::new(
        &format!("Traced balance at P={p}: per-phase spans across ranks (virtual µs)"),
        &["phase", "ranks", "spans", "min", "median", "max"],
    );
    for a in traced.trace.phase_aggregates() {
        let us = |ns: u64| format!("{:.1}", ns as f64 / 1e3);
        t.row(vec![
            a.name.to_string(),
            a.ranks.to_string(),
            a.spans.to_string(),
            us(a.min_ns),
            us(a.median_ns),
            us(a.max_ns),
        ]);
    }
    t.print();

    // The virtual clock only ticks in communication calls, so per rank the
    // phase spans tile the balance span exactly; report the cross-check.
    let sum_phases: u64 = traced
        .trace
        .ranks
        .iter()
        .map(|rt| {
            [
                "markers",
                "local_balance",
                "query_response",
                "reversal",
                "rebalance",
            ]
            .iter()
            .map(|n| rt.phase_total_ns(n))
            .sum::<u64>()
        })
        .max()
        .unwrap_or(0);
    let total = traced
        .trace
        .ranks
        .iter()
        .map(|rt| rt.phase_total_ns("balance"))
        .max()
        .unwrap_or(0);
    println!("phase-sum cross-check: max Σphases = {sum_phases} ns, max balance span = {total} ns");

    let mut rec = BenchRecord::new("trace_balance")
        .u("ranks", p as u64)
        .u("octants_out", traced.row.octants_out)
        .u("makespan_ns", traced.row.makespan_ns)
        .u("balance_ns", total);
    for (name, v) in traced.trace.merged_counters() {
        rec = rec.u(name, v);
    }
    rec.emit();
}

fn run_simscale(big: bool) {
    let cfg = SimConfig::default();
    println!("\n#### Simulated scaling (discrete-event, virtual time)");
    println!(
        "cost model: α = {} ns, β = {} ns/B, collectives ⌈log2 P⌉·α + β·bytes",
        cfg.latency_ns, cfg.ns_per_byte
    );

    // Reversal curves at the paper's §V scale. Pure communication, cheap
    // even at 16k simulated ranks.
    let rev_ranks: &[usize] = if big {
        &[1024, 4096, 16384]
    } else {
        &[1024, 4096]
    };
    let rev = sim_reversal_scaling(rev_ranks, 4, 25, cfg);
    let mut t = Table::new(
        "Reversal schemes at scale (virtual ms, cluster totals)",
        &["P", "scheme", "virtual ms", "p2p msgs", "p2p B", "coll B"],
    );
    for r in &rev {
        t.row(vec![
            r.ranks.to_string(),
            r.scheme.to_string(),
            format!("{:.3}", r.makespan_ns as f64 / 1e6),
            r.stats.messages_sent.to_string(),
            r.stats.bytes_sent.to_string(),
            r.stats.collective_bytes.to_string(),
        ]);
        BenchRecord::new("sim_reversal")
            .u("ranks", r.ranks as u64)
            .s("scheme", r.scheme)
            .u("makespan_ns", r.makespan_ns)
            .f("virtual_ms", r.makespan_ns as f64 / 1e6)
            .u("messages", r.stats.messages_sent)
            .u("p2p_bytes", r.stats.bytes_sent)
            .u("collective_bytes", r.stats.collective_bytes)
            .emit();
    }
    t.print();

    // Full one-pass balance: every variant x scheme at large P. The
    // fractal workload is per-rank local, so the mesh grows with P and
    // per-rank work stays bounded.
    let bal_ranks: &[usize] = if big {
        &[1024, 4096, 16384]
    } else {
        &[1024, 4096]
    };
    let rows = sim_balance_scaling(bal_ranks, 2, 3, 25, cfg);
    let mut t = Table::new(
        "One-pass balance at scale (virtual ms per phase)",
        &[
            "P", "variant", "scheme", "total", "local", "reversal", "qry/rsp", "rebal", "msgs",
        ],
    );
    for r in &rows {
        let ms = |d: std::time::Duration| format!("{:.3}", d.as_secs_f64() * 1e3);
        t.row(vec![
            r.ranks.to_string(),
            format!("{:?}", r.variant),
            r.scheme.to_string(),
            ms(r.report.timings.total),
            ms(r.report.timings.local_balance),
            ms(r.report.timings.reversal),
            ms(r.report.timings.query_response),
            ms(r.report.timings.rebalance),
            r.stats.messages_sent.to_string(),
        ]);
        BenchRecord::new("sim_balance")
            .u("ranks", r.ranks as u64)
            .s("variant", &format!("{:?}", r.variant))
            .s("scheme", r.scheme)
            .u("octants_in", r.octants_in)
            .u("octants_out", r.octants_out)
            .u("makespan_ns", r.makespan_ns)
            .u("total_ns", r.report.timings.total.as_nanos() as u64)
            .u(
                "local_balance_ns",
                r.report.timings.local_balance.as_nanos() as u64,
            )
            .u("reversal_ns", r.report.timings.reversal.as_nanos() as u64)
            .u(
                "query_response_ns",
                r.report.timings.query_response.as_nanos() as u64,
            )
            .u("rebalance_ns", r.report.timings.rebalance.as_nanos() as u64)
            .u("messages", r.stats.messages_sent)
            .u("p2p_bytes", r.stats.bytes_sent)
            .emit();
    }
    t.print();
}

fn run_weakscale(max_ranks: Option<usize>, big: bool) {
    // Small fiber stacks keep the P = 112k reservation modest; the
    // builder is the intended construction path for tuned configs.
    let cfg = SimConfig::builder().stack_size(256 << 10).build();
    println!("\n#### Paper-scale virtual weak scaling (discrete-event, virtual time)");
    println!(
        "one-pass balance (new variant) on the fractal forest; networks: \
         flat α-β vs fat tree with per-link contention"
    );

    // The paper's Figure 15 runs on Jaguar at up to 112,128 cores; the
    // default list stops at 32k so mid-size machines finish in minutes,
    // and `--big` adds the full-machine point.
    let ranks: &[usize] = if big {
        &[1024, 8192, 32768, 112_128]
    } else {
        &[1024, 8192, 32768]
    };
    let ranks: Vec<usize> = ranks
        .iter()
        .copied()
        .filter(|&p| max_ranks.is_none_or(|m| p <= m))
        .collect();
    let rows = weakscale_experiment(&ranks, 2, 4, cfg);
    let mut t = Table::new(
        "Weak scaling: one-pass balance per phase (virtual ms)",
        &[
            "P",
            "net",
            "scheme",
            "oct/rank",
            "total",
            "local",
            "reversal",
            "qry/rsp",
            "rebal",
            "link waits",
        ],
    );
    for r in &rows {
        let ms = |d: std::time::Duration| format!("{:.3}", d.as_secs_f64() * 1e3);
        let per_rank = r.octants_out as f64 / r.ranks as f64;
        t.row(vec![
            r.ranks.to_string(),
            r.network.to_string(),
            r.scheme.to_string(),
            format!("{per_rank:.0}"),
            ms(r.report.timings.total),
            ms(r.report.timings.local_balance),
            ms(r.report.timings.reversal),
            ms(r.report.timings.query_response),
            ms(r.report.timings.rebalance),
            r.net.link_waits.to_string(),
        ]);
        let ns = |d: std::time::Duration| d.as_nanos() as u64;
        BenchRecord::new("weakscale")
            .u("ranks", r.ranks as u64)
            .u("level", r.level as u64)
            .s("scheme", r.scheme)
            .s("network", r.network)
            .u("octants_in", r.octants_in)
            .u("octants_out", r.octants_out)
            .f("octants_per_rank", per_rank)
            .u("makespan_ns", r.makespan_ns)
            .u("total_ns", ns(r.report.timings.total))
            .u("local_balance_ns", ns(r.report.timings.local_balance))
            .u("reversal_ns", ns(r.report.timings.reversal))
            .u("query_response_ns", ns(r.report.timings.query_response))
            .u("rebalance_ns", ns(r.report.timings.rebalance))
            // Figure 15 normalizes by per-rank mesh size; integer levels
            // cannot hold octants/rank exactly constant across P.
            .f(
                "total_ns_per_octant",
                ns(r.report.timings.total) as f64 / per_rank,
            )
            .u("messages", r.stats.messages_sent)
            .u("p2p_bytes", r.stats.bytes_sent)
            .u("collective_bytes", r.stats.collective_bytes)
            .u("net_p2p_messages", r.net.p2p_messages)
            .u("net_intra_node", r.net.intra_node_messages)
            .u("net_inter_node", r.net.inter_node_messages)
            .u("net_inter_pod", r.net.inter_pod_messages)
            .u("net_link_waits", r.net.link_waits)
            .u("net_link_wait_ns", r.net.link_wait_ns)
            .u("net_max_link_wait_ns", r.net.max_link_wait_ns)
            .u("net_collectives", r.net.collectives)
            .emit();
    }
    t.print();
}

/// The Local-rebalance study: full vs incremental commit of the same
/// clustered batch at dirty fractions of ~0.1%, 1% and 10%, plus
/// service request latency histograms. Emits one `BENCH {...}` line per
/// row (the committed snapshot is `BENCH_local.json`; see
/// EXPERIMENTS.md for the regeneration recipe).
fn run_local(max_ranks: usize, big: bool) {
    let p = max_ranks.min(4);
    let reps = 3;
    println!("\n#### Incremental epoch commit: full balance vs Local rebalance (P = {p})");
    let rows = local_experiment(p, reps, big);

    let ms = |s: f64| format!("{:.3}", s * 1e3);
    let mut t = Table::new(
        "Commit cost of one clustered edit, best of reps (ms, cluster max)",
        &[
            "mesh",
            "leaves",
            "dirty",
            "dirty %",
            "full",
            "incremental",
            "speedup",
            "rounds",
            "splits",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.mesh.to_string(),
            r.leaves.to_string(),
            r.dirty_global.to_string(),
            format!("{:.3}", r.dirty_frac * 100.0),
            ms(r.full_seconds),
            ms(r.incremental_seconds),
            ratio(r.full_seconds, r.incremental_seconds),
            r.rounds.to_string(),
            r.splits.to_string(),
        ]);
    }
    t.print();

    let mut t = Table::new(
        "Service latency, log2-bucket upper bounds (µs; count across ranks)",
        &[
            "mesh",
            "dirty %",
            "locate n",
            "locate p50",
            "locate p99",
            "neighbor n",
            "neighbor p50",
            "neighbor p99",
            "commit n",
            "commit p50",
            "commit p99",
        ],
    );
    let us = |ns: u64| format!("{:.1}", ns as f64 * 1e-3);
    for r in &rows {
        t.row(vec![
            r.mesh.to_string(),
            format!("{:.3}", r.dirty_frac * 100.0),
            r.point_locate.count.to_string(),
            us(r.point_locate.p50_ns),
            us(r.point_locate.p99_ns),
            r.neighbor_query.count.to_string(),
            us(r.neighbor_query.p50_ns),
            us(r.neighbor_query.p99_ns),
            r.commit.count.to_string(),
            us(r.commit.p50_ns),
            us(r.commit.p99_ns),
        ]);
    }
    t.print();

    for r in &rows {
        BenchRecord::new("local")
            .u("ranks", r.ranks as u64)
            .s("mesh", r.mesh)
            .u("leaves", r.leaves)
            .u("dirty_global", r.dirty_global)
            .f("dirty_frac", r.dirty_frac)
            .f("full_s", r.full_seconds)
            .f("incremental_s", r.incremental_seconds)
            .f("speedup", r.speedup)
            .u("rounds", r.rounds as u64)
            .u("splits", r.splits)
            .u("forest_checksum", r.checksum)
            .u("point_locate_n", r.point_locate.count)
            .u("point_locate_p50_ns", r.point_locate.p50_ns)
            .u("point_locate_p99_ns", r.point_locate.p99_ns)
            .u("neighbor_query_n", r.neighbor_query.count)
            .u("neighbor_query_p50_ns", r.neighbor_query.p50_ns)
            .u("neighbor_query_p99_ns", r.neighbor_query.p99_ns)
            .u("commit_n", r.commit.count)
            .u("commit_p50_ns", r.commit.p50_ns)
            .u("commit_p99_ns", r.commit.p99_ns)
            .emit();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut exp = "all".to_string();
    let mut max_ranks = 8usize;
    let mut max_ranks_set = false;
    let mut big = false;
    let mut trace_out: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--exp" => {
                exp = args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--exp requires a value");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--trace-out" => {
                trace_out = Some(args.get(i + 1).cloned().unwrap_or_else(|| {
                    eprintln!("--trace-out requires a path");
                    std::process::exit(2);
                }));
                i += 2;
            }
            "--threads" => {
                let n: usize = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| {
                        eprintln!("--threads requires an integer >= 1");
                        std::process::exit(2);
                    });
                if !forestbal_par::set_global_threads(n) {
                    eprintln!("--threads: pool already initialized");
                    std::process::exit(2);
                }
                i += 2;
            }
            "--max-ranks" => {
                max_ranks = args
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--max-ranks requires an integer");
                        std::process::exit(2);
                    });
                max_ranks_set = true;
                i += 2;
            }
            "--big" => {
                big = true;
                i += 1;
            }
            other => {
                eprintln!("unknown argument {other}");
                eprintln!(
                    "usage: timings [--exp weak|strong|notify|subtree|kernel|wire|seeds|ripple|local|simscale|weakscale|all] \
                     [--max-ranks N] [--threads N] [--big] [--trace-out trace.json]"
                );
                std::process::exit(2);
            }
        }
    }
    let known = [
        "all",
        "subtree",
        "kernel",
        "wire",
        "seeds",
        "notify",
        "weak",
        "strong",
        "ripple",
        "local",
        "simscale",
        "weakscale",
    ];
    if !known.contains(&exp.as_str()) {
        eprintln!("unknown experiment {exp}");
        eprintln!(
            "usage: timings [--exp weak|strong|notify|subtree|kernel|wire|seeds|ripple|local|simscale|weakscale|all] \
             [--max-ranks N] [--threads N] [--big] [--trace-out trace.json]"
        );
        std::process::exit(2);
    }
    let all = exp == "all";
    if all || exp == "subtree" {
        run_subtree(big);
    }
    if all || exp == "kernel" {
        run_kernel(big);
    }
    if exp == "wire" {
        // `kernel` (and `all`) already include the wire table; this runs
        // it alone, fast enough for the CI feature matrix.
        run_wire();
    }
    if all || exp == "seeds" {
        run_seeds();
    }
    if all || exp == "notify" {
        run_notify(max_ranks.max(16));
    }
    if all || exp == "weak" {
        run_weak(max_ranks, big);
    }
    if all || exp == "strong" {
        run_strong(max_ranks, big);
    }
    if all || exp == "ripple" {
        run_ripple(max_ranks);
    }
    if all || exp == "local" {
        run_local(max_ranks, big);
    }
    // Deliberately not part of `all`: large simulated rank counts are
    // only sensible in release builds.
    if exp == "simscale" {
        run_simscale(big);
        if let Some(path) = &trace_out {
            run_traced(path, SimConfig::default());
        }
    } else if trace_out.is_some() {
        eprintln!("--trace-out only applies to --exp simscale");
        std::process::exit(2);
    }
    if exp == "weakscale" {
        // `--max-ranks` caps the simulated rank list here (CI smoke runs
        // only the P = 8192 points); unlike the threaded experiments the
        // default is the full list, not the host's core count.
        run_weakscale(max_ranks_set.then_some(max_ranks), big);
    }
}
