//! Experiment drivers, one per evaluation table/figure.
//!
//! Absolute numbers are laptop-scale (simulated ranks are threads); the
//! quantities mirrored from the paper are the *shapes*: per-phase time
//! normalized by octants per rank (weak scaling, Figure 15), per-phase
//! time versus rank count (strong scaling, Figure 17), message counts and
//! volumes for the reversal schemes (§V), operation counts for the
//! subtree algorithms (§III), and distance-independence of seed-based
//! responses (§IV).

use forestbal_comm::{reverse_naive, reverse_notify, reverse_ranges, Cluster, Comm, CommStats};
use forestbal_core::{
    balance_subtree_new_with_stats, balance_subtree_new_with_stats_scratch,
    balance_subtree_old_ext, balance_subtree_old_with_stats, find_seeds, reconstruct_from_seeds,
    BalanceScratch, BalanceStats, Condition,
};
use forestbal_forest::{BalanceReport, BalanceVariant, Forest, ReversalScheme};
use forestbal_mesh::{fractal_forest, ice_sheet_forest, IceSheetParams};
use forestbal_octant::{
    complete_subtree, linearize, sort_keys_with, sort_octants_with, Octant, OctantSet, OctantTable,
    SortScratch,
};
use forestbal_service::{clustered_batch, ForestService, Request, RequestClass, ServiceConfig};
use forestbal_sim::{FatTreeParams, NetStats, NetworkSpec, SimCluster, SimConfig};
use forestbal_trace::{bucket_bounds, ClusterTrace, Histogram, RankTrace, Tracer, HIST_BUCKETS};
use std::time::Instant;

/// One row of a scaling study: both variants on the same mesh. Timings
/// are cluster maxima; volumes are cluster sums.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Simulated rank count.
    pub ranks: usize,
    /// Refinement level parameter of the workload.
    pub level: u8,
    /// Global octants before balance.
    pub octants_in: u64,
    /// Global octants after balance.
    pub octants_out: u64,
    /// Old-variant report (cluster-aggregated).
    pub old: BalanceReport,
    /// New-variant report (cluster-aggregated).
    pub new: BalanceReport,
}

fn run_balance_3d(
    p: usize,
    variant: BalanceVariant,
    build: impl Fn(&forestbal_comm::RankCtx) -> Forest<3> + Sync,
) -> (u64, u64, BalanceReport) {
    let out = Cluster::run(p, |ctx| {
        let mut f = build(ctx);
        let before = f.num_global(ctx);
        ctx.barrier();
        let rep = f.balance_with_report(ctx, Condition::full(3), variant, ReversalScheme::Notify);
        let after = f.num_global(ctx);
        (before, after, rep)
    });
    let before = out.results[0].0;
    let after = out.results[0].1;
    let rep = out
        .results
        .iter()
        .map(|r| r.2)
        .fold(BalanceReport::default(), |a, b| a.combine(&b));
    (before, after, rep)
}

/// Weak scaling (Figures 14/15): the fractal forest, level growing with
/// the rank count to hold octants-per-rank roughly constant.
pub fn weak_scaling_experiment(points: &[(usize, u8)], spread: u8) -> Vec<ScalingRow> {
    points
        .iter()
        .map(|&(p, level)| {
            let (i1, o1, old) = run_balance_3d(p, BalanceVariant::Old, |ctx| {
                fractal_forest(ctx, level, spread)
            });
            let (i2, o2, new) = run_balance_3d(p, BalanceVariant::New, |ctx| {
                fractal_forest(ctx, level, spread)
            });
            assert_eq!(i1, i2);
            assert_eq!(o1, o2, "variants disagree on the balanced mesh size");
            ScalingRow {
                ranks: p,
                level,
                octants_in: i1,
                octants_out: o1,
                old,
                new,
            }
        })
        .collect()
}

/// Strong scaling (Figures 16/17): a fixed synthetic ice-sheet mesh,
/// repartitioned and balanced on increasing rank counts.
pub fn strong_scaling_experiment(ranks: &[usize], params: IceSheetParams) -> Vec<ScalingRow> {
    ranks
        .iter()
        .map(|&p| {
            let build = |ctx: &forestbal_comm::RankCtx| {
                let mut f = ice_sheet_forest(ctx, params);
                f.partition_uniform(ctx);
                f
            };
            let (i1, o1, old) = run_balance_3d(p, BalanceVariant::Old, build);
            let (i2, o2, new) = run_balance_3d(p, BalanceVariant::New, build);
            assert_eq!(i1, i2);
            assert_eq!(o1, o2, "variants disagree on the balanced mesh size");
            ScalingRow {
                ranks: p,
                level: params.max_level,
                octants_in: i1,
                octants_out: o1,
                old,
                new,
            }
        })
        .collect()
}

/// One reversal scheme's cost on one pattern.
#[derive(Clone, Copy, Debug)]
pub struct ReversalCost {
    /// Slowest-rank wall clock.
    pub seconds: f64,
    /// Cluster-total communication counters.
    pub stats: CommStats,
}

/// One row of the pattern-reversal study (§V / Figures 12, 13, 15e).
#[derive(Clone, Debug)]
pub struct NotifyRow {
    /// Simulated rank count.
    pub ranks: usize,
    /// Figure 12's Allgather/Allgatherv scheme.
    pub naive: ReversalCost,
    /// The fixed-size Ranges encoding.
    pub ranges: ReversalCost,
    /// The paper's Notify algorithm (Figure 13).
    pub notify: ReversalCost,
}

/// Compare the three reversal schemes on a curve-local pattern where each
/// rank addresses its `fanout` nearest successors (the typical shape of
/// balance queries along the space-filling curve).
///
/// Timing comes from the reversal spans the schemes themselves record
/// (`reverse_naive`/`reverse_ranges`/`reverse_notify`), so the measured
/// interval is exactly the algorithm, not the harness around it. Without
/// the `trace` feature the spans are compiled out and seconds read 0.
pub fn notify_experiment(ranks: &[usize], fanout: usize, max_ranges: usize) -> Vec<NotifyRow> {
    ranks
        .iter()
        .map(|&p| {
            let receivers_of = move |r: usize| -> Vec<usize> {
                (1..=fanout)
                    .map(|i| (r + i) % p)
                    .filter(|&q| q != r)
                    .collect()
            };
            let timed = |which: u8| -> ReversalCost {
                let out = Cluster::run(p, |ctx| {
                    let rs = receivers_of(ctx.rank());
                    ctx.barrier();
                    let tracer = Tracer::begin(ctx.rank());
                    let senders = match which {
                        0 => reverse_naive(ctx, &rs),
                        1 => reverse_ranges(ctx, &rs, max_ranges),
                        _ => reverse_notify(ctx, &rs),
                    };
                    assert!(!senders.is_empty() || p == 1);
                    tracer.finish()
                });
                let span = ["reverse_naive", "reverse_ranges", "reverse_notify"][which as usize];
                let seconds = out
                    .results
                    .iter()
                    .map(|rt| rt.phase_total_ns(span) as f64 / 1e9)
                    .fold(0.0, f64::max);
                ReversalCost {
                    seconds,
                    stats: out.total_stats(),
                }
            };
            NotifyRow {
                ranks: p,
                naive: timed(0),
                ranges: timed(1),
                notify: timed(2),
            }
        })
        .collect()
}

/// One (rank count, scheme) point of the simulated reversal scaling
/// study: the same pattern as [`notify_experiment`] but on the
/// discrete-event simulator, so `ranks` can reach the paper's §V scale
/// (thousands to tens of thousands) and `makespan_ns` is deterministic
/// virtual cluster time instead of noisy wall clock.
#[derive(Clone, Debug)]
pub struct SimReversalRow {
    /// Simulated rank count.
    pub ranks: usize,
    /// `"naive"`, `"ranges"`, or `"notify"`.
    pub scheme: &'static str,
    /// Virtual time when the last rank finished, in nanoseconds.
    pub makespan_ns: u64,
    /// Cluster-total communication counters.
    pub stats: CommStats,
}

/// Run the three reversal schemes on the curve-local `fanout`-successor
/// pattern under the simulator, one row per `(P, scheme)`.
pub fn sim_reversal_scaling(
    ranks: &[usize],
    fanout: usize,
    max_ranges: usize,
    cfg: SimConfig,
) -> Vec<SimReversalRow> {
    let mut rows = Vec::new();
    for &p in ranks {
        let receivers_of = move |r: usize| -> Vec<usize> {
            (1..=fanout)
                .map(|i| (r + i) % p)
                .filter(|&q| q != r)
                .collect()
        };
        for (scheme, which) in [("naive", 0u8), ("ranges", 1), ("notify", 2)] {
            let out = SimCluster::run(p, cfg, move |ctx| {
                let rs = receivers_of(ctx.rank());
                ctx.barrier();
                let senders = match which {
                    0 => reverse_naive(ctx, &rs),
                    1 => reverse_ranges(ctx, &rs, max_ranges),
                    _ => reverse_notify(ctx, &rs),
                };
                assert!(!senders.is_empty() || p == 1);
            });
            rows.push(SimReversalRow {
                ranks: p,
                scheme,
                makespan_ns: out.makespan_ns(),
                stats: out.total_stats(),
            });
        }
    }
    rows
}

/// One (rank count, variant, scheme) point of the simulated balance
/// scaling study (§VI at Jaguar-like rank counts).
#[derive(Clone, Debug)]
pub struct SimBalanceRow {
    /// Simulated rank count.
    pub ranks: usize,
    /// Balance variant under test.
    pub variant: BalanceVariant,
    /// `"naive"`, `"ranges"`, or `"notify"`.
    pub scheme: &'static str,
    /// Global octants before balance.
    pub octants_in: u64,
    /// Global octants after balance.
    pub octants_out: u64,
    /// Cluster-combined per-phase report; timings are per-rank *virtual
    /// time* maxima (measured through `Comm::now_ns`).
    pub report: BalanceReport,
    /// Virtual time when the last rank finished, in nanoseconds.
    pub makespan_ns: u64,
    /// Cluster-total communication counters.
    pub stats: CommStats,
}

/// Run a full one-pass balance of the fractal forest on the simulator for
/// every `(P, variant, scheme)` combination. All rows for a given `P`
/// must agree on the balanced mesh size (asserted), so this doubles as a
/// large-P cross-check of the schemes against each other.
pub fn sim_balance_scaling(
    ranks: &[usize],
    level: u8,
    spread: u8,
    max_ranges: usize,
    cfg: SimConfig,
) -> Vec<SimBalanceRow> {
    let mut rows = Vec::new();
    for &p in ranks {
        let mut sizes: Option<(u64, u64)> = None;
        for (scheme_name, scheme) in [
            ("naive", ReversalScheme::Naive),
            ("ranges", ReversalScheme::Ranges(max_ranges)),
            ("notify", ReversalScheme::Notify),
        ] {
            for variant in [BalanceVariant::Old, BalanceVariant::New] {
                let out = SimCluster::run(p, cfg, move |ctx| {
                    let mut f = fractal_forest(ctx, level, spread);
                    let before = f.num_global(ctx);
                    ctx.barrier();
                    let rep = f.balance_with_report(ctx, Condition::full(3), variant, scheme);
                    let after = f.num_global(ctx);
                    (before, after, rep)
                });
                let (before, after, _) = out.results[0];
                match sizes {
                    None => sizes = Some((before, after)),
                    Some(s) => assert_eq!(
                        s,
                        (before, after),
                        "P={p}: {scheme_name}/{variant:?} disagrees on mesh size"
                    ),
                }
                let report = out
                    .results
                    .iter()
                    .map(|r| r.2)
                    .fold(BalanceReport::default(), |a, b| a.combine(&b));
                rows.push(SimBalanceRow {
                    ranks: p,
                    variant,
                    scheme: scheme_name,
                    octants_in: before,
                    octants_out: after,
                    report,
                    makespan_ns: out.makespan_ns(),
                    stats: out.total_stats(),
                });
            }
        }
    }
    rows
}

/// One (rank count, scheme, network) point of the paper-scale virtual
/// weak-scaling study (Figure 15 at the paper's Jaguar rank counts).
#[derive(Clone, Debug)]
pub struct WeakScaleRow {
    /// Simulated rank count.
    pub ranks: usize,
    /// Base refinement level from [`weakscale_level`].
    pub level: u8,
    /// `"naive"`, `"ranges"`, or `"notify"`.
    pub scheme: &'static str,
    /// `"flat"` or `"fattree"` — the network cost model of this row.
    pub network: &'static str,
    /// Global octants before balance.
    pub octants_in: u64,
    /// Global octants after balance.
    pub octants_out: u64,
    /// Cluster-combined per-phase report (virtual-time maxima).
    pub report: BalanceReport,
    /// Virtual time when the last rank finished.
    pub makespan_ns: u64,
    /// Cluster-total communication counters.
    pub stats: CommStats,
    /// The network model's own traffic/contention counters.
    pub net: NetStats,
}

/// Base refinement level for a weak-scaling point: the smallest level
/// whose uniform 6·8^level base mesh averages at least one octant per
/// rank. The fractal refinement then multiplies local counts by ~18x,
/// so per-rank leaf counts land around 20-150 — deliberately small,
/// since the simulator serializes all P ranks' computation onto one
/// host and the P = 112,128 point must stay tractable. Levels are
/// integers while P grows freely, so the per-rank count is not constant
/// across P; reported times should be normalized by octants-per-rank as
/// in the paper's Figure 15.
pub fn weakscale_level(p: usize) -> u8 {
    let mut level = 1u8;
    while 6u128 << (3 * level as u32) < p as u128 {
        level += 1;
    }
    level
}

/// The paper-scale virtual weak-scaling study: the fractal forest,
/// one-pass balance (New variant), every reversal scheme, under both the
/// flat α-β network and a contended fat tree — at rank counts up to the
/// paper's full-machine P = 112,128. All rows for a given P must agree
/// on the balanced mesh size (asserted): the network model prices
/// communication but must never change results.
pub fn weakscale_experiment(
    ranks: &[usize],
    spread: u8,
    max_ranges: usize,
    cfg: SimConfig,
) -> Vec<WeakScaleRow> {
    let mut rows = Vec::new();
    for &p in ranks {
        let level = weakscale_level(p);
        let mut sizes: Option<(u64, u64)> = None;
        for (net_name, network) in [
            ("flat", NetworkSpec::Flat),
            ("fattree", NetworkSpec::FatTree(FatTreeParams::default())),
        ] {
            let cfg = cfg.with_network(network);
            for (scheme_name, scheme) in [
                ("naive", ReversalScheme::Naive),
                ("ranges", ReversalScheme::Ranges(max_ranges)),
                ("notify", ReversalScheme::Notify),
            ] {
                // Progress on stderr: the `--big` point simulates 112k
                // ranks per row and runs for minutes.
                eprintln!("weakscale: P={p} level={level} {net_name}/{scheme_name} ...");
                let t0 = Instant::now();
                let out = SimCluster::run(p, cfg, move |ctx| {
                    let mut f = fractal_forest(ctx, level, spread);
                    let before = f.num_global(ctx);
                    ctx.barrier();
                    let rep =
                        f.balance_with_report(ctx, Condition::full(3), BalanceVariant::New, scheme);
                    let after = f.num_global(ctx);
                    (before, after, rep)
                });
                eprintln!(
                    "weakscale: P={p} {net_name}/{scheme_name} done in {:.1}s (host wall clock)",
                    t0.elapsed().as_secs_f64()
                );
                let (before, after, _) = out.results[0];
                match sizes {
                    None => sizes = Some((before, after)),
                    Some(s) => assert_eq!(
                        s,
                        (before, after),
                        "P={p}: {scheme_name}/{net_name} disagrees on mesh size"
                    ),
                }
                let report = out
                    .results
                    .iter()
                    .map(|r| r.2)
                    .fold(BalanceReport::default(), |a, b| a.combine(&b));
                rows.push(WeakScaleRow {
                    ranks: p,
                    level,
                    scheme: scheme_name,
                    network: net_name,
                    octants_in: before,
                    octants_out: after,
                    report,
                    makespan_ns: out.makespan_ns(),
                    stats: out.total_stats(),
                    net: out.net,
                });
            }
        }
    }
    rows
}

/// One traced simulated balance run: the usual scaling-row summary plus
/// every rank's full trace, ready for chrome-trace export.
#[derive(Clone, Debug)]
pub struct TracedSimBalance {
    /// The scaling-row summary (same fields as [`sim_balance_scaling`]).
    pub row: SimBalanceRow,
    /// Per-rank traces: spans in virtual time, counters, histograms.
    pub trace: ClusterTrace,
}

/// One point of [`sim_balance_scaling`] with per-rank tracing armed
/// around the balance call. Span timestamps are the simulator's *virtual*
/// clock, and virtual time only advances inside communication calls, so
/// the four phase spans (plus `markers`) partition the enclosing
/// `balance` span exactly — no harness time leaks in.
pub fn sim_balance_traced(
    p: usize,
    level: u8,
    spread: u8,
    variant: BalanceVariant,
    scheme: ReversalScheme,
    cfg: SimConfig,
) -> TracedSimBalance {
    let out = SimCluster::run(p, cfg, move |ctx| {
        let mut f = fractal_forest(ctx, level, spread);
        let before = f.num_global(ctx);
        ctx.barrier();
        let tracer = Tracer::begin(ctx.rank());
        let rep = f.balance_with_report(ctx, Condition::full(3), variant, scheme);
        let tr = tracer.finish();
        let after = f.num_global(ctx);
        (before, after, rep, tr)
    });
    let (before, after) = (out.results[0].0, out.results[0].1);
    let report = out
        .results
        .iter()
        .map(|r| r.2)
        .fold(BalanceReport::default(), |a, b| a.combine(&b));
    let scheme_name = match scheme {
        ReversalScheme::Naive => "naive",
        ReversalScheme::Ranges(_) => "ranges",
        ReversalScheme::Notify => "notify",
    };
    let row = SimBalanceRow {
        ranks: p,
        variant,
        scheme: scheme_name,
        octants_in: before,
        octants_out: after,
        report,
        makespan_ns: out.makespan_ns(),
        stats: out.total_stats(),
    };
    let trace = ClusterTrace::new(out.results.into_iter().map(|r| r.3).collect());
    TracedSimBalance { row, trace }
}

/// Thread-parallel 2:1 verification of a sorted linear octree — lets the
/// benchmark harness validate multi-million-leaf outputs without paying
/// the serial oracle's cost. Leaves are checked in contiguous chunks, one
/// scoped thread per available core.
pub fn par_is_balanced<const D: usize>(
    leaves: &[Octant<D>],
    root: &Octant<D>,
    cond: Condition,
) -> bool {
    let containing = |q: &Octant<D>| -> Option<&Octant<D>> {
        let i = leaves.partition_point(|x| x <= q);
        (i > 0 && leaves[i - 1].contains(q)).then(|| &leaves[i - 1])
    };
    let check = |o: &Octant<D>| {
        forestbal_octant::directions::<D>().all(|dir| {
            if !cond.constrains(forestbal_octant::codim(&dir)) {
                return true;
            }
            let n = o.neighbor(&dir);
            if !root.contains(&n) {
                return true;
            }
            match containing(&n) {
                Some(c) => c.level + 1 >= o.level,
                None => true,
            }
        })
    };
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let chunk = leaves.len().div_ceil(threads).max(1);
    std::thread::scope(|s| {
        let handles: Vec<_> = leaves
            .chunks(chunk)
            .map(|c| {
                let check = &check;
                s.spawn(move || c.iter().all(check))
            })
            .collect();
        handles.into_iter().all(|h| h.join().unwrap())
    })
}

/// One row of the ripple-vs-one-pass ablation (§II-B).
#[derive(Clone, Debug)]
pub struct RippleRow {
    /// Simulated rank count.
    pub ranks: usize,
    /// Slowest-rank time of the one-pass algorithm.
    pub one_pass_seconds: f64,
    /// Slowest-rank time of the multi-round ripple baseline.
    pub ripple_seconds: f64,
    /// Communication rounds the ripple needed to converge.
    pub ripple_rounds: u32,
    /// Cluster-total p2p messages of the one-pass algorithm.
    pub one_pass_msgs: u64,
    /// Cluster-total p2p messages of the ripple baseline.
    pub ripple_msgs: u64,
}

/// Compare the one-pass algorithm against the multi-round ripple baseline
/// on the fractal workload: the ripple needs a number of communication
/// rounds that grows with the refinement's reach, the one-pass algorithm
/// always uses a single query/response round.
///
/// Both sides are timed through their own trace spans (`"balance"` and
/// `"ripple"`), so the harness (mesh construction, checksum) stays outside
/// the measured interval by construction.
pub fn ripple_ablation_experiment(ranks: &[usize], level: u8, spread: u8) -> Vec<RippleRow> {
    let span_secs = |rt: &RankTrace, name: &str| rt.phase_total_ns(name) as f64 / 1e9;
    ranks
        .iter()
        .map(|&p| {
            let one = Cluster::run(p, |ctx| {
                let mut f = fractal_forest(ctx, level, spread);
                ctx.barrier();
                let tracer = Tracer::begin(ctx.rank());
                f.balance(
                    ctx,
                    Condition::full(3),
                    BalanceVariant::New,
                    ReversalScheme::Notify,
                );
                (tracer.finish(), f.checksum(ctx))
            });
            let rip = Cluster::run(p, |ctx| {
                let mut f = fractal_forest(ctx, level, spread);
                ctx.barrier();
                let tracer = Tracer::begin(ctx.rank());
                let stats = f.balance_ripple(ctx, Condition::full(3));
                (tracer.finish(), f.checksum(ctx), stats.rounds)
            });
            assert_eq!(one.results[0].1, rip.results[0].1, "baselines disagree");
            RippleRow {
                ranks: p,
                one_pass_seconds: one
                    .results
                    .iter()
                    .map(|r| span_secs(&r.0, "balance"))
                    .fold(0.0, f64::max),
                ripple_seconds: rip
                    .results
                    .iter()
                    .map(|r| span_secs(&r.0, "ripple"))
                    .fold(0.0, f64::max),
                ripple_rounds: rip.results.iter().map(|r| r.2).max().unwrap(),
                one_pass_msgs: one.total_stats().messages_sent,
                ripple_msgs: rip.total_stats().messages_sent,
            }
        })
        .collect()
}

/// One row of the serial subtree-balance study (§III / Figures 6-8).
#[derive(Clone, Debug)]
pub struct SubtreeRow {
    /// Leaves in the input octree.
    pub input_len: usize,
    /// Old algorithm wall clock.
    pub old_seconds: f64,
    /// New algorithm wall clock.
    pub new_seconds: f64,
    /// Old algorithm operation counts.
    pub old_stats: BalanceStats,
    /// New algorithm operation counts.
    pub new_stats: BalanceStats,
}

/// Generate a complete, adapted 3D input octree of roughly `target`
/// leaves by completing around pseudo-random deep pins.
pub fn adapted_subtree_input(target: usize, seed: u64) -> Vec<Octant<3>> {
    let root = Octant::<3>::root();
    let mut pins = Vec::new();
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    // Each deep pin completes to ~ depth * 7 octants.
    let n_pins = (target / 40).max(1);
    for _ in 0..n_pins {
        let mut o = root;
        let depth = 4 + (next() % 4) as u8;
        for _ in 0..depth {
            o = o.child((next() % 8) as usize);
        }
        pins.push(o);
    }
    linearize(&mut pins);
    complete_subtree(&root, &pins)
}

/// Compare the old and new subtree balance on adapted inputs.
pub fn subtree_experiment(targets: &[usize]) -> Vec<SubtreeRow> {
    let root = Octant::<3>::root();
    let cond = Condition::full(3);
    targets
        .iter()
        .map(|&n| {
            let input = adapted_subtree_input(n, 0x5eed ^ n as u64);
            let t0 = Instant::now();
            let (out_old, old_stats) = balance_subtree_old_with_stats(&root, &input, cond);
            let old_seconds = t0.elapsed().as_secs_f64();
            let t0 = Instant::now();
            let (out_new, new_stats) = balance_subtree_new_with_stats(&root, &input, cond);
            let new_seconds = t0.elapsed().as_secs_f64();
            assert_eq!(out_old, out_new, "algorithms disagree");
            assert!(par_is_balanced(&out_new, &root, cond), "output unbalanced");
            SubtreeRow {
                input_len: input.len(),
                old_seconds,
                new_seconds,
                old_stats,
                new_stats,
            }
        })
        .collect()
}

/// One row of the packed-key kernel study: struct sort vs packed radix,
/// `HashSet` octant set vs open-addressing [`OctantTable`], and fresh vs
/// reused [`BalanceScratch`], all on the same adapted 3D input.
#[derive(Clone, Debug)]
pub struct KernelRow {
    /// Leaves in the (complete, linear) input octree.
    pub input_len: usize,
    /// `sort_unstable` on the shuffled struct array.
    pub sort_struct_seconds: f64,
    /// Packed-key LSD radix sort on the same shuffled array.
    pub sort_radix_seconds: f64,
    /// Packed-path sort on already-sorted input (the early-out).
    pub sort_presorted_seconds: f64,
    /// Radix passes one shuffled sort performed (trivial passes skipped).
    pub radix_passes: u64,
    /// Building a `HashSet`-backed [`OctantSet`] from the input.
    pub set_build_seconds: f64,
    /// Building a pre-sized [`OctantTable`] from the input.
    pub table_build_seconds: f64,
    /// Membership queries (half hits, half misses) against the set.
    pub set_query_seconds: f64,
    /// The same queries against the table.
    pub table_query_seconds: f64,
    /// Mean linear-probe steps per table operation.
    pub table_probes_per_op: f64,
    /// Table regrowths during the build (0 = pre-sizing sufficed).
    pub table_grows: u64,
    /// The new kernel as it stood before the packed fast path (`HashSet`
    /// membership, struct sort), end to end.
    pub balance_hashset_seconds: f64,
    /// New-kernel subtree balance allocating fresh per call.
    pub balance_fresh_seconds: f64,
    /// The same balance through one reused scratch arena.
    pub balance_scratch_seconds: f64,
}

/// The pre-packed-path new kernel, pinned as an end-to-end baseline (the
/// same reference the differential tests in `forestbal-core` check the
/// packed kernels against, stats and all).
fn reference_balance_new<const D: usize>(
    root: &Octant<D>,
    input: &[Octant<D>],
    cond: Condition,
) -> (Vec<Octant<D>>, BalanceStats) {
    use forestbal_core::{complete_reduced, precludes, reduce, remove_precluded};
    use std::collections::VecDeque;
    let mut stats = BalanceStats::default();
    let interior: Vec<Octant<D>> = input
        .iter()
        .copied()
        .filter(|o| o.level > root.level)
        .collect();
    let r = reduce(&interior);
    let mut rnew: OctantSet<D> = OctantSet::default();
    let mut rprec: OctantSet<D> = OctantSet::default();
    let mut work: VecDeque<Octant<D>> = r.iter().copied().collect();

    while let Some(o) = work.pop_front() {
        if o.level <= root.level + 1 {
            continue;
        }
        for s0 in &forestbal_core::coarse_neighborhood(&o, cond) {
            if s0.level <= root.level || !root.contains(s0) {
                continue;
            }
            let s = s0.sibling(0);
            stats.hash_queries += 1;
            if rnew.contains(&s) {
                continue;
            }
            stats.binary_searches += 1;
            let pos = r.partition_point(|t| t <= &s);
            if pos > 0 {
                let t = r[pos - 1];
                if t == s {
                    continue;
                }
                if precludes(&t, &s) {
                    rprec.insert(t);
                } else if precludes(&s, &t) {
                    rprec.insert(s);
                }
            }
            if precludes(&s, &o) {
                rprec.insert(s);
            }
            rnew.insert(s);
            work.push_back(s);
        }
    }

    let mut rfinal: Vec<Octant<D>> = Vec::new();
    rfinal.extend(r.iter().filter(|t| !rprec.contains(t)));
    rfinal.extend(rnew.iter().filter(|t| !rprec.contains(t)));
    stats.sorted_len = rfinal.len();
    rfinal.sort_unstable();
    remove_precluded(&mut rfinal);
    let out = complete_reduced(root, &rfinal);
    stats.output_len = out.len();
    (out, stats)
}

/// Deterministic Fisher-Yates shuffle (xorshift; the workspace builds
/// offline without `rand` in the hot path).
fn shuffle<T>(v: &mut [T], seed: u64) {
    let mut state = seed | 1;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in (1..v.len()).rev() {
        let j = (rng() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

fn timed(reps: usize, mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..reps {
        f();
    }
    t0.elapsed().as_secs_f64() / reps as f64
}

/// Best-of-`reps` timing: the minimum single-call time is far more robust
/// to scheduler noise than the mean, which matters for the end-to-end
/// balance comparison where each call runs only a handful of times.
fn timed_min(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Micro-benchmark the packed-key building blocks against the structures
/// they replaced, on adapted 3D inputs of roughly the given sizes. Every
/// fast path is differentially checked against its baseline in the same
/// run, so a row is also a correctness witness.
pub fn kernel_experiment(targets: &[usize]) -> Vec<KernelRow> {
    use std::hint::black_box;
    let root = Octant::<3>::root();
    let cond = Condition::full(3);
    targets
        .iter()
        .map(|&n| {
            let input = adapted_subtree_input(n, 0xbeef ^ n as u64);
            let mut shuffled = input.clone();
            shuffle(&mut shuffled, 0x5eed ^ n as u64);
            let reps = (100_000 / input.len().max(1)).clamp(2, 25);

            // --- sort: struct comparison vs packed radix vs presorted ---
            let mut buf = shuffled.clone();
            let sort_struct_seconds = timed(reps, || {
                buf.copy_from_slice(&shuffled);
                black_box(&mut buf).sort_unstable();
            });
            let struct_sorted = buf.clone();
            let mut sort = SortScratch::new();
            let passes_before = sort.radix_passes;
            let sorts_before = sort.radix_sorts;
            let sort_radix_seconds = timed(reps, || {
                buf.copy_from_slice(&shuffled);
                sort_octants_with(black_box(&mut buf), &mut sort);
            });
            assert_eq!(buf, struct_sorted, "radix sort diverged from sort_unstable");
            let radix_passes =
                (sort.radix_passes - passes_before) / (sort.radix_sorts - sorts_before).max(1);
            let sort_presorted_seconds = timed(reps, || {
                sort_octants_with(black_box(&mut buf), &mut sort);
            });

            // --- membership: HashSet octant set vs open-addressing table ---
            // Queries are half hits (the leaves themselves) and half
            // misses (each leaf's first child), the mix the kernels see.
            let misses: Vec<Octant<3>> = input.iter().map(|o| o.child(0)).collect();
            let mut set = OctantSet::default();
            let set_build_seconds = timed(reps, || {
                set = OctantSet::default();
                for o in &input {
                    set.insert(*o);
                }
            });
            let mut table = OctantTable::<3>::new();
            let table_build_seconds = timed(reps, || {
                table.reset_for(input.len());
                for o in &input {
                    table.insert(o);
                }
            });
            for (o, m) in input.iter().zip(&misses) {
                assert_eq!(set.contains(o), table.contains(o));
                assert_eq!(set.contains(m), table.contains(m));
            }
            let set_query_seconds = timed(reps, || {
                let mut hits = 0usize;
                for o in input.iter().chain(&misses) {
                    hits += usize::from(set.contains(black_box(o)));
                }
                black_box(hits);
            }) / (2 * input.len()) as f64;
            let probes_before = table.probe_count();
            let lookups_before = table.lookup_count();
            let table_query_seconds = timed(reps, || {
                let mut hits = 0usize;
                for o in input.iter().chain(&misses) {
                    hits += usize::from(table.contains(black_box(o)));
                }
                black_box(hits);
            }) / (2 * input.len()) as f64;
            let table_probes_per_op = (table.probe_count() - probes_before) as f64
                / (table.lookup_count() - lookups_before).max(1) as f64;

            // --- full kernel: HashSet baseline vs packed, fresh vs reused ---
            let bal_reps = reps.min(5);
            let mut base_out = (Vec::new(), BalanceStats::default());
            let balance_hashset_seconds = timed_min(bal_reps, || {
                base_out = reference_balance_new(&root, black_box(&input), cond);
            });
            let mut fresh_out = (Vec::new(), BalanceStats::default());
            let balance_fresh_seconds = timed_min(bal_reps, || {
                fresh_out = balance_subtree_new_with_stats(&root, black_box(&input), cond);
            });
            assert_eq!(fresh_out, base_out, "packed kernel diverged from baseline");
            let mut scratch = BalanceScratch::<3>::new();
            let mut scratch_out = (Vec::new(), BalanceStats::default());
            let balance_scratch_seconds = timed_min(bal_reps, || {
                scratch_out = balance_subtree_new_with_stats_scratch(
                    &root,
                    black_box(&input),
                    cond,
                    &mut scratch,
                );
            });
            assert_eq!(scratch_out, fresh_out, "scratch path diverged");

            KernelRow {
                input_len: input.len(),
                sort_struct_seconds,
                sort_radix_seconds,
                sort_presorted_seconds,
                radix_passes,
                set_build_seconds,
                table_build_seconds,
                set_query_seconds,
                table_query_seconds,
                table_probes_per_op,
                table_grows: table.grow_count(),
                balance_hashset_seconds,
                balance_fresh_seconds,
                balance_scratch_seconds,
            }
        })
        .collect()
}

/// The intra-rank parallelism study: the deterministic hot kernels at
/// one pool width vs the session's configured width, on the same input.
/// Bit-identity across widths is asserted inside the run (sorted output
/// equality, forest checksum equality), so the row is also a witness of
/// the `forestbal-par` determinism contract.
#[derive(Clone, Debug)]
pub struct ParKernelRow {
    /// Pool width of the parallel columns (1 = everything serial).
    pub threads: usize,
    /// Packed 3D keys in the sort input.
    pub keys: usize,
    /// Packed radix key sort, forced one thread (best of reps).
    pub sort_serial_seconds: f64,
    /// The same sort through the configured pool.
    pub sort_par_seconds: f64,
    /// Fractal-forest one-pass balance (new variant), forced one thread.
    pub balance_serial_seconds: f64,
    /// The same balance through the configured pool.
    pub balance_par_seconds: f64,
    /// Global octants after balance (identical across widths).
    pub octants_out: u64,
    /// Forest checksum after balance (identical across widths).
    pub forest_checksum: u64,
}

/// Measure [`ParKernelRow`]: a shuffled key sort of at least
/// `keys_target` packed keys and a single-rank multi-tree balance, each
/// serial vs the current global pool. On a single-core host the parallel
/// columns report overhead, not speedup — the row still proves the
/// determinism contract, which is what CI gates on unconditionally.
pub fn par_kernel_experiment(keys_target: usize, level: u8, spread: u8) -> ParKernelRow {
    use forestbal_octant::key;
    use forestbal_par::Pool;
    use std::hint::black_box;
    use std::sync::Arc;

    let pool = forestbal_par::current();
    let threads = pool.threads();
    let serial = Arc::new(Pool::new(1));

    // --- parallel radix key sort vs one thread ---
    // Adapted subtrees under distinct seeds, concatenated until the key
    // count clears the target (one subtree tops out well below it), then
    // shuffled. A sort input need not be a linear octree.
    let mut keys: Vec<u128> = Vec::new();
    let mut seed = 0u64;
    while keys.len() < keys_target {
        let part = adapted_subtree_input(keys_target.min(100_000), 0xfee1 ^ seed);
        keys.extend(part.iter().map(key::pack));
        seed += 1;
    }
    keys.truncate(keys_target);
    shuffle(&mut keys, 0x5eed ^ keys_target as u64);

    let reps = 5;
    let mut sort = SortScratch::new();
    let mut buf = keys.clone();
    let sort_serial_seconds = timed_min(reps, || {
        buf.copy_from_slice(&keys);
        serial.install(|| sort_keys_with::<3>(black_box(&mut buf), &mut sort));
    });
    let serial_sorted = buf.clone();
    let sort_par_seconds = timed_min(reps, || {
        buf.copy_from_slice(&keys);
        pool.install(|| sort_keys_with::<3>(black_box(&mut buf), &mut sort));
    });
    assert_eq!(buf, serial_sorted, "parallel radix diverged from serial");

    // --- end-to-end balance, one rank, many trees ---
    // Phase 1 and phase 4 parallelize per tree / per query, so the
    // fractal forest (multiple root bricks) is the representative mesh.
    let run = |width_pool: &Arc<Pool>| -> (f64, u64, u64) {
        let p = width_pool.clone();
        let out = Cluster::run(1, move |ctx| {
            p.install(|| {
                let mut best = f64::INFINITY;
                let mut after = 0u64;
                let mut sum = 0u64;
                for _ in 0..3 {
                    let mut f = fractal_forest(ctx, level, spread);
                    let t0 = Instant::now();
                    f.balance(
                        ctx,
                        Condition::full(3),
                        BalanceVariant::New,
                        ReversalScheme::Notify,
                    );
                    best = best.min(t0.elapsed().as_secs_f64());
                    after = f.num_global(ctx);
                    sum = f.checksum(ctx);
                }
                (best, after, sum)
            })
        });
        out.results[0]
    };
    let (balance_serial_seconds, out_serial, sum_serial) = run(&serial);
    let (balance_par_seconds, out_par, sum_par) = run(&pool);
    assert_eq!(out_serial, out_par, "pool width changed the balanced mesh");
    assert_eq!(
        sum_serial, sum_par,
        "pool width changed the forest checksum"
    );

    ParKernelRow {
        threads,
        keys: keys.len(),
        sort_serial_seconds,
        sort_par_seconds,
        balance_serial_seconds,
        balance_par_seconds,
        octants_out: out_par,
        forest_checksum: sum_par,
    }
}

/// One row of the wire-format study: bytes per octant, tree-run framing
/// overhead, and memcpy encode/decode throughput for the packed-key codec
/// (`forestbal_forest::codec`), on a deterministic balanced forest.
///
/// The checksum is the forest checksum of the balanced mesh the row was
/// measured on. It is independent of the `simd` feature by construction
/// (the BMI2 batch codecs are bit-identical to the scalar fallback), so
/// CI compares it across feature configurations.
#[derive(Clone, Debug)]
pub struct WireRow {
    /// Spatial dimension of the forest.
    pub dim: usize,
    /// Bytes per octant on the wire (`codec::key_size`): 8 in 2D, 16 in 3D.
    pub key_bytes: usize,
    /// Leaves serialized.
    pub octants: usize,
    /// Tree runs in the encoded stream (each costs 8 bytes of framing).
    pub runs: usize,
    /// Total encoded bytes: `octants * key_bytes + 8 * runs`.
    pub wire_bytes: usize,
    /// Serializing the local forest (runs + memcpy of the SoA keys).
    pub encode_seconds: f64,
    /// Decoding back to per-tree octant vectors (memcpy + batch unpack).
    pub decode_seconds: f64,
    /// Forest checksum of the balanced mesh (feature-independent).
    pub checksum: u64,
}

fn wire_row<const D: usize>(
    build: impl Fn(&forestbal_comm::RankCtx) -> Forest<D> + Sync,
) -> WireRow {
    use std::hint::black_box;
    let out = Cluster::run(1, |ctx| {
        let mut f = build(ctx);
        f.balance_with_report(
            ctx,
            Condition::full(D as u8),
            BalanceVariant::New,
            ReversalScheme::Notify,
        );
        let bytes = f.serialize_local();
        let octants = f.num_local();
        let runs = f.trees_packed().count();
        assert_eq!(
            bytes.len(),
            octants * forestbal_forest::codec::key_size::<D>() + 8 * runs,
            "wire format drifted from key_size + run framing"
        );
        // Differential: the decoded forest is the forest.
        let back = Forest::<D>::deserialize_leaves(&bytes);
        for (t, v) in f.trees() {
            assert_eq!(back[&t], v.iter().collect::<Vec<_>>());
        }
        let reps = (200_000 / octants.max(1)).clamp(3, 50);
        let encode_seconds = timed(reps, || {
            black_box(f.serialize_local());
        });
        let decode_seconds = timed(reps, || {
            black_box(Forest::<D>::deserialize_leaves(black_box(&bytes)));
        });
        WireRow {
            dim: D,
            key_bytes: forestbal_forest::codec::key_size::<D>(),
            octants,
            runs,
            wire_bytes: bytes.len(),
            encode_seconds,
            decode_seconds,
            checksum: f.checksum(ctx),
        }
    });
    out.results.into_iter().next().unwrap()
}

/// Measure the packed wire format on deterministic balanced fractal
/// forests, one row per dimension. Rows double as correctness witnesses:
/// the byte budget is asserted exactly and the decode is compared leaf by
/// leaf against the source forest.
pub fn wire_experiment() -> Vec<WireRow> {
    vec![
        // 2D: a 2x2 brick with an asymmetric corner refinement, so the
        // stream carries several tree runs and the checksum does not
        // collapse by symmetry.
        wire_row::<2>(|ctx| {
            let conn = std::sync::Arc::new(forestbal_forest::BrickConnectivity::<2>::new(
                [2, 2],
                [false; 2],
            ));
            let mut f = Forest::new_uniform(conn, ctx, 3);
            f.refine(true, 7, |t, o| {
                (t == 0 && o.child_id() == 3) || (t == 3 && o.child_id() == 0)
            });
            f
        }),
        wire_row::<3>(|ctx| fractal_forest(ctx, 3, 2)),
    ]
}

/// One row of the seed-vs-auxiliary study (§IV / Figures 4b and 9).
#[derive(Clone, Debug)]
pub struct SeedsRow {
    /// Scale separation: levels between the fine source octant and the
    /// coarse query octant (the "distance" the old algorithm bridges with
    /// auxiliary octants).
    pub scale_levels: u8,
    /// Auxiliary-cascade reconstruction wall clock.
    pub old_seconds: f64,
    /// Seed-based reconstruction wall clock.
    pub new_seconds: f64,
    /// Leaves reconstructed inside the query octant.
    pub overlap_len: usize,
    /// Seed octants sent (<= 3^(d-1)).
    pub seed_count: usize,
}

/// Reconstruct `T_k(o) ∩ r` for a source octant `o` of increasing depth
/// hugging the query octant `r`: the old way (auxiliary-octant cascade
/// from the raw octant across the scale gap) does work growing with the
/// separation, the new way (λ seeds) only pays for the overlap itself.
pub fn seeds_distance_experiment(depths: &[u8], reps: usize) -> Vec<SeedsRow> {
    let cond = Condition::full(2);
    let root = Octant::<2>::root();
    let r = root.child(1); // query octant: level 1, right half-ish
    let left = root.child(0);
    depths
        .iter()
        .map(|&depth| {
            assert!(depth > r.level + 1 && depth <= forestbal_octant::MAX_LEVEL);
            // Source: depth-level octant hugging r's left edge.
            let mut o = left;
            while o.level < depth {
                o = o.child(1); // x-high, y-low corner
            }
            assert!(!o.overlaps(&r));

            let t0 = Instant::now();
            let mut old_out = Vec::new();
            for _ in 0..reps {
                old_out = balance_subtree_old_ext(&r, &[], &[o], cond).0;
            }
            let old_seconds = t0.elapsed().as_secs_f64() / reps as f64;

            let t0 = Instant::now();
            let mut new_out = Vec::new();
            let mut seed_count = 0;
            for _ in 0..reps {
                match find_seeds(&o, &r, cond) {
                    Some(seeds) => {
                        seed_count = seeds.len();
                        new_out = reconstruct_from_seeds(&r, &seeds, cond);
                    }
                    None => {
                        seed_count = 0;
                        new_out = vec![r];
                    }
                }
            }
            let new_seconds = t0.elapsed().as_secs_f64() / reps as f64;
            assert_eq!(old_out, new_out, "depth {depth}: reconstructions differ");
            SeedsRow {
                scale_levels: depth - r.level,
                old_seconds,
                new_seconds,
                overlap_len: new_out.len(),
                seed_count,
            }
        })
        .collect()
}

/// Latency summary of one service request class, reduced from the
/// cluster-merged log2 histogram: the reported percentiles are the
/// *upper bounds* of the bucket containing that percentile.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencySummary {
    /// Samples recorded across all ranks.
    pub count: u64,
    /// Upper bound of the median's bucket, nanoseconds.
    pub p50_ns: u64,
    /// Upper bound of the 99th percentile's bucket, nanoseconds.
    pub p99_ns: u64,
}

fn hist_summary(h: &Histogram) -> LatencySummary {
    let count = h.count();
    let quantile = |frac: f64| -> u64 {
        if count == 0 {
            return 0;
        }
        let target = ((frac * count as f64).ceil() as u64).max(1);
        let mut acc = 0u64;
        for (b, c) in h.nonzero() {
            acc += c;
            if acc >= target {
                return bucket_bounds(b).1;
            }
        }
        bucket_bounds(HIST_BUCKETS - 1).1
    };
    LatencySummary {
        count,
        p50_ns: quantile(0.50),
        p99_ns: quantile(0.99),
    }
}

/// One row of the Local-rebalance study (the incremental-epoch service):
/// the same clustered refine batch committed against the same balanced
/// snapshot twice — by the dirty-region incremental rebalance and by a
/// full balance. Timings are cluster maxima, best of the repetitions,
/// and the two result forests are asserted checksum-identical before
/// the row is produced. The latency summaries come from a separate
/// short service epoch loop (queries interleaved with commits) over the
/// same snapshot.
#[derive(Clone, Debug)]
pub struct LocalRow {
    /// Simulated (threaded) rank count.
    pub ranks: usize,
    /// Workload mesh: `"fractal"` or `"ice_sheet"`.
    pub mesh: &'static str,
    /// Global leaves in the balanced base snapshot.
    pub leaves: u64,
    /// Global dirty leaves produced by the batch.
    pub dirty_global: u64,
    /// `dirty_global / leaves` — the knob under study.
    pub dirty_frac: f64,
    /// Full balance of the edited forest (scratch-reusing), seconds.
    pub full_seconds: f64,
    /// Incremental rebalance of the same edit, seconds.
    pub incremental_seconds: f64,
    /// `full_seconds / incremental_seconds`.
    pub speedup: f64,
    /// Incremental communication rounds to quiescence.
    pub rounds: u32,
    /// Leaves split by the incremental ripple (cluster sum).
    pub splits: u64,
    /// Checksum of the rebalanced forest (identical both ways).
    pub checksum: u64,
    /// Point-location latency from the service epoch loop.
    pub point_locate: LatencySummary,
    /// Neighbor-query latency from the service epoch loop.
    pub neighbor_query: LatencySummary,
    /// Commit latency from the service epoch loop.
    pub commit: LatencySummary,
}

/// Draw a pseudo-random local leaf, weighted by leaves per tree.
fn sample_leaf(f: &Forest<3>, s: &mut u64) -> Option<(u32, Octant<3>)> {
    let n = f.num_local();
    if n == 0 {
        return None;
    }
    let mut pick = (xorshift64(s) as usize) % n;
    for (t, v) in f.trees() {
        if pick < v.len() {
            return Some((t, v.get(pick)));
        }
        pick -= v.len();
    }
    None
}

fn xorshift64(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

fn local_point(
    p: usize,
    mesh: &'static str,
    target_frac: f64,
    reps: usize,
    build: impl Fn(&forestbal_comm::RankCtx) -> Forest<3> + Sync,
) -> LocalRow {
    let cond = Condition::full(3);
    let out = Cluster::run(p, |ctx| {
        let mut base = build(ctx);
        let mut scratch = BalanceScratch::new();
        base.balance_with_report_scratch(
            ctx,
            cond,
            BalanceVariant::New,
            ReversalScheme::Notify,
            &mut scratch,
        );
        let ghosts = base.ghost_layer(ctx);
        let leaves = base.num_global(ctx);

        // Refining one leaf replaces it with 8 children, so the edit
        // dirties ~8 leaves per request; size the per-rank budget so the
        // measured dirty fraction lands near the target.
        let budget = ((target_frac * base.num_local() as f64) / 8.0).ceil() as usize;
        let seed = 0x10CA_1BA1 ^ ((ctx.rank() as u64) << 32);
        let batch = clustered_batch(&base, seed, budget, forestbal_octant::MAX_LEVEL);

        let mut inc_best = u64::MAX;
        let mut full_best = u64::MAX;
        let mut dirty_global = 0u64;
        let mut rounds = 0u32;
        let mut splits = 0u64;
        let mut checksum = 0u64;
        for _ in 0..reps {
            // Incremental arm: clone the snapshot and its ghost layer,
            // apply the edits (untimed — both arms pay it identically),
            // then time only the rebalance.
            let mut fi = base.clone();
            let mut gi = ghosts.clone();
            let dirty = fi.apply_edits(&batch, forestbal_octant::MAX_LEVEL);
            dirty_global = ctx.allreduce_sum(dirty.len() as u64);
            ctx.barrier();
            let t0 = Instant::now();
            let rep = fi.balance_incremental(ctx, cond, &dirty, &mut gi);
            inc_best = inc_best.min(ctx.allreduce_max(t0.elapsed().as_nanos() as u64));
            rounds = rep.rounds;
            splits = ctx.allreduce_sum(rep.splits);

            // Full arm: identical edit, full balance with a warm scratch.
            let mut ff = base.clone();
            ff.apply_edits(&batch, forestbal_octant::MAX_LEVEL);
            ctx.barrier();
            let t0 = Instant::now();
            ff.balance_with_report_scratch(
                ctx,
                cond,
                BalanceVariant::New,
                ReversalScheme::Notify,
                &mut scratch,
            );
            full_best = full_best.min(ctx.allreduce_max(t0.elapsed().as_nanos() as u64));

            checksum = fi.checksum(ctx);
            assert_eq!(
                checksum,
                ff.checksum(ctx),
                "{mesh}: incremental rebalance diverged from full balance"
            );
        }

        // A short service epoch loop over the same snapshot feeds the
        // per-class latency histograms: queries against the immutable
        // snapshot between commits, one clustered batch per epoch.
        let mut cfg = ServiceConfig::new(3);
        cfg.fallback_dirty_fraction = f64::INFINITY; // always incremental
        let mut svc = ForestService::new(ctx, base.clone(), cfg);
        let mut qseed = seed ^ 0x9E37_79B9;
        for e in 0..3u64 {
            for _ in 0..64 {
                if let Some((t, o)) = sample_leaf(svc.forest(), &mut qseed) {
                    svc.submit(
                        ctx,
                        Request::PointLocate {
                            tree: t,
                            point: o.coords,
                        },
                    );
                    let axis = (xorshift64(&mut qseed) % 3) as usize;
                    let sign = if xorshift64(&mut qseed) & 1 == 0 {
                        1
                    } else {
                        -1
                    };
                    svc.submit(
                        ctx,
                        Request::NeighborQuery {
                            tree: t,
                            octant: o,
                            axis,
                            sign,
                        },
                    );
                }
            }
            let b = clustered_batch(
                svc.forest(),
                seed ^ (e + 1).wrapping_mul(0xA5A5),
                budget,
                forestbal_octant::MAX_LEVEL,
            );
            svc.submit_batch(&b);
            svc.commit(ctx);
        }

        // Cluster-merge the query/commit histograms (raw buckets over
        // allgather), so every rank reports identical summaries.
        const CLASSES: [RequestClass; 3] = [
            RequestClass::PointLocate,
            RequestClass::NeighborQuery,
            RequestClass::Commit,
        ];
        let mut bytes = Vec::with_capacity(CLASSES.len() * HIST_BUCKETS * 8);
        for class in CLASSES {
            for b in svc.latency(class).buckets {
                bytes.extend_from_slice(&b.to_le_bytes());
            }
        }
        let all = ctx.allgather(bytes);
        let mut merged = [Histogram::default(); 3];
        for r in all.iter() {
            for (i, h) in merged.iter_mut().enumerate() {
                for b in 0..HIST_BUCKETS {
                    let off = (i * HIST_BUCKETS + b) * 8;
                    h.buckets[b] += u64::from_le_bytes(r[off..off + 8].try_into().unwrap());
                }
            }
        }

        LocalRow {
            ranks: p,
            mesh,
            leaves,
            dirty_global,
            dirty_frac: dirty_global as f64 / leaves.max(1) as f64,
            full_seconds: full_best as f64 * 1e-9,
            incremental_seconds: inc_best as f64 * 1e-9,
            speedup: full_best as f64 / (inc_best as f64).max(1.0),
            rounds,
            splits,
            checksum,
            point_locate: hist_summary(&merged[0]),
            neighbor_query: hist_summary(&merged[1]),
            commit: hist_summary(&merged[2]),
        }
    });
    out.results.into_iter().next().expect("at least one rank")
}

/// The Local-rebalance study: the same clustered edit committed by full
/// balance and by the incremental dirty-region rebalance, at dirty
/// fractions near 0.1%, 1% and 10%, on the fractal mesh and the masked
/// ice-sheet mesh.
pub fn local_experiment(p: usize, reps: usize, big: bool) -> Vec<LocalRow> {
    let fracs = [0.001, 0.01, 0.10];
    let (flevel, fspread) = if big { (3, 4) } else { (2, 4) };
    let ice = if big {
        IceSheetParams {
            nx: 8,
            ny: 8,
            max_level: 7,
            ..IceSheetParams::default()
        }
    } else {
        IceSheetParams::default()
    };
    let mut rows = Vec::new();
    for frac in fracs {
        rows.push(local_point(p, "fractal", frac, reps, |ctx| {
            fractal_forest(ctx, flevel, fspread)
        }));
    }
    for frac in fracs {
        rows.push(local_point(p, "ice_sheet", frac, reps, move |ctx| {
            ice_sheet_forest(ctx, ice)
        }));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapted_input_is_complete_and_scales() {
        let a = adapted_subtree_input(200, 1);
        let b = adapted_subtree_input(2000, 1);
        assert!(forestbal_octant::is_complete(&a, &Octant::root()));
        assert!(b.len() > a.len());
    }

    #[test]
    fn subtree_rows_report_savings() {
        let rows = subtree_experiment(&[400]);
        let r = &rows[0];
        assert!(r.new_stats.hash_queries < r.old_stats.hash_queries);
        assert!(r.new_stats.sorted_len < r.old_stats.sorted_len);
        assert_eq!(r.new_stats.output_len, r.old_stats.output_len);
    }

    #[test]
    fn kernel_rows_are_self_checking() {
        // The driver asserts radix == sort_unstable, table == set, and
        // scratch == fresh internally; here we check the counters land.
        // The target sits above `RADIX_MIN_LEN` so the shuffled sort
        // takes the radix path, not the small-input comparison fallback.
        let rows = kernel_experiment(&[2000]);
        let r = &rows[0];
        assert!(r.input_len > forestbal_octant::RADIX_MIN_LEN);
        assert!(r.radix_passes >= 1, "shuffled input must need radix work");
        assert_eq!(r.table_grows, 0, "pre-sized table must not regrow");
        assert!(r.table_probes_per_op >= 1.0);
        assert!(r.sort_presorted_seconds <= r.sort_radix_seconds);
    }

    #[test]
    fn seeds_rows_agree_across_distance() {
        let rows = seeds_distance_experiment(&[5, 8], 1);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.overlap_len > 1, "deep hugger must split the query octant");
            assert!(r.seed_count >= 1);
        }
        // Deeper source means a richer overlap.
        assert!(rows[1].overlap_len > rows[0].overlap_len);
    }

    #[test]
    fn notify_experiment_small() {
        let rows = notify_experiment(&[4, 6], 2, 2);
        for r in &rows {
            // Notify sends P log2 P messages; naive sends none (pure
            // collectives).
            assert_eq!(r.naive.stats.messages_sent, 0);
            assert!(r.notify.stats.messages_sent > 0);
        }
    }

    #[test]
    fn sim_reversal_rows_are_deterministic() {
        let cfg = SimConfig::default().with_seed(9).with_jitter(300);
        let a = sim_reversal_scaling(&[32], 3, 2, cfg);
        let b = sim_reversal_scaling(&[32], 3, 2, cfg);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.makespan_ns, y.makespan_ns, "{}", x.scheme);
            assert_eq!(x.stats, y.stats, "{}", x.scheme);
        }
        // Notify must beat the naive collectives in virtual time at a
        // local pattern (the paper's core claim).
        let naive = a.iter().find(|r| r.scheme == "naive").unwrap();
        let notify = a.iter().find(|r| r.scheme == "notify").unwrap();
        assert!(notify.makespan_ns < naive.makespan_ns);
    }

    #[test]
    fn sim_balance_rows_agree_on_sizes() {
        let rows = sim_balance_scaling(&[4], 2, 3, 2, SimConfig::default());
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert_eq!(r.octants_in, rows[0].octants_in);
            assert_eq!(r.octants_out, rows[0].octants_out);
            assert!(r.makespan_ns > 0);
            assert!(r.report.timings.total.as_nanos() > 0);
        }
    }

    #[test]
    fn traced_sim_balance_phases_partition_exactly() {
        let t = sim_balance_traced(
            8,
            2,
            3,
            BalanceVariant::New,
            ReversalScheme::Notify,
            SimConfig::default(),
        );
        assert_eq!(t.trace.ranks.len(), 8);
        assert_eq!(t.row.octants_out, t.row.octants_in.max(t.row.octants_out));
        for rt in &t.trace.ranks {
            // Virtual time only advances inside communication, so the
            // phase spans tile the enclosing balance span with no gaps.
            let parts: u64 = [
                "markers",
                "local_balance",
                "query_response",
                "reversal",
                "rebalance",
            ]
            .iter()
            .map(|n| rt.phase_total_ns(n))
            .sum();
            assert_eq!(parts, rt.phase_total_ns("balance"), "rank {}", rt.rank);
        }
    }

    #[test]
    fn ripple_ablation_smoke() {
        let rows = ripple_ablation_experiment(&[2, 4], 1, 3);
        for r in &rows {
            assert!(r.ripple_rounds >= 1);
            assert!(r.ripple_msgs > 0 || r.ranks == 1);
        }
    }

    #[test]
    fn weak_scaling_smoke() {
        let rows = weak_scaling_experiment(&[(1, 1), (2, 1)], 3);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.octants_out >= r.octants_in);
            assert!(r.new.timings.total <= r.old.timings.total * 20, "sanity");
        }
    }

    #[test]
    fn strong_scaling_smoke() {
        let params = IceSheetParams {
            nx: 2,
            ny: 2,
            base_level: 1,
            max_level: 4,
            seed: 1,
        };
        let rows = strong_scaling_experiment(&[1, 2], params);
        assert_eq!(rows[0].octants_in, rows[1].octants_in);
        assert_eq!(rows[0].octants_out, rows[1].octants_out);
    }
}
