//! Minimal fixed-width table printing for the experiment drivers, plus
//! machine-readable `BENCH {...}` JSON lines for scraping scaling curves
//! out of CI logs.

/// A printable table: header row plus data rows of equal arity.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render to a string with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// One machine-readable benchmark record, emitted as a single
/// `BENCH {"bench":"...",...}` line on stdout. Hand-rolled (the workspace
/// builds offline with no serde) but valid JSON: keys are emitted in
/// insertion order, strings minimally escaped, floats rendered via Rust's
/// shortest-roundtrip formatting.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    fields: Vec<(String, String)>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl BenchRecord {
    /// New record named `bench` (the curve/table it belongs to).
    pub fn new(bench: &str) -> BenchRecord {
        BenchRecord {
            fields: vec![("bench".into(), format!("\"{}\"", json_escape(bench)))],
        }
    }

    /// Append an unsigned-integer field.
    pub fn u(mut self, key: &str, v: u64) -> Self {
        self.fields.push((key.into(), v.to_string()));
        self
    }

    /// Append a float field (`null` if not finite — JSON has no NaN).
    pub fn f(mut self, key: &str, v: f64) -> Self {
        let rendered = if v.is_finite() {
            format!("{v:?}")
        } else {
            "null".into()
        };
        self.fields.push((key.into(), rendered));
        self
    }

    /// Append a string field.
    pub fn s(mut self, key: &str, v: &str) -> Self {
        self.fields
            .push((key.into(), format!("\"{}\"", json_escape(v))));
        self
    }

    /// The record as one JSON object.
    pub fn json(&self) -> String {
        let body: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json_escape(k), v))
            .collect();
        format!("{{{}}}", body.join(","))
    }

    /// Print the `BENCH {...}` line.
    pub fn emit(&self) {
        println!("BENCH {}", self.json());
    }
}

/// Format seconds with 3 significant-ish decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Format a ratio like "3.4x".
pub fn ratio(num: f64, den: f64) -> String {
    if den == 0.0 {
        "-".to_string()
    } else {
        format!("{:.2}x", num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "2000000".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("2000000"));
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        // Data lines share the same width.
        assert_eq!(lines[4].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ratio(1.0, 0.0), "-");
        assert_eq!(ratio(7.0, 2.0), "3.50x");
    }

    #[test]
    fn bench_record_is_valid_json() {
        let r = BenchRecord::new("sim_reversal")
            .u("ranks", 4096)
            .s("scheme", "notify")
            .f("virtual_ms", 1.25)
            .f("bad", f64::NAN);
        assert_eq!(
            r.json(),
            r#"{"bench":"sim_reversal","ranks":4096,"scheme":"notify","virtual_ms":1.25,"bad":null}"#
        );
        let q = BenchRecord::new("a\"b\\c").json();
        assert_eq!(q, r#"{"bench":"a\"b\\c"}"#);
    }
}
