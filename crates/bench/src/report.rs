//! Minimal fixed-width table printing for the experiment drivers.

/// A printable table: header row plus data rows of equal arity.
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a data row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render to a string with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format seconds with 3 significant-ish decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.4}", d.as_secs_f64())
}

/// Format a ratio like "3.4x".
pub fn ratio(num: f64, den: f64) -> String {
    if den == 0.0 {
        "-".to_string()
    } else {
        format!("{:.2}x", num / den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["100".into(), "2000000".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("2000000"));
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        // Data lines share the same width.
        assert_eq!(lines[4].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(ratio(1.0, 0.0), "-");
        assert_eq!(ratio(7.0, 2.0), "3.50x");
    }
}
