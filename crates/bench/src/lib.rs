//! Benchmark harnesses reproducing the IPDPS'12 evaluation.
//!
//! [`experiments`] holds one driver per paper table/figure; the `timings`
//! binary (named after p4est's `timings` example, which produced the
//! paper's numbers) prints them as tables. Criterion micro-benchmarks for
//! the serial kernels live under `benches/`.

#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use experiments::{
    adapted_subtree_input, local_experiment, notify_experiment, par_is_balanced,
    ripple_ablation_experiment, seeds_distance_experiment, sim_balance_scaling, sim_balance_traced,
    sim_reversal_scaling, strong_scaling_experiment, subtree_experiment, weak_scaling_experiment,
    LatencySummary, LocalRow, TracedSimBalance,
};
