//! Criterion micro-benchmark: seed construction and reconstruction (§IV)
//! versus the old auxiliary-octant cascade, across scale separations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use forestbal_core::{balance_subtree_old_ext, find_seeds, reconstruct_from_seeds, Condition};
use forestbal_octant::Octant;
use std::hint::black_box;

fn bench_seeds(c: &mut Criterion) {
    let cond = Condition::full(2);
    let root = Octant::<2>::root();
    let r = root.child(1);
    let left = root.child(0);

    let mut g = c.benchmark_group("remote_overlap_reconstruction");
    for depth in [6u8, 9, 12] {
        let mut o = left;
        while o.level < depth {
            o = o.child(1);
        }
        g.bench_with_input(BenchmarkId::new("old_auxiliary", depth), &o, |b, o| {
            b.iter(|| balance_subtree_old_ext(&r, &[], black_box(&[*o]), cond))
        });
        g.bench_with_input(BenchmarkId::new("new_seeds", depth), &o, |b, o| {
            b.iter(|| {
                let seeds = find_seeds(black_box(o), &r, cond).unwrap();
                reconstruct_from_seeds(&r, &seeds, cond)
            })
        });
        g.bench_with_input(BenchmarkId::new("find_seeds_only", depth), &o, |b, o| {
            b.iter(|| find_seeds(black_box(o), &r, cond))
        });
    }
    g.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_seeds
}
criterion_main!(benches);
