//! Criterion benchmark: forest operations surrounding balance —
//! partition, ghost exchange, node enumeration — for context on the
//! paper's claim that balance was the most expensive octree operation
//! ("much more so than partitioning for example").

use criterion::{criterion_group, criterion_main, Criterion};
use forestbal_comm::Cluster;
use forestbal_core::Condition;
use forestbal_forest::{BalanceVariant, ReversalScheme};
use forestbal_mesh::{ice_sheet_forest, IceSheetParams};

fn bench_forest_ops(c: &mut Criterion) {
    let params = IceSheetParams {
        nx: 3,
        ny: 3,
        base_level: 1,
        max_level: 5,
        seed: 2012,
    };
    let mut g = c.benchmark_group("forest_ops_ice_sheet_p4");
    g.sample_size(10);

    g.bench_function("refine_only", |b| {
        b.iter(|| Cluster::run(4, |ctx| ice_sheet_forest(ctx, params).num_local()))
    });
    g.bench_function("partition", |b| {
        b.iter(|| {
            Cluster::run(4, |ctx| {
                let mut f = ice_sheet_forest(ctx, params);
                f.partition_uniform(ctx);
                f.num_local()
            })
        })
    });
    g.bench_function("balance_new", |b| {
        b.iter(|| {
            Cluster::run(4, |ctx| {
                let mut f = ice_sheet_forest(ctx, params);
                f.partition_uniform(ctx);
                f.balance(
                    ctx,
                    Condition::full(3),
                    BalanceVariant::New,
                    ReversalScheme::Notify,
                );
                f.num_local()
            })
        })
    });
    g.bench_function("ghost_layer", |b| {
        b.iter(|| {
            Cluster::run(4, |ctx| {
                let mut f = ice_sheet_forest(ctx, params);
                f.partition_uniform(ctx);
                f.balance(
                    ctx,
                    Condition::full(3),
                    BalanceVariant::New,
                    ReversalScheme::Notify,
                );
                f.ghost_layer(ctx).len()
            })
        })
    });
    g.bench_function("enumerate_nodes", |b| {
        b.iter(|| {
            Cluster::run(4, |ctx| {
                let mut f = ice_sheet_forest(ctx, params);
                f.partition_uniform(ctx);
                f.balance(
                    ctx,
                    Condition::full(3),
                    BalanceVariant::New,
                    ReversalScheme::Notify,
                );
                f.enumerate_nodes(ctx).num_global_independent
            })
        })
    });
    g.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_forest_ops
}
criterion_main!(benches);
