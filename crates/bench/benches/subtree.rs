//! Criterion micro-benchmark: old vs new serial subtree balance (§III).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use forestbal_bench::experiments::adapted_subtree_input;
use forestbal_core::{balance_subtree_new, balance_subtree_old, Condition};
use forestbal_octant::Octant;
use std::hint::black_box;

fn bench_subtree(c: &mut Criterion) {
    let root = Octant::<3>::root();
    let cond = Condition::full(3);
    let mut g = c.benchmark_group("subtree_balance_3d");
    for target in [1_000usize, 10_000, 50_000] {
        let input = adapted_subtree_input(target, 42);
        g.throughput(Throughput::Elements(input.len() as u64));
        g.bench_with_input(BenchmarkId::new("old", input.len()), &input, |b, input| {
            b.iter(|| balance_subtree_old(&root, black_box(input), cond))
        });
        g.bench_with_input(BenchmarkId::new("new", input.len()), &input, |b, input| {
            b.iter(|| balance_subtree_new(&root, black_box(input), cond))
        });
    }
    g.finish();

    // 2D variant, corner balance.
    let root2 = Octant::<2>::root();
    let cond2 = Condition::full(2);
    let mut leaf = root2;
    for _ in 0..8 {
        leaf = leaf.child(3).child(0);
    }
    let input2 = forestbal_octant::complete_subtree(&root2, &[leaf]);
    let mut g = c.benchmark_group("subtree_balance_2d");
    g.bench_function("old", |b| {
        b.iter(|| balance_subtree_old(&root2, black_box(&input2), cond2))
    });
    g.bench_function("new", |b| {
        b.iter(|| balance_subtree_new(&root2, black_box(&input2), cond2))
    });
    g.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_subtree
}
criterion_main!(benches);
