//! Criterion benchmark: the three pattern-reversal schemes (§V).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use forestbal_comm::{reverse_naive, reverse_notify, reverse_ranges, Cluster, Comm};

fn bench_reversal(c: &mut Criterion) {
    let mut g = c.benchmark_group("pattern_reversal");
    g.sample_size(20);
    for p in [8usize, 24, 48] {
        let receivers_of = move |r: usize| -> Vec<usize> { (1..=4).map(|i| (r + i) % p).collect() };
        g.bench_with_input(BenchmarkId::new("naive", p), &p, |b, &p| {
            b.iter(|| Cluster::run(p, |ctx| reverse_naive(ctx, &receivers_of(ctx.rank()))))
        });
        g.bench_with_input(BenchmarkId::new("ranges", p), &p, |b, &p| {
            b.iter(|| Cluster::run(p, |ctx| reverse_ranges(ctx, &receivers_of(ctx.rank()), 25)))
        });
        g.bench_with_input(BenchmarkId::new("notify", p), &p, |b, &p| {
            b.iter(|| Cluster::run(p, |ctx| reverse_notify(ctx, &receivers_of(ctx.rank()))))
        });
    }
    g.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_reversal
}
criterion_main!(benches);
