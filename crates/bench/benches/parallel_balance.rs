//! Criterion benchmark: the full one-pass parallel balance, old vs new
//! variants, on the paper's two workloads at a modest rank count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use forestbal_core::Condition;
use forestbal_forest::{BalanceVariant, ReversalScheme};
use forestbal_mesh::{fractal_forest, ice_sheet_forest, IceSheetParams};

fn bench_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("one_pass_balance");
    g.sample_size(10);

    for &(name, variant) in &[("old", BalanceVariant::Old), ("new", BalanceVariant::New)] {
        g.bench_with_input(
            BenchmarkId::new("fractal_p4", name),
            &variant,
            |b, &variant| {
                b.iter(|| {
                    forestbal_comm::Cluster::run(4, |ctx| {
                        let mut f = fractal_forest(ctx, 2, 4);
                        f.balance(ctx, Condition::full(3), variant, ReversalScheme::Notify);
                        f.num_local()
                    })
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("ice_sheet_p4", name),
            &variant,
            |b, &variant| {
                let params = IceSheetParams {
                    nx: 3,
                    ny: 3,
                    base_level: 1,
                    max_level: 5,
                    seed: 2012,
                };
                b.iter(|| {
                    forestbal_comm::Cluster::run(4, |ctx| {
                        let mut f = ice_sheet_forest(ctx, params);
                        f.partition_uniform(ctx);
                        f.balance(ctx, Condition::full(3), variant, ReversalScheme::Notify);
                        f.num_local()
                    })
                })
            },
        );
    }
    g.finish();

    // Reversal-scheme ablation inside the full algorithm.
    let mut g = c.benchmark_group("balance_reversal_ablation");
    g.sample_size(10);
    for &(name, scheme) in &[
        ("naive", ReversalScheme::Naive),
        ("ranges", ReversalScheme::Ranges(25)),
        ("notify", ReversalScheme::Notify),
    ] {
        g.bench_with_input(
            BenchmarkId::new("fractal_p6", name),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    forestbal_comm::Cluster::run(6, |ctx| {
                        let mut f = fractal_forest(ctx, 2, 3);
                        f.balance(ctx, Condition::full(3), BalanceVariant::New, scheme);
                        f.num_local()
                    })
                })
            },
        );
    }
    g.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_parallel
}
criterion_main!(benches);
