//! Criterion micro-benchmark: O(1) λ-based balance decisions (Table II)
//! versus the ripple oracle they replace.

use criterion::{criterion_group, criterion_main, Criterion};
use forestbal_core::oracle::oracle_balanced_pair;
use forestbal_core::{balanced_size_log2_at, carry3, is_balanced_pair, Condition};
use forestbal_octant::Octant;
use std::hint::black_box;

fn pairs_3d() -> Vec<(Octant<3>, Octant<3>)> {
    let root = Octant::<3>::root();
    let mut out = Vec::new();
    let mut o = root.child(0);
    for _ in 0..6 {
        o = o.child(7);
    }
    for i in 1..8 {
        out.push((o, root.child(i)));
        out.push((o, root.child(i).child(0)));
        out.push((o, root.child(i).child(7).child(2)));
    }
    out.retain(|(a, b)| !a.overlaps(b));
    out
}

fn bench_lambda(c: &mut Criterion) {
    let pairs = pairs_3d();

    for k in 1..=3u8 {
        let cond = Condition::new(k, 3).unwrap();
        c.bench_function(&format!("lambda_decision_3d_k{k}"), |b| {
            b.iter(|| {
                let mut acc = 0u32;
                for (o, r) in &pairs {
                    acc += is_balanced_pair(black_box(o), black_box(r), cond) as u32;
                }
                acc
            })
        });
    }

    // The oracle pays a full ripple construction per decision.
    let root = Octant::<3>::root();
    let cond = Condition::full(3);
    let (o, r) = pairs[0];
    c.bench_function("oracle_decision_3d_k3", |b| {
        b.iter(|| oracle_balanced_pair(&root, black_box(&o), black_box(&r), cond))
    });

    c.bench_function("balanced_size_log2_at", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for (o, r) in &pairs {
                if r.level < o.level {
                    acc += balanced_size_log2_at(black_box(o), cond, black_box(r)) as u32;
                }
            }
            acc
        })
    });

    c.bench_function("carry3", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..64u64 {
                acc ^= carry3(black_box(i), black_box(i * 3), black_box(i << 2));
            }
            acc
        })
    });
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_lambda
}
criterion_main!(benches);
