//! Criterion micro-benchmark: the packed Morton-key fast path — codec
//! pack/unpack, LSD radix sort vs comparison sort, and the
//! open-addressing octant table vs the `HashSet`-backed set.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use forestbal_bench::experiments::adapted_subtree_input;
use forestbal_octant::key::{pack, unpack};
use forestbal_octant::{sort_octants_with, Octant, OctantSet, OctantTable, SortScratch};
use std::hint::black_box;

/// Deterministic Fisher-Yates shuffle (xorshift).
fn shuffle<T>(v: &mut [T], seed: u64) {
    let mut state = seed | 1;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for i in (1..v.len()).rev() {
        let j = (rng() % (i as u64 + 1)) as usize;
        v.swap(i, j);
    }
}

fn bench_codec(c: &mut Criterion) {
    let input = adapted_subtree_input(10_000, 7);
    let keys: Vec<u128> = input.iter().map(pack).collect();
    let mut g = c.benchmark_group("morton_key_codec");
    g.throughput(Throughput::Elements(input.len() as u64));
    g.bench_with_input(
        BenchmarkId::new("pack_3d", input.len()),
        &input,
        |b, octs| b.iter(|| octs.iter().map(|o| pack(black_box(o))).sum::<u128>()),
    );
    g.bench_with_input(
        BenchmarkId::new("unpack_3d", keys.len()),
        &keys,
        |b, keys| {
            b.iter(|| {
                keys.iter()
                    .map(|&k| {
                        let o = unpack::<3>(black_box(k));
                        o.coords.iter().map(|&c| c as i64).sum::<i64>() + o.level as i64
                    })
                    .sum::<i64>()
            })
        },
    );
    g.finish();
}

fn bench_sort(c: &mut Criterion) {
    let mut g = c.benchmark_group("octant_sort_3d");
    for target in [1_000usize, 10_000, 50_000] {
        let mut shuffled = adapted_subtree_input(target, 42);
        shuffle(&mut shuffled, 0x5eed);
        let mut buf = shuffled.clone();
        g.throughput(Throughput::Elements(shuffled.len() as u64));
        g.bench_with_input(
            BenchmarkId::new("struct_sort", shuffled.len()),
            &shuffled,
            |b, input| {
                b.iter(|| {
                    buf.copy_from_slice(input);
                    black_box(&mut buf).sort_unstable();
                })
            },
        );
        let mut scratch = SortScratch::new();
        g.bench_with_input(
            BenchmarkId::new("packed_radix", shuffled.len()),
            &shuffled,
            |b, input| {
                b.iter(|| {
                    buf.copy_from_slice(input);
                    sort_octants_with(black_box(&mut buf), &mut scratch);
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("presorted", shuffled.len()),
            &shuffled,
            |b, _| b.iter(|| sort_octants_with(black_box(&mut buf), &mut scratch)),
        );
    }
    g.finish();
}

fn bench_table(c: &mut Criterion) {
    let input = adapted_subtree_input(10_000, 9);
    let misses: Vec<Octant<3>> = input.iter().map(|o| o.child(0)).collect();
    let mut g = c.benchmark_group("octant_membership");
    g.throughput(Throughput::Elements(input.len() as u64));

    g.bench_with_input(
        BenchmarkId::new("hashset_build", input.len()),
        &input,
        |b, octs| {
            b.iter(|| {
                let mut s = OctantSet::default();
                for o in octs {
                    s.insert(*o);
                }
                black_box(s.len())
            })
        },
    );
    let mut table = OctantTable::<3>::new();
    g.bench_with_input(
        BenchmarkId::new("table_build", input.len()),
        &input,
        |b, octs| {
            b.iter(|| {
                table.reset_for(octs.len());
                for o in octs {
                    table.insert(o);
                }
                black_box(table.len())
            })
        },
    );

    let mut set = OctantSet::default();
    for o in &input {
        set.insert(*o);
    }
    g.bench_with_input(
        BenchmarkId::new("hashset_query", input.len()),
        &input,
        |b, octs| {
            b.iter(|| {
                let mut hits = 0usize;
                for o in octs.iter().chain(&misses) {
                    hits += usize::from(set.contains(black_box(o)));
                }
                black_box(hits)
            })
        },
    );
    g.bench_with_input(
        BenchmarkId::new("table_query", input.len()),
        &input,
        |b, octs| {
            b.iter(|| {
                let mut hits = 0usize;
                for o in octs.iter().chain(&misses) {
                    hits += usize::from(table.contains(black_box(o)));
                }
                black_box(hits)
            })
        },
    );
    g.finish();
}

fn fast_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = fast_config();
    targets = bench_codec, bench_sort, bench_table
}
criterion_main!(benches);
