//! First-party tracing and metrics for the forestbal runtimes.
//!
//! The paper's evaluation is per-phase: Figures 15–16 break the one-pass
//! balance into local balance, pattern reversal, query/response and
//! rebalance, with per-phase message volumes. This crate is the
//! observability layer that produces those breakdowns from *either*
//! runtime: spans are stamped through a caller-supplied clock closure
//! (always `Comm::now_ns`), so the same instrumented code records wall
//! time on the threaded `Cluster` and deterministic virtual time under
//! `forestbal-sim`.
//!
//! Design constraints, in order:
//!
//! 1. **Zero external dependencies** — consistent with the offline-build
//!    policy of `shims/`: no `tracing`, no `serde`; the chrome-trace
//!    exporter hand-writes its JSON.
//! 2. **Zero cost when compiled out** — the `record` cargo feature gates
//!    every body; without it all entry points are empty `#[inline]`
//!    functions. With the feature on but no [`Tracer`] installed, each
//!    call is one thread-local lookup and a branch.
//! 3. **No API plumbing** — both runtimes run each rank on its own OS
//!    thread (the simulator's ranks are baton-passing coroutine threads),
//!    so a thread-local recorder *is* per-rank state and the algorithms in
//!    `forest`/`comm` need no extra parameters.
//!
//! A rank opts in by constructing a [`Tracer`] at the top of its closure
//! and calling [`Tracer::finish`] at the end to harvest its [`RankTrace`].
//! The per-rank traces combine into a [`ClusterTrace`], which exports
//! chrome://tracing JSON ([`ClusterTrace::chrome_trace_json`]), per-phase
//! min/median/max aggregates ([`ClusterTrace::phase_aggregates`]) and
//! merged counters/histograms for the bench `BENCH {...}` lines.
//!
//! Determinism: span trees, counters and histograms depend only on the
//! algorithm (not on message arrival order or the clock), so a threaded
//! and a simulated run of the same deterministic workload produce
//! identical [`RankTrace::structure`]s — a property the differential
//! tests in `forestbal-sim` assert.

#![warn(missing_docs)]

mod export;
mod tracer;

pub use export::{json_escape, validate_json, ClusterTrace, PhaseAggregate};
pub use tracer::{
    bucket_bounds, bucket_of, counter_add, enabled, hist, instant, span, span_begin, span_end,
    swap_active, Histogram, RankTrace, SavedTrace, Span, TraceEvent, TraceStructure, Tracer,
    HIST_BUCKETS,
};
