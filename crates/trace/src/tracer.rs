//! The per-rank recorder: nested spans, point events, counters and
//! log2-bucket histograms.

use std::collections::BTreeMap;

#[cfg(feature = "record")]
use std::cell::RefCell;

/// Number of histogram buckets: bucket 0 holds the value 0, bucket `b ≥ 1`
/// holds values whose highest set bit is `b - 1` (i.e. `2^(b-1)..2^b`).
pub const HIST_BUCKETS: usize = 65;

/// Bucket index of a sample (see [`HIST_BUCKETS`]).
#[inline]
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive value range `[lo, hi]` covered by bucket `b`.
pub fn bucket_bounds(b: usize) -> (u64, u64) {
    match b {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (b - 1), (1 << b) - 1),
    }
}

/// A log2-bucket histogram of `u64` samples. Fixed-size, order-free and
/// `Eq`-comparable, so histograms from a threaded and a simulated run of
/// the same algorithm can be asserted bit-equal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[bucket_of(v)]` counts the samples close to `v`.
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Add another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// The non-empty buckets as `(bucket index, count)` pairs.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(b, &c)| (b, c))
    }
}

/// One recorded event. Spans are stored as begin/end pairs so recording is
/// a push, never a search; [`RankTrace::spans`] resolves the nesting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A span opened at `t_ns`.
    Begin {
        /// Span name; `'static` so recording never allocates for names.
        name: &'static str,
        /// Clock reading (`Comm::now_ns`) at entry.
        t_ns: u64,
    },
    /// The innermost open span closed at `t_ns`.
    End {
        /// Clock reading at exit.
        t_ns: u64,
    },
    /// A point event.
    Instant {
        /// Event name.
        name: &'static str,
        /// Clock reading.
        t_ns: u64,
    },
}

/// A resolved span: name, nesting depth and clock interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Span name.
    pub name: &'static str,
    /// Nesting depth; 0 for top-level spans.
    pub depth: u16,
    /// Clock reading at entry.
    pub start_ns: u64,
    /// Clock reading at exit.
    pub end_ns: u64,
}

impl Span {
    /// Span length on the recording rank's clock.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Everything one rank recorded: the event stream plus its named counters
/// and histograms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RankTrace {
    /// The recording rank.
    pub rank: usize,
    /// Begin/end/instant events in recording order.
    pub events: Vec<TraceEvent>,
    /// Named monotonic counters.
    pub counters: BTreeMap<&'static str, u64>,
    /// Named log2-bucket histograms.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl RankTrace {
    /// Resolve the event stream into spans, in begin order (pre-order of
    /// the span tree). Spans left open (a panic unwound past their end)
    /// are closed at the last timestamp seen.
    pub fn spans(&self) -> Vec<Span> {
        let mut out: Vec<Span> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        let mut last_t = 0u64;
        for ev in &self.events {
            match *ev {
                TraceEvent::Begin { name, t_ns } => {
                    last_t = last_t.max(t_ns);
                    stack.push(out.len());
                    out.push(Span {
                        name,
                        depth: stack.len() as u16 - 1,
                        start_ns: t_ns,
                        end_ns: t_ns,
                    });
                }
                TraceEvent::End { t_ns } => {
                    last_t = last_t.max(t_ns);
                    if let Some(i) = stack.pop() {
                        out[i].end_ns = t_ns;
                    }
                }
                TraceEvent::Instant { t_ns, .. } => last_t = last_t.max(t_ns),
            }
        }
        while let Some(i) = stack.pop() {
            out[i].end_ns = last_t.max(out[i].start_ns);
        }
        out
    }

    /// Per-name `(span count, total duration ns)` over this rank's spans.
    pub fn phase_totals(&self) -> BTreeMap<&'static str, (u64, u64)> {
        let mut out: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
        for s in self.spans() {
            let e = out.entry(s.name).or_insert((0, 0));
            e.0 += 1;
            e.1 += s.duration_ns();
        }
        out
    }

    /// Total duration of all spans named `name` on this rank.
    pub fn phase_total_ns(&self, name: &str) -> u64 {
        self.spans()
            .iter()
            .filter(|s| s.name == name)
            .map(Span::duration_ns)
            .sum()
    }

    /// The timestamp-free shape of this trace: span tree (as a pre-order
    /// `(depth, name)` walk), instants, counters and histograms. Two runs
    /// of the same deterministic algorithm — threaded or simulated — must
    /// produce equal structures; only the timestamps may differ.
    pub fn structure(&self) -> TraceStructure {
        let mut spans = Vec::new();
        let mut instants = Vec::new();
        let mut depth: u16 = 0;
        for ev in &self.events {
            match *ev {
                TraceEvent::Begin { name, .. } => {
                    spans.push((depth, name));
                    depth += 1;
                }
                TraceEvent::End { .. } => depth = depth.saturating_sub(1),
                TraceEvent::Instant { name, .. } => instants.push((depth, name)),
            }
        }
        TraceStructure {
            spans,
            instants,
            counters: self.counters.clone(),
            histograms: self.histograms.clone(),
        }
    }
}

/// See [`RankTrace::structure`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceStructure {
    /// Pre-order span tree walk as `(depth, name)`.
    pub spans: Vec<(u16, &'static str)>,
    /// Instant events as `(depth at emission, name)`.
    pub instants: Vec<(u16, &'static str)>,
    /// Final counter values.
    pub counters: BTreeMap<&'static str, u64>,
    /// Final histogram buckets.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

#[cfg(feature = "record")]
thread_local! {
    static ACTIVE: RefCell<Option<RankTrace>> = const { RefCell::new(None) };
}

/// Guard that arms recording on the current thread (= the current rank on
/// both runtimes). While alive, the free functions in this module append
/// to its [`RankTrace`]; without it they are no-ops. Harvest the trace
/// with [`Tracer::finish`]; dropping without finishing (a panic unwind)
/// discards the recording.
///
/// Not `Send`: the recording is thread-local by construction.
pub struct Tracer {
    _thread_bound: std::marker::PhantomData<*const ()>,
}

impl Tracer {
    /// Arm recording for `rank` on this thread.
    ///
    /// # Panics
    /// If a `Tracer` is already active on this thread.
    pub fn begin(rank: usize) -> Tracer {
        #[cfg(feature = "record")]
        ACTIVE.with(|a| {
            let mut a = a.borrow_mut();
            assert!(a.is_none(), "a Tracer is already active on this thread");
            *a = Some(RankTrace {
                rank,
                ..RankTrace::default()
            });
        });
        #[cfg(not(feature = "record"))]
        let _ = rank;
        Tracer {
            _thread_bound: std::marker::PhantomData,
        }
    }

    /// Disarm recording and return everything recorded. Spans still open
    /// are closed at the last timestamp seen, so the result is always a
    /// balanced tree. With the `record` feature off this returns an empty
    /// trace.
    pub fn finish(self) -> RankTrace {
        #[cfg(feature = "record")]
        {
            let mut tr = ACTIVE
                .with(|a| a.borrow_mut().take())
                .expect("finish() with no active trace");
            let mut open = 0i64;
            let mut last_t = 0u64;
            for ev in &tr.events {
                match *ev {
                    TraceEvent::Begin { t_ns, .. } => {
                        open += 1;
                        last_t = last_t.max(t_ns);
                    }
                    TraceEvent::End { t_ns } => {
                        open -= 1;
                        last_t = last_t.max(t_ns);
                    }
                    TraceEvent::Instant { t_ns, .. } => last_t = last_t.max(t_ns),
                }
            }
            for _ in 0..open.max(0) {
                tr.events.push(TraceEvent::End { t_ns: last_t });
            }
            tr
        }
        #[cfg(not(feature = "record"))]
        RankTrace::default()
    }
}

impl Drop for Tracer {
    fn drop(&mut self) {
        #[cfg(feature = "record")]
        ACTIVE.with(|a| {
            a.borrow_mut().take();
        });
    }
}

#[cfg(feature = "record")]
#[inline]
fn with_active<R>(f: impl FnOnce(&mut RankTrace) -> R) -> Option<R> {
    ACTIVE.with(|a| a.borrow_mut().as_mut().map(f))
}

/// Is a [`Tracer`] active on this thread? Lets callers skip building
/// expensive inputs (e.g. `CommStats` deltas) when nothing records them.
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "record")]
    {
        ACTIVE.with(|a| a.borrow().is_some())
    }
    #[cfg(not(feature = "record"))]
    false
}

/// Open a nested span. `now_ns` is only called if recording is active;
/// pass `|| ctx.now_ns()` so spans carry the runtime's clock (wall time on
/// the threaded cluster, virtual time under the simulator). The closure
/// must not itself call into this module.
#[inline]
pub fn span_begin(name: &'static str, now_ns: impl FnOnce() -> u64) {
    #[cfg(feature = "record")]
    with_active(|tr| {
        let t_ns = now_ns();
        tr.events.push(TraceEvent::Begin { name, t_ns });
    });
    #[cfg(not(feature = "record"))]
    let _ = (name, now_ns);
}

/// Close the innermost open span.
#[inline]
pub fn span_end(now_ns: impl FnOnce() -> u64) {
    #[cfg(feature = "record")]
    with_active(|tr| {
        let t_ns = now_ns();
        tr.events.push(TraceEvent::End { t_ns });
    });
    #[cfg(not(feature = "record"))]
    let _ = now_ns;
}

/// Record `f()` under a span named `name`.
#[inline]
pub fn span<T>(name: &'static str, now_ns: impl Fn() -> u64, f: impl FnOnce() -> T) -> T {
    span_begin(name, &now_ns);
    let out = f();
    span_end(&now_ns);
    out
}

/// Record a point event.
#[inline]
pub fn instant(name: &'static str, now_ns: impl FnOnce() -> u64) {
    #[cfg(feature = "record")]
    with_active(|tr| {
        let t_ns = now_ns();
        tr.events.push(TraceEvent::Instant { name, t_ns });
    });
    #[cfg(not(feature = "record"))]
    let _ = (name, now_ns);
}

/// Add `v` to the named counter (created at zero on first use).
#[inline]
pub fn counter_add(name: &'static str, v: u64) {
    #[cfg(feature = "record")]
    with_active(|tr| *tr.counters.entry(name).or_insert(0) += v);
    #[cfg(not(feature = "record"))]
    let _ = (name, v);
}

/// A suspended recording, detached from its thread — the hand-off token
/// stackful-coroutine runtimes use to keep per-rank recording working
/// when many ranks share one OS thread.
///
/// The recorder state is thread-local, which identifies "thread" with
/// "rank" on both the threaded cluster and the thread-per-rank simulator
/// backend. The simulator's fiber backend breaks that identification:
/// every rank runs on the scheduler's thread. At each fiber switch the
/// scheduler calls [`swap_active`] to park the outgoing rank's recording
/// in a `SavedTrace` and install the incoming rank's, so `Tracer::begin`
/// / `finish` and all the free functions behave exactly as if each rank
/// had its own thread.
///
/// Opaque and `Default` (an empty slot); zero-sized when the `record`
/// feature is off.
#[derive(Default)]
#[doc(hidden)]
pub struct SavedTrace {
    #[cfg(feature = "record")]
    inner: Option<RankTrace>,
}

/// Exchange the current thread's recording state with `saved`: installs
/// `saved` (possibly empty) and returns what was active. A no-op pair of
/// moves when the `record` feature is off.
#[doc(hidden)]
#[inline]
pub fn swap_active(saved: SavedTrace) -> SavedTrace {
    #[cfg(feature = "record")]
    {
        let prev = ACTIVE.with(|a| std::mem::replace(&mut *a.borrow_mut(), saved.inner));
        SavedTrace { inner: prev }
    }
    #[cfg(not(feature = "record"))]
    saved
}

/// Record a sample into the named log2-bucket histogram.
#[inline]
pub fn hist(name: &'static str, v: u64) {
    #[cfg(feature = "record")]
    with_active(|tr| tr.histograms.entry(name).or_default().record(v));
    #[cfg(not(feature = "record"))]
    let _ = (name, v);
}

#[cfg(all(test, feature = "record"))]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..HIST_BUCKETS {
            let (lo, hi) = bucket_bounds(b);
            assert_eq!(bucket_of(lo), b);
            assert_eq!(bucket_of(hi), b);
        }
        let mut h = Histogram::default();
        for v in [0, 1, 1, 3, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 2);
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[10], 1);
        let mut h2 = h;
        h2.merge(&h);
        assert_eq!(h2.count(), 10);
        assert_eq!(h2.nonzero().count(), 4);
    }

    #[test]
    fn records_nested_spans_counters_hists() {
        assert!(!enabled());
        let tr = Tracer::begin(3);
        assert!(enabled());
        let mut t = 0u64;
        let mut tick = || {
            t += 10;
            t
        };
        span_begin("outer", &mut tick);
        span_begin("inner", &mut tick);
        instant("ping", &mut tick);
        counter_add("n", 2);
        counter_add("n", 3);
        hist("sizes", 7);
        span_end(&mut tick);
        span_end(&mut tick);
        let rt = tr.finish();
        assert!(!enabled());

        assert_eq!(rt.rank, 3);
        let spans = rt.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].depth, 0);
        assert_eq!((spans[0].start_ns, spans[0].end_ns), (10, 50));
        assert_eq!(spans[1].name, "inner");
        assert_eq!(spans[1].depth, 1);
        assert_eq!((spans[1].start_ns, spans[1].end_ns), (20, 40));
        assert_eq!(rt.counters["n"], 5);
        assert_eq!(rt.histograms["sizes"].buckets[3], 1);
        assert_eq!(rt.phase_total_ns("outer"), 40);
        assert_eq!(rt.phase_totals()["inner"], (1, 20));

        let st = rt.structure();
        assert_eq!(st.spans, vec![(0, "outer"), (1, "inner")]);
        assert_eq!(st.instants, vec![(2, "ping")]);
    }

    #[test]
    fn finish_closes_dangling_spans() {
        let tr = Tracer::begin(0);
        span_begin("a", || 5);
        span_begin("b", || 9);
        let rt = tr.finish();
        let spans = rt.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].end_ns, 9);
        assert_eq!(spans[1].end_ns, 9);
        // The event stream itself is balanced after finish().
        assert_eq!(rt.structure().spans.len(), 2);
    }

    #[test]
    fn noop_without_tracer() {
        span_begin("ignored", || panic!("clock must not be read when disabled"));
        span_end(|| panic!("clock must not be read when disabled"));
        instant("ignored", || panic!("clock must not be read when disabled"));
        counter_add("ignored", 1);
        hist("ignored", 1);
    }

    #[test]
    fn drop_discards_recording() {
        {
            let _tr = Tracer::begin(1);
            span_begin("x", || 1);
        }
        assert!(!enabled());
        // A new tracer starts clean.
        let tr = Tracer::begin(2);
        let rt = tr.finish();
        assert!(rt.events.is_empty());
    }
}
