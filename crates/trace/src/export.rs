//! Cluster-wide views of per-rank traces: chrome://tracing export,
//! per-phase aggregates, merged counters and histograms.

use crate::tracer::{Histogram, RankTrace, TraceEvent};
use std::collections::BTreeMap;

/// The traces of every rank of one run, ordered by rank.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClusterTrace {
    /// One trace per rank.
    pub ranks: Vec<RankTrace>,
}

/// Min/median/max over ranks of the per-rank total time spent in one span
/// name — one row of the paper-style per-phase table (Fig. 15).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseAggregate {
    /// Span name.
    pub name: &'static str,
    /// Ranks that recorded at least one such span.
    pub ranks: usize,
    /// Total span instances across all ranks.
    pub spans: u64,
    /// Minimum per-rank total, over recording ranks.
    pub min_ns: u64,
    /// Median per-rank total.
    pub median_ns: u64,
    /// Maximum per-rank total — the cluster-critical path.
    pub max_ns: u64,
}

impl ClusterTrace {
    /// Collect per-rank traces (sorted by rank).
    pub fn new(mut ranks: Vec<RankTrace>) -> ClusterTrace {
        ranks.sort_by_key(|r| r.rank);
        ClusterTrace { ranks }
    }

    /// Per-phase min/median/max across ranks, keyed by span name
    /// (alphabetical). A rank counts toward a phase only if it recorded
    /// that span at least once.
    pub fn phase_aggregates(&self) -> Vec<PhaseAggregate> {
        let mut per_name: BTreeMap<&'static str, (u64, Vec<u64>)> = BTreeMap::new();
        for rt in &self.ranks {
            for (name, (count, total)) in rt.phase_totals() {
                let e = per_name.entry(name).or_default();
                e.0 += count;
                e.1.push(total);
            }
        }
        per_name
            .into_iter()
            .map(|(name, (spans, mut totals))| {
                totals.sort_unstable();
                PhaseAggregate {
                    name,
                    ranks: totals.len(),
                    spans,
                    min_ns: totals[0],
                    median_ns: totals[totals.len() / 2],
                    max_ns: totals[totals.len() - 1],
                }
            })
            .collect()
    }

    /// Counters summed over all ranks.
    pub fn merged_counters(&self) -> BTreeMap<&'static str, u64> {
        let mut out: BTreeMap<&'static str, u64> = BTreeMap::new();
        for rt in &self.ranks {
            for (&k, &v) in &rt.counters {
                *out.entry(k).or_insert(0) += v;
            }
        }
        out
    }

    /// Histograms merged (bucketwise sum) over all ranks.
    pub fn merged_histograms(&self) -> BTreeMap<&'static str, Histogram> {
        let mut out: BTreeMap<&'static str, Histogram> = BTreeMap::new();
        for rt in &self.ranks {
            for (&k, h) in &rt.histograms {
                out.entry(k).or_default().merge(h);
            }
        }
        out
    }

    /// Serialize in the chrome://tracing / Perfetto "trace event format":
    /// one `pid` per rank, spans as complete (`ph:"X"`) events, point
    /// events as instants (`ph:"i"`), final counter values as counter
    /// (`ph:"C"`) samples, plus `process_name` metadata. Timestamps are
    /// microseconds (the format's unit) with nanosecond precision kept in
    /// the fraction. Load the result via chrome://tracing ("Load") or
    /// <https://ui.perfetto.dev>.
    pub fn chrome_trace_json(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        for rt in &self.ranks {
            let pid = rt.rank;
            events.push(format!(
                r#"{{"name":"process_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"rank {pid}"}}}}"#
            ));
            let mut end_ns = 0u64;
            for s in rt.spans() {
                end_ns = end_ns.max(s.end_ns);
                events.push(format!(
                    r#"{{"name":"{}","cat":"forestbal","ph":"X","ts":{},"dur":{},"pid":{pid},"tid":0}}"#,
                    json_escape(s.name),
                    micros(s.start_ns),
                    micros(s.duration_ns()),
                ));
            }
            for ev in &rt.events {
                if let TraceEvent::Instant { name, t_ns } = *ev {
                    end_ns = end_ns.max(t_ns);
                    events.push(format!(
                        r#"{{"name":"{}","cat":"forestbal","ph":"i","ts":{},"pid":{pid},"tid":0,"s":"t"}}"#,
                        json_escape(name),
                        micros(t_ns),
                    ));
                }
            }
            for (name, v) in &rt.counters {
                events.push(format!(
                    r#"{{"name":"{}","ph":"C","ts":{},"pid":{pid},"tid":0,"args":{{"value":{v}}}}}"#,
                    json_escape(name),
                    micros(end_ns),
                ));
            }
        }
        let mut out = String::from("{\"traceEvents\":[\n");
        out.push_str(&events.join(",\n"));
        out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
        out
    }
}

/// Nanoseconds as a decimal microsecond literal with full precision.
fn micros(ns: u64) -> String {
    if ns.is_multiple_of(1000) {
        format!("{}", ns / 1000)
    } else {
        format!("{}.{:03}", ns / 1000, ns % 1000)
    }
}

/// Escape a string for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Validate that `s` is one complete JSON value (RFC 8259 syntax; numbers,
/// strings with escapes, arbitrarily nested arrays/objects). First-party
/// stand-in for a JSON parser so exporter tests, examples and the CI smoke
/// job need no external tooling. Returns the byte offset of the first
/// error.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut i = 0usize;
    skip_ws(b, &mut i);
    value(b, &mut i)?;
    skip_ws(b, &mut i);
    if i != b.len() {
        return Err(format!("trailing data at byte {i}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
    match b.get(*i) {
        None => Err(format!("unexpected end of input at byte {i}")),
        Some(b'{') => object(b, i),
        Some(b'[') => array(b, i),
        Some(b'"') => string(b, i),
        Some(b't') => literal(b, i, b"true"),
        Some(b'f') => literal(b, i, b"false"),
        Some(b'n') => literal(b, i, b"null"),
        Some(b'-' | b'0'..=b'9') => number(b, i),
        Some(&c) => Err(format!("unexpected byte {c:#x} at {i}")),
    }
}

fn literal(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b[*i..].starts_with(lit) {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {i}"))
    }
}

fn object(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // consume '{'
    skip_ws(b, i);
    if b.get(*i) == Some(&b'}') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        if b.get(*i) != Some(&b'"') {
            return Err(format!("expected object key at byte {i}"));
        }
        string(b, i)?;
        skip_ws(b, i);
        if b.get(*i) != Some(&b':') {
            return Err(format!("expected ':' at byte {i}"));
        }
        *i += 1;
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b'}') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {i}")),
        }
    }
}

fn array(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // consume '['
    skip_ws(b, i);
    if b.get(*i) == Some(&b']') {
        *i += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, i);
        value(b, i)?;
        skip_ws(b, i);
        match b.get(*i) {
            Some(b',') => *i += 1,
            Some(b']') => {
                *i += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {i}")),
        }
    }
}

fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
    *i += 1; // consume '"'
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => {
                *i += 1;
                match b.get(*i) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *i += 1,
                    Some(b'u') => {
                        if b.len() < *i + 5 || !b[*i + 1..*i + 5].iter().all(u8::is_ascii_hexdigit)
                        {
                            return Err(format!("bad \\u escape at byte {i}"));
                        }
                        *i += 5;
                    }
                    _ => return Err(format!("bad escape at byte {i}")),
                }
            }
            0x00..=0x1f => return Err(format!("raw control byte in string at {i}")),
            _ => *i += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], i: &mut usize) -> Result<(), String> {
    let start = *i;
    if b.get(*i) == Some(&b'-') {
        *i += 1;
    }
    let digits = |b: &[u8], i: &mut usize| {
        let s = *i;
        while b.get(*i).is_some_and(u8::is_ascii_digit) {
            *i += 1;
        }
        *i > s
    };
    if !digits(b, i) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*i) == Some(&b'.') {
        *i += 1;
        if !digits(b, i) {
            return Err(format!("bad number fraction at byte {start}"));
        }
    }
    if matches!(b.get(*i), Some(b'e' | b'E')) {
        *i += 1;
        if matches!(b.get(*i), Some(b'+' | b'-')) {
            *i += 1;
        }
        if !digits(b, i) {
            return Err(format!("bad number exponent at byte {start}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\n\t\r"), "x\\n\\t\\r");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        // Escaped output embeds into a valid JSON string literal.
        let quoted = format!("\"{}\"", json_escape("q\"\\\n\u{7}"));
        validate_json(&quoted).unwrap();
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            r#"{"a":[1,2,{"b":"cé"}],"d":false}"#,
            "  [ 1 , \"x\" ]  ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{'a':1}",
            "tru",
            "01x",
            "\"unterminated",
            "\"bad\\q\"",
            "{} extra",
            "\"raw\ncontrol\"",
        ] {
            assert!(validate_json(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[cfg(feature = "record")]
    fn demo_trace() -> ClusterTrace {
        use crate::tracer::{counter_add, hist, instant, span_begin, span_end, Tracer};
        let ranks = (0..2)
            .map(|r| {
                let tr = Tracer::begin(r);
                let mut t = 100 * r as u64;
                let mut tick = || {
                    t += 1500; // non-multiple of 1000: fractional µs path
                    t
                };
                span_begin("phase \"a\"", &mut tick);
                instant("mark\n", &mut tick);
                span_begin("inner", &mut tick);
                span_end(&mut tick);
                span_end(&mut tick);
                counter_add("bytes\\sent", 10 + r as u64);
                hist("h", 3);
                tr.finish()
            })
            .collect();
        ClusterTrace::new(ranks)
    }

    #[cfg(feature = "record")]
    #[test]
    fn chrome_export_is_valid_and_nested() {
        let ct = demo_trace();
        let json = ct.chrome_trace_json();
        validate_json(&json).unwrap();
        // Both pids present, names escaped, complete events emitted.
        assert!(json.contains(r#""pid":0"#) && json.contains(r#""pid":1"#));
        assert!(json.contains(r#""name":"phase \"a\"""#));
        assert!(json.contains(r#""name":"mark\n""#));
        assert!(json.contains(r#""name":"bytes\\sent""#));
        assert_eq!(json.matches(r#""ph":"X""#).count(), 4);
        assert_eq!(json.matches(r#""ph":"i""#).count(), 2);
        assert_eq!(json.matches(r#""ph":"C""#).count(), 2);
        // Nesting: each rank's inner span lies within its outer span.
        for rt in &ct.ranks {
            let spans = rt.spans();
            assert_eq!(spans[0].depth, 0);
            assert_eq!(spans[1].depth, 1);
            assert!(spans[0].start_ns <= spans[1].start_ns);
            assert!(spans[1].end_ns <= spans[0].end_ns);
        }
        // Fractional-microsecond timestamps survive the round trip.
        assert!(json.contains("\"ts\":1.600") || json.contains("\"ts\":1.6"));
    }

    #[cfg(feature = "record")]
    #[test]
    fn aggregates_and_merges() {
        let ct = demo_trace();
        let agg = ct.phase_aggregates();
        let outer = agg.iter().find(|a| a.name == "phase \"a\"").unwrap();
        assert_eq!(outer.ranks, 2);
        assert_eq!(outer.spans, 2);
        assert_eq!(outer.min_ns, 6000);
        assert_eq!(outer.max_ns, 6000);
        assert_eq!(ct.merged_counters()["bytes\\sent"], 21);
        assert_eq!(ct.merged_histograms()["h"].count(), 2);
    }

    #[test]
    fn micros_formatting() {
        assert_eq!(micros(0), "0");
        assert_eq!(micros(1000), "1");
        assert_eq!(micros(1500), "1.500");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(12_000_007), "12000.007");
    }
}
