//! Property tests for node enumeration and face iteration on random
//! balanced forests.

use forestbal_comm::{Cluster, Comm};
use forestbal_core::Condition;
use forestbal_forest::{BalanceVariant, BrickConnectivity, Forest, ReversalScheme, TreeId};
use forestbal_octant::Octant;
use proptest::prelude::*;
use std::sync::Arc;

fn pseudo_refine(seed: u64, t: TreeId, o: &Octant<2>, denom: u64) -> bool {
    let mut h = seed ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &c in &o.coords {
        h ^= (c as u64).wrapping_mul(0xff51_afd7_ed55_8ccd);
        h = h.rotate_left(31);
    }
    h ^= o.level as u64;
    (h.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 33).is_multiple_of(denom)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn node_and_face_invariants(
        seed in any::<u64>(),
        p in 1usize..5,
        denom in 3u64..6,
        nx in 1usize..3,
    ) {
        let conn = Arc::new(BrickConnectivity::<2>::new([nx, 1], [false, false]));
        let conn2 = Arc::clone(&conn);
        let out = Cluster::run(p, move |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn2), ctx, 1);
            f.refine(true, 4, |t, o| pseudo_refine(seed, t, o, denom));
            f.balance(
                ctx,
                Condition::FACE,
                BalanceVariant::New,
                ReversalScheme::Notify,
            );
            let leaves_global = f.num_global(ctx);
            let nodes = f.enumerate_nodes(ctx);
            let owned: u64 = nodes.num_owned_independent() as u64;
            let ghosts = f.ghost_layer(ctx);
            let (mut b, mut s, mut h) = (0u64, 0u64, 0u64);
            f.for_each_face(&ghosts, |v| match v {
                forestbal_forest::FaceVisit::Boundary { .. } => b += 1,
                forestbal_forest::FaceVisit::Same { .. } => s += 1,
                forestbal_forest::FaceVisit::Hanging { .. } => h += 1,
            });
            (
                leaves_global,
                nodes.num_global_independent,
                ctx.allreduce_sum(owned),
                ctx.allreduce_sum(b),
                ctx.allreduce_sum(s),
                ctx.allreduce_sum(h),
                ctx.allreduce_sum(nodes.num_hanging() as u64),
            )
        });
        let (leaves, indep, owned_sum, b, s, h, hang_incidence) = out.results[0];
        for r in &out.results {
            prop_assert_eq!(r, &out.results[0], "ranks disagree");
        }
        // Owner counting is exact: the sum of per-rank owned independent
        // nodes equals the global count.
        prop_assert_eq!(owned_sum, indep);
        // Face-handshake identity: every leaf has 2D faces; each Same
        // face accounts for 2 leaf-faces, each Boundary for 1, each
        // Hanging sub-face for 1 fine leaf-face plus a share of the
        // coarse face: the coarse leaf-face opposite 2^{d-1}=2 hanging
        // sub-faces contributes 1, so 2 hanging sub-faces = 3 leaf-faces.
        prop_assert_eq!(h % 2, 0, "2D hanging sub-faces come in pairs");
        prop_assert_eq!(
            4 * leaves,
            b + 2 * s + h + h / 2,
            "face handshake: leaves={} b={} s={} h={}", leaves, b, s, h
        );
        // Face balance: every hanging incidence count is finite and the
        // mesh has hanging nodes iff it has hanging faces.
        prop_assert_eq!(h > 0, hang_incidence > 0);
    }
}
