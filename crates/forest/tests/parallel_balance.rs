//! End-to-end validation of the one-pass parallel balance: for assorted
//! forests, partitions, dimensions, and balance conditions, both variants
//! and every reversal scheme must reproduce the serial forest oracle
//! exactly, independent of the rank count.

use forestbal_comm::Cluster;
use forestbal_core::Condition;
use forestbal_forest::serial::is_forest_balanced;
use forestbal_forest::{
    serial_forest_balance, BalanceVariant, BrickConnectivity, Forest, ReversalScheme, TreeId,
};
use forestbal_octant::Octant;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Run one scenario: build the forest by refinement on every rank count in
/// `ranks`, balance with the given variant/scheme, and compare the
/// gathered result against the serial oracle applied to the same input.
fn check<const D: usize>(
    conn: BrickConnectivity<D>,
    ranks: &[usize],
    cond: Condition,
    variant: BalanceVariant,
    scheme: ReversalScheme,
    base_level: u8,
    refine: impl Fn(TreeId, &Octant<D>) -> bool + Sync,
) {
    let conn = Arc::new(conn);
    let mut reference: Option<BTreeMap<TreeId, Vec<Octant<D>>>> = None;
    for &p in ranks {
        let conn2 = Arc::clone(&conn);
        let refine = &refine;
        let out = Cluster::run(p, move |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn2), ctx, base_level);
            f.refine(true, 6, |t, o| refine(t, o));
            let input = f.gather(ctx);
            f.balance(ctx, cond, variant, scheme);
            let result = f.gather(ctx);
            (input, result)
        });
        let (input, result) = &out.results[0];
        // Every rank gathered the same global forest.
        for (i2, r2) in &out.results {
            assert_eq!(i2, input);
            assert_eq!(r2, result);
        }
        let want = reference.get_or_insert_with(|| serial_forest_balance(&conn, input, cond));
        assert!(
            is_forest_balanced(&conn, result, cond),
            "result not balanced (P={p}, {variant:?}, {scheme:?})"
        );
        for (t, v) in want.iter() {
            assert_eq!(
                result.get(t),
                Some(v),
                "tree {t} mismatch (P={p}, {variant:?}, {scheme:?}, k={})",
                cond.k()
            );
        }
        assert_eq!(result.len(), want.len());
    }
}

/// Deep refinement toward the center point of a quadrant, the classic
/// long-range-ripple stressor.
fn center_hugger_2d(_t: TreeId, o: &Octant<2>) -> bool {
    let c = 1 << 23; // tree midpoint
    o.coords[0] + o.len() == c && o.coords[1] + o.len() == c
}

#[test]
fn single_tree_2d_both_variants_all_schemes() {
    for &variant in &[BalanceVariant::Old, BalanceVariant::New] {
        for &scheme in &[
            ReversalScheme::Naive,
            ReversalScheme::Ranges(2),
            ReversalScheme::Notify,
        ] {
            check(
                BrickConnectivity::<2>::unit(),
                &[1, 2, 5],
                Condition::full(2),
                variant,
                scheme,
                1,
                center_hugger_2d,
            );
        }
    }
}

#[test]
fn single_tree_2d_face_balance() {
    for &variant in &[BalanceVariant::Old, BalanceVariant::New] {
        check(
            BrickConnectivity::<2>::unit(),
            &[1, 3, 4],
            Condition::FACE,
            variant,
            ReversalScheme::Notify,
            1,
            center_hugger_2d,
        );
    }
}

#[test]
fn multi_tree_2d_cross_tree_ripple() {
    // Refinement hugging the corner shared by all four trees of a 2x2
    // brick: queries and responses must cross tree boundaries.
    let corner_hugger = |t: TreeId, o: &Octant<2>| {
        let l = 1 << 24;
        match t {
            0 => o.coords[0] + o.len() == l && o.coords[1] + o.len() == l,
            _ => false,
        }
    };
    for &variant in &[BalanceVariant::Old, BalanceVariant::New] {
        check(
            BrickConnectivity::<2>::new([2, 2], [false; 2]),
            &[1, 2, 7],
            Condition::full(2),
            variant,
            ReversalScheme::Notify,
            1,
            corner_hugger,
        );
    }
}

#[test]
fn multi_tree_2d_face_condition_diagonal_effect() {
    // Face balance with corner-adjacent refinement: the diagonal tree is
    // constrained only through the composite ripple — a regression test
    // for insulation queries being independent of k.
    let corner_hugger = |t: TreeId, o: &Octant<2>| {
        t == 0 && o.coords[0] + o.len() == (1 << 24) && o.coords[1] + o.len() == (1 << 24)
    };
    for &variant in &[BalanceVariant::Old, BalanceVariant::New] {
        check(
            BrickConnectivity::<2>::new([2, 2], [false; 2]),
            &[1, 3],
            Condition::FACE,
            variant,
            ReversalScheme::Notify,
            1,
            corner_hugger,
        );
    }
}

#[test]
fn periodic_brick_2d() {
    // Periodicity makes tree 1 its own... tree 0's neighbor on both
    // sides; refinement at the left edge wraps around.
    let edge_hugger = |t: TreeId, o: &Octant<2>| t == 0 && o.coords[0] == 0;
    for &variant in &[BalanceVariant::Old, BalanceVariant::New] {
        check(
            BrickConnectivity::<2>::new([2, 1], [true, false]),
            &[1, 2, 4],
            Condition::full(2),
            variant,
            ReversalScheme::Notify,
            1,
            edge_hugger,
        );
    }
}

#[test]
fn three_dimensional_all_conditions() {
    let hugger = |_t: TreeId, o: &Octant<3>| {
        let c = 1 << 23;
        (0..3).all(|i| o.coords[i] + o.len() == c)
    };
    for k in 1..=3u8 {
        let cond = Condition::new(k, 3).unwrap();
        for &variant in &[BalanceVariant::Old, BalanceVariant::New] {
            check(
                BrickConnectivity::<3>::unit(),
                &[1, 3],
                cond,
                variant,
                ReversalScheme::Notify,
                1,
                hugger,
            );
        }
    }
}

#[test]
fn three_dimensional_multitree() {
    // The Figure 14 brick: 3x2x1 trees, refinement at an interior corner.
    let hugger =
        |t: TreeId, o: &Octant<3>| t == 0 && (0..3).all(|i| o.coords[i] + o.len() == (1 << 24));
    for &variant in &[BalanceVariant::Old, BalanceVariant::New] {
        check(
            BrickConnectivity::<3>::new([3, 2, 1], [false; 3]),
            &[1, 4],
            Condition::full(3),
            variant,
            ReversalScheme::Notify,
            1,
            hugger,
        );
    }
}

#[test]
fn random_refinement_many_partitions() {
    // Pseudo-random refinement decided by a hash of the octant: identical
    // on every rank count by construction.
    let pseudo = |t: TreeId, o: &Octant<2>| {
        let mut h = (t as u64).wrapping_mul(0x9e3779b97f4a7c15);
        for &c in &o.coords {
            h ^= (c as u64).wrapping_mul(0xff51afd7ed558ccd);
            h = h.rotate_left(23);
        }
        h ^= o.level as u64;
        h.wrapping_mul(0xc4ceb9fe1a85ec53) >> 61 == 0 // ~1/8 of octants
    };
    for &variant in &[BalanceVariant::Old, BalanceVariant::New] {
        check(
            BrickConnectivity::<2>::new([2, 2], [false; 2]),
            &[1, 2, 6, 9],
            Condition::full(2),
            variant,
            ReversalScheme::Notify,
            2,
            pseudo,
        );
    }
}

#[test]
fn balance_is_idempotent_in_parallel() {
    let conn = Arc::new(BrickConnectivity::<2>::unit());
    Cluster::run(3, |ctx| {
        let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 1);
        f.refine(true, 5, center_hugger_2d);
        f.balance(
            ctx,
            Condition::full(2),
            BalanceVariant::New,
            ReversalScheme::Notify,
        );
        let c1 = f.checksum(ctx);
        let n1 = f.num_global(ctx);
        f.balance(
            ctx,
            Condition::full(2),
            BalanceVariant::New,
            ReversalScheme::Notify,
        );
        assert_eq!(f.checksum(ctx), c1);
        assert_eq!(f.num_global(ctx), n1);
    });
}

#[test]
fn balance_after_partition() {
    // Partitioning before balancing must not change the outcome.
    let conn = Arc::new(BrickConnectivity::<2>::new([2, 1], [false; 2]));
    let mut sums = vec![];
    for partition_first in [false, true] {
        let conn = Arc::clone(&conn);
        let out = Cluster::run(4, move |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 1);
            f.refine(true, 5, |t, o| {
                t == 0 && o.coords[0] + o.len() == (1 << 24) && o.coords[1] == 0
            });
            if partition_first {
                f.partition_uniform(ctx);
            }
            f.balance(
                ctx,
                Condition::full(2),
                BalanceVariant::New,
                ReversalScheme::Notify,
            );
            f.checksum(ctx)
        });
        sums.push(out.results[0]);
    }
    assert_eq!(sums[0], sums[1]);
}

#[test]
fn more_ranks_than_leaves() {
    // P far above the leaf count: most ranks are empty at every stage.
    let conn = Arc::new(BrickConnectivity::<2>::unit());
    for &variant in &[BalanceVariant::Old, BalanceVariant::New] {
        let conn_run = Arc::clone(&conn);
        let out = Cluster::run(11, move |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn_run), ctx, 1);
            f.refine(true, 4, |_, o| o.coords == [0, 0]);
            let input = f.gather(ctx);
            f.balance(ctx, Condition::full(2), variant, ReversalScheme::Notify);
            (input, f.gather(ctx))
        });
        let (input, got) = &out.results[0];
        let want = serial_forest_balance(&conn, input, Condition::full(2));
        assert_eq!(got.get(&0), want.get(&0), "{variant:?}");
    }
}

#[test]
fn balance_weaker_condition_after_stronger_is_noop() {
    // Corner balance implies face balance: re-balancing with k=1 after
    // k=2 must not change the forest.
    let conn = Arc::new(BrickConnectivity::<2>::unit());
    Cluster::run(3, |ctx| {
        let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 1);
        f.refine(true, 5, center_hugger_2d);
        f.balance(
            ctx,
            Condition::full(2),
            BalanceVariant::New,
            ReversalScheme::Notify,
        );
        let c = f.checksum(ctx);
        f.balance(
            ctx,
            Condition::FACE,
            BalanceVariant::New,
            ReversalScheme::Notify,
        );
        assert_eq!(f.checksum(ctx), c);
    });
}
