//! Property tests for the distributed forest: the parallel one-pass
//! balance must match the serial oracle for arbitrary refinements, rank
//! counts, variants, and reversal schemes.

use forestbal_comm::Cluster;
use forestbal_core::Condition;
use forestbal_forest::serial::is_forest_balanced;
use forestbal_forest::{
    serial_forest_balance, BalanceVariant, BrickConnectivity, Forest, ReversalScheme, TreeId,
};
use forestbal_octant::Octant;
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministic pseudo-random refinement predicate from a seed.
fn pseudo_refine(seed: u64, t: TreeId, o: &Octant<2>, denom: u64) -> bool {
    let mut h = seed ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &c in &o.coords {
        h ^= (c as u64).wrapping_mul(0xff51_afd7_ed55_8ccd);
        h = h.rotate_left(31);
    }
    h ^= o.level as u64;
    h = h.wrapping_mul(0x2545_f491_4f6c_dd1d);
    (h >> 33).is_multiple_of(denom)
}

/// Random octant from a seed word: a random descent from the root,
/// sometimes translated across a tree boundary afterwards (negative or
/// past-the-root coordinates), as the ripple and ghost senders produce.
fn pseudo_octant<const D: usize>(mut h: u64) -> Octant<D> {
    let mut step = move || {
        h ^= h << 13;
        h ^= h >> 7;
        h ^= h << 17;
        h
    };
    let mut o = Octant::<D>::root();
    for _ in 0..step() % 8 {
        o = o.child((step() % Octant::<D>::NUM_CHILDREN as u64) as usize);
    }
    if step().is_multiple_of(3) {
        let mut dir = [0i8; D];
        for d in dir.iter_mut() {
            *d = (step() % 3) as i8 - 1;
        }
        o = o.neighbor(&dir);
    }
    o
}

/// The batch key codec and the tree-run wire framing round-trip an
/// arbitrary `(tree, octant)` record stream: batch pack/unpack agrees
/// with the scalar codec, `RunEncoder` → `for_each_run` reproduces the
/// records grouped into runs at tree switches, and the byte budget is
/// exactly one key per octant plus 8 framing bytes per run.
fn wire_roundtrip<const D: usize>(seeds: &[u64]) -> Result<(), String> {
    use forestbal_forest::codec::{self, RunEncoder};
    use forestbal_octant::{key, pack_batch, unpack_batch};
    let recs: Vec<(TreeId, Octant<D>)> = seeds
        .iter()
        .map(|&h| (((h >> 48) % 5) as TreeId, pseudo_octant::<D>(h)))
        .collect();
    let octs: Vec<Octant<D>> = recs.iter().map(|r| r.1).collect();

    let mut keys = Vec::new();
    pack_batch(&octs, &mut keys);
    let scalar: Vec<u128> = octs.iter().map(key::pack).collect();
    prop_assert_eq!(&keys, &scalar, "batch pack diverged from scalar");
    let mut back = Vec::new();
    unpack_batch(&keys, &mut back);
    prop_assert_eq!(&back, &octs, "batch unpack is not the inverse");

    let mut buf = Vec::new();
    let mut enc = RunEncoder::new();
    for (&(t, _), &k) in recs.iter().zip(&keys) {
        enc.push::<D>(&mut buf, t, k);
    }
    enc.finish(&mut buf);
    let mut runs = 0usize;
    let mut decoded: Vec<(TreeId, u128)> = Vec::new();
    codec::for_each_run::<D>(&buf, |t, ks| {
        runs += 1;
        assert!(!ks.is_empty(), "empty run emitted");
        decoded.extend(ks.iter().map(|&k| (t, k)));
    });
    let want: Vec<(TreeId, u128)> = recs.iter().zip(&keys).map(|(&(t, _), &k)| (t, k)).collect();
    prop_assert_eq!(decoded, want);
    let switches =
        recs.windows(2).filter(|w| w[0].0 != w[1].0).count() + usize::from(!recs.is_empty());
    prop_assert_eq!(runs, switches, "runs must split exactly at tree switches");
    prop_assert_eq!(buf.len(), keys.len() * codec::key_size::<D>() + 8 * runs);
    Ok(())
}

proptest! {
    // Each case spawns clusters; keep the counts modest.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_matches_serial_oracle(
        seed in any::<u64>(),
        p in 1usize..7,
        k in 1u8..=2,
        denom in 3u64..6,
        variant_new in any::<bool>(),
        nx in 1usize..3,
        periodic in any::<bool>(),
    ) {
        let cond = Condition::new(k, 2).unwrap();
        let variant = if variant_new { BalanceVariant::New } else { BalanceVariant::Old };
        let conn = Arc::new(BrickConnectivity::<2>::new([nx, 1], [periodic && nx > 1, false]));
        let conn2 = Arc::clone(&conn);
        let out = Cluster::run(p, move |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn2), ctx, 1);
            f.refine(true, 5, |t, o| pseudo_refine(seed, t, o, denom));
            let input = f.gather(ctx);
            f.balance(ctx, cond, variant, ReversalScheme::Notify);
            (input, f.gather(ctx))
        });
        let (input, got) = &out.results[0];
        for (i2, g2) in &out.results {
            prop_assert_eq!(i2, input, "ranks disagree on input");
            prop_assert_eq!(g2, got, "ranks disagree on result");
        }
        let want = serial_forest_balance(&conn, input, cond);
        prop_assert!(is_forest_balanced(&conn, got, cond));
        for (t, v) in &want {
            prop_assert_eq!(
                got.get(t),
                Some(v),
                "seed={} p={} k={} variant={:?}", seed, p, k, variant
            );
        }
    }

    #[test]
    fn ripple_matches_one_pass_random(
        seed in any::<u64>(),
        p in 1usize..6,
        denom in 3u64..6,
    ) {
        let cond = Condition::full(2);
        let conn = Arc::new(BrickConnectivity::<2>::new([2, 1], [false, false]));
        let run = |ripple: bool| {
            let conn = Arc::clone(&conn);
            Cluster::run(p, move |ctx| {
                let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 1);
                f.refine(true, 5, |t, o| pseudo_refine(seed, t, o, denom));
                if ripple {
                    f.balance_ripple(ctx, cond);
                } else {
                    f.balance(ctx, cond, BalanceVariant::New, ReversalScheme::Notify);
                }
                f.checksum(ctx)
            })
            .results[0]
        };
        prop_assert_eq!(run(true), run(false), "seed={} p={}", seed, p);
    }

    #[test]
    fn wire_codec_roundtrip_random_2d(seeds in proptest::collection::vec(any::<u64>(), 0..200)) {
        wire_roundtrip::<2>(&seeds)?;
    }

    #[test]
    fn wire_codec_roundtrip_random_3d(seeds in proptest::collection::vec(any::<u64>(), 0..200)) {
        wire_roundtrip::<3>(&seeds)?;
    }

    #[test]
    fn partition_preserves_content_random(
        seed in any::<u64>(),
        p in 1usize..8,
        weight_pow in 0u32..3,
    ) {
        let conn = Arc::new(BrickConnectivity::<2>::new([2, 2], [false, false]));
        let conn2 = Arc::clone(&conn);
        let out = Cluster::run(p, move |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn2), ctx, 1);
            f.refine(true, 4, |t, o| pseudo_refine(seed, t, o, 4));
            let before = f.checksum(ctx);
            f.partition_weighted(ctx, |_, o| 1 + (o.level as u64).pow(weight_pow));
            let after = f.checksum(ctx);
            (before, after, f.num_local())
        });
        for (b, a, n) in &out.results {
            prop_assert_eq!(b, a, "content changed");
            if weight_pow == 0 {
                // Uniform weights: counts within 1 of each other.
                let total: usize = out.results.iter().map(|r| r.2).sum();
                prop_assert!(n.abs_diff(total / p) <= 1);
            }
        }
    }
}
