//! Determinism contract of the intra-rank pool, end to end: every
//! parallelized forest path must produce bit-identical results at every
//! pool width, and mixing the threaded `Cluster` runtime with multi-
//! worker pools (heavily oversubscribed on any host) must neither
//! deadlock nor change a single byte.

use forestbal_comm::Cluster;
use forestbal_core::Condition;
use forestbal_forest::{
    AdaptBatch, BalanceVariant, BrickConnectivity, Forest, ReversalScheme, TreeId,
};
use forestbal_octant::Octant;
use forestbal_par::Pool;
use std::collections::BTreeMap;
use std::sync::Arc;

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

/// Gathered forest plus checksum, the whole observable outcome.
type Outcome<const D: usize> = (BTreeMap<TreeId, Vec<Octant<D>>>, u64);

/// Run refine + balance + ghost layer on `p` ranks, each rank's work
/// dispatched through a pool of `threads` workers.
fn balance_outcome<const D: usize>(
    conn: &Arc<BrickConnectivity<D>>,
    p: usize,
    threads: usize,
    cond: Condition,
    refine: impl Fn(TreeId, &Octant<D>) -> bool + Sync,
) -> (Outcome<D>, Vec<usize>) {
    let conn = Arc::clone(conn);
    let refine = &refine;
    let out = Cluster::run(p, move |ctx| {
        // One pool *per rank thread*: `install` is thread-local, so each
        // simulated rank gets its own width-`threads` worker set.
        let pool = Arc::new(Pool::new(threads));
        pool.install(|| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 2);
            f.refine(true, 6, |t, o| refine(t, o));
            f.balance(ctx, cond, BalanceVariant::New, ReversalScheme::Notify);
            let ghosts = f.ghost_layer(ctx);
            ((f.gather(ctx), f.checksum(ctx)), ghosts.len())
        })
    });
    // Every rank gathers the same global forest; the ghost layer is
    // rank-local, so its sizes are compared per rank across widths.
    for (w, _) in &out.results {
        assert_eq!(w, &out.results[0].0, "ranks disagree on the forest");
    }
    let ghost_sizes = out.results.iter().map(|(_, g)| *g).collect();
    (out.results[0].0.clone(), ghost_sizes)
}

fn hugger_2d(_t: TreeId, o: &Octant<2>) -> bool {
    o.coords.iter().all(|&c| c < 80)
}

fn hugger_3d(t: TreeId, o: &Octant<3>) -> bool {
    t.is_multiple_of(2) && o.coords.iter().all(|&c| c < 80)
}

#[test]
fn balance_bit_identical_across_thread_counts_2d() {
    let conn = Arc::new(BrickConnectivity::<2>::new([3, 2], [false; 2]));
    let mut base: Option<(Outcome<2>, Vec<usize>)> = None;
    for threads in THREAD_COUNTS {
        let got = balance_outcome(&conn, 3, threads, Condition::full(2), hugger_2d);
        match &base {
            None => base = Some(got),
            Some(b) => assert_eq!(&got, b, "outcome changed at {threads} threads"),
        }
    }
}

#[test]
fn balance_bit_identical_across_thread_counts_3d() {
    let conn = Arc::new(BrickConnectivity::<3>::new([2, 2, 1], [false; 3]));
    let mut base: Option<(Outcome<3>, Vec<usize>)> = None;
    for threads in THREAD_COUNTS {
        let got = balance_outcome(&conn, 2, threads, Condition::full(3), hugger_3d);
        match &base {
            None => base = Some(got),
            Some(b) => assert_eq!(&got, b, "outcome changed at {threads} threads"),
        }
    }
}

#[test]
fn apply_edits_bit_identical_across_thread_counts() {
    // The per-tree edit-validation scans run one task per dirty tree;
    // the dirty set and the leaf arrays must not depend on pool width.
    let conn = Arc::new(BrickConnectivity::<2>::new([4, 1], [false; 2]));
    type EditsOutcome = (Outcome<2>, Vec<(TreeId, Vec<u128>)>, u64);
    let mut base: Option<EditsOutcome> = None;
    for threads in THREAD_COUNTS {
        let conn2 = Arc::clone(&conn);
        let out = Cluster::run(1, move |ctx| {
            let pool = Arc::new(Pool::new(threads));
            pool.install(|| {
                let mut f = Forest::new_uniform(Arc::clone(&conn2), ctx, 3);
                let mut batch = AdaptBatch::new();
                for (t, keys) in f.trees_packed() {
                    for (i, &k) in keys.iter().enumerate() {
                        if i % 3 == 0 {
                            batch.refine_key(t, k);
                        }
                    }
                }
                let dirty = f.apply_edits(&batch, 6);
                let per_tree: Vec<(TreeId, Vec<u128>)> =
                    dirty.iter().map(|(t, ks)| (t, ks.to_vec())).collect();
                (
                    (f.gather(ctx), f.checksum(ctx)),
                    per_tree,
                    dirty.refined + dirty.coarsened + dirty.skipped,
                )
            })
        });
        let got = out.results[0].clone();
        match &base {
            None => base = Some(got),
            Some(b) => assert_eq!(&got, b, "edits changed at {threads} threads"),
        }
    }
}

#[test]
fn oversubscribed_ranks_and_workers_run_to_completion() {
    // 4 rank threads x 8 pool workers each = 32 live threads regardless
    // of the host's core count. The dispatcher always participates in
    // its own batch, so no rank ever parks waiting for a worker that
    // cannot be scheduled — the run must terminate with the width-1
    // answer, checksums included.
    let conn = Arc::new(BrickConnectivity::<2>::new([2, 2], [true, false]));
    let serial = balance_outcome(&conn, 4, 1, Condition::full(2), hugger_2d);
    let wide = balance_outcome(&conn, 4, 8, Condition::full(2), hugger_2d);
    assert_eq!(serial, wide);
}
