//! Face iteration: visit every face of the mesh exactly once.
//!
//! The p4est `iterate` pattern: numerical kernels (flux assembly, DG face
//! integrals) need each mesh face visited once, with both adjacent leaves
//! in hand. On a distributed forest, "once" means once across the whole
//! cluster: interior same-size faces are emitted by the Morton-smaller
//! side, hanging sub-faces by their fine side, boundary faces by their
//! only side — rules every rank can evaluate locally given its ghost
//! layer.

use crate::connectivity::TreeId;
use crate::forest::Forest;
use crate::ghost::GhostLayer;
use crate::neighbors::FaceNeighbor;
use forestbal_octant::Octant;

/// One face visit. `axis`/`sign` describe the face of `leaf` (in tree
/// `tree`) being crossed; the neighbor side is in its own home tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaceVisit<const D: usize> {
    /// A face on the domain boundary.
    Boundary {
        /// Tree holding the leaf.
        tree: TreeId,
        /// The leaf whose face lies on the boundary.
        leaf: Octant<D>,
        /// Face axis.
        axis: usize,
        /// Face side along the axis (`-1` or `+1`).
        sign: i8,
    },
    /// An interior face between equal-size leaves.
    Same {
        /// Tree holding the reporting leaf.
        tree: TreeId,
        /// The reporting (Morton-smaller) leaf.
        leaf: Octant<D>,
        /// Face axis.
        axis: usize,
        /// Face side along the axis (`-1` or `+1`).
        sign: i8,
        /// Home tree of the neighbor.
        ntree: TreeId,
        /// The equal-size neighbor, in its home tree's frame.
        neighbor: Octant<D>,
    },
    /// A hanging sub-face: `leaf` is the fine side, `neighbor` the
    /// double-size coarse side.
    Hanging {
        /// Tree holding the fine leaf.
        tree: TreeId,
        /// The fine leaf owning this sub-face.
        leaf: Octant<D>,
        /// Face axis.
        axis: usize,
        /// Face side along the axis (`-1` or `+1`).
        sign: i8,
        /// Home tree of the coarse neighbor.
        ntree: TreeId,
        /// The coarse neighbor, in its home tree's frame.
        neighbor: Octant<D>,
    },
}

impl<const D: usize> Forest<D> {
    /// Visit every face incident to the local partition that this rank is
    /// responsible for (each face visited exactly once across the
    /// cluster). Requires a face-balanced forest and its ghost layer.
    pub fn for_each_face(&self, ghosts: &GhostLayer<D>, mut visit: impl FnMut(FaceVisit<D>)) {
        for (t, v) in self.trees() {
            for o in v.iter() {
                for axis in 0..D {
                    for sign in [-1i8, 1] {
                        match self.face_neighbor(ghosts, t, &o, axis, sign) {
                            FaceNeighbor::Boundary => visit(FaceVisit::Boundary {
                                tree: t,
                                leaf: o,
                                axis,
                                sign,
                            }),
                            FaceNeighbor::Same(t2, n) => {
                                // Emit from the globally smaller side so
                                // exactly one rank reports the face.
                                if (t, o) < (t2, n) {
                                    visit(FaceVisit::Same {
                                        tree: t,
                                        leaf: o,
                                        axis,
                                        sign,
                                        ntree: t2,
                                        neighbor: n,
                                    });
                                }
                            }
                            FaceNeighbor::Coarse(t2, n) => {
                                // The fine side owns the hanging sub-face.
                                visit(FaceVisit::Hanging {
                                    tree: t,
                                    leaf: o,
                                    axis,
                                    sign,
                                    ntree: t2,
                                    neighbor: n,
                                });
                            }
                            FaceNeighbor::Fine(..) => {
                                // Reported by the fine side as Hanging.
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{BalanceVariant, ReversalScheme};
    use crate::connectivity::BrickConnectivity;
    use forestbal_comm::{Cluster, Comm};
    use forestbal_core::Condition;
    use std::sync::Arc;

    /// Count face visits by kind across the cluster.
    fn global_counts(
        p: usize,
        conn: Arc<BrickConnectivity<2>>,
        level: u8,
        refine_origin: bool,
    ) -> (u64, u64, u64) {
        let out = Cluster::run(p, move |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, level);
            if refine_origin {
                f.refine(false, level + 1, |t, o| t == 0 && o.coords == [0, 0]);
                f.balance(
                    ctx,
                    Condition::FACE,
                    BalanceVariant::New,
                    ReversalScheme::Notify,
                );
            }
            let ghosts = f.ghost_layer(ctx);
            let (mut b, mut s, mut h) = (0u64, 0u64, 0u64);
            f.for_each_face(&ghosts, |v| match v {
                FaceVisit::Boundary { .. } => b += 1,
                FaceVisit::Same { .. } => s += 1,
                FaceVisit::Hanging { .. } => h += 1,
            });
            (
                ctx.allreduce_sum(b),
                ctx.allreduce_sum(s),
                ctx.allreduce_sum(h),
            )
        });
        out.results[0]
    }

    #[test]
    fn uniform_grid_face_counts() {
        // N x N uniform grid: boundary faces 4N, interior 2N(N-1).
        let conn = Arc::new(BrickConnectivity::<2>::unit());
        for p in [1usize, 3] {
            let (b, s, h) = global_counts(p, Arc::clone(&conn), 2, false);
            let n = 4u64;
            assert_eq!(b, 4 * n, "P={p}");
            assert_eq!(s, 2 * n * (n - 1), "P={p}");
            assert_eq!(h, 0, "P={p}");
        }
    }

    #[test]
    fn multitree_interior_faces_counted_once() {
        // Two trees side by side, level 1 each: the shared tree boundary
        // contributes interior (Same) faces, not Boundary ones.
        let conn = Arc::new(BrickConnectivity::<2>::new([2, 1], [false; 2]));
        let (b, s, h) = global_counts(2, conn, 1, false);
        // Grid is 4x2 cells: boundary = 2*4 + 2*2 = 12; interior =
        // 3*2 (vertical) + 4*1 (horizontal) = 10.
        assert_eq!(b, 12);
        assert_eq!(s, 10);
        assert_eq!(h, 0);
    }

    #[test]
    fn hanging_faces_from_refined_corner() {
        // Refine the origin cell once on a 2x2 grid (level 1 -> one cell
        // at level 2): its two interior edges become 2 hanging sub-faces
        // each.
        let conn = Arc::new(BrickConnectivity::<2>::unit());
        let (b, s, h) = global_counts(1, Arc::clone(&conn), 1, true);
        assert_eq!(h, 4, "two T-faces, two sub-faces each");
        // Boundary: coarse cells contribute 2 each (3 cells) = 6, fine
        // cells on the boundary contribute 2+1+1 = 4.
        assert_eq!(b, 10);
        // Interior same-size: between the 3 coarse cells: 2; between the
        // 4 fine cells: 4.
        assert_eq!(s, 6);
    }

    #[test]
    fn counts_are_partition_invariant() {
        let conn = Arc::new(BrickConnectivity::<2>::new([2, 2], [false; 2]));
        let mut all = vec![];
        for p in [1usize, 2, 5] {
            all.push(global_counts(p, Arc::clone(&conn), 2, true));
        }
        assert_eq!(all[0], all[1]);
        assert_eq!(all[0], all[2]);
    }
}
