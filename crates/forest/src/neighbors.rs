//! Face-neighbor queries on a balanced forest.
//!
//! After 2:1 (face) balance, the leaf across any face of a leaf is either
//! the same size, one level coarser, or a set of `2^(D-1)` half-size
//! leaves — the invariant numerical discretizations rely on (Figure 1:
//! "balance across faces ensures that T-intersections only occur once per
//! face"). This module classifies each face, resolving neighbors across
//! tree boundaries and, via the ghost layer, across partition boundaries.

use crate::connectivity::TreeId;
use crate::forest::Forest;
use crate::ghost::GhostLayer;
use forestbal_octant::Octant;

/// What lies across one face of a leaf.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaceNeighbor<const D: usize> {
    /// The face is on the forest boundary.
    Boundary,
    /// One leaf of equal size.
    Same(TreeId, Octant<D>),
    /// One leaf twice the size — this leaf's face is half of the
    /// neighbor's (a hanging face from the neighbor's perspective).
    Coarse(TreeId, Octant<D>),
    /// `2^(D-1)` leaves of half the size, in Morton order.
    Fine(TreeId, Vec<Octant<D>>),
}

impl<const D: usize> Forest<D> {
    /// Classify the neighbor across the face of `o` (a local leaf of
    /// `tree`) selected by `axis` and `sign`.
    ///
    /// Requires a face-balanced forest and the current ghost layer;
    /// panics (debug) or returns garbage otherwise. Neighbors are
    /// returned in their home tree's frame.
    pub fn face_neighbor(
        &self,
        ghosts: &GhostLayer<D>,
        tree: TreeId,
        o: &Octant<D>,
        axis: usize,
        sign: i8,
    ) -> FaceNeighbor<D> {
        debug_assert!(axis < D && (sign == 1 || sign == -1));
        let mut dir = [0i8; D];
        dir[axis] = sign;
        let n = o.neighbor(&dir);
        let Some((t2, n2)) = self.connectivity().transform(tree, &n) else {
            return FaceNeighbor::Boundary;
        };

        // Same-size leaf?
        if self.leaf_exists(ghosts, t2, &n2) {
            return FaceNeighbor::Same(t2, n2);
        }
        // Coarser leaf containing the same-size region?
        if o.level > 0 {
            let coarse = n2.ancestor(n2.level - 1);
            if self.leaf_exists(ghosts, t2, &coarse) {
                return FaceNeighbor::Coarse(t2, coarse);
            }
        }
        // Otherwise 2:1 face balance guarantees the 2^(D-1) children of
        // the region adjacent to the shared face are leaves. They face
        // back toward `o`: their child bit along `axis` opposes `sign`.
        let mut fine = Vec::with_capacity(1 << (D - 1));
        for i in 0..Octant::<D>::NUM_CHILDREN {
            let toward_o = ((i >> axis) & 1) == usize::from(sign < 0);
            if toward_o {
                let c = n2.child(i);
                debug_assert!(
                    self.leaf_exists(ghosts, t2, &c),
                    "face not 2:1 balanced at {c:?}"
                );
                fine.push(c);
            }
        }
        FaceNeighbor::Fine(t2, fine)
    }

    /// Is `q` a leaf, either locally or in the ghost layer? The local
    /// probe is an integer binary search on the packed key array.
    fn leaf_exists(&self, ghosts: &GhostLayer<D>, t: TreeId, q: &Octant<D>) -> bool {
        if let Some(v) = self.local.get(t) {
            if v.binary_search(&forestbal_octant::key::pack(q)).is_ok() {
                return true;
            }
        }
        ghosts.tree(t).binary_search_by_key(q, |&(_, g)| g).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{BalanceVariant, ReversalScheme};
    use crate::connectivity::BrickConnectivity;
    use forestbal_comm::{Cluster, Comm};
    use forestbal_core::Condition;
    use std::sync::Arc;

    #[test]
    fn uniform_forest_neighbors_are_same_or_boundary() {
        let conn = Arc::new(BrickConnectivity::<2>::unit());
        Cluster::run(2, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 2);
            let ghosts = f.ghost_layer(ctx);
            let leaves: Vec<_> = f
                .trees()
                .flat_map(|(t, v)| v.iter().map(move |o| (t, o)))
                .collect();
            for (t, o) in leaves {
                for axis in 0..2 {
                    for sign in [-1i8, 1] {
                        match f.face_neighbor(&ghosts, t, &o, axis, sign) {
                            FaceNeighbor::Same(_, n) => assert_eq!(n.level, o.level),
                            FaceNeighbor::Boundary => {
                                let c = o.coords[axis];
                                assert!(
                                    (sign < 0 && c == 0)
                                        || (sign > 0 && c + o.len() == forestbal_octant::ROOT_LEN)
                                );
                            }
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                }
            }
        });
    }

    #[test]
    fn adapted_forest_classification_is_consistent() {
        let conn = Arc::new(BrickConnectivity::<2>::new([2, 1], [false, false]));
        Cluster::run(3, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 2);
            f.refine(true, 4, |t, o| t == 0 && o.coords[0] + o.len() == (1 << 24));
            f.balance(
                ctx,
                Condition::FACE,
                BalanceVariant::New,
                ReversalScheme::Notify,
            );
            let ghosts = f.ghost_layer(ctx);
            let leaves: Vec<_> = f
                .trees()
                .flat_map(|(t, v)| v.iter().map(move |o| (t, o)))
                .collect();
            let mut fine_faces = 0;
            let mut coarse_faces = 0;
            for (t, o) in leaves {
                for axis in 0..2 {
                    for sign in [-1i8, 1] {
                        match f.face_neighbor(&ghosts, t, &o, axis, sign) {
                            FaceNeighbor::Same(_, n) => {
                                assert_eq!(n.level, o.level);
                            }
                            FaceNeighbor::Coarse(_, n) => {
                                assert_eq!(n.level + 1, o.level, "2:1 face");
                                coarse_faces += 1;
                            }
                            FaceNeighbor::Fine(_, ns) => {
                                assert_eq!(ns.len(), 2, "2^(D-1) half faces");
                                for n in &ns {
                                    assert_eq!(n.level, o.level + 1, "2:1 face");
                                }
                                fine_faces += 1;
                            }
                            FaceNeighbor::Boundary => {}
                        }
                    }
                }
            }
            // Globally, every Fine face on one side pairs with Coarse
            // faces on the other (2 Coarse half-faces per Fine face).
            let fine_total = ctx.allreduce_sum(fine_faces);
            let coarse_total = ctx.allreduce_sum(coarse_faces);
            assert_eq!(coarse_total, 2 * fine_total, "hanging-face pairing");
            assert!(fine_total > 0, "the refinement must create T-intersections");
        });
    }

    #[test]
    fn neighbors_across_tree_boundary() {
        let conn = Arc::new(BrickConnectivity::<2>::new([2, 1], [false, false]));
        Cluster::run(1, |ctx| {
            let f = Forest::new_uniform(Arc::clone(&conn), ctx, 1);
            let ghosts = GhostLayer::default();
            // Right edge of tree 0 sees tree 1.
            let o = Octant::<2>::root().child(1);
            match f.face_neighbor(&ghosts, 0, &o, 0, 1) {
                FaceNeighbor::Same(t, n) => {
                    assert_eq!(t, 1);
                    assert_eq!(n, Octant::<2>::root().child(0));
                }
                other => panic!("unexpected {other:?}"),
            }
            // Left edge of tree 0 is the forest boundary.
            let l = Octant::<2>::root().child(0);
            assert_eq!(
                f.face_neighbor(&ghosts, 0, &l, 0, -1),
                FaceNeighbor::Boundary
            );
        });
    }

    #[test]
    fn three_dimensional_fine_faces_have_four_members() {
        let conn = Arc::new(BrickConnectivity::<3>::unit());
        Cluster::run(1, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 1);
            f.refine(true, 2, |_, o| o.coords == [0, 0, 0]);
            f.balance(
                ctx,
                Condition::FACE,
                BalanceVariant::New,
                ReversalScheme::Notify,
            );
            let ghosts = f.ghost_layer(ctx);
            // The level-1 leaf right of the refined corner leaf sees 4
            // half-size faces.
            let o = Octant::<3>::root().child(1);
            match f.face_neighbor(&ghosts, 0, &o, 0, -1) {
                FaceNeighbor::Fine(_, ns) => assert_eq!(ns.len(), 4),
                other => panic!("unexpected {other:?}"),
            }
        });
    }
}
