//! A distributed forest of linear octrees with parallel 2:1 balance.
//!
//! This crate hosts the parallel side of the paper: a forest of octrees
//! connected through a brick [`connectivity`], stored as per-tree sorted
//! leaf arrays partitioned across the ranks of a simulated cluster
//! ([`forestbal_comm`]), with refinement, coarsening, space-filling-curve
//! [`partition`]ing, and the one-pass parallel 2:1 [`balance`] algorithm
//! of §II-B in both the *old* (raw response octants, full-partition
//! rebalance with auxiliary octants) and *new* (seed octants, per-query
//! reconstruction) variants.
//!
//! [`serial`] provides a single-address-space forest balance used as the
//! ground truth in tests.

#![warn(missing_docs)]

pub mod balance;
pub mod codec;
pub mod connectivity;
pub mod export;
pub mod forest;
pub mod ghost;
pub mod incremental;
pub mod iterate;
pub mod neighbors;
pub mod nodes;
pub mod partition;
pub mod ripple;
pub mod search;
pub mod serial;
pub mod store;

pub use balance::{BalanceReport, BalanceTimings, BalanceVariant, ReversalScheme};
pub use connectivity::{BrickConnectivity, TreeId};
pub use forest::{Forest, GlobalPos};
pub use ghost::GhostLayer;
pub use incremental::{AdaptBatch, DirtySet, IncrementalReport};
pub use iterate::FaceVisit;
pub use neighbors::FaceNeighbor;
pub use nodes::Nodes;
pub use ripple::RippleStats;
pub use serial::serial_forest_balance;
pub use store::{LeafSlice, LeafStore};
