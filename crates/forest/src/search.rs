//! Searching the distributed forest: leaf lookup by point or octant, and
//! owner-rank queries — the p4est `search` analogue, built on the Morton
//! order and the partition markers.

use crate::connectivity::TreeId;
use crate::forest::{Forest, GlobalPos};
use forestbal_octant::{key, Coord, Octant, PackedOctant, MAX_LEVEL, ROOT_LEN};

impl<const D: usize> Forest<D> {
    /// The local leaf of `tree` containing octant `q` (an ancestor of or
    /// equal to `q`), if this rank owns it. The search runs on the packed
    /// key array; only the hit is decoded (returned by value).
    pub fn find_leaf(&self, tree: TreeId, q: &Octant<D>) -> Option<Octant<D>> {
        let v = self.local.get(tree)?;
        let qk = key::pack(q);
        let i = v.partition_point(|&k| k <= qk);
        (i > 0 && PackedOctant::<D>(v[i - 1]).contains(PackedOctant(qk)))
            .then(|| key::unpack(v[i - 1]))
    }

    /// The local leaf containing the integer point `p` of `tree`
    /// (coordinates in `[0, ROOT_LEN)`), if this rank owns it.
    pub fn find_leaf_at_point(&self, tree: TreeId, p: [Coord; D]) -> Option<Octant<D>> {
        debug_assert!(p.iter().all(|&c| (0..ROOT_LEN).contains(&c)));
        let cell = Octant::<D> {
            coords: p,
            level: MAX_LEVEL,
        };
        self.find_leaf(tree, &cell)
    }

    /// The rank owning the unit cell at global position `pos`.
    pub fn owner_of(&self, pos: GlobalPos) -> usize {
        debug_assert!(!self.markers.is_empty(), "markers not computed yet");
        let i = self.markers.partition_point(|m| *m <= pos);
        i.saturating_sub(1).min(self.size() - 1)
    }

    /// The rank owning octant `q` of `tree` — more precisely, the rank
    /// owning `q`'s first unit cell (a leaf is owned by exactly one rank;
    /// for a coarser-than-leaf `q` this is the first overlapping owner).
    pub fn owner_of_octant(&self, tree: TreeId, q: &Octant<D>) -> usize {
        self.owner_of(GlobalPos {
            tree,
            index: q.index(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::BrickConnectivity;
    use forestbal_comm::{Cluster, Comm};
    use std::sync::Arc;

    #[test]
    fn find_leaf_by_point() {
        let conn = Arc::new(BrickConnectivity::<2>::unit());
        Cluster::run(1, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 1);
            f.refine(true, 3, |_, o| o.coords == [0, 0]);
            // The origin is covered by the deepest leaf.
            let leaf = f.find_leaf_at_point(0, [0, 0]).unwrap();
            assert_eq!(leaf.level, 3);
            // A far point is covered by a level-1 leaf.
            let far = f
                .find_leaf_at_point(0, [ROOT_LEN - 1, ROOT_LEN - 1])
                .unwrap();
            assert_eq!(far.level, 1);
        });
    }

    #[test]
    fn find_leaf_remote_returns_none() {
        let conn = Arc::new(BrickConnectivity::<2>::unit());
        Cluster::run(4, |ctx| {
            let f = Forest::new_uniform(Arc::clone(&conn), ctx, 3);
            // Exactly one rank finds each point; the others get None and
            // agree on the owner.
            let p = [123 << 10, 45 << 12];
            let found = f.find_leaf_at_point(0, p).is_some();
            let cell = Octant::<2> {
                coords: p,
                level: forestbal_octant::MAX_LEVEL,
            };
            let owner = f.owner_of_octant(0, &cell.ancestor(forestbal_octant::MAX_LEVEL));
            assert_eq!(found, owner == ctx.rank());
            let all = ctx.allgather(vec![found as u8]);
            let owners: usize = all.iter().map(|b| b[0] as usize).sum();
            assert_eq!(owners, 1, "exactly one rank owns the point");
        });
    }

    #[test]
    fn owner_matches_markers_everywhere() {
        let conn = Arc::new(BrickConnectivity::<2>::new([2, 1], [false, false]));
        Cluster::run(3, |ctx| {
            let f = Forest::new_uniform(Arc::clone(&conn), ctx, 2);
            let g = f.gather(ctx);
            for (&t, v) in &g {
                for o in v {
                    let owner = f.owner_of_octant(t, o);
                    let local = f.find_leaf(t, o).is_some();
                    assert_eq!(local, owner == ctx.rank(), "{t} {o:?}");
                }
            }
        });
    }
}
