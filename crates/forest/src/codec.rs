//! Wire encoding of octants and query/response payloads.
//!
//! Fixed-size little-endian records keep the byte counters meaningful:
//! an octant is `4*D + 1` bytes, exactly the information content the
//! paper's implementation ships per quadrant.

use crate::connectivity::TreeId;
use forestbal_octant::{Coord, Octant};

/// Bytes per encoded octant.
pub const fn octant_size<const D: usize>() -> usize {
    4 * D + 1
}

/// Append an octant to `buf`.
pub fn put_octant<const D: usize>(buf: &mut Vec<u8>, o: &Octant<D>) {
    for c in &o.coords {
        buf.extend_from_slice(&c.to_le_bytes());
    }
    buf.push(o.level);
}

/// Read an octant at `pos`, advancing it.
pub fn get_octant<const D: usize>(buf: &[u8], pos: &mut usize) -> Octant<D> {
    let mut coords = [0 as Coord; D];
    for c in coords.iter_mut() {
        *c = Coord::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap());
        *pos += 4;
    }
    let level = buf[*pos];
    *pos += 1;
    Octant { coords, level }
}

/// Append a `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Read a `u32` at `pos`, advancing it.
pub fn get_u32(buf: &[u8], pos: &mut usize) -> u32 {
    let v = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap());
    *pos += 4;
    v
}

/// Append a `(tree, octant)` pair.
pub fn put_tree_octant<const D: usize>(buf: &mut Vec<u8>, t: TreeId, o: &Octant<D>) {
    put_u32(buf, t);
    put_octant(buf, o);
}

/// Read a `(tree, octant)` pair at `pos`, advancing it.
pub fn get_tree_octant<const D: usize>(buf: &[u8], pos: &mut usize) -> (TreeId, Octant<D>) {
    let t = get_u32(buf, pos);
    let o = get_octant(buf, pos);
    (t, o)
}

use crate::forest::Forest;

impl<const D: usize> Forest<D> {
    /// Serialize this rank's leaves (tree ids + octants) to bytes — the
    /// per-rank payload of a p4est-style save. The connectivity and rank
    /// layout are not included; pair with the same connectivity and any
    /// partition on load.
    pub fn serialize_local(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.num_local() * (4 + octant_size::<D>()));
        for (t, v) in self.trees() {
            for o in v {
                put_tree_octant(&mut buf, t, o);
            }
        }
        buf
    }

    /// Rebuild a per-tree leaf map from bytes produced by
    /// [`Forest::serialize_local`] (possibly concatenated across ranks).
    pub fn deserialize_leaves(
        data: &[u8],
    ) -> std::collections::BTreeMap<crate::connectivity::TreeId, Vec<forestbal_octant::Octant<D>>>
    {
        let mut map: std::collections::BTreeMap<_, Vec<_>> = Default::default();
        let mut pos = 0;
        while pos < data.len() {
            let (t, o) = get_tree_octant::<D>(data, &mut pos);
            map.entry(t).or_default().push(o);
        }
        let mut sort = forestbal_octant::SortScratch::new();
        for v in map.values_mut() {
            forestbal_octant::sort_octants_with(v, &mut sort);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forest_serialization_roundtrip() {
        use crate::connectivity::BrickConnectivity;
        use forestbal_comm::{Cluster, Comm};
        use std::sync::Arc;
        let conn = Arc::new(BrickConnectivity::<2>::new([2, 1], [false; 2]));
        Cluster::run(3, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 2);
            f.refine(true, 4, |t, o| t == 0 && o.coords[0] == 0);
            let bytes = f.serialize_local();
            let back = Forest::<2>::deserialize_leaves(&bytes);
            for (t, v) in f.trees() {
                assert_eq!(back[&t], v);
            }
            // Concatenation across ranks reproduces the gathered forest.
            let all = ctx.allgather(bytes);
            let mut concat = Vec::new();
            for part in all.iter() {
                concat.extend_from_slice(part);
            }
            let global = Forest::<2>::deserialize_leaves(&concat);
            assert_eq!(global, f.gather(ctx));
        });
    }

    #[test]
    fn octant_roundtrip() {
        let o = Octant::<3>::root().child(5).child(2);
        let mut buf = Vec::new();
        put_octant(&mut buf, &o);
        assert_eq!(buf.len(), octant_size::<3>());
        let mut pos = 0;
        assert_eq!(get_octant::<3>(&buf, &mut pos), o);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn negative_coords_roundtrip() {
        let o = Octant::<2>::root().child(0).neighbor(&[-1, -1]);
        let mut buf = Vec::new();
        put_octant(&mut buf, &o);
        let mut pos = 0;
        assert_eq!(get_octant::<2>(&buf, &mut pos), o);
    }

    #[test]
    fn mixed_stream() {
        let o1 = Octant::<2>::root().child(1);
        let o2 = Octant::<2>::root().child(2).child(3);
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_tree_octant(&mut buf, 3, &o1);
        put_tree_octant(&mut buf, 9, &o2);
        let mut pos = 0;
        assert_eq!(get_u32(&buf, &mut pos), 7);
        assert_eq!(get_tree_octant::<2>(&buf, &mut pos), (3, o1));
        assert_eq!(get_tree_octant::<2>(&buf, &mut pos), (9, o2));
        assert_eq!(pos, buf.len());
    }
}
