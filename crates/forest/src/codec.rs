//! Wire encoding v2: packed-key records that encode and decode as a
//! bounds-checked `memcpy`.
//!
//! Every octant-bearing message ships the octant as its packed Morton key
//! (see `forestbal_octant::key`) in fixed-width little-endian form:
//! **8 bytes in 2D** (59-bit key) and **16 bytes in 3D** (86-bit key),
//! versus the `4*D + 1 = 9/13` bytes of the v1 field-by-field codec — and,
//! unlike v1, with no per-field shifting on either end: the bytes on the
//! wire *are* the storage representation of the SoA forest
//! (`crate::store`), so batch encode/decode degenerates to a copy.
//!
//! Octant streams are framed as *tree runs* — `(u32 tree, u32 count,
//! count × key)` — so the 4-byte tree id of v1's per-record `(tree,
//! octant)` framing is paid once per run instead of once per octant.
//! Producers emit runs with [`RunEncoder`]; a producer whose tree sequence
//! is not monotone (the ripple boundary exchange translates octants into
//! neighbor trees mid-stream) simply starts a new run, which is always
//! correct, merely less compact.
//!
//! Bytes per octant on the wire is published as [`key_size`] and surfaces
//! in the kernel BENCH JSON (`wire_bytes_2d`/`wire_bytes_3d`) so
//! message-volume changes stay visible in the perf trajectory.

use crate::connectivity::TreeId;
use forestbal_octant::Octant;

/// Bytes per octant on the wire: one packed key, 8 bytes for `D <= 2`
/// (59-bit keys) and 16 bytes for larger `D` (86-bit keys in 3D).
pub const fn key_size<const D: usize>() -> usize {
    if D <= 2 {
        8
    } else {
        16
    }
}

/// Append one packed key in little-endian fixed width.
#[inline]
pub fn put_key<const D: usize>(buf: &mut Vec<u8>, k: u128) {
    if D <= 2 {
        buf.extend_from_slice(&(k as u64).to_le_bytes());
    } else {
        buf.extend_from_slice(&k.to_le_bytes());
    }
}

/// Read one packed key at `pos`, advancing it.
#[inline]
pub fn get_key<const D: usize>(buf: &[u8], pos: &mut usize) -> u128 {
    let k = if D <= 2 {
        u64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap()) as u128
    } else {
        u128::from_le_bytes(buf[*pos..*pos + 16].try_into().unwrap())
    };
    *pos += key_size::<D>();
    k
}

/// Batches at and above this many keys en/decode across the
/// `forestbal-par` pool; byte `i*key_size..` is a pure function of key `i`,
/// so chunked copies reproduce the serial bytes exactly.
const PAR_KEYS_MIN: usize = 1 << 15;

/// Minimum keys per parallel codec chunk.
const PAR_KEYS_CHUNK: usize = 1 << 14;

/// Slice core of [`put_keys`]: encode `keys[i]` at `dst[i*key_size..]`.
#[inline]
fn write_keys<const D: usize>(keys: &[u128], dst: &mut [u8]) {
    let ks = key_size::<D>();
    debug_assert_eq!(dst.len(), keys.len() * ks);
    for (rec, &k) in dst.chunks_exact_mut(ks).zip(keys) {
        if D <= 2 {
            rec.copy_from_slice(&(k as u64).to_le_bytes());
        } else {
            rec.copy_from_slice(&k.to_le_bytes());
        }
    }
}

/// Slice core of [`get_keys`]: decode `src[i*key_size..]` into `dst[i]`.
#[inline]
fn read_keys<const D: usize>(src: &[u8], dst: &mut [u128]) {
    let ks = key_size::<D>();
    debug_assert_eq!(src.len(), dst.len() * ks);
    for (rec, slot) in src.chunks_exact(ks).zip(dst) {
        *slot = if D <= 2 {
            u64::from_le_bytes(rec.try_into().unwrap()) as u128
        } else {
            u128::from_le_bytes(rec.try_into().unwrap())
        };
    }
}

/// Append a batch of packed keys — the memcpy half of the wire format.
/// Chunks across the `forestbal-par` pool at `PAR_KEYS_MIN` keys.
pub fn put_keys<const D: usize>(buf: &mut Vec<u8>, keys: &[u128]) {
    let ks = key_size::<D>();
    let base = buf.len();
    if keys.len() >= PAR_KEYS_MIN {
        let pool = forestbal_par::current();
        if pool.threads() > 1 {
            buf.resize(base + keys.len() * ks, 0);
            let out = forestbal_par::DisjointSlice::new(&mut buf[base..]);
            let ranges = pool.chunk_ranges(keys.len(), PAR_KEYS_CHUNK);
            pool.run(ranges.len(), |c, _| {
                let r = ranges[c].clone();
                // SAFETY: byte ranges of non-overlapping key ranges are
                // non-overlapping; each task index runs exactly once.
                let dst = unsafe { out.range_mut(r.start * ks..r.end * ks) };
                write_keys::<D>(&keys[r], dst);
            });
            return;
        }
    }
    buf.resize(base + keys.len() * ks, 0);
    write_keys::<D>(keys, &mut buf[base..]);
}

/// Read `count` packed keys at `pos` into `out`, advancing `pos`. The
/// decode half of the memcpy wire format, with the same pool dispatch as
/// [`put_keys`].
pub fn get_keys<const D: usize>(buf: &[u8], pos: &mut usize, count: usize, out: &mut Vec<u128>) {
    let ks = key_size::<D>();
    let src = &buf[*pos..*pos + count * ks];
    let base = out.len();
    out.resize(base + count, 0);
    let dst = &mut out[base..];
    *pos += count * ks;
    if count >= PAR_KEYS_MIN {
        let pool = forestbal_par::current();
        if pool.threads() > 1 {
            let shared = forestbal_par::DisjointSlice::new(dst);
            let ranges = pool.chunk_ranges(count, PAR_KEYS_CHUNK);
            pool.run(ranges.len(), |c, _| {
                let r = ranges[c].clone();
                // SAFETY: non-overlapping key ranges; one task per index.
                read_keys::<D>(&src[r.start * ks..r.end * ks], unsafe {
                    shared.range_mut(r)
                });
            });
            return;
        }
    }
    read_keys::<D>(src, dst);
}

/// Append a `u32`.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Read a `u32` at `pos`, advancing it.
pub fn get_u32(buf: &[u8], pos: &mut usize) -> u32 {
    let v = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap());
    *pos += 4;
    v
}

/// Streaming encoder of tree runs `(u32 tree, u32 count, count × key)`.
///
/// Push `(tree, key)` pairs in any order; consecutive pushes for the same
/// tree extend the open run, a tree switch closes it and opens a new one.
/// [`RunEncoder::finish`] must be called before the buffer is shipped (it
/// back-patches the open run's count).
#[derive(Default)]
pub struct RunEncoder {
    tree: TreeId,
    count_pos: Option<usize>,
    count: u32,
}

impl RunEncoder {
    /// New encoder with no open run.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one `(tree, key)` record to `buf`.
    #[inline]
    pub fn push<const D: usize>(&mut self, buf: &mut Vec<u8>, tree: TreeId, k: u128) {
        if self.count_pos.is_none() || tree != self.tree {
            self.finish(buf);
            put_u32(buf, tree);
            self.count_pos = Some(buf.len());
            put_u32(buf, 0);
            self.tree = tree;
        }
        self.count += 1;
        put_key::<D>(buf, k);
    }

    /// Append a whole key batch for one tree as a single run.
    pub fn push_run<const D: usize>(&mut self, buf: &mut Vec<u8>, tree: TreeId, keys: &[u128]) {
        if keys.is_empty() {
            return;
        }
        self.finish(buf);
        put_u32(buf, tree);
        put_u32(buf, keys.len() as u32);
        put_keys::<D>(buf, keys);
    }

    /// Close the open run (if any), back-patching its count. Idempotent.
    /// Only rewrites bytes already written by `push`, so a slice suffices.
    pub fn finish(&mut self, buf: &mut [u8]) {
        if let Some(p) = self.count_pos.take() {
            buf[p..p + 4].copy_from_slice(&self.count.to_le_bytes());
            self.count = 0;
        }
    }
}

/// Decode a buffer of tree runs, invoking `f` once per run with the
/// decoded key batch. Keys within a run are in producer order.
pub fn for_each_run<const D: usize>(buf: &[u8], mut f: impl FnMut(TreeId, &[u128])) {
    let mut pos = 0;
    let mut keys: Vec<u128> = Vec::new();
    while pos < buf.len() {
        let t = get_u32(buf, &mut pos);
        let n = get_u32(buf, &mut pos) as usize;
        keys.clear();
        get_keys::<D>(buf, &mut pos, n, &mut keys);
        f(t, &keys);
    }
    debug_assert_eq!(pos, buf.len());
}

use crate::forest::Forest;

impl<const D: usize> Forest<D> {
    /// Serialize this rank's leaves to bytes — one tree run per local
    /// tree, copied straight out of the SoA storage. The connectivity and
    /// rank layout are not included; pair with the same connectivity and
    /// any partition on load.
    pub fn serialize_local(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.num_local() * key_size::<D>() + 8 * 4);
        let mut enc = RunEncoder::new();
        for (t, keys) in self.trees_packed() {
            enc.push_run::<D>(&mut buf, t, keys);
        }
        enc.finish(&mut buf);
        buf
    }

    /// Rebuild a per-tree leaf map from bytes produced by
    /// [`Forest::serialize_local`] (possibly concatenated across ranks).
    pub fn deserialize_leaves(
        data: &[u8],
    ) -> std::collections::BTreeMap<crate::connectivity::TreeId, Vec<forestbal_octant::Octant<D>>>
    {
        let mut keyed: std::collections::BTreeMap<TreeId, Vec<u128>> = Default::default();
        for_each_run::<D>(data, |t, keys| {
            keyed.entry(t).or_default().extend_from_slice(keys)
        });
        let mut sort = forestbal_octant::SortScratch::new();
        let mut map: std::collections::BTreeMap<_, Vec<Octant<D>>> = Default::default();
        for (t, mut keys) in keyed {
            forestbal_octant::sort_keys_with::<D>(&mut keys, &mut sort);
            let mut v = Vec::with_capacity(keys.len());
            forestbal_octant::unpack_batch(&keys, &mut v);
            map.insert(t, v);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forestbal_octant::key;

    #[test]
    fn forest_serialization_roundtrip() {
        use crate::connectivity::BrickConnectivity;
        use forestbal_comm::{Cluster, Comm};
        use std::sync::Arc;
        let conn = Arc::new(BrickConnectivity::<2>::new([2, 1], [false; 2]));
        Cluster::run(3, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 2);
            f.refine(true, 4, |t, o| t == 0 && o.coords[0] == 0);
            let bytes = f.serialize_local();
            // Run framing: 8 bytes per octant + 8 bytes per tree run.
            let runs = f.trees().count();
            assert_eq!(bytes.len(), f.num_local() * key_size::<2>() + 8 * runs);
            let back = Forest::<2>::deserialize_leaves(&bytes);
            for (t, v) in f.trees() {
                assert_eq!(back[&t], v.iter().collect::<Vec<_>>());
            }
            // Concatenation across ranks reproduces the gathered forest.
            let all = ctx.allgather(bytes);
            let mut concat = Vec::new();
            for part in all.iter() {
                concat.extend_from_slice(part);
            }
            let global = Forest::<2>::deserialize_leaves(&concat);
            assert_eq!(global, f.gather(ctx));
        });
    }

    #[test]
    fn bulk_key_codec_bit_identical_across_thread_counts() {
        // Above `PAR_KEYS_MIN` the bulk codec chunks across the pool;
        // the wire bytes and the decoded keys must not depend on the
        // pool width (including reused output buffers in steady state).
        use forestbal_par::Pool;
        use std::sync::Arc;
        let n = PAR_KEYS_MIN + 1234;
        let r = Octant::<3>::root();
        let keys: Vec<u128> = (0..n)
            .map(|i| key::pack(&r.child(i % 8).child((i / 8) % 8)))
            .collect();

        let serial = Arc::new(Pool::new(1));
        let (base_buf, base_out) = serial.install(|| {
            let mut buf = Vec::new();
            put_keys::<3>(&mut buf, &keys);
            let mut out = Vec::new();
            let mut pos = 0;
            get_keys::<3>(&buf, &mut pos, n, &mut out);
            assert_eq!(pos, buf.len());
            (buf, out)
        });
        assert_eq!(base_out, keys);

        for threads in [2, 3, 8] {
            let pool = Arc::new(Pool::new(threads));
            pool.install(|| {
                let mut buf = Vec::new();
                let mut out = Vec::new();
                for _ in 0..2 {
                    buf.clear();
                    put_keys::<3>(&mut buf, &keys);
                    assert_eq!(buf, base_buf, "{threads} threads: bytes diverged");
                    out.clear();
                    let mut pos = 0;
                    get_keys::<3>(&buf, &mut pos, n, &mut out);
                    assert_eq!(out, base_out, "{threads} threads: keys diverged");
                }
            });
        }
    }

    #[test]
    fn key_record_widths() {
        let o2 = Octant::<2>::root().child(1).child(2);
        let mut buf = Vec::new();
        put_key::<2>(&mut buf, key::pack(&o2));
        assert_eq!(buf.len(), key_size::<2>());
        assert_eq!(buf.len(), 8);
        let mut pos = 0;
        assert_eq!(get_key::<2>(&buf, &mut pos), key::pack(&o2));

        let o3 = Octant::<3>::root().child(5).child(2);
        let mut buf = Vec::new();
        put_key::<3>(&mut buf, key::pack(&o3));
        assert_eq!(buf.len(), key_size::<3>());
        assert_eq!(buf.len(), 16);
        let mut pos = 0;
        assert_eq!(get_key::<3>(&buf, &mut pos), key::pack(&o3));
    }

    #[test]
    fn negative_coords_roundtrip() {
        let o = Octant::<2>::root().child(0).neighbor(&[-1, -1]);
        let mut buf = Vec::new();
        put_key::<2>(&mut buf, key::pack(&o));
        let mut pos = 0;
        assert_eq!(key::unpack::<2>(get_key::<2>(&buf, &mut pos)), o);
    }

    #[test]
    fn run_encoder_merges_and_splits() {
        let r = Octant::<2>::root();
        let ks: Vec<u128> = (0..4).map(|i| key::pack(&r.child(i))).collect();
        let mut buf = Vec::new();
        let mut enc = RunEncoder::new();
        // Non-monotone tree sequence: 3, 3, 9, 3 — three runs.
        enc.push::<2>(&mut buf, 3, ks[0]);
        enc.push::<2>(&mut buf, 3, ks[1]);
        enc.push::<2>(&mut buf, 9, ks[2]);
        enc.push::<2>(&mut buf, 3, ks[3]);
        enc.finish(&mut buf);
        enc.finish(&mut buf); // idempotent
        assert_eq!(buf.len(), 3 * 8 + 4 * key_size::<2>());
        let mut seen = Vec::new();
        for_each_run::<2>(&buf, |t, keys| seen.push((t, keys.to_vec())));
        assert_eq!(
            seen,
            vec![(3, vec![ks[0], ks[1]]), (9, vec![ks[2]]), (3, vec![ks[3]]),]
        );
    }

    #[test]
    fn batch_put_get_roundtrip_3d() {
        let r = Octant::<3>::root();
        let keys: Vec<u128> = (0..8)
            .map(|i| key::pack(&r.child(i).child(7 - i)))
            .collect();
        let mut buf = Vec::new();
        put_u32(&mut buf, 42);
        put_keys::<3>(&mut buf, &keys);
        let mut pos = 0;
        assert_eq!(get_u32(&buf, &mut pos), 42);
        let mut out = Vec::new();
        get_keys::<3>(&buf, &mut pos, keys.len(), &mut out);
        assert_eq!(out, keys);
        assert_eq!(pos, buf.len());
    }
}
