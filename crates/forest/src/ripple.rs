//! The multi-round parallel *ripple* baseline (§II-B).
//!
//! "An algorithm that only compares neighbors when determining which
//! octants to split is called a ripple algorithm ... Parallel ripple
//! algorithms only use communication between processes with neighboring
//! partitions, so they generally require multiple rounds of communication
//! when an octant ultimately causes another octant on a remote process's
//! partition to split."
//!
//! Each round: (a) reach a local 2:1 fixed point; (b) send boundary
//! leaves to the ranks owning their insulation layers; (c) split local
//! leaves violating 2:1 against received ghosts; repeat until no rank
//! changed anything. The one-pass algorithm of [`crate::balance`] does
//! the same job with a single query/response round; this baseline exists
//! for the ablation benchmarks and as an independent cross-check.
//!
//! The split fixed points run natively on packed keys: the worklists are
//! `BTreeSet<u128>`/`VecDeque<u128>` and all neighbor/containment tests
//! are [`PackedOctant`] bit arithmetic — no struct octants are
//! materialized except the per-leaf decode in the boundary scan.

use crate::codec::{self, RunEncoder};
use crate::connectivity::TreeId;
use crate::forest::Forest;
use forestbal_comm::{reverse_notify, Comm};
use forestbal_core::Condition;
use forestbal_octant::{codim, directions, is_linear_keys, key, Octant, PackedOctant};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

const RIPPLE_TAG: u32 = 0xBA1A_0010;

/// Outcome counters of a ripple balance run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RippleStats {
    /// Communication rounds until global convergence (≥ 1).
    pub rounds: u32,
    /// Total leaves split on this rank.
    pub splits: u64,
}

impl<const D: usize> Forest<D> {
    /// Balance by neighbor-only ripple propagation with multiple
    /// communication rounds. Produces exactly the same forest as
    /// [`Forest::balance`], at a different (usually worse) cost.
    pub fn balance_ripple(&mut self, ctx: &impl Comm, cond: Condition) -> RippleStats {
        forestbal_trace::span_begin("ripple", || ctx.now_ns());
        self.update_markers(ctx);
        let mut stats = RippleStats::default();
        loop {
            stats.rounds += 1;
            forestbal_trace::span_begin("ripple.round", || ctx.now_ns());
            let mut changed = self.local_ripple_fixed_point(cond, &mut stats);

            // Exchange boundary leaves with every rank owning part of a
            // local leaf's insulation layer. Translated leaves go out as
            // packed keys in tree runs; the tree sequence is not monotone
            // here, so runs may be short — still correct (see codec docs).
            let mut out: BTreeMap<usize, (Vec<u8>, RunEncoder)> = BTreeMap::new();
            let me = ctx.rank();
            for (t, keys) in self.local.iter() {
                if keys.is_empty() {
                    continue;
                }
                let range_lo = PackedOctant::<D>(keys[0]).index();
                let range_hi = PackedOctant::<D>(keys[keys.len() - 1]).last_index();
                for &k in keys {
                    let r = key::unpack::<D>(k);
                    // Fast interior rejection (see `balance.rs`): a leaf
                    // whose insulation box stays within the local range
                    // exchanges nothing.
                    let len = r.len();
                    let ins_min: [_; D] = std::array::from_fn(|i| r.coords[i] - len);
                    let interior = ins_min.iter().all(|&c| c >= 0)
                        && (0..D).all(|i| r.coords[i] + 2 * len <= forestbal_octant::ROOT_LEN)
                        && {
                            let lo = forestbal_octant::morton::interleave::<D>(&ins_min);
                            let max: [_; D] = std::array::from_fn(|i| r.coords[i] + 2 * len - 1);
                            let hi = forestbal_octant::morton::interleave::<D>(&max);
                            lo >= range_lo && hi <= range_hi
                        };
                    if interior {
                        continue;
                    }
                    for dir in directions::<D>() {
                        let n = r.neighbor(&dir);
                        let Some((t2, n2)) = self.connectivity().transform(t, &n) else {
                            continue;
                        };
                        let off: [_; D] = std::array::from_fn(|i| n2.coords[i] - n.coords[i]);
                        for owner in self.owners_of_range(t2, n2.index(), n2.last_index()) {
                            if owner == me && t2 == t && off == [0; D] {
                                continue;
                            }
                            let (buf, enc) = out.entry(owner).or_default();
                            enc.push::<D>(
                                buf,
                                t2,
                                key::pack(&crate::connectivity::translate(&r, &off)),
                            );
                        }
                    }
                }
            }

            let receivers: Vec<usize> = out.keys().copied().filter(|&d| d != me).collect();
            let senders: Vec<usize> = reverse_notify(ctx, &receivers)
                .into_iter()
                .filter(|&s| s != me)
                .collect();
            for (&d, (buf, enc)) in out.iter_mut() {
                enc.finish(buf);
                if d != me {
                    ctx.send(d, RIPPLE_TAG, buf.clone());
                }
            }
            let mut ghosts: BTreeMap<TreeId, Vec<u128>> = BTreeMap::new();
            let absorb = |data: &[u8], ghosts: &mut BTreeMap<TreeId, Vec<u128>>| {
                codec::for_each_run::<D>(data, |t, keys| {
                    ghosts.entry(t).or_default().extend_from_slice(keys)
                });
            };
            for &s in &senders {
                let (_, data) = ctx.recv(Some(s), RIPPLE_TAG);
                absorb(&data, &mut ghosts);
            }
            if let Some((buf, _)) = out.get(&me) {
                absorb(buf, &mut ghosts);
            }

            changed |= self.split_against_ghosts(&ghosts, cond, &mut stats);

            // Global convergence vote.
            let done = !ctx.allreduce_or(changed);
            forestbal_trace::span_end(|| ctx.now_ns());
            if done {
                forestbal_trace::counter_add("ripple.rounds", stats.rounds as u64);
                forestbal_trace::counter_add("ripple.splits", stats.splits);
                forestbal_trace::span_end(|| ctx.now_ns());
                return stats;
            }
        }
    }

    /// Split local leaves until every pair of *local* neighbors satisfies
    /// 2:1. Returns whether anything changed.
    fn local_ripple_fixed_point(&mut self, cond: Condition, stats: &mut RippleStats) -> bool {
        let mut changed = false;
        for (_, v) in self.local.iter_mut() {
            if v.is_empty() {
                continue;
            }
            let lo = PackedOctant::<D>(v[0]).index();
            let hi = PackedOctant::<D>(v[v.len() - 1]).last_index();
            let mut set: BTreeSet<u128> = v.iter().copied().collect();
            let mut work: VecDeque<u128> = v.iter().copied().collect();
            let mut tree_changed = false;
            while let Some(k) = work.pop_front() {
                if !set.contains(&k) {
                    continue;
                }
                let o = PackedOctant::<D>(k);
                for dir in directions::<D>() {
                    if !cond.constrains(codim(&dir)) {
                        continue;
                    }
                    let n = o.neighbor(&dir);
                    if !n.is_inside_root() || n.index() < lo || n.last_index() > hi {
                        continue; // outside this rank's slice: ghost rounds
                    }
                    while let Some(&ck) = set.range(..=n.0).next_back() {
                        let c = PackedOctant::<D>(ck);
                        if !c.contains(n) || c.level() + 1 >= o.level() {
                            break;
                        }
                        set.remove(&ck);
                        stats.splits += 1;
                        tree_changed = true;
                        for i in 0..Octant::<D>::NUM_CHILDREN {
                            let ch = c.child(i).0;
                            set.insert(ch);
                            work.push_back(ch);
                        }
                    }
                }
            }
            if tree_changed {
                changed = true;
                *v = set.into_iter().collect();
                debug_assert!(is_linear_keys::<D>(v));
            }
        }
        changed
    }

    /// Split local leaves violating 2:1 against received ghost keys
    /// (which may lie outside the tree root). Returns whether anything
    /// changed.
    fn split_against_ghosts(
        &mut self,
        ghosts: &BTreeMap<TreeId, Vec<u128>>,
        cond: Condition,
        stats: &mut RippleStats,
    ) -> bool {
        let mut changed = false;
        for (t, gs) in ghosts {
            let Some(v) = self.local.get_mut(*t) else {
                continue;
            };
            if v.is_empty() {
                continue;
            }
            let mut set: BTreeSet<u128> = v.iter().copied().collect();
            let mut tree_changed = false;
            for &gk in gs {
                let g = PackedOctant::<D>(gk);
                for dir in directions::<D>() {
                    if !cond.constrains(codim(&dir)) {
                        continue;
                    }
                    let n = g.neighbor(&dir);
                    // Only the part of the ghost's neighborhood inside
                    // this tree matters here.
                    if !n.is_inside_root() {
                        continue;
                    }
                    while let Some(&ck) = set.range(..=n.0).next_back() {
                        let c = PackedOctant::<D>(ck);
                        if !c.contains(n) || c.level() + 1 >= g.level() {
                            break;
                        }
                        set.remove(&ck);
                        stats.splits += 1;
                        tree_changed = true;
                        for i in 0..Octant::<D>::NUM_CHILDREN {
                            set.insert(c.child(i).0);
                        }
                    }
                }
            }
            if tree_changed {
                changed = true;
                *v = set.into_iter().collect();
                debug_assert!(is_linear_keys::<D>(v));
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::BrickConnectivity;
    use crate::serial::{is_forest_balanced, serial_forest_balance};
    use forestbal_comm::Cluster;
    use std::sync::Arc;

    #[test]
    fn ripple_matches_serial_oracle() {
        let conn = Arc::new(BrickConnectivity::<2>::new([2, 1], [false; 2]));
        for p in [1usize, 2, 5] {
            let conn_run = Arc::clone(&conn);
            let out = Cluster::run(p, move |ctx| {
                let mut f = Forest::new_uniform(Arc::clone(&conn_run), ctx, 1);
                f.refine(true, 5, |t, o| {
                    t == 0
                        && o.coords[0] + o.len() == (1 << 24)
                        && o.coords[1] + o.len() == (1 << 24)
                });
                let input = f.gather(ctx);
                let stats = f.balance_ripple(ctx, Condition::full(2));
                (input, f.gather(ctx), stats)
            });
            let (input, got, stats) = &out.results[0];
            let want = serial_forest_balance(&conn, input, Condition::full(2));
            for (t, v) in &want {
                assert_eq!(got.get(t), Some(v), "P={p} tree {t}");
            }
            assert!(stats.rounds >= 1);
        }
    }

    #[test]
    fn ripple_matches_one_pass() {
        let conn = Arc::new(BrickConnectivity::<2>::new([2, 2], [false; 2]));
        let refine = |t: TreeId, o: &Octant<2>| {
            t == 0 && o.coords[0] + o.len() == (1 << 24) && o.coords[1] + o.len() == (1 << 24)
        };
        let run = |ripple: bool| {
            let conn = Arc::clone(&conn);
            Cluster::run(4, move |ctx| {
                let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 1);
                f.refine(true, 5, refine);
                if ripple {
                    f.balance_ripple(ctx, Condition::full(2));
                } else {
                    f.balance(
                        ctx,
                        Condition::full(2),
                        crate::balance::BalanceVariant::New,
                        crate::balance::ReversalScheme::Notify,
                    );
                }
                f.checksum(ctx)
            })
            .results[0]
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn ripple_needs_multiple_rounds_for_long_range_effects() {
        // A very deep leaf hugging a partition boundary forces ripples
        // through several ranks: the round count exceeds 1, the defect
        // the one-pass algorithm removes.
        let conn = Arc::new(BrickConnectivity::<2>::unit());
        let out = Cluster::run(6, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 1);
            f.refine(true, 7, |_, o| {
                o.coords[0] + o.len() == (1 << 23) && o.coords[1] == 0
            });
            let stats = f.balance_ripple(ctx, Condition::full(2));
            let g = f.gather(ctx);
            assert!(is_forest_balanced(f.connectivity(), &g, Condition::full(2)));
            stats.rounds
        });
        let max_rounds = out.results.iter().max().unwrap();
        assert!(
            *max_rounds >= 2,
            "expected multi-round propagation, got {max_rounds}"
        );
    }

    #[test]
    fn ripple_on_balanced_forest_is_one_round() {
        let conn = Arc::new(BrickConnectivity::<2>::unit());
        Cluster::run(3, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 3);
            let stats = f.balance_ripple(ctx, Condition::full(2));
            assert_eq!(stats.rounds, 1, "uniform forest needs no splits");
            assert_eq!(stats.splits, 0);
        });
    }
}
