//! Space-filling-curve partitioning (§II, Figure 2).
//!
//! Repartitioning cuts the forest-wide Morton order into `P` contiguous
//! slices — uniformly by leaf count, or by arbitrary positive leaf
//! weights — and migrates leaves point-to-point. Both the senders and the
//! receivers of every migration message are computable from one allgather
//! of local (weighted) counts, so no pattern reversal is needed here.

use crate::codec::{self, RunEncoder};
use crate::forest::Forest;
use crate::store::LeafStore;
use forestbal_comm::Comm;
use forestbal_octant::Octant;

const PARTITION_TAG: u32 = 0xA110_0001;

impl<const D: usize> Forest<D> {
    /// Repartition so every rank owns an equal (±1) number of leaves.
    pub fn partition_uniform(&mut self, ctx: &impl Comm) {
        self.partition_weighted(ctx, |_, _| 1);
    }

    /// Repartition by positive leaf weights: each rank receives a
    /// contiguous slice with approximately `total_weight / P` weight,
    /// using the same cut rule as p4est (cuts at weight quantiles).
    pub fn partition_weighted(
        &mut self,
        ctx: &impl Comm,
        mut weight: impl FnMut(crate::connectivity::TreeId, &Octant<D>) -> u64,
    ) {
        forestbal_trace::span_begin("partition", || ctx.now_ns());
        let p = ctx.size();
        // Local weights, leaf by leaf, plus the local total.
        let mut local_weights: Vec<u64> = Vec::with_capacity(self.num_local());
        for (t, v) in self.trees() {
            for o in v.iter() {
                let w = weight(t, &o);
                assert!(w > 0, "leaf weights must be positive");
                local_weights.push(w);
            }
        }
        let local_total: u64 = local_weights.iter().sum();

        // Global prefix of rank weights.
        let all = ctx.allgather(local_total.to_le_bytes().to_vec());
        let rank_totals: Vec<u64> = all
            .iter()
            .map(|b| u64::from_le_bytes(b.as_slice().try_into().unwrap()))
            .collect();
        let mut prefix = vec![0u64; p + 1];
        for q in 0..p {
            prefix[q + 1] = prefix[q] + rank_totals[q];
        }
        let total = prefix[p];
        if total == 0 {
            forestbal_trace::span_end(|| ctx.now_ns());
            return;
        }

        // Cut points in weight space: rank q receives [cut(q), cut(q+1)).
        let cut = |q: usize| -> u64 { (total as u128 * q as u128 / p as u128) as u64 };

        // Route each local leaf by the weight-space position of its start.
        // Leaves migrate as packed keys in tree runs (wire format v2).
        let mut outgoing: Vec<(Vec<u8>, RunEncoder)> = (0..p).map(|_| Default::default()).collect();
        let mut migrated = vec![0u64; p];
        let mut acc = prefix[ctx.rank()];
        let mut dst = 0usize;
        let mut idx = 0usize;
        for (t, keys) in self.trees_packed() {
            for &k in keys {
                while dst + 1 < p && cut(dst + 1) <= acc {
                    dst += 1;
                }
                let (buf, enc) = &mut outgoing[dst];
                enc.push::<D>(buf, t, k);
                migrated[dst] += 1;
                acc += local_weights[idx];
                idx += 1;
            }
        }

        // Both sides of every migration message are computable from the
        // prefix sums: old rank `s` talks to new rank `d` iff `s`'s weight
        // range intersects `d`'s cut range. The condition is evaluated
        // identically by sender and receiver (messages may be empty when
        // the overlap holds no leaf start).
        let talks = |s: usize, d: usize| -> bool {
            rank_totals[s] > 0 && prefix[s] < cut(d + 1) && prefix[s + 1] > cut(d)
        };
        let me = ctx.rank();
        forestbal_trace::counter_add(
            "partition.migrated_octants",
            migrated
                .iter()
                .enumerate()
                .filter(|&(q, _)| q != me)
                .map(|(_, &n)| n)
                .sum::<u64>(),
        );
        let mut incoming: Vec<(usize, Vec<u8>)> = Vec::new();
        for (q, (buf, enc)) in outgoing.iter_mut().enumerate() {
            enc.finish(buf);
            if q == me {
                incoming.push((q, std::mem::take(buf)));
            } else if talks(me, q) {
                ctx.send(q, PARTITION_TAG, std::mem::take(buf));
            } else {
                debug_assert!(buf.is_empty(), "routing outside the talk set");
            }
        }
        for q in 0..p {
            if q != me && talks(q, me) {
                let (src, data) = ctx.recv(Some(q), PARTITION_TAG);
                incoming.push((src, data));
            }
        }
        incoming.sort_by_key(|(src, _)| *src);

        let mut local: LeafStore<D> = LeafStore::new();
        for (_, data) in incoming {
            codec::for_each_run::<D>(&data, |t, keys| local.entry(t).extend_from_slice(keys));
        }
        let mut sort = forestbal_octant::SortScratch::new();
        for (_, v) in local.iter_mut() {
            forestbal_octant::sort_keys_with::<D>(v, &mut sort);
        }
        self.local = local;
        self.update_markers(ctx);
        forestbal_trace::span_end(|| ctx.now_ns());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::BrickConnectivity;
    use forestbal_comm::{Cluster, Comm};
    use std::sync::Arc;

    #[test]
    fn uniform_partition_balances_counts() {
        let conn = Arc::new(BrickConnectivity::<2>::unit());
        let out = Cluster::run(4, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 2);
            // Unbalance ownership by refining only rank-local leaves at
            // the origin corner.
            f.refine(true, 4, |_, o| o.coords[0] == 0 && o.coords[1] == 0);
            let before = f.num_local();
            let sum_before = f.checksum(ctx);
            f.partition_uniform(ctx);
            let after = f.num_local();
            let sum_after = f.checksum(ctx);
            assert_eq!(sum_before, sum_after, "partition must not change content");
            (before, after, f.num_global(ctx))
        });
        let total: u64 = out.results[0].2;
        for (_, after, _) in &out.results {
            let ideal = total as usize / 4;
            assert!(
                (*after as i64 - ideal as i64).abs() <= 1,
                "uneven partition: {after} vs ideal {ideal}"
            );
        }
    }

    #[test]
    fn weighted_partition_shifts_cuts() {
        let conn = Arc::new(BrickConnectivity::<2>::unit());
        Cluster::run(2, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 2);
            // Weight the first half of the curve 10x: rank 0 should end
            // up with far fewer leaves than rank 1.
            f.partition_weighted(ctx, |_, o| if o.coords[1] < (1 << 23) { 10 } else { 1 });
            let n = f.num_local();
            if ctx.rank() == 0 {
                assert!(n < 8, "rank 0 holds heavy leaves: {n}");
            } else {
                assert!(n > 8, "rank 1 holds light leaves: {n}");
            }
            assert_eq!(f.num_global(ctx), 16);
        });
    }

    #[test]
    fn partition_from_skewed_ownership() {
        // Everything starts on rank 0 (via from_global with 1 rank worth
        // of content spread by construction), then spreads out.
        let conn = Arc::new(BrickConnectivity::<2>::new([2, 1], [false; 2]));
        Cluster::run(5, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 0);
            // Only 2 leaves globally; most ranks are empty.
            f.refine(true, 2, |t, _| t == 0);
            f.partition_uniform(ctx);
            let total = f.num_global(ctx);
            assert_eq!(total, 16 + 1);
            assert!(f.num_local() <= (total as usize).div_ceil(5) + 1);
            // Markers must be consistent after migration.
            for (t, v) in f.trees() {
                let owners: Vec<_> = f
                    .owners_of_range(t, v.get(0).index(), v.get(0).index())
                    .collect();
                assert!(owners.contains(&ctx.rank()));
            }
        });
    }

    #[test]
    fn partition_is_idempotent() {
        let conn = Arc::new(BrickConnectivity::<2>::unit());
        Cluster::run(3, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 3);
            f.partition_uniform(ctx);
            let n1 = f.num_local();
            let c1 = f.checksum(ctx);
            f.partition_uniform(ctx);
            assert_eq!(f.num_local(), n1);
            assert_eq!(f.checksum(ctx), c1);
        });
    }
}
