//! The distributed forest data structure.
//!
//! Leaves live in per-tree sorted arrays; the global order is
//! `(tree, Morton)` (Figure 2 extended across trees), and each rank owns a
//! contiguous slice of that order. Rank boundaries are published as
//! *partition markers* — the global position of every rank's first leaf —
//! which is all the shared metadata the balance algorithm needs to route
//! insulation-layer queries (the p4est `global_first_position` scheme).

use crate::codec;
use crate::connectivity::{BrickConnectivity, TreeId};
use crate::store::{LeafSlice, LeafStore};
use forestbal_comm::Comm;
use forestbal_octant::{
    is_linear, is_linear_keys, key, pack_batch, sort_keys_with, unpack_batch, MortonIndex, Octant,
    PackedOctant, SortScratch, MAX_LEVEL,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A position in the forest-wide space-filling curve: a tree and a unit
/// cell index within it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct GlobalPos {
    /// The tree this position lies in.
    pub tree: TreeId,
    /// Unit-cell Morton index within the tree.
    pub index: MortonIndex,
}

impl GlobalPos {
    /// Sentinel position after the last tree.
    fn end(num_trees: usize) -> GlobalPos {
        GlobalPos {
            tree: num_trees as TreeId,
            index: 0,
        }
    }
}

/// Decode allgathered first-leaf payloads into the `size + 1` marker
/// table. A free function of the gather contents alone, which is what
/// lets [`forestbal_comm::shared_decode`] share the result between
/// co-threaded ranks.
fn decode_markers(all: &[Vec<u8>], num_trees: usize) -> Vec<GlobalPos> {
    let size = all.len();
    let end = GlobalPos::end(num_trees);
    let mut markers = vec![end; size + 1];
    // Fill from the back so empty ranks inherit their successor's
    // marker (their range is empty).
    for p in (0..size).rev() {
        let b = &all[p];
        markers[p] = if b[0] == 1 {
            let mut pos = 1usize;
            let tree = codec::get_u32(b, &mut pos);
            let index = MortonIndex::from_le_bytes(b[pos..pos + 16].try_into().unwrap());
            GlobalPos { tree, index }
        } else {
            markers[p + 1]
        };
    }
    markers
}

/// One rank's view of a distributed forest of octrees.
pub struct Forest<const D: usize> {
    conn: Arc<BrickConnectivity<D>>,
    rank: usize,
    size: usize,
    /// Local leaves per tree as flat sorted arrays of packed Morton keys
    /// (SoA; see [`crate::store`]); trees without local leaves are absent.
    pub(crate) local: LeafStore<D>,
    /// `size + 1` partition markers; rank `p` owns positions in
    /// `[markers[p], markers[p+1])`. `Arc`-shared: every rank decodes the
    /// markers from the *same* allgather buffer, so co-threaded ranks
    /// (the simulator's fiber backend) share one copy — a `(P+1)`-entry
    /// table per rank is ~400 GB at P = 112k, per *cluster* it is ~4 MB.
    pub(crate) markers: Arc<Vec<GlobalPos>>,
    /// Radix-sort working memory, retained across mutations so the
    /// post-edit ordering of [`Forest::refine`] / [`Forest::coarsen`] /
    /// [`Forest::apply_edits`] reuses buffers and the presorted
    /// early-out is counted per forest.
    pub(crate) sort: SortScratch,
}

impl<const D: usize> Clone for Forest<D> {
    fn clone(&self) -> Self {
        Forest {
            conn: Arc::clone(&self.conn),
            rank: self.rank,
            size: self.size,
            local: self.local.clone(),
            markers: self.markers.clone(),
            sort: SortScratch::new(),
        }
    }
}

impl<const D: usize> Forest<D> {
    /// Create a uniformly refined forest at `level`, partitioned into
    /// equal contiguous slices of the space-filling curve.
    pub fn new_uniform(conn: Arc<BrickConnectivity<D>>, ctx: &impl Comm, level: u8) -> Forest<D> {
        assert!(level <= MAX_LEVEL);
        let per_tree: u128 = 1u128 << (D as u32 * level as u32);
        let total = per_tree * conn.num_trees() as u128;
        let p = ctx.size() as u128;
        let (rank, cells) = (
            ctx.rank() as u128,
            Octant::<D>::root().cell_count() >> (D as u32 * level as u32),
        );
        let lo = total * rank / p;
        let hi = total * (rank + 1) / p;

        let mut local: LeafStore<D> = LeafStore::new();
        let mut g = lo;
        while g < hi {
            let tree = (g / per_tree) as TreeId;
            let in_tree_end = per_tree * (g / per_tree + 1);
            let run_end = hi.min(in_tree_end);
            let v = local.entry(tree);
            v.reserve((run_end - g) as usize);
            for j in g..run_end {
                let idx = (j % per_tree) * cells;
                v.push(key::pack(&Octant::<D>::from_index(idx, level)));
            }
            g = run_end;
        }
        let mut f = Forest {
            conn,
            rank: ctx.rank(),
            size: ctx.size(),
            local,
            markers: Arc::new(Vec::new()),
            sort: SortScratch::new(),
        };
        f.update_markers(ctx);
        f
    }

    /// Build each rank's slice of an explicitly given global forest
    /// (equal-count split). Intended for tests and workload setup.
    pub fn from_global(
        conn: Arc<BrickConnectivity<D>>,
        ctx: &impl Comm,
        global: &BTreeMap<TreeId, Vec<Octant<D>>>,
    ) -> Forest<D> {
        let total: usize = global.values().map(|v| v.len()).sum();
        let p = ctx.size();
        let lo = total * ctx.rank() / p;
        let hi = total * (ctx.rank() + 1) / p;
        let mut local: LeafStore<D> = LeafStore::new();
        let mut seen = 0usize;
        for (&t, v) in global {
            debug_assert!(is_linear(v));
            let start = lo.saturating_sub(seen).min(v.len());
            let end = hi.saturating_sub(seen).min(v.len());
            if start < end {
                pack_batch(&v[start..end], local.entry(t));
            }
            seen += v.len();
        }
        let mut f = Forest {
            conn,
            rank: ctx.rank(),
            size: ctx.size(),
            local,
            markers: Arc::new(Vec::new()),
            sort: SortScratch::new(),
        };
        f.update_markers(ctx);
        f
    }

    /// The forest's connectivity.
    pub fn connectivity(&self) -> &Arc<BrickConnectivity<D>> {
        &self.conn
    }

    /// This rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Cluster size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Iterate local `(tree, leaves)` pairs as decoded-on-demand views
    /// over the packed key arrays.
    pub fn trees(&self) -> impl Iterator<Item = (TreeId, LeafSlice<'_, D>)> {
        self.local.slices()
    }

    /// Iterate local `(tree, packed keys)` pairs — the raw SoA storage,
    /// for kernels that operate on keys directly.
    pub fn trees_packed(&self) -> impl Iterator<Item = (TreeId, &[u128])> {
        self.local.iter()
    }

    /// Local leaf count.
    pub fn num_local(&self) -> usize {
        self.local.num_octants()
    }

    /// Global leaf count (one allreduce).
    pub fn num_global(&self, ctx: &impl Comm) -> u64 {
        ctx.allreduce_sum(self.num_local() as u64)
    }

    /// Maximum local level (0 when empty).
    pub fn max_local_level(&self) -> u8 {
        self.local
            .iter()
            .flat_map(|(_, v)| v.iter().map(|&k| PackedOctant::<D>(k).level()))
            .max()
            .unwrap_or(0)
    }

    /// Global position of this rank's first leaf.
    pub fn first_local_pos(&self) -> Option<GlobalPos> {
        self.local.first().map(|(t, k)| GlobalPos {
            tree: t,
            index: PackedOctant::<D>(k).index(),
        })
    }

    /// The current partition markers: `size + 1` global positions, with
    /// rank `p` owning `[markers()[p], markers()[p+1])`. Exposed so
    /// protocol-level tests (e.g. the `forestbal-mc` marker-exchange
    /// scenario) can compare the exchanged markers across schedules.
    pub fn markers(&self) -> &[GlobalPos] {
        &self.markers
    }

    /// Recompute the partition markers (one allgather). Called after any
    /// operation that changes leaf ownership.
    pub fn update_markers(&mut self, ctx: &impl Comm) {
        forestbal_trace::span_begin("markers", || ctx.now_ns());
        let mut payload = Vec::with_capacity(1 + 4 + 16);
        match self.first_local_pos() {
            Some(pos) => {
                payload.push(1u8);
                codec::put_u32(&mut payload, pos.tree);
                payload.extend_from_slice(&pos.index.to_le_bytes());
            }
            None => payload.push(0u8),
        }
        let all = ctx.allgather(payload);
        let num_trees = self.conn.num_trees();
        // Decoding is a pure function of the gather buffer (plus the
        // globally agreed tree count), so co-threaded ranks — all of
        // them, under the simulator's fiber backend — share one decoded
        // marker table instead of materializing P copies of P+1 entries.
        self.markers = forestbal_comm::shared_decode(
            &all,
            0x4d41_524b ^ (num_trees as u64).rotate_left(32),
            |all| decode_markers(all, num_trees),
        );
        forestbal_trace::span_end(|| ctx.now_ns());
    }

    /// The ranks whose partitions intersect the position range
    /// `[lo, hi]` (inclusive) in `tree`. Empty ranks are skipped.
    pub fn owners_of_range(
        &self,
        tree: TreeId,
        lo: MortonIndex,
        hi: MortonIndex,
    ) -> impl Iterator<Item = usize> + '_ {
        let lo = GlobalPos { tree, index: lo };
        let hi = GlobalPos { tree, index: hi };
        // First rank whose range can contain lo: the last p with
        // markers[p] <= lo.
        let first = self.markers.partition_point(|m| *m <= lo).saturating_sub(1);
        let markers = &self.markers;
        let size = self.size;
        (first..size)
            .take_while(move |&p| markers[p] <= hi)
            .filter(move |&p| markers[p] < markers[p + 1])
    }

    /// This rank's owned position range within `tree`, if any leaves of
    /// the tree are local: inclusive `(lo, hi)` unit-cell indices.
    pub fn local_range(&self, tree: TreeId) -> Option<(MortonIndex, MortonIndex)> {
        let v = self.local.get(tree)?;
        Some((
            PackedOctant::<D>(v[0]).index(),
            PackedOctant::<D>(v[v.len() - 1]).last_index(),
        ))
    }

    /// Refine local leaves: replace each leaf for which `pred` returns
    /// true (and whose level is below `max_level`) by its children. With
    /// `recursive`, newly created children are offered to `pred` again.
    /// Purely local; markers stay valid (the first leaf's position is
    /// preserved by splitting).
    pub fn refine(
        &mut self,
        recursive: bool,
        max_level: u8,
        mut pred: impl FnMut(TreeId, &Octant<D>) -> bool,
    ) {
        assert!(max_level <= MAX_LEVEL);
        for (t, v) in self.local.iter_mut() {
            let mut out: Vec<u128> = Vec::with_capacity(v.len());
            // Depth-first with an explicit stack keeps Morton order. The
            // split is pure key arithmetic; only `pred` sees a decoded view.
            let mut stack: Vec<PackedOctant<D>> = Vec::new();
            for &leaf in v.iter() {
                stack.push(PackedOctant(leaf));
                while let Some(o) = stack.pop() {
                    if o.level() < max_level && pred(t, &o.octant()) {
                        for i in (0..Octant::<D>::NUM_CHILDREN).rev() {
                            let c = o.child(i);
                            if recursive {
                                stack.push(c);
                            } else {
                                out.push(c.0);
                            }
                        }
                        if !recursive {
                            // Children were appended in reverse; fix order.
                            let n = out.len();
                            out[n - Octant::<D>::NUM_CHILDREN..].reverse();
                        }
                    } else {
                        out.push(o.0);
                    }
                }
            }
            // The DFS emits in Morton order, so this is the presorted
            // early-out of the radix sort — a linear scan, never a full
            // O(N log N) rebuild. Kept as the single ordering authority
            // so every mutation path shares the same fast path/counters.
            sort_keys_with::<D>(&mut out, &mut self.sort);
            debug_assert!(is_linear_keys::<D>(&out));
            *v = out;
        }
        debug_assert!(self.local.check_invariants());
    }

    /// Coarsen local leaves: replace each complete, locally owned family
    /// whose members all satisfy `pred` by its parent. One pass (not
    /// recursive). Purely local.
    pub fn coarsen(&mut self, mut pred: impl FnMut(TreeId, &Octant<D>) -> bool) {
        let nc = Octant::<D>::NUM_CHILDREN;
        for (t, v) in self.local.iter_mut() {
            let mut out: Vec<u128> = Vec::with_capacity(v.len());
            let mut i = 0;
            while i < v.len() {
                let o = PackedOctant::<D>(v[i]);
                let is_family_head = o.level() > 0
                    && o.child_id() == 0
                    && i + nc <= v.len()
                    && (1..nc).all(|j| v[i + j] == o.sibling(j).0);
                if is_family_head && (0..nc).all(|j| pred(t, &key::unpack(v[i + j]))) {
                    out.push(o.parent().0);
                    i += nc;
                } else {
                    out.push(o.0);
                    i += 1;
                }
            }
            sort_keys_with::<D>(&mut out, &mut self.sort);
            debug_assert!(is_linear_keys::<D>(&out));
            *v = out;
        }
        debug_assert!(self.local.check_invariants());
    }

    /// Gather the whole forest on every rank (tests and tools only).
    /// Ships the packed-key run format of [`codec`] and radix-sorts the
    /// merged key arrays before decoding once at the API edge.
    pub fn gather(&self, ctx: &impl Comm) -> BTreeMap<TreeId, Vec<Octant<D>>> {
        let payload = self.serialize_local();
        let all = ctx.allgather(payload);
        let mut keyed: BTreeMap<TreeId, Vec<u128>> = BTreeMap::new();
        for part in all.iter() {
            codec::for_each_run::<D>(part, |t, keys| {
                keyed.entry(t).or_default().extend_from_slice(keys)
            });
        }
        // Ranks own disjoint contiguous slices, but interleaved pushes may
        // disorder trees split across ranks.
        let mut sort = forestbal_octant::SortScratch::new();
        let mut global: BTreeMap<TreeId, Vec<Octant<D>>> = BTreeMap::new();
        for (t, mut keys) in keyed {
            forestbal_octant::sort_keys_with::<D>(&mut keys, &mut sort);
            let mut v = Vec::with_capacity(keys.len());
            unpack_batch(&keys, &mut v);
            debug_assert!(is_linear(&v));
            global.insert(t, v);
        }
        global
    }

    /// A position-independent checksum of the local leaves (xor-fold of
    /// coordinates and levels), combined globally by xor.
    pub fn checksum(&self, ctx: &impl Comm) -> u64 {
        let mut h = 0u64;
        for (t, v) in self.trees() {
            for o in v.iter() {
                let mut x = (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                for (i, &c) in o.coords.iter().enumerate() {
                    x ^= ((c as u32 as u64) << 8).rotate_left(17 * (i as u32 + 1));
                }
                x ^= o.level as u64;
                h ^= x.wrapping_mul(0xff51_afd7_ed55_8ccd);
            }
        }
        ctx.allreduce_u64(h, |a, b| a ^ b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forestbal_comm::Cluster;

    fn unit2() -> Arc<BrickConnectivity<2>> {
        Arc::new(BrickConnectivity::<2>::unit())
    }

    #[test]
    fn uniform_forest_counts() {
        for p in [1usize, 2, 3, 5] {
            let conn = unit2();
            let out = Cluster::run(p, |ctx| {
                let f = Forest::new_uniform(Arc::clone(&conn), ctx, 3);
                (f.num_local(), f.num_global(ctx))
            });
            let total: usize = out.results.iter().map(|r| r.0).sum();
            assert_eq!(total, 64);
            for (n, g) in &out.results {
                assert_eq!(*g, 64);
                assert!(*n >= 64 / p);
            }
        }
    }

    #[test]
    fn uniform_multitree_partition() {
        let conn = Arc::new(BrickConnectivity::<2>::new([3, 2], [false; 2]));
        let out = Cluster::run(4, |ctx| {
            let f = Forest::new_uniform(Arc::clone(&conn), ctx, 2);
            (f.num_local(), f.markers.clone())
        });
        let total: usize = out.results.iter().map(|r| r.0).sum();
        assert_eq!(total, 6 * 16);
        // All ranks agree on the markers.
        for r in &out.results {
            assert_eq!(r.1, out.results[0].1);
        }
        // Markers are sorted.
        let m = &out.results[0].1;
        assert!(m.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(m[4], GlobalPos::end(6));
    }

    #[test]
    fn owners_cover_every_position() {
        let conn = Arc::new(BrickConnectivity::<2>::new([2, 1], [false; 2]));
        Cluster::run(3, |ctx| {
            let f = Forest::new_uniform(Arc::clone(&conn), ctx, 2);
            // Every leaf position is owned by exactly one rank.
            let g = f.gather(ctx);
            for (&t, v) in &g {
                for o in v {
                    let owners: Vec<_> = f.owners_of_range(t, o.index(), o.last_index()).collect();
                    assert_eq!(owners.len(), 1, "leaf {o:?} owners {owners:?}");
                }
            }
        });
    }

    #[test]
    fn refine_recursive_with_level_cap() {
        let conn = unit2();
        Cluster::run(2, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 1);
            f.refine(true, 3, |_, o| o.coords == [0, 0]);
            if f.rank() == 0 {
                // The origin leaf was refined to level 3.
                assert_eq!(f.max_local_level(), 3);
            }
            let g = f.gather(ctx);
            let v = &g[&0];
            assert!(forestbal_octant::is_complete(v, &Octant::root()));
        });
    }

    #[test]
    fn coarsen_merges_local_families() {
        let conn = unit2();
        Cluster::run(1, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 2);
            assert_eq!(f.num_local(), 16);
            f.coarsen(|_, _| true);
            assert_eq!(f.num_local(), 4);
            f.coarsen(|_, _| true);
            assert_eq!(f.num_local(), 1);
        });
    }

    #[test]
    fn coarsen_respects_predicate() {
        let conn = unit2();
        Cluster::run(1, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 2);
            // Coarsen every family except the one at the origin:
            // 3 merged parents + 4 surviving origin-family leaves.
            f.coarsen(|_, o| o.parent().coords != [0, 0]);
            assert_eq!(f.num_local(), 7);
        });
    }

    #[test]
    fn checksum_is_partition_invariant() {
        let conn = Arc::new(BrickConnectivity::<2>::new([2, 2], [false; 2]));
        let mut sums = vec![];
        for p in [1usize, 2, 5] {
            let conn = Arc::clone(&conn);
            let out = Cluster::run(p, |ctx| {
                let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 2);
                f.refine(false, 3, |t, o| t == 0 && o.coords[0] == 0);
                f.checksum(ctx)
            });
            sums.push(out.results[0]);
        }
        assert_eq!(sums[0], sums[1]);
        assert_eq!(sums[0], sums[2]);
    }

    #[test]
    fn from_global_reproduces_content() {
        let conn = Arc::new(BrickConnectivity::<2>::new([2, 1], [false; 2]));
        // Build a reference forest on one rank, then redistribute the
        // same global content on several ranks via from_global.
        let global = Cluster::run(1, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 2);
            f.refine(true, 4, |t, o| t == 0 && o.coords[1] == 0);
            f.gather(ctx)
        })
        .results
        .remove(0);
        for p in [1usize, 2, 4, 7] {
            let conn = Arc::clone(&conn);
            let g = global.clone();
            let out = Cluster::run(p, move |ctx| {
                let f = Forest::from_global(Arc::clone(&conn), ctx, &g);
                (f.num_local(), f.gather(ctx))
            });
            let total: usize = out.results.iter().map(|r| r.0).sum();
            let expect: usize = global.values().map(Vec::len).sum();
            assert_eq!(total, expect, "P={p}");
            assert_eq!(out.results[0].1, global, "P={p}");
            // Roughly even split.
            for (n, _) in &out.results {
                assert!(*n <= expect / p + 1, "P={p}: rank holds {n}");
            }
        }
    }

    #[test]
    fn empty_rank_markers() {
        // More ranks than leaves: some ranks are empty and inherit their
        // successor's marker.
        let conn = unit2();
        Cluster::run(7, |ctx| {
            let f = Forest::new_uniform(Arc::clone(&conn), ctx, 1);
            assert_eq!(f.num_global(ctx), 4);
            for w in f.markers.windows(2) {
                assert!(w[0] <= w[1]);
            }
            let owners: Vec<_> = f
                .owners_of_range(0, 0, Octant::<2>::root().last_index())
                .collect();
            assert_eq!(owners.len(), 4);
        });
    }
}
