//! SoA leaf storage: flat per-tree arrays of packed Morton keys.
//!
//! Before the packed-native refactor the forest held
//! `BTreeMap<TreeId, Vec<Octant<D>>>` — 12/16-byte structs behind a
//! pointer-chasing map, converted to packed keys at every kernel boundary
//! and back. [`LeafStore`] replaces that with a sorted `Vec` of
//! `(TreeId, Vec<u128>)` pairs: the keys *are* the storage, so the radix
//! sort, linearize/merge, binary searches, and the wire codec all operate
//! on the integer arrays with zero conversion. Keys are stored as `u128`
//! regardless of dimension (2D keys occupy the low 59 bits) so the store
//! stays dimension-generic; the wire codec narrows 2D records to 8 bytes.
//!
//! The struct [`Octant`] remains the view type at API edges:
//! [`LeafSlice`] decodes on demand, yielding octants *by value*.
//!
//! Invariants (debug-checked by users at mutation sites):
//! * trees are sorted by id and hold no empty arrays;
//! * each tree's keys are sorted (integer order ≡ Morton preorder) and
//!   linear (no overlaps).

use crate::connectivity::TreeId;
use forestbal_octant::{key, Octant, PackedOctant};

/// Per-tree sorted arrays of packed leaf keys — the native storage of
/// [`crate::Forest`]. See the module docs for the layout and invariants.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct LeafStore<const D: usize> {
    /// `(tree, keys)` pairs sorted by tree id; no empty key arrays.
    trees: Vec<(TreeId, Vec<u128>)>,
}

impl<const D: usize> LeafStore<D> {
    /// New empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Remove all trees.
    pub fn clear(&mut self) {
        self.trees.clear();
    }

    /// Number of trees holding at least one local leaf.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Total number of local leaves.
    pub fn num_octants(&self) -> usize {
        self.trees.iter().map(|(_, v)| v.len()).sum()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// The key array of `tree`, if it has local leaves.
    pub fn get(&self, tree: TreeId) -> Option<&[u128]> {
        self.trees
            .binary_search_by_key(&tree, |&(t, _)| t)
            .ok()
            .map(|i| self.trees[i].1.as_slice())
    }

    /// Mutable key array of `tree`, if present.
    pub fn get_mut(&mut self, tree: TreeId) -> Option<&mut Vec<u128>> {
        self.trees
            .binary_search_by_key(&tree, |&(t, _)| t)
            .ok()
            .map(|i| &mut self.trees[i].1)
    }

    /// Mutable key array of `tree`, inserting an empty one (at the sorted
    /// position) if absent.
    pub fn entry(&mut self, tree: TreeId) -> &mut Vec<u128> {
        let i = match self.trees.binary_search_by_key(&tree, |&(t, _)| t) {
            Ok(i) => i,
            Err(i) => {
                self.trees.insert(i, (tree, Vec::new()));
                i
            }
        };
        &mut self.trees[i].1
    }

    /// Drop trees whose key arrays became empty (restores the invariant
    /// after draining mutations).
    pub fn prune_empty(&mut self) {
        self.trees.retain(|(_, v)| !v.is_empty());
    }

    /// Iterate `(tree, keys)` in tree order.
    pub fn iter(&self) -> impl Iterator<Item = (TreeId, &[u128])> {
        self.trees.iter().map(|(t, v)| (*t, v.as_slice()))
    }

    /// Iterate `(tree, keys)` mutably in tree order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (TreeId, &mut Vec<u128>)> {
        self.trees.iter_mut().map(|(t, v)| (*t, v))
    }

    /// The first `(tree, key)` in global order.
    pub fn first(&self) -> Option<(TreeId, u128)> {
        self.trees.first().map(|(t, v)| (*t, v[0]))
    }

    /// Iterate `(tree, decoded leaves)` as [`LeafSlice`] views.
    pub fn slices(&self) -> impl Iterator<Item = (TreeId, LeafSlice<'_, D>)> {
        self.trees.iter().map(|(t, v)| (*t, LeafSlice::new(v)))
    }

    /// Verify every SoA invariant: trees sorted by id with no empty
    /// arrays, each key array sorted and linear. Intended for
    /// `debug_assert!` at mutation sites.
    pub fn check_invariants(&self) -> bool {
        self.trees.windows(2).all(|w| w[0].0 < w[1].0)
            && self
                .trees
                .iter()
                .all(|(_, v)| !v.is_empty() && forestbal_octant::is_linear_keys::<D>(v))
    }
}

/// A read view over one tree's sorted packed keys that decodes to the
/// struct [`Octant`] on demand (by value). This is what
/// [`crate::Forest::trees`] yields, keeping mesh generators, exporters and
/// tests on the ergonomic struct API while storage stays packed.
#[derive(Clone, Copy)]
pub struct LeafSlice<'a, const D: usize> {
    keys: &'a [u128],
}

impl<'a, const D: usize> LeafSlice<'a, D> {
    /// Wrap a sorted key slice.
    pub fn new(keys: &'a [u128]) -> Self {
        LeafSlice { keys }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Is the slice empty?
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The underlying packed keys.
    pub fn keys(&self) -> &'a [u128] {
        self.keys
    }

    /// Decode leaf `i`.
    pub fn get(&self, i: usize) -> Octant<D> {
        key::unpack(self.keys[i])
    }

    /// Leaf `i` as a packed octant (no decode).
    pub fn packed(&self, i: usize) -> PackedOctant<D> {
        PackedOctant(self.keys[i])
    }

    /// Decode the first leaf.
    pub fn first(&self) -> Option<Octant<D>> {
        self.keys.first().map(|&k| key::unpack(k))
    }

    /// Decode the last leaf.
    pub fn last(&self) -> Option<Octant<D>> {
        self.keys.last().map(|&k| key::unpack(k))
    }

    /// Iterate decoded leaves in Morton order.
    pub fn iter(&self) -> impl Iterator<Item = Octant<D>> + 'a {
        self.keys.iter().map(|&k| key::unpack(k))
    }

    /// Binary search for an octant (integer search on its packed key).
    pub fn binary_search(&self, o: &Octant<D>) -> Result<usize, usize> {
        self.keys.binary_search(&key::pack(o))
    }

    /// First index at which `pred` (over the decoded leaf) is false;
    /// `pred` must be monotone in Morton order.
    pub fn partition_point(&self, mut pred: impl FnMut(&Octant<D>) -> bool) -> usize {
        self.keys.partition_point(|&k| pred(&key::unpack(k)))
    }
}

impl<'a, const D: usize> IntoIterator for LeafSlice<'a, D> {
    type Item = Octant<D>;
    type IntoIter = std::iter::Map<std::slice::Iter<'a, u128>, fn(&u128) -> Octant<D>>;
    fn into_iter(self) -> Self::IntoIter {
        self.keys.iter().map(|&k| key::unpack(k))
    }
}

impl<const D: usize> std::fmt::Debug for LeafSlice<'_, D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_keeps_tree_order() {
        let mut s = LeafStore::<2>::new();
        for t in [3u32, 1, 2, 1, 0] {
            s.entry(t).push(key::pack(&Octant::<2>::root()));
        }
        let ids: Vec<_> = s.iter().map(|(t, _)| t).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(s.num_octants(), 5);
        assert_eq!(s.get(1).unwrap().len(), 2);
        assert!(s.get(7).is_none());
    }

    #[test]
    fn prune_drops_empty_trees() {
        let mut s = LeafStore::<2>::new();
        s.entry(0).push(1);
        s.entry(5);
        assert_eq!(s.num_trees(), 2);
        s.prune_empty();
        assert_eq!(s.num_trees(), 1);
        assert_eq!(s.first(), Some((0, 1)));
    }

    #[test]
    fn slice_decodes_and_searches() {
        let r = Octant::<2>::root();
        let leaves = [r.child(0), r.child(1), r.child(2), r.child(3)];
        let keys: Vec<u128> = leaves.iter().map(key::pack).collect();
        let s = LeafSlice::<2>::new(&keys);
        assert_eq!(s.len(), 4);
        assert_eq!(s.get(2), leaves[2]);
        assert_eq!(s.first(), Some(leaves[0]));
        assert_eq!(s.last(), Some(leaves[3]));
        assert_eq!(s.binary_search(&leaves[1]), Ok(1));
        assert!(s.binary_search(&r).is_err());
        assert_eq!(s.partition_point(|o| o < &leaves[2]), 2);
        let dec: Vec<_> = s.iter().collect();
        assert_eq!(dec, leaves);
    }
}
