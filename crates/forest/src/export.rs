//! Legacy-VTK export of a (gathered) forest for visualization.
//!
//! Writes an ASCII `UNSTRUCTURED_GRID` file with one quad/hexahedron per
//! leaf and cell data for refinement level and owner tree — enough to
//! open the meshes of Figures 1, 14 and 16 in ParaView. Intended for
//! debugging and the examples; production I/O is out of scope. It
//! consumes the already-decoded output of [`crate::Forest::gather`]
//! (struct octants, needed here for their float corner coordinates), so
//! the packed-key storage refactor leaves this module untouched.

use crate::connectivity::{BrickConnectivity, TreeId};
use forestbal_octant::{Octant, ROOT_LEN};
use std::collections::BTreeMap;
use std::io::{self, Write};

/// VTK cell type ids.
const VTK_QUAD: u8 = 9;
const VTK_HEXAHEDRON: u8 = 12;

/// Write a gathered forest as legacy VTK. Octant coordinates are scaled
/// to unit trees and offset by the brick position of their tree.
pub fn write_vtk<const D: usize, W: Write>(
    w: &mut W,
    conn: &BrickConnectivity<D>,
    forest: &BTreeMap<TreeId, Vec<Octant<D>>>,
) -> io::Result<()> {
    assert!(D == 2 || D == 3, "VTK export supports 2D and 3D");
    let n_cells: usize = forest.values().map(Vec::len).sum();
    let corners = 1usize << D;

    writeln!(w, "# vtk DataFile Version 3.0")?;
    writeln!(w, "forestbal forest of octrees")?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET UNSTRUCTURED_GRID")?;
    writeln!(w, "POINTS {} double", n_cells * corners)?;

    let scale = 1.0 / ROOT_LEN as f64;
    for (&t, v) in forest {
        let tc = conn.tree_coords(t);
        for o in v {
            let len = o.len() as f64 * scale;
            for corner in 0..corners {
                let mut p = [0.0f64; 3];
                for i in 0..D {
                    p[i] = tc[i] as f64
                        + o.coords[i] as f64 * scale
                        + ((corner >> i) & 1) as f64 * len;
                }
                writeln!(w, "{} {} {}", p[0], p[1], p[2])?;
            }
        }
    }

    writeln!(w, "CELLS {} {}", n_cells, n_cells * (corners + 1))?;
    for c in 0..n_cells {
        let base = c * corners;
        match D {
            2 => writeln!(w, "4 {} {} {} {}", base, base + 1, base + 3, base + 2)?,
            _ => writeln!(
                w,
                "8 {} {} {} {} {} {} {} {}",
                base,
                base + 1,
                base + 3,
                base + 2,
                base + 4,
                base + 5,
                base + 7,
                base + 6
            )?,
        }
    }

    writeln!(w, "CELL_TYPES {n_cells}")?;
    let ct = if D == 2 { VTK_QUAD } else { VTK_HEXAHEDRON };
    for _ in 0..n_cells {
        writeln!(w, "{ct}")?;
    }

    writeln!(w, "CELL_DATA {n_cells}")?;
    writeln!(w, "SCALARS level int 1")?;
    writeln!(w, "LOOKUP_TABLE default")?;
    for v in forest.values() {
        for o in v {
            writeln!(w, "{}", o.level)?;
        }
    }
    writeln!(w, "SCALARS tree int 1")?;
    writeln!(w, "LOOKUP_TABLE default")?;
    for (&t, v) in forest {
        for _ in v {
            writeln!(w, "{t}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vtk_structure_2d() {
        let conn = BrickConnectivity::<2>::new([2, 1], [false; 2]);
        let root = Octant::<2>::root();
        let mut forest = BTreeMap::new();
        forest.insert(
            0,
            vec![root.child(0), root.child(1), root.child(2), root.child(3)],
        );
        forest.insert(1, vec![root]);
        let mut buf = Vec::new();
        write_vtk(&mut buf, &conn, &forest).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("POINTS 20 double"));
        assert!(s.contains("CELLS 5 25"));
        assert!(s.contains("CELL_TYPES 5"));
        // Tree 1 is offset by one unit in x: its last corner is at x=2.
        assert!(s.lines().any(|l| l.starts_with("2 ")));
        // Levels: four 1s and one 0.
        let levels: Vec<&str> = s
            .lines()
            .skip_while(|l| !l.starts_with("SCALARS level"))
            .skip(2)
            .take(5)
            .collect();
        assert_eq!(levels, ["1", "1", "1", "1", "0"]);
    }

    #[test]
    fn vtk_structure_3d() {
        let conn = BrickConnectivity::<3>::unit();
        let root = Octant::<3>::root();
        let mut forest = BTreeMap::new();
        forest.insert(0, (0..8).map(|i| root.child(i)).collect::<Vec<_>>());
        let mut buf = Vec::new();
        write_vtk(&mut buf, &conn, &forest).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("POINTS 64 double"));
        assert!(s.contains("CELL_TYPES 8"));
        assert!(s.contains("\n12\n"));
    }
}
