//! Node (vertex) enumeration with hanging-node classification.
//!
//! "Enumerating nodes" is one of the frequently used octree mesh
//! operations named in the paper's abstract, and the reason 2:1 balance
//! exists at all: finite element spaces need each leaf corner classified
//! as *independent* (a regular vertex shared by equally-sized neighbors)
//! or *hanging* (lying inside a face or edge of a coarser neighbor, its
//! value constrained by interpolation — Figure 1's T-intersections).
//!
//! Nodes are identified by canonical global integer coordinates across
//! the whole brick (periodic axes wrap), deduplicated without
//! communication: every rank incident to a node derives the same
//! coordinates and the same owner from the partition markers.

use crate::connectivity::TreeId;
use crate::forest::{Forest, GlobalPos};
use crate::ghost::GhostLayer;
use forestbal_comm::Comm;
use forestbal_octant::{Coord, Octant, MAX_LEVEL, ROOT_LEN};

/// One node incident to this rank's leaves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct NodeInfo<const D: usize> {
    /// Canonical global integer coordinates (units of the finest cell).
    pub gcoord: [i64; D],
    /// Does a coarser touching leaf fail to share this corner?
    pub hanging: bool,
    /// Does this rank own the node (for global counting)?
    pub owned: bool,
}

/// The node set incident to one rank's partition.
#[derive(Clone, Debug, Default)]
pub struct Nodes<const D: usize> {
    /// Sorted by `gcoord`, deduplicated.
    pub nodes: Vec<NodeInfo<D>>,
    /// Cluster-wide number of independent (non-hanging) nodes.
    pub num_global_independent: u64,
}

impl<const D: usize> Nodes<D> {
    /// Count of local hanging nodes.
    pub fn num_hanging(&self) -> usize {
        self.nodes.iter().filter(|n| n.hanging).count()
    }

    /// Count of local independent nodes owned by this rank.
    pub fn num_owned_independent(&self) -> usize {
        self.nodes.iter().filter(|n| n.owned && !n.hanging).count()
    }
}

impl<const D: usize> Forest<D> {
    /// Enumerate the nodes incident to local leaves, classify hanging
    /// nodes, assign owners, and count independent nodes globally.
    ///
    /// The forest must be 2:1 balanced for the hanging classification to
    /// be meaningful (the method itself tolerates any forest).
    pub fn enumerate_nodes(&mut self, ctx: &impl Comm) -> Nodes<D> {
        forestbal_trace::span_begin("nodes", || ctx.now_ns());
        let ghosts = self.ghost_layer(ctx);
        let dims = self.connectivity().dims();
        let extent: [i64; D] = std::array::from_fn(|i| dims[i] as i64 * ROOT_LEN as i64);

        // Candidate nodes: all corners of all local leaves.
        let mut coords: Vec<[i64; D]> = Vec::new();
        for (t, v) in self.trees() {
            let tc = self.connectivity().tree_coords(t);
            for o in v.iter() {
                for corner in 0..Octant::<D>::NUM_CHILDREN {
                    coords.push(self.canonical_node(&tc, &o, corner, &extent));
                }
            }
        }
        // Node coordinates are `[i64; D]` global grid points, not Morton
        // keys, so the packed radix path does not apply here; this sort
        // is outside the balance hot path.
        coords.sort_unstable();
        coords.dedup();

        let mut nodes = Vec::with_capacity(coords.len());
        let mut owned_independent = 0u64;
        for g in coords {
            let (hanging, owner_pos) = self.classify_node(&ghosts, &g, &extent);
            let owned = owner_pos.is_some_and(|pos| {
                let o = self.owner_of(pos);
                o == self.rank()
            });
            if owned && !hanging {
                owned_independent += 1;
            }
            nodes.push(NodeInfo {
                gcoord: g,
                hanging,
                owned,
            });
        }

        let num_global_independent = ctx.allreduce_sum(owned_independent);
        let out = Nodes {
            nodes,
            num_global_independent,
        };
        forestbal_trace::counter_add("nodes.local", out.nodes.len() as u64);
        forestbal_trace::counter_add("nodes.hanging", out.num_hanging() as u64);
        forestbal_trace::span_end(|| ctx.now_ns());
        out
    }

    /// Canonical global coordinates of leaf corner `corner`.
    fn canonical_node(
        &self,
        tree_coords: &[usize; D],
        o: &Octant<D>,
        corner: usize,
        extent: &[i64; D],
    ) -> [i64; D] {
        let periodic = self.periodic_axes();
        std::array::from_fn(|i| {
            let mut g = tree_coords[i] as i64 * ROOT_LEN as i64
                + o.coords[i] as i64
                + ((corner >> i) & 1) as i64 * o.len() as i64;
            if periodic[i] {
                g = g.rem_euclid(extent[i]);
            }
            g
        })
    }

    /// Classify one node: hanging flag and the canonical owner position
    /// (the Morton-least in-domain incident unit cell), `None` for a node
    /// with no in-domain incident cell (cannot happen for leaf corners).
    fn classify_node(
        &self,
        ghosts: &GhostLayer<D>,
        g: &[i64; D],
        extent: &[i64; D],
    ) -> (bool, Option<GlobalPos>) {
        let periodic = self.periodic_axes();
        let mut hanging = false;
        let mut owner: Option<GlobalPos> = None;
        for delta in 0..Octant::<D>::NUM_CHILDREN {
            // Incident unit cell: lower corner g - delta.
            let mut u = [0i64; D];
            let mut outside = false;
            for i in 0..D {
                u[i] = g[i] - ((delta >> i) & 1) as i64;
                if periodic[i] {
                    u[i] = u[i].rem_euclid(extent[i]);
                } else if u[i] < 0 || u[i] >= extent[i] {
                    outside = true;
                    break;
                }
            }
            if outside {
                continue;
            }
            // Split into (tree, local cell).
            let mut tc = [0usize; D];
            let mut lc = [0 as Coord; D];
            for i in 0..D {
                tc[i] = (u[i] / ROOT_LEN as i64) as usize;
                lc[i] = (u[i] % ROOT_LEN as i64) as Coord;
            }
            let Some(tree) = self.connectivity().try_tree_id(tc) else {
                continue; // masked-out cell: outside the domain
            };
            let cell = Octant::<D> {
                coords: lc,
                level: MAX_LEVEL,
            };
            let pos = GlobalPos {
                tree,
                index: cell.index(),
            };
            owner = Some(match owner {
                Some(best) if best <= pos => best,
                _ => pos,
            });
            // The touching leaf: hanging iff it doesn't share the node.
            if let Some(leaf) = self.containing_leaf_with_ghosts(ghosts, tree, &cell) {
                let tcoords = self.connectivity().tree_coords(tree);
                let shares = (0..Octant::<D>::NUM_CHILDREN)
                    .any(|corner| self.canonical_node(&tcoords, &leaf, corner, extent) == *g);
                hanging |= !shares;
            }
        }
        (hanging, owner)
    }

    /// Find the leaf containing `cell` among local leaves and ghosts.
    fn containing_leaf_with_ghosts(
        &self,
        ghosts: &GhostLayer<D>,
        tree: TreeId,
        cell: &Octant<D>,
    ) -> Option<Octant<D>> {
        if let Some(l) = self.find_leaf(tree, cell) {
            return Some(l);
        }
        let gv = ghosts.tree(tree);
        let i = gv.partition_point(|&(_, o)| o <= *cell);
        (i > 0 && gv[i - 1].1.contains(cell)).then(|| gv[i - 1].1)
    }

    /// Periodicity flags of the connectivity (helper).
    fn periodic_axes(&self) -> [bool; D] {
        self.connectivity().periodic()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{BalanceVariant, ReversalScheme};
    use crate::connectivity::BrickConnectivity;
    use forestbal_comm::Cluster;
    use forestbal_core::Condition;
    use std::sync::Arc;

    #[test]
    fn uniform_grid_node_count() {
        // A uniform level-l quadtree has (2^l + 1)^2 nodes, none hanging.
        let conn = Arc::new(BrickConnectivity::<2>::unit());
        for p in [1usize, 3] {
            let conn = Arc::clone(&conn);
            Cluster::run(p, move |ctx| {
                let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 2);
                let nodes = f.enumerate_nodes(ctx);
                assert_eq!(nodes.num_global_independent, 25);
                assert_eq!(nodes.num_hanging(), 0);
            });
        }
    }

    #[test]
    fn uniform_3d_node_count() {
        let conn = Arc::new(BrickConnectivity::<3>::unit());
        Cluster::run(2, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 1);
            let nodes = f.enumerate_nodes(ctx);
            assert_eq!(nodes.num_global_independent, 27);
        });
    }

    #[test]
    fn multitree_shared_boundary_nodes_counted_once() {
        // Two unit trees side by side at level 1: 3x5 usable grid = 15
        // nodes (the shared edge's 3 nodes counted once).
        let conn = Arc::new(BrickConnectivity::<2>::new([2, 1], [false, false]));
        Cluster::run(2, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 1);
            let nodes = f.enumerate_nodes(ctx);
            assert_eq!(nodes.num_global_independent, 15);
        });
    }

    #[test]
    fn hanging_nodes_on_balanced_interface() {
        // Refine one quadrant once: the interface between level-1 and
        // level-2 leaves carries hanging nodes at the edge midpoints.
        let conn = Arc::new(BrickConnectivity::<2>::unit());
        Cluster::run(1, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 1);
            f.refine(false, 2, |_, o| o.coords == [0, 0]);
            // Already balanced (single level difference).
            let nodes = f.enumerate_nodes(ctx);
            // Nodes: 3x3 coarse grid (9) + 5x5 fine grid in quadrant 0
            // minus shared corners... count hanging explicitly: the two
            // T-intersections at the quadrant's outer edges.
            assert_eq!(nodes.num_hanging(), 2);
            // Independent: 9 coarse + fine-grid interior/edge nodes that
            // are corners of all their touching leaves.
            let total = nodes.nodes.len();
            assert_eq!(total as u64 - 2, nodes.num_global_independent);
        });
    }

    #[test]
    fn t_intersections_once_per_face() {
        // Figure 1's caption: on a face-balanced mesh every leaf edge
        // contains at most ONE hanging node strictly inside it.
        let conn = Arc::new(BrickConnectivity::<2>::unit());
        Cluster::run(2, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 1);
            f.refine(true, 5, |_, o| o.coords[0] == o.coords[1]);
            f.balance(
                ctx,
                Condition::FACE,
                BalanceVariant::New,
                ReversalScheme::Notify,
            );
            let nodes = f.enumerate_nodes(ctx);
            let hanging: Vec<[i64; 2]> = nodes
                .nodes
                .iter()
                .filter(|n| n.hanging)
                .map(|n| n.gcoord)
                .collect();
            assert!(!hanging.is_empty(), "graded mesh must have T-intersections");
            let leaves: Vec<Octant<2>> = f.trees().flat_map(|(_, v)| v.iter()).collect();
            for o in &leaves {
                for axis in 0..2 {
                    for side in 0..2 {
                        // Edge of o along `axis == fixed`, varying other.
                        let fixed = o.coords[axis] as i64 + side * o.len() as i64;
                        let lo = o.coords[1 - axis] as i64;
                        let hi = lo + o.len() as i64;
                        let inside = hanging
                            .iter()
                            .filter(|g| g[axis] == fixed && g[1 - axis] > lo && g[1 - axis] < hi)
                            .count();
                        assert!(
                            inside <= 1,
                            "leaf {o:?} edge carries {inside} hanging nodes"
                        );
                    }
                }
            }
        });
    }

    #[test]
    fn node_counts_partition_invariant() {
        let conn = Arc::new(BrickConnectivity::<2>::new([2, 2], [false, false]));
        let mut counts = vec![];
        for p in [1usize, 2, 5] {
            let conn = Arc::clone(&conn);
            let out = Cluster::run(p, move |ctx| {
                let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 1);
                f.refine(true, 4, |t, o| t == 0 && o.coords[0] + o.len() == (1 << 24));
                f.balance(
                    ctx,
                    Condition::full(2),
                    BalanceVariant::New,
                    ReversalScheme::Notify,
                );
                let nodes = f.enumerate_nodes(ctx);
                nodes.num_global_independent
            });
            counts.push(out.results[0]);
        }
        assert_eq!(counts[0], counts[1]);
        assert_eq!(counts[0], counts[2]);
    }

    #[test]
    fn l_shaped_masked_brick_nodes() {
        // Three unit trees in an L at level 1: count the grid nodes of
        // the L-shaped domain. Grid: 2x2 cells per tree; L covers trees
        // (0,0), (1,0), (0,1). Unique nodes of the L at spacing 1/2:
        // full 5x5 grid (25) minus the 2x2 interior-of-the-hole block
        // strictly inside the missing tree (its 4 interior + 4 edge...
        // compute: nodes with both coords > 1.0 (in tree units) belong
        // only to the missing tree; at level 1 those are (1.5, 1.5),
        // (1.5, 2), (2, 1.5), (2, 2) = 4 nodes.
        let conn = Arc::new(BrickConnectivity::<2>::masked([2, 2], [false; 2], |c| {
            c != [1, 1]
        }));
        Cluster::run(2, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 1);
            let nodes = f.enumerate_nodes(ctx);
            assert_eq!(nodes.num_global_independent, 25 - 4);
            assert_eq!(nodes.num_hanging(), 0);
        });
    }

    #[test]
    fn periodic_nodes_wrap() {
        // Fully periodic single tree at level 1: nodes form a 2x2 torus
        // grid -> 4 independent nodes.
        let conn = Arc::new(BrickConnectivity::<2>::new([1, 1], [true, true]));
        Cluster::run(1, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 1);
            let nodes = f.enumerate_nodes(ctx);
            assert_eq!(nodes.num_global_independent, 4);
        });
    }
}
