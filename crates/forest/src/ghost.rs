//! Ghost layers: each rank's copy of the remote leaves adjacent to its
//! partition.
//!
//! Not used by the balance algorithm itself (which exchanges queries and
//! seeds instead), but the canonical next step for any numerical code on
//! a partitioned forest, and a good consumer of the same insulation/
//! marker machinery. Mirrors p4est's `ghost` module: one layer of
//! neighbor octants across faces, edges, and corners, including across
//! tree boundaries.

use crate::codec::{self, RunEncoder};
use crate::connectivity::TreeId;
use crate::forest::Forest;
use forestbal_comm::{reverse_notify, Comm};
use forestbal_octant::{directions, key, Octant, PackedOctant};
use std::collections::BTreeMap;

const GHOST_TAG: u32 = 0xBA1A_0020;

/// Minimum leaves per chunk when the candidate scan runs on the pool;
/// below this the per-chunk overhead beats the win.
const GHOST_PAR_CHUNK: usize = 1 << 10;

/// The remote leaves adjacent to this rank's partition, each with its
/// owner rank, stored under their *home* tree in in-root coordinates and
/// sorted in Morton order per tree.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GhostLayer<const D: usize> {
    per_tree: BTreeMap<TreeId, Vec<(usize, Octant<D>)>>,
}

impl<const D: usize> GhostLayer<D> {
    /// Ghosts of one tree (sorted by octant).
    pub fn tree(&self, t: TreeId) -> &[(usize, Octant<D>)] {
        self.per_tree.get(&t).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate all `(tree, owner, octant)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (TreeId, usize, &Octant<D>)> {
        self.per_tree
            .iter()
            .flat_map(|(&t, v)| v.iter().map(move |(o, oct)| (t, *o, oct)))
    }

    /// Total number of ghost octants.
    pub fn len(&self) -> usize {
        self.per_tree.values().map(Vec::len).sum()
    }

    /// Is the layer empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splice a changed remote leaf into the layer: every entry of `t`
    /// overlapping `g` (a stale ancestor, or the pre-split/pre-coarsen
    /// leaves of its region) is dropped and `(owner, g)` takes its sorted
    /// place. The incremental balance of [`crate::incremental`] keeps a
    /// prior epoch's layer exact with this as remote adaptations arrive.
    pub fn patch(&mut self, t: TreeId, owner: usize, g: Octant<D>) {
        let v = self.per_tree.entry(t).or_default();
        let (lo, hi) = (g.index(), g.last_index());
        v.retain(|&(_, o)| o.last_index() < lo || o.index() > hi);
        let i = v.partition_point(|&(_, o)| o < g);
        v.insert(i, (owner, g));
    }

    /// Does the layer contain exactly this `(tree, owner, octant)` entry?
    pub fn contains(&self, t: TreeId, owner: usize, g: &Octant<D>) -> bool {
        self.tree(t)
            .binary_search_by_key(g, |&(_, o)| o)
            .is_ok_and(|i| self.tree(t)[i].0 == owner)
    }
}

impl<const D: usize> Forest<D> {
    /// Collect the ghost layer: every remote leaf whose insulation layer
    /// overlaps this rank's partition (equivalently, every remote leaf
    /// adjacent to one of ours, across tree boundaries included).
    pub fn ghost_layer(&mut self, ctx: &impl Comm) -> GhostLayer<D> {
        forestbal_trace::span_begin("ghost", || ctx.now_ns());
        self.update_markers(ctx);
        let me = ctx.rank();

        // Symmetric construction: send each of my boundary leaves, in its
        // *home* tree and coordinates, to every rank owning part of its
        // insulation layer; what I receive is exactly my ghost layer. The
        // leaf ships as its packed key straight out of the SoA storage,
        // framed into tree runs (wire format v2).
        //
        // Candidate generation (the per-leaf direction/ownership scan) is
        // chunked across the pool: each chunk emits its `(owner, key)`
        // pairs in leaf-scan order, and the encoder replays them in chunk
        // order below — byte-identical buffers for any thread count.
        let this: &Forest<D> = self;
        let pool = forestbal_par::current();
        let mut chunks: Vec<(TreeId, &[u128])> = Vec::new();
        for (t, keys) in this.local.iter() {
            if pool.threads() > 1 {
                for r in pool.chunk_ranges(keys.len(), GHOST_PAR_CHUNK) {
                    if !r.is_empty() {
                        chunks.push((t, &keys[r]));
                    }
                }
            } else {
                chunks.push((t, keys));
            }
        }
        let scan_chunk = |&(t, keys): &(TreeId, &[u128])| -> Vec<(usize, u128)> {
            let mut cand = Vec::new();
            for &k in keys {
                let r = key::unpack::<D>(k);
                let mut sent_to: Vec<usize> = Vec::new();
                for dir in directions::<D>() {
                    let n = r.neighbor(&dir);
                    let Some((t2, n2)) = this.connectivity().transform(t, &n) else {
                        continue;
                    };
                    for owner in this.owners_of_range(t2, n2.index(), n2.last_index()) {
                        if owner == me || sent_to.contains(&owner) {
                            continue;
                        }
                        sent_to.push(owner);
                        cand.push((owner, k));
                    }
                }
            }
            cand
        };
        let candidates: Vec<Vec<(usize, u128)>> = if pool.threads() > 1 && chunks.len() > 1 {
            pool.map(chunks.len(), |c, _| scan_chunk(&chunks[c]))
        } else {
            chunks.iter().map(scan_chunk).collect()
        };
        let mut out: BTreeMap<usize, (Vec<u8>, RunEncoder)> = BTreeMap::new();
        let mut sent_octants = 0u64;
        for ((t, _), cand) in chunks.iter().zip(&candidates) {
            for &(owner, k) in cand {
                let (buf, enc) = out.entry(owner).or_default();
                enc.push::<D>(buf, *t, k);
                sent_octants += 1;
            }
        }

        let receivers: Vec<usize> = out.keys().copied().collect();
        let senders = reverse_notify(ctx, &receivers);
        for (&d, (buf, enc)) in out.iter_mut() {
            enc.finish(buf);
            ctx.send(d, GHOST_TAG, buf.clone());
        }
        let mut layer = GhostLayer::default();
        for s in senders {
            let (src, data) = ctx.recv(Some(s), GHOST_TAG);
            codec::for_each_run::<D>(&data, |t, keys| {
                let v = layer.per_tree.entry(t).or_default();
                v.extend(keys.iter().map(|&k| (src, key::unpack::<D>(k))));
            });
        }
        for v in layer.per_tree.values_mut() {
            v.sort_by_key(|&(_, o)| o);
            v.dedup();
        }
        forestbal_trace::counter_add("ghost.sent_octants", sent_octants);
        forestbal_trace::counter_add("ghost.recv_octants", layer.len() as u64);
        forestbal_trace::span_end(|| ctx.now_ns());
        layer
    }

    /// Distributed 2:1 check: is the forest `cond`-balanced? Each rank
    /// verifies its leaves against local leaves and the ghost layer; the
    /// verdicts are combined with one allreduce. (The insulation fact
    /// guarantees any violating pair is visible to at least one of the
    /// two owners through its ghosts.)
    pub fn is_balanced_distributed(
        &mut self,
        ctx: &impl Comm,
        cond: forestbal_core::Condition,
    ) -> bool {
        let ghosts = self.ghost_layer(ctx);
        let mut ok = true;
        'outer: for (t, v) in self.trees() {
            for o in v.iter() {
                for dir in directions::<D>() {
                    if !cond.constrains(forestbal_octant::codim(&dir)) {
                        continue;
                    }
                    let n = o.neighbor(&dir);
                    let Some((t2, n2)) = self.connectivity().transform(t, &n) else {
                        continue;
                    };
                    // The containing leaf (local or ghost), if coarser
                    // than n2, must be within one level of o.
                    if let Some(c) = self.containing_local_or_ghost(&ghosts, t2, &n2) {
                        if c.level + 1 < o.level {
                            ok = false;
                            break 'outer;
                        }
                    }
                }
            }
        }
        ctx.allreduce_and(ok)
    }

    /// The leaf containing octant `q` among local leaves and ghosts.
    fn containing_local_or_ghost(
        &self,
        ghosts: &GhostLayer<D>,
        t: TreeId,
        q: &Octant<D>,
    ) -> Option<Octant<D>> {
        if let Some(v) = self.local.get(t) {
            let qk = key::pack(q);
            let i = v.partition_point(|&k| k <= qk);
            if i > 0 && PackedOctant::<D>(v[i - 1]).contains(PackedOctant(qk)) {
                return Some(key::unpack(v[i - 1]));
            }
        }
        let gv = ghosts.tree(t);
        let i = gv.partition_point(|&(_, o)| o <= *q);
        (i > 0 && gv[i - 1].1.contains(q)).then(|| gv[i - 1].1)
    }

    /// Is octant `g` of tree `tg` adjacent (sharing any boundary object)
    /// to some local leaf, including across tree boundaries?
    pub fn touches_local(&self, tg: TreeId, g: &Octant<D>) -> bool {
        for dir in directions::<D>() {
            let n = g.neighbor(&dir);
            let Some((t2, n2)) = self.connectivity().transform(tg, &n) else {
                continue;
            };
            let Some(v) = self.local.get(t2) else {
                continue;
            };
            let lo = v.partition_point(|&k| PackedOctant::<D>(k).last_index() < n2.index());
            if lo < v.len() && PackedOctant::<D>(v[lo]).index() <= n2.last_index() {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::BrickConnectivity;
    use forestbal_comm::{Cluster, Comm};
    use std::sync::Arc;

    #[test]
    fn uniform_ghosts_are_range_neighbors() {
        let conn = Arc::new(BrickConnectivity::<2>::unit());
        Cluster::run(4, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 3);
            let ghosts = f.ghost_layer(ctx);
            assert!(!ghosts.is_empty(), "interior ranks must see ghosts");
            let global = f.gather(ctx);
            for (t, owner, g) in ghosts.iter() {
                assert_ne!(owner, ctx.rank());
                // Each ghost is a real global leaf...
                assert!(global[&t].binary_search(g).is_ok());
                // ...not a local one...
                let local: Vec<_> = f.trees().filter(|&(tt, _)| tt == t).collect();
                for (_, v) in local {
                    assert!(v.binary_search(g).is_err());
                }
                // ...and adjacent to the local partition.
                assert!(f.touches_local(t, g), "ghost {g:?} does not touch rank");
            }
        });
    }

    #[test]
    fn ghosts_cover_all_local_boundary_neighbors() {
        let conn = Arc::new(BrickConnectivity::<2>::unit());
        Cluster::run(3, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 3);
            let ghosts = f.ghost_layer(ctx);
            let global = f.gather(ctx);
            // Every neighbor of a local leaf is local or a ghost.
            let locals: Vec<(TreeId, Vec<Octant<2>>)> =
                f.trees().map(|(t, v)| (t, v.iter().collect())).collect();
            for (t, v) in locals {
                for o in &v {
                    for dir in directions::<2>() {
                        let n = o.neighbor(&dir);
                        if !n.is_inside_root() {
                            continue;
                        }
                        // Uniform forest: the neighbor IS a leaf.
                        assert!(global[&t].binary_search(&n).is_ok());
                        let local_hit = v.binary_search(&n).is_ok();
                        let ghost_hit =
                            ghosts.tree(t).binary_search_by_key(&n, |&(_, g)| g).is_ok();
                        assert!(
                            local_hit || ghost_hit,
                            "neighbor {n:?} neither local nor ghost"
                        );
                    }
                }
            }
        });
    }

    #[test]
    fn cross_tree_ghosts() {
        let conn = Arc::new(BrickConnectivity::<2>::new([2, 1], [false; 2]));
        Cluster::run(2, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 2);
            // With 2 trees and 2 ranks, the partition boundary is the
            // tree boundary: ghosts live in the other tree.
            let ghosts = f.ghost_layer(ctx);
            assert!(!ghosts.is_empty());
            let other_tree = if ctx.rank() == 0 { 1 } else { 0 };
            assert!(
                !ghosts.tree(other_tree).is_empty(),
                "rank {} expected ghosts in tree {other_tree}",
                ctx.rank()
            );
        });
    }

    #[test]
    fn distributed_balance_check() {
        use crate::balance::{BalanceVariant, ReversalScheme};
        use forestbal_core::Condition;
        let conn = Arc::new(BrickConnectivity::<2>::unit());
        Cluster::run(3, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 1);
            f.refine(true, 5, |_, o| {
                o.coords[0] + o.len() == (1 << 23) && o.coords[1] + o.len() == (1 << 23)
            });
            let cond = Condition::full(2);
            assert!(
                !f.is_balanced_distributed(ctx, cond),
                "deep center refinement must violate 2:1"
            );
            f.balance(ctx, cond, BalanceVariant::New, ReversalScheme::Notify);
            assert!(f.is_balanced_distributed(ctx, cond));
            // Face balance is implied by corner balance.
            assert!(f.is_balanced_distributed(ctx, Condition::FACE));
        });
    }

    #[test]
    fn single_rank_has_no_ghosts() {
        let conn = Arc::new(BrickConnectivity::<2>::new([2, 2], [false; 2]));
        Cluster::run(1, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 2);
            assert!(f.ghost_layer(ctx).is_empty());
        });
    }
}
