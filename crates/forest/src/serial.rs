//! Serial (single-address-space) forest balance: the test oracle at the
//! forest level.
//!
//! Extends the ripple reference of `forestbal_core::oracle` across tree
//! boundaries: neighbor regions leaving a tree are remapped through the
//! connectivity, and the split worklist spans all trees. Independent of
//! the λ functions, seeds, and the parallel machinery it validates.
//!
//! This oracle deliberately stays on struct octants and `BTreeSet`s
//! rather than the packed-key data plane of [`crate::store`]: it is
//! test-only, off every benchmark path, and its value is being an
//! *independent* implementation — sharing the packed arithmetic with the
//! code under test would weaken the cross-check.

use crate::connectivity::{BrickConnectivity, TreeId};
use forestbal_core::Condition;
use forestbal_octant::{codim, complete_subtree, directions, linearize, Octant};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Balance an entire forest in one address space: complete each tree from
/// its pinned leaves, then ripple-split across faces/edges/corners and
/// tree boundaries until the 2:1 condition holds everywhere.
///
/// Trees absent from `input` are treated as unrefined roots.
pub fn serial_forest_balance<const D: usize>(
    conn: &BrickConnectivity<D>,
    input: &BTreeMap<TreeId, Vec<Octant<D>>>,
    cond: Condition,
) -> BTreeMap<TreeId, Vec<Octant<D>>> {
    let root = Octant::<D>::root();
    let mut leaves: BTreeMap<TreeId, BTreeSet<Octant<D>>> = BTreeMap::new();
    let mut work: VecDeque<(TreeId, Octant<D>)> = VecDeque::new();
    for t in 0..conn.num_trees() as TreeId {
        let mut pins = input.get(&t).cloned().unwrap_or_default();
        linearize(&mut pins);
        let complete = complete_subtree(&root, &pins);
        for o in &complete {
            work.push_back((t, *o));
        }
        leaves.insert(t, complete.into_iter().collect());
    }

    while let Some((t, o)) = work.pop_front() {
        if !leaves[&t].contains(&o) {
            continue; // split since enqueued
        }
        for dir in directions::<D>() {
            if !cond.constrains(codim(&dir)) {
                continue;
            }
            let n = o.neighbor(&dir);
            let Some((nt, n)) = conn.transform(t, &n) else {
                continue; // leaves the forest
            };
            loop {
                let set = leaves.get_mut(&nt).unwrap();
                let Some(&container) = set.range(..=n).next_back() else {
                    break;
                };
                if !container.contains(&n) || container.level + 1 >= o.level {
                    break;
                }
                set.remove(&container);
                for i in 0..Octant::<D>::NUM_CHILDREN {
                    let c = container.child(i);
                    set.insert(c);
                    work.push_back((nt, c));
                }
            }
        }
    }

    leaves
        .into_iter()
        .map(|(t, s)| (t, s.into_iter().collect()))
        .collect()
}

/// Check the 2:1 condition across the whole forest (for assertions).
pub fn is_forest_balanced<const D: usize>(
    conn: &BrickConnectivity<D>,
    forest: &BTreeMap<TreeId, Vec<Octant<D>>>,
    cond: Condition,
) -> bool {
    let sets: BTreeMap<TreeId, BTreeSet<Octant<D>>> = forest
        .iter()
        .map(|(&t, v)| (t, v.iter().copied().collect()))
        .collect();
    for (&t, v) in forest {
        for o in v {
            for dir in directions::<D>() {
                if !cond.constrains(codim(&dir)) {
                    continue;
                }
                let n = o.neighbor(&dir);
                let Some((nt, n)) = conn.transform(t, &n) else {
                    continue;
                };
                let Some(set) = sets.get(&nt) else { continue };
                if let Some(c) = set.range(..=n).next_back() {
                    if c.contains(&n) && c.level + 1 < o.level {
                        return false;
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use forestbal_octant::{is_complete, is_linear};

    #[test]
    fn single_tree_matches_core_oracle() {
        let conn = BrickConnectivity::<2>::unit();
        let root = Octant::<2>::root();
        let leaf = root.child(0).child(3).child(3).child(3);
        let mut input = BTreeMap::new();
        input.insert(0, vec![leaf]);
        for k in 1..=2 {
            let cond = Condition::new(k, 2).unwrap();
            let got = serial_forest_balance(&conn, &input, cond);
            let want = forestbal_core::oracle::ripple_balance(&root, &[leaf], cond);
            assert_eq!(got[&0], want);
            assert!(is_forest_balanced(&conn, &got, cond));
        }
    }

    #[test]
    fn refinement_ripples_across_tree_face() {
        // A deep leaf hugging the right edge of tree 0 forces refinement
        // in tree 1.
        let conn = BrickConnectivity::<2>::new([2, 1], [false; 2]);
        let mut o = Octant::<2>::root();
        for _ in 0..5 {
            o = o.child(3); // toward the (1,1) corner of tree 0
        }
        let mut input = BTreeMap::new();
        input.insert(0, vec![o]);
        let cond = Condition::full(2);
        let out = serial_forest_balance(&conn, &input, cond);
        assert!(is_forest_balanced(&conn, &out, cond));
        assert!(out[&1].len() > 1, "tree 1 must refine: {:?}", out[&1].len());
        for v in out.values() {
            assert!(is_linear(v));
            assert!(is_complete(v, &Octant::root()));
        }
        // Unbalanced input forest really was unbalanced.
        let mut as_forest = BTreeMap::new();
        as_forest.insert(0, out[&0].clone());
        as_forest.insert(1, vec![Octant::<2>::root()]);
        assert!(!is_forest_balanced(&conn, &as_forest, cond));
    }

    #[test]
    fn periodic_wrap_ripples() {
        // Periodic in x: refinement at the left edge of tree 0 reaches
        // tree 1 from the "far" side.
        let conn = BrickConnectivity::<2>::new([2, 1], [true, false]);
        let mut o = Octant::<2>::root();
        for _ in 0..5 {
            o = o.child(2); // toward the (0,1) corner: left edge
        }
        let mut input = BTreeMap::new();
        input.insert(0, vec![o]);
        let cond = Condition::full(2);
        let out = serial_forest_balance(&conn, &input, cond);
        assert!(is_forest_balanced(&conn, &out, cond));
        assert!(out[&1].len() > 1, "periodic neighbor must refine");
    }

    #[test]
    fn corner_tree_coupling() {
        // 2x2 brick: a leaf at the inner corner of tree 0 constrains the
        // diagonal tree 3 through the shared corner.
        let conn = BrickConnectivity::<2>::new([2, 2], [false; 2]);
        let mut o = Octant::<2>::root();
        for _ in 0..4 {
            o = o.child(3);
        }
        let mut input = BTreeMap::new();
        input.insert(0, vec![o]);
        let out = serial_forest_balance(&conn, &input, Condition::full(2));
        assert!(is_forest_balanced(&conn, &out, Condition::full(2)));
        assert!(
            out[&3].len() > 1,
            "diagonal tree must refine under corner balance"
        );
    }
}
