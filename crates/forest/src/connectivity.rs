//! Brick connectivity: a Cartesian grid of octrees with axis-aligned
//! (identity) inter-tree transforms and optional per-axis periodicity.
//!
//! The paper's forests come from general mesh generators (the Antarctica
//! mesh connects >28,000 octrees). The balance algorithms only require a
//! way to remap an out-of-root octant into the neighboring tree's frame;
//! a brick exercises every such code path (cross-tree neighborhoods,
//! insulation layers spanning trees, forest-wide SFC order) while keeping
//! the transform a pure translation — the orientation bookkeeping of
//! general connectivities is orthogonal to balance. The paper's own weak
//! scaling forest (Figure 14, six octrees) is a `3x2x1` brick.

use forestbal_octant::{Coord, Octant, ROOT_LEN};

/// Identifies one octree of the forest.
pub type TreeId = u32;

/// An `n_0 x ... x n_{D-1}` grid of octrees, optionally *masked* to an
/// irregular active subset (the Antarctica macro mesh is, at heart, an
/// irregular subset of a grid covering the continent). Tree ids stay
/// contiguous `0..num_trees` in row-major order over the active cells.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BrickConnectivity<const D: usize> {
    dims: [usize; D],
    periodic: [bool; D],
    /// For masked bricks: grid cell (row-major) -> tree id, or
    /// `INACTIVE`; and tree id -> grid cell. `None` = full brick.
    mask: Option<MaskTables>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct MaskTables {
    grid_to_tree: Vec<TreeId>,
    tree_to_grid: Vec<usize>,
}

const INACTIVE: TreeId = TreeId::MAX;

impl<const D: usize> BrickConnectivity<D> {
    /// A brick of `dims` trees with per-axis periodicity flags.
    pub fn new(dims: [usize; D], periodic: [bool; D]) -> Self {
        assert!(
            dims.iter().all(|&d| d >= 1),
            "brick dimensions must be positive"
        );
        BrickConnectivity {
            dims,
            periodic,
            mask: None,
        }
    }

    /// A masked brick: only grid cells for which `keep` returns true
    /// become trees. At least one cell must survive. Trees are numbered
    /// contiguously in row-major grid order.
    pub fn masked(
        dims: [usize; D],
        periodic: [bool; D],
        mut keep: impl FnMut([usize; D]) -> bool,
    ) -> Self {
        let total: usize = dims.iter().product();
        let mut grid_to_tree = vec![INACTIVE; total];
        let mut tree_to_grid = Vec::new();
        for (g, slot) in grid_to_tree.iter_mut().enumerate() {
            let mut rem = g;
            let coords: [usize; D] = std::array::from_fn(|i| {
                let c = rem % dims[i];
                rem /= dims[i];
                c
            });
            if keep(coords) {
                *slot = tree_to_grid.len() as TreeId;
                tree_to_grid.push(g);
            }
        }
        assert!(!tree_to_grid.is_empty(), "mask removed every tree");
        if tree_to_grid.len() == total {
            return BrickConnectivity {
                dims,
                periodic,
                mask: None,
            };
        }
        BrickConnectivity {
            dims,
            periodic,
            mask: Some(MaskTables {
                grid_to_tree,
                tree_to_grid,
            }),
        }
    }

    /// A single octree (the unit cube).
    pub fn unit() -> Self {
        BrickConnectivity {
            dims: [1; D],
            periodic: [false; D],
            mask: None,
        }
    }

    /// Number of trees in the forest.
    pub fn num_trees(&self) -> usize {
        match &self.mask {
            Some(m) => m.tree_to_grid.len(),
            None => self.dims.iter().product(),
        }
    }

    /// Grid dimensions.
    pub fn dims(&self) -> [usize; D] {
        self.dims
    }

    /// Per-axis periodicity flags.
    pub fn periodic(&self) -> [bool; D] {
        self.periodic
    }

    /// Is the grid cell at `coords` an active tree?
    pub fn is_active(&self, coords: [usize; D]) -> bool {
        self.try_tree_id(coords).is_some()
    }

    /// Grid coordinates of tree `t` (row-major, axis 0 fastest).
    pub fn tree_coords(&self, t: TreeId) -> [usize; D] {
        let mut rem = match &self.mask {
            Some(m) => m.tree_to_grid[t as usize],
            None => t as usize,
        };
        std::array::from_fn(|i| {
            let c = rem % self.dims[i];
            rem /= self.dims[i];
            c
        })
    }

    /// Tree id at grid coordinates, if that cell is active.
    pub fn try_tree_id(&self, coords: [usize; D]) -> Option<TreeId> {
        let mut g = 0usize;
        for i in (0..D).rev() {
            debug_assert!(coords[i] < self.dims[i]);
            g = g * self.dims[i] + coords[i];
        }
        match &self.mask {
            Some(m) => (m.grid_to_tree[g] != INACTIVE).then(|| m.grid_to_tree[g]),
            None => Some(g as TreeId),
        }
    }

    /// Tree id at grid coordinates.
    ///
    /// # Panics
    /// Panics if the cell is masked out.
    pub fn tree_id(&self, coords: [usize; D]) -> TreeId {
        self.try_tree_id(coords).expect("grid cell is masked out")
    }

    /// Remap an octant with out-of-root coordinates in tree `t` into the
    /// frame of the tree that actually contains it. Returns `None` when
    /// the octant leaves the forest (beyond a non-periodic boundary).
    /// In-root octants are returned unchanged.
    ///
    /// The octant must lie within one root length of the root cube (true
    /// for every neighbor/insulation construction) so that it maps to at
    /// most one neighboring tree per axis.
    pub fn transform(&self, t: TreeId, o: &Octant<D>) -> Option<(TreeId, Octant<D>)> {
        let mut tc = self.tree_coords(t);
        let mut coords = o.coords;
        for i in 0..D {
            debug_assert!(
                coords[i] >= -ROOT_LEN && coords[i] + o.len() <= 2 * ROOT_LEN,
                "octant strays more than one tree away"
            );
            let off: i64 = if coords[i] < 0 {
                -1
            } else if coords[i] >= ROOT_LEN {
                1
            } else {
                0
            };
            if off != 0 {
                let n = self.dims[i] as i64;
                let mut nt = tc[i] as i64 + off;
                if nt < 0 || nt >= n {
                    if self.periodic[i] {
                        nt = nt.rem_euclid(n);
                    } else {
                        return None;
                    }
                }
                tc[i] = nt as usize;
                coords[i] -= off as Coord * ROOT_LEN;
            }
        }
        let t2 = self.try_tree_id(tc)?; // masked-out neighbor = boundary
        Some((
            t2,
            Octant {
                coords,
                level: o.level,
            },
        ))
    }

    /// The translation that expresses frame `from`'s coordinates in frame
    /// `to`'s coordinates, if the trees are identical or grid-adjacent
    /// (within one step per axis, honoring periodicity). Adding the result
    /// to an octant in `from`'s frame yields its coordinates in `to`'s
    /// frame.
    pub fn frame_offset(&self, from: TreeId, to: TreeId) -> Option<[Coord; D]> {
        let fc = self.tree_coords(from);
        let tc = self.tree_coords(to);
        let mut off = [0 as Coord; D];
        for i in 0..D {
            let mut d = fc[i] as i64 - tc[i] as i64;
            if self.periodic[i] {
                let n = self.dims[i] as i64;
                // Choose the representative step in {-1, 0, 1} if any.
                if d > 1 {
                    d -= n;
                }
                if d < -1 {
                    d += n;
                }
            }
            if d.abs() > 1 {
                return None;
            }
            off[i] = d as Coord * ROOT_LEN;
        }
        Some(off)
    }
}

/// Translate an octant by a frame offset.
pub fn translate<const D: usize>(o: &Octant<D>, off: &[Coord; D]) -> Octant<D> {
    let mut coords = o.coords;
    for i in 0..D {
        coords[i] += off[i];
    }
    Octant {
        coords,
        level: o.level,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_indexing_roundtrip() {
        let b = BrickConnectivity::<3>::new([3, 2, 1], [false; 3]);
        assert_eq!(b.num_trees(), 6);
        for t in 0..6 {
            assert_eq!(b.tree_id(b.tree_coords(t)), t);
        }
        assert_eq!(b.tree_coords(0), [0, 0, 0]);
        assert_eq!(b.tree_coords(1), [1, 0, 0]);
        assert_eq!(b.tree_coords(3), [0, 1, 0]);
    }

    #[test]
    fn transform_interior_is_identity() {
        let b = BrickConnectivity::<2>::new([2, 2], [false; 2]);
        let o = Octant::<2>::root().child(1);
        assert_eq!(b.transform(0, &o), Some((0, o)));
    }

    #[test]
    fn transform_across_face() {
        let b = BrickConnectivity::<2>::new([2, 1], [false; 2]);
        // Right neighbor of the rightmost quadrant of tree 0 is in tree 1.
        let o = Octant::<2>::root().child(1);
        let n = o.neighbor(&[1, 0]);
        assert!(!n.is_inside_root());
        let (t, m) = b.transform(0, &n).unwrap();
        assert_eq!(t, 1);
        assert_eq!(m, Octant::<2>::root().child(0));
    }

    #[test]
    fn transform_across_corner() {
        let b = BrickConnectivity::<2>::new([2, 2], [false; 2]);
        let o = Octant::<2>::root().child(3); // top-right quadrant of tree 0
        let n = o.neighbor(&[1, 1]);
        let (t, m) = b.transform(0, &n).unwrap();
        assert_eq!(t, 3); // diagonal tree
        assert_eq!(m, Octant::<2>::root().child(0));
    }

    #[test]
    fn transform_off_the_edge() {
        let b = BrickConnectivity::<2>::new([2, 1], [false; 2]);
        let o = Octant::<2>::root().child(0);
        assert_eq!(b.transform(0, &o.neighbor(&[-1, 0])), None);
        assert_eq!(b.transform(0, &o.neighbor(&[0, -1])), None);
    }

    #[test]
    fn periodic_wraparound() {
        let b = BrickConnectivity::<2>::new([2, 1], [true, true]);
        let o = Octant::<2>::root().child(0);
        let left = o.neighbor(&[-1, 0]);
        let (t, m) = b.transform(0, &left).unwrap();
        assert_eq!(t, 1);
        assert_eq!(m, Octant::<2>::root().child(1));
        // Vertical wrap within the same (only) row.
        let down = o.neighbor(&[0, -1]);
        let (t2, m2) = b.transform(0, &down).unwrap();
        assert_eq!(t2, 0);
        assert_eq!(m2, Octant::<2>::root().child(2));
    }

    #[test]
    fn frame_offsets_match_transform() {
        let b = BrickConnectivity::<2>::new([3, 2], [false; 2]);
        let o = Octant::<2>::root().child(3).child(3);
        let n = o.neighbor(&[1, 1]);
        let (t, m) = b.transform(b.tree_id([1, 0]), &n).unwrap();
        assert_eq!(t, b.tree_id([2, 1]));
        // Express m back in the original frame.
        let off = b.frame_offset(t, b.tree_id([1, 0])).unwrap();
        assert_eq!(translate(&m, &off), n);
        // Non-adjacent trees have no frame offset.
        assert_eq!(b.frame_offset(b.tree_id([0, 0]), b.tree_id([2, 0])), None);
    }

    #[test]
    fn three_by_two_by_one_brick_fig14() {
        // The weak-scaling forest of Figure 14: six octrees.
        let b = BrickConnectivity::<3>::new([3, 2, 1], [false; 3]);
        assert_eq!(b.num_trees(), 6);
        // Middle tree has neighbors on both x sides and one y side.
        let mid = b.tree_id([1, 0, 0]);
        let o = Octant::<3>::root().child(0);
        assert!(b.transform(mid, &o.neighbor(&[-1, 0, 0])).is_some());
        assert!(b.transform(mid, &o.neighbor(&[0, 0, -1])).is_none());
    }

    #[test]
    fn masked_brick_l_shape() {
        // 2x2 grid with the top-right cell removed: an L-shaped domain.
        let b = BrickConnectivity::<2>::masked([2, 2], [false; 2], |c| c != [1, 1]);
        assert_eq!(b.num_trees(), 3);
        // Ids are contiguous in row-major order over active cells.
        assert_eq!(b.tree_coords(0), [0, 0]);
        assert_eq!(b.tree_coords(1), [1, 0]);
        assert_eq!(b.tree_coords(2), [0, 1]);
        assert_eq!(b.try_tree_id([1, 1]), None);
        assert!(!b.is_active([1, 1]));
        // Transform into the hole acts like a domain boundary.
        let o = Octant::<2>::root().child(3);
        let t1 = b.tree_id([1, 0]);
        assert_eq!(b.transform(t1, &o.neighbor(&[0, 1])), None);
        // But within the L everything connects.
        let left = Octant::<2>::root().child(0);
        let (t, m) = b.transform(t1, &left.neighbor(&[-1, 0])).unwrap();
        assert_eq!(t, 0);
        assert_eq!(m, Octant::<2>::root().child(1));
    }

    #[test]
    fn full_mask_is_plain_brick() {
        let a = BrickConnectivity::<2>::new([3, 2], [true, false]);
        let b = BrickConnectivity::<2>::masked([3, 2], [true, false], |_| true);
        assert_eq!(a, b);
    }

    #[test]
    fn masked_brick_roundtrips_ids() {
        let b = BrickConnectivity::<3>::masked([3, 3, 1], [false; 3], |c| {
            c[0] != 1 || c[1] != 1 // remove the center column
        });
        assert_eq!(b.num_trees(), 8);
        for t in 0..8 {
            assert_eq!(b.try_tree_id(b.tree_coords(t)), Some(t));
        }
    }

    #[test]
    fn masked_brick_balances_like_oracle() {
        // End-to-end: parallel balance on an L-shaped forest equals the
        // serial oracle (the oracle itself goes through `transform`).
        use crate::balance::{BalanceVariant, ReversalScheme};
        use crate::forest::Forest;
        use crate::serial::serial_forest_balance;
        use forestbal_comm::Cluster;
        use forestbal_core::Condition;
        use std::sync::Arc;
        let conn = Arc::new(BrickConnectivity::<2>::masked([2, 2], [false; 2], |c| {
            c != [1, 1]
        }));
        for p in [1usize, 3] {
            let conn2 = Arc::clone(&conn);
            let out = Cluster::run(p, move |ctx| {
                let mut f = Forest::new_uniform(Arc::clone(&conn2), ctx, 1);
                // Refine at the inner corner shared by all three trees.
                f.refine(true, 4, |t, o: &Octant<2>| {
                    t == 0
                        && o.coords[0] + o.len() == forestbal_octant::ROOT_LEN
                        && o.coords[1] + o.len() == forestbal_octant::ROOT_LEN
                });
                let input = f.gather(ctx);
                f.balance(
                    ctx,
                    Condition::full(2),
                    BalanceVariant::New,
                    ReversalScheme::Notify,
                );
                (input, f.gather(ctx))
            });
            let (input, got) = &out.results[0];
            let want = serial_forest_balance(&conn, input, Condition::full(2));
            for (t, v) in &want {
                assert_eq!(got.get(t), Some(v), "P={p} tree {t}");
            }
        }
    }
}
