//! Incremental 2:1 rebalance restricted to dirty insulation regions.
//!
//! The paper's strong-scaling headline (Fig. 16–17) is *Local* balance:
//! after a small adaptation, only the neighborhoods of changed octants
//! need rebalancing, so the cost scales with the size of the change, not
//! the mesh. This module supplies the forest-side machinery the
//! `forestbal-service` epoch loop builds on:
//!
//! * [`AdaptBatch`] / [`Forest::apply_edits`] — targeted refine/coarsen
//!   by leaf, applied in one sorted-merge pass over the SoA key arrays
//!   (edit keys are radix-sorted first; the leaf arrays are never fully
//!   re-sorted), returning the [`DirtySet`] of created leaves.
//! * [`Forest::balance_incremental`] — a *seeded* ripple: instead of
//!   exchanging every boundary leaf each round
//!   ([`Forest::balance_ripple`]), only **changed** leaves travel, the
//!   prior epoch's [`GhostLayer`] is patched in place as they arrive,
//!   and the local fixed point runs over a splice overlay so untouched
//!   parts of the leaf arrays are never rewritten or re-indexed.
//!
//! ## Why the result is bit-identical to a full balance
//!
//! 2:1 balance is a closure operator: every forest has a unique minimal
//! balanced refinement, and [`Forest::balance`] (pinned against
//! [`crate::serial_forest_balance`]) computes exactly that. The seeded
//! ripple splits a leaf only when an actual current leaf forces it
//! (never speculatively), and terminates only when no rank changed
//! anything — a global fixed point of the same closure. Minimality plus
//! closure means the two algorithms cannot differ by a single leaf,
//! which the differential tests in `forestbal-service` assert leaf for
//! leaf and checksum for checksum.
//!
//! ## Round structure
//!
//! Each round: (1) announce the changed leaves whose insulation layer
//! reaches other ranks, in home-frame packed-key runs (the ghost wire
//! format); (2) receive remote changes, [`GhostLayer::patch`] them in,
//! and seed the worklist with them *and* with local leaves adjacent to
//! them (the reverse direction: an unchanged fine leaf must split a
//! freshly coarsened remote parent); (3) drain the worklist to a local
//! fixed point, recording splits in the overlay; (4) vote. Patching
//! *before* processing is what keeps simultaneous adaptations on both
//! sides of a partition boundary from ever splitting against a stale
//! ghost entry.

use crate::codec::{self, RunEncoder};
use crate::connectivity::TreeId;
use crate::forest::Forest;
use crate::ghost::GhostLayer;
use forestbal_comm::{reverse_notify, Comm};
use forestbal_core::Condition;
use forestbal_octant::{
    codim, directions, key, sort_keys_with, Octant, PackedOctant, SortScratch, MAX_LEVEL,
};
use std::collections::{BTreeMap, VecDeque};

/// Tag of the changed-leaf announcements (per-tag [`CommStats`] slot).
///
/// [`CommStats`]: forestbal_comm::CommStats
pub const INCREMENTAL_TAG: u32 = 0xBA1A_0030;

/// A batch of targeted adaptations, addressed by leaf. Requests are
/// collected in arbitrary order; [`Forest::apply_edits`] sorts and
/// applies them in one pass. Requests that no longer apply (the leaf is
/// not local, a coarsen family is incomplete or also being refined) are
/// skipped, not errors — under batching, requests race by design.
#[derive(Clone, Debug, Default)]
pub struct AdaptBatch<const D: usize> {
    /// `(tree, packed leaf key)` pairs to replace by their children.
    refine: Vec<(TreeId, u128)>,
    /// `(tree, packed parent key)` pairs whose complete local family is
    /// to be replaced by the parent.
    coarsen: Vec<(TreeId, u128)>,
}

impl<const D: usize> AdaptBatch<D> {
    /// New empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request splitting `leaf` of `tree`.
    pub fn refine(&mut self, tree: TreeId, leaf: &Octant<D>) {
        self.refine.push((tree, key::pack(leaf)));
    }

    /// Request merging the family of `parent` in `tree`.
    pub fn coarsen(&mut self, tree: TreeId, parent: &Octant<D>) {
        self.coarsen.push((tree, key::pack(parent)));
    }

    /// Request splitting a leaf given as a packed key.
    pub fn refine_key(&mut self, tree: TreeId, k: u128) {
        self.refine.push((tree, k));
    }

    /// Request a coarsen given the parent's packed key.
    pub fn coarsen_key(&mut self, tree: TreeId, k: u128) {
        self.coarsen.push((tree, k));
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.refine.len() + self.coarsen.len()
    }

    /// Is the batch empty?
    pub fn is_empty(&self) -> bool {
        self.refine.is_empty() && self.coarsen.is_empty()
    }

    /// Drop all requests.
    pub fn clear(&mut self) {
        self.refine.clear();
        self.coarsen.clear();
    }

    /// Append every request of `other`.
    pub fn extend(&mut self, other: &AdaptBatch<D>) {
        self.refine.extend_from_slice(&other.refine);
        self.coarsen.extend_from_slice(&other.coarsen);
    }
}

/// The dirty set of an applied [`AdaptBatch`]: every leaf that did not
/// exist before the edits (refine children and coarsen parents), per
/// tree in Morton order. This is what seeds
/// [`Forest::balance_incremental`], and its size against
/// [`Forest::num_local`] is the service's fallback criterion.
#[derive(Clone, Debug, Default)]
pub struct DirtySet<const D: usize> {
    per_tree: BTreeMap<TreeId, Vec<u128>>,
    /// The merged parents alone: the only dirty leaves that can need
    /// *reverse* seeding (see [`Forest::balance_incremental`]).
    coarsened_per_tree: BTreeMap<TreeId, Vec<u128>>,
    /// Leaves split by the batch.
    pub refined: u64,
    /// Families merged by the batch.
    pub coarsened: u64,
    /// Requests skipped (not a local leaf, incomplete family, conflict).
    pub skipped: u64,
}

impl<const D: usize> DirtySet<D> {
    /// Number of dirty leaves.
    pub fn len(&self) -> usize {
        self.per_tree.values().map(Vec::len).sum()
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.per_tree.is_empty()
    }

    /// Iterate `(tree, dirty keys)` pairs in tree order.
    pub fn iter(&self) -> impl Iterator<Item = (TreeId, &[u128])> {
        self.per_tree.iter().map(|(&t, v)| (t, v.as_slice()))
    }

    /// Iterate `(tree, merged parent keys)` pairs in tree order.
    pub fn iter_coarsened(&self) -> impl Iterator<Item = (TreeId, &[u128])> {
        self.coarsened_per_tree
            .iter()
            .map(|(&t, v)| (t, v.as_slice()))
    }
}

/// Outcome counters of one [`Forest::balance_incremental`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IncrementalReport {
    /// Communication rounds until global quiescence (≥ 1).
    pub rounds: u32,
    /// Leaves split on this rank.
    pub splits: u64,
    /// Changed-leaf announcements sent by this rank.
    pub sent_leaves: u64,
    /// Changed-leaf announcements received by this rank.
    pub recv_leaves: u64,
}

/// Per-tree splice overlay: `base key -> current replacement leaves`.
/// The base arrays stay untouched until [`merge_overlay`] applies every
/// accumulated split in one pass per affected tree, so a small dirty
/// region never forces a full-array rewrite per round.
type Overlay = BTreeMap<TreeId, BTreeMap<u128, Vec<u128>>>;

impl<const D: usize> Forest<D> {
    /// Apply a batch of targeted edits in one sorted-merge pass per
    /// tree and return the dirty set of created leaves.
    ///
    /// The edit keys are ordered by the packed radix sort (with its
    /// presorted early-out); the leaf arrays themselves are only merged
    /// against the sorted edits, never re-sorted — per-epoch edits on a
    /// mostly-sorted [`crate::LeafStore`] cost O(N + E), not
    /// O(N log N). Refines cap at `max_level`; a coarsen applies only
    /// when the full family is local and none of its members is also
    /// being refined. Markers stay valid: splitting preserves a leaf's
    /// position and a merged parent starts where its first child did.
    pub fn apply_edits(&mut self, batch: &AdaptBatch<D>, max_level: u8) -> DirtySet<D> {
        assert!(max_level <= MAX_LEVEL);
        let mut dirty = DirtySet::default();

        // Group and radix-sort the edit keys per tree.
        let mut refines: BTreeMap<TreeId, Vec<u128>> = BTreeMap::new();
        for &(t, k) in &batch.refine {
            refines.entry(t).or_default().push(k);
        }
        let mut coarsens: BTreeMap<TreeId, Vec<u128>> = BTreeMap::new();
        for &(t, k) in &batch.coarsen {
            coarsens.entry(t).or_default().push(k);
        }
        for v in refines.values_mut().chain(coarsens.values_mut()) {
            sort_keys_with::<D>(v, &mut self.sort);
            let before = v.len();
            v.dedup();
            dirty.skipped += (before - v.len()) as u64;
        }

        let mut trees: Vec<TreeId> = refines.keys().chain(coarsens.keys()).copied().collect();
        trees.sort_unstable();
        trees.dedup();
        // Edits addressed to trees with no local leaves are all stale.
        for &t in &trees {
            if self.local.get(t).is_none() {
                dirty.skipped += (refines.get(&t).map_or(0, Vec::len)
                    + coarsens.get(&t).map_or(0, Vec::len)) as u64;
            }
        }

        // The per-tree validation/merge scans are independent: each reads
        // only its own leaf array and its own slice of the sorted edits.
        // With more than one dirty tree and a multi-thread pool they run
        // as one task per tree with per-worker sort scratch; the outcomes
        // fold below in tree order, so the dirty set (and the counters,
        // which are sums) is identical at every thread count.
        let refines = &refines;
        let coarsens = &coarsens;
        let mut tasks: Vec<(TreeId, &mut Vec<u128>, TreeEdits)> = self
            .local
            .iter_mut()
            .filter(|(t, _)| trees.binary_search(t).is_ok())
            .map(|(t, v)| (t, v, TreeEdits::default()))
            .collect();
        let pool = forestbal_par::current();
        if pool.threads() > 1 && tasks.len() > 1 {
            let arena = forestbal_par::PerWorker::new(&pool, |_| SortScratch::new());
            pool.for_each_mut(&mut tasks, |_, (t, v, res), w| {
                let refi = refines.get(t).map(Vec::as_slice).unwrap_or(&[]);
                let coar = coarsens.get(t).map(Vec::as_slice).unwrap_or(&[]);
                arena.with(w, |sort| {
                    *res = merge_tree_edits::<D>(v, refi, coar, max_level, sort);
                });
            });
        } else {
            for (t, v, res) in tasks.iter_mut() {
                let refi = refines.get(t).map(Vec::as_slice).unwrap_or(&[]);
                let coar = coarsens.get(t).map(Vec::as_slice).unwrap_or(&[]);
                *res = merge_tree_edits::<D>(v, refi, coar, max_level, &mut self.sort);
            }
        }
        for (t, _, res) in tasks {
            dirty.refined += res.refined;
            dirty.coarsened += res.coarsened;
            dirty.skipped += res.skipped;
            if !res.dirty.is_empty() {
                dirty.per_tree.insert(t, res.dirty);
            }
            if !res.coarsened_keys.is_empty() {
                dirty.coarsened_per_tree.insert(t, res.coarsened_keys);
            }
        }
        debug_assert!(self.local.check_invariants());
        forestbal_trace::counter_add("incremental.refined", dirty.refined);
        forestbal_trace::counter_add("incremental.coarsened", dirty.coarsened);
        forestbal_trace::counter_add("incremental.skipped_edits", dirty.skipped);
        dirty
    }

    /// Re-establish the 2:1 condition after [`Forest::apply_edits`],
    /// touching only the insulation neighborhoods of the dirty set.
    ///
    /// `ghosts` must be the layer of the previous balanced state (from
    /// [`Forest::ghost_layer`] or a previous incremental epoch); it is
    /// patched as remote adaptations arrive and is again usable for the
    /// next epoch on return. Partition markers are *not* re-exchanged —
    /// targeted edits preserve them (see [`Forest::apply_edits`]).
    ///
    /// Produces exactly the forest a full [`Forest::balance`] of the
    /// post-edit state would (see the module docs for why).
    pub fn balance_incremental(
        &mut self,
        ctx: &impl Comm,
        cond: Condition,
        dirty: &DirtySet<D>,
        ghosts: &mut GhostLayer<D>,
    ) -> IncrementalReport {
        forestbal_trace::span_begin("incremental", || ctx.now_ns());
        let me = ctx.rank();
        let mut report = IncrementalReport::default();
        let mut overlay: Overlay = BTreeMap::new();
        // Constraint worklist: home-frame `(tree, key)` octants whose
        // insulation must be honored by the local leaves.
        let mut work: VecDeque<(TreeId, u128)> = VecDeque::new();
        // Changed local leaves not yet announced to remote ranks.
        let mut pending: Vec<(TreeId, u128)> = Vec::new();

        for (t, keys) in dirty.iter() {
            for &k in keys {
                work.push_back((t, k));
                pending.push((t, k));
            }
        }
        // Reverse direction: pre-existing leaves and ghosts adjacent to
        // a dirty leaf may force it to split. Only *merged parents* can
        // need this: in the pre-edit balanced forest every neighbor of a
        // refined leaf is at most one level finer than it, so no
        // pre-existing leaf is ≥ 2 levels finer than its new children
        // (and a neighbor refined by the same batch is itself dirty and
        // already on the worklist).
        for (t, keys) in dirty.iter_coarsened() {
            for &k in keys {
                self.seed_adjacent(cond, ghosts, &overlay, t, k, &mut work);
            }
        }

        loop {
            report.rounds += 1;
            forestbal_trace::span_begin("incremental.round", || ctx.now_ns());

            // --- Announce changed leaves (home frame, ghost format) --
            let mut out: BTreeMap<usize, (Vec<u8>, RunEncoder)> = BTreeMap::new();
            for &(t, k) in &pending {
                // A leaf split later in the same round is superseded by
                // its children, which are themselves pending. Pending
                // keys were leaves when pushed, so only an overlay
                // entry for the tree can have invalidated one.
                if overlay.contains_key(&t) && !is_current_leaf(&self.local, &overlay, t, k) {
                    continue;
                }
                let r = key::unpack::<D>(k);
                let mut sent_to: Vec<usize> = Vec::new();
                for dir in directions::<D>() {
                    let n = r.neighbor(&dir);
                    let Some((t2, n2)) = self.connectivity().transform(t, &n) else {
                        continue;
                    };
                    for owner in self.owners_of_range(t2, n2.index(), n2.last_index()) {
                        if owner == me || sent_to.contains(&owner) {
                            continue;
                        }
                        sent_to.push(owner);
                        let (buf, enc) = out.entry(owner).or_default();
                        enc.push::<D>(buf, t, k);
                        report.sent_leaves += 1;
                    }
                }
            }
            pending.clear();

            let receivers: Vec<usize> = out.keys().copied().collect();
            let senders = reverse_notify(ctx, &receivers);
            for (&d, (buf, enc)) in out.iter_mut() {
                enc.finish(buf);
                ctx.send(d, INCREMENTAL_TAG, buf.clone());
            }

            // --- Receive, patch the ghost layer, seed the worklist ---
            let mut received: Vec<(usize, TreeId, u128)> = Vec::new();
            for s in senders {
                let (src, data) = ctx.recv(Some(s), INCREMENTAL_TAG);
                codec::for_each_run::<D>(&data, |t, keys| {
                    received.extend(keys.iter().map(|&k| (src, t, k)));
                });
            }
            report.recv_leaves += received.len() as u64;
            for &(src, t, gk) in &received {
                // Patch first: a simultaneous coarsen on the far side
                // must never leave its finer pre-epoch ghosts behind to
                // force unforced splits here.
                ghosts.patch(t, src, key::unpack::<D>(gk));
            }
            for &(_, t, gk) in &received {
                work.push_back((t, gk));
                self.seed_adjacent(cond, ghosts, &overlay, t, gk, &mut work);
            }

            // --- Local fixed point over the splice overlay -----------
            let mut changed = false;
            while let Some((t, gk)) = work.pop_front() {
                let g = PackedOctant::<D>(gk);
                let go = g.octant();
                for dir in directions::<D>() {
                    if !cond.constrains(codim(&dir)) {
                        continue;
                    }
                    let n = go.neighbor(&dir);
                    let Some((t2, n2)) = self.connectivity().transform(t, &n) else {
                        continue;
                    };
                    let nk = key::pack(&n2);
                    while let Some((bk, ck)) = container(&self.local, &overlay, t2, nk) {
                        let c = PackedOctant::<D>(ck);
                        if c.level() + 1 >= g.level() {
                            break;
                        }
                        let reps = overlay
                            .entry(t2)
                            .or_default()
                            .entry(bk)
                            .or_insert_with(|| vec![bk]);
                        let pos = reps.binary_search(&ck).expect("split target vanished");
                        reps.remove(pos);
                        for j in 0..Octant::<D>::NUM_CHILDREN {
                            let ch = c.child(j).0;
                            reps.insert(pos + j, ch);
                            work.push_back((t2, ch));
                            pending.push((t2, ch));
                        }
                        report.splits += 1;
                        changed = true;
                    }
                }
            }

            let done = !ctx.allreduce_or(changed);
            forestbal_trace::span_end(|| ctx.now_ns());
            if done {
                break;
            }
        }

        // --- Merge the overlay into the leaf arrays, one pass each ---
        for (t, mut reps) in overlay {
            let v = self
                .local
                .get_mut(t)
                .expect("overlay for a tree without leaves");
            let mut merged = Vec::with_capacity(v.len() + reps.len() * 8);
            for &k in v.iter() {
                match reps.remove(&k) {
                    Some(r) => merged.extend(r),
                    None => merged.push(k),
                }
            }
            debug_assert!(reps.is_empty(), "replacement for a vanished leaf");
            debug_assert!(forestbal_octant::is_linear_keys::<D>(&merged));
            *v = merged;
        }
        debug_assert!(self.local.check_invariants());

        forestbal_trace::counter_add("incremental.rounds", report.rounds as u64);
        forestbal_trace::counter_add("incremental.splits", report.splits);
        forestbal_trace::counter_add("incremental.sent_leaves", report.sent_leaves);
        forestbal_trace::counter_add("incremental.recv_leaves", report.recv_leaves);
        forestbal_trace::span_end(|| ctx.now_ns());
        report
    }

    /// Push the current local leaves and ghost entries adjacent to
    /// octant `k` of `tree` onto the worklist (the reverse half of the
    /// round-0 and receive-time seeding).
    ///
    /// Only neighbors **at least two levels finer** than `k` are pushed:
    /// a work item at level `l` splits containers coarser than `l - 1`
    /// and nothing else, so a neighbor at `level ≤ k.level() + 1` cannot
    /// force any split that the pre-edit balanced state had not already
    /// satisfied. (Every other constraint a neighbor could enforce runs
    /// against pre-existing leaves, which were balanced; changed leaves
    /// each get their own seeding call.) The pushed item's inner split
    /// loop then enforces its constraint to completion, so the filter
    /// never needs to re-fire as `k`'s region refines.
    fn seed_adjacent(
        &self,
        cond: Condition,
        ghosts: &GhostLayer<D>,
        overlay: &Overlay,
        tree: TreeId,
        k: u128,
        work: &mut VecDeque<(TreeId, u128)>,
    ) {
        let o = key::unpack::<D>(k);
        let min_level = o.level + 2;
        if min_level > MAX_LEVEL {
            return;
        }
        for dir in directions::<D>() {
            if !cond.constrains(codim(&dir)) {
                continue;
            }
            let n = o.neighbor(&dir);
            let Some((t2, n2)) = self.connectivity().transform(tree, &n) else {
                continue;
            };
            let (nlo, nhi) = (n2.index(), n2.last_index());
            if let Some(v) = self.local.get(t2) {
                let ov = overlay.get(&t2);
                let lo = v.partition_point(|&bk| PackedOctant::<D>(bk).last_index() < nlo);
                for &bk in v[lo..]
                    .iter()
                    .take_while(|&&bk| PackedOctant::<D>(bk).index() <= nhi)
                {
                    match ov.and_then(|m| m.get(&bk)) {
                        Some(reps) => {
                            for &rk in reps {
                                let r = PackedOctant::<D>(rk);
                                if r.level() >= min_level
                                    && r.last_index() >= nlo
                                    && r.index() <= nhi
                                {
                                    work.push_back((t2, rk));
                                }
                            }
                        }
                        None => {
                            if PackedOctant::<D>(bk).level() >= min_level {
                                work.push_back((t2, bk));
                            }
                        }
                    }
                }
            }
            let gv = ghosts.tree(t2);
            let lo = gv.partition_point(|&(_, g)| g.last_index() < nlo);
            for &(_, g) in gv[lo..].iter().take_while(|&&(_, g)| g.index() <= nhi) {
                if g.level >= min_level {
                    work.push_back((t2, key::pack(&g)));
                }
            }
        }
    }
}

/// The current leaf of `tree` containing octant key `n`, viewed through
/// the overlay: `(base key, current leaf key)`, or `None` when no
/// current leaf contains `n`.
/// Outcome of one tree's edit-merge scan ([`merge_tree_edits`]).
#[derive(Default)]
struct TreeEdits {
    /// Created leaves (children of refines, merged coarsen parents).
    dirty: Vec<u128>,
    /// Merged coarsen parents only.
    coarsened_keys: Vec<u128>,
    refined: u64,
    coarsened: u64,
    skipped: u64,
}

/// Validate and apply one tree's sorted refine/coarsen requests against
/// its leaf array in a single merge pass. Pure per-tree kernel: reads
/// nothing but its arguments, so [`Forest::apply_edits`] may run one
/// invocation per tree concurrently.
fn merge_tree_edits<const D: usize>(
    v: &mut Vec<u128>,
    refi: &[u128],
    coar: &[u128],
    max_level: u8,
    sort: &mut SortScratch,
) -> TreeEdits {
    let nc = Octant::<D>::NUM_CHILDREN;
    let mut res = TreeEdits::default();
    // Parents keyed by their first child: that is the key the merge
    // cursor actually meets in the leaf array.
    let coar_c0: Vec<u128> = coar
        .iter()
        .map(|&p| PackedOctant::<D>(p).child(0).0)
        .collect();

    let mut out: Vec<u128> = Vec::with_capacity(v.len() + refi.len() * (nc - 1));
    let (mut ri, mut ci) = (0usize, 0usize);
    let mut i = 0usize;
    while i < v.len() {
        let k = v[i];
        while ri < refi.len() && refi[ri] < k {
            ri += 1;
            res.skipped += 1; // request for a non-leaf
        }
        while ci < coar.len() && coar_c0[ci] < k {
            ci += 1;
            res.skipped += 1; // family head not a local leaf
        }
        if ci < coar.len() && coar_c0[ci] == k {
            let p = PackedOctant::<D>(coar[ci]);
            let family_ok =
                p.level() > 0 && i + nc <= v.len() && (1..nc).all(|j| v[i + j] == p.child(j).0);
            // Refine-vs-coarsen conflict: any refine request inside the
            // family's key span wins over the merge.
            let conflict = ri < refi.len() && refi[ri] <= p.child(nc - 1).0;
            ci += 1;
            if family_ok && !conflict {
                out.push(p.0);
                res.dirty.push(p.0);
                res.coarsened_keys.push(p.0);
                res.coarsened += 1;
                i += nc;
                continue;
            }
            res.skipped += 1;
        }
        if ri < refi.len() && refi[ri] == k {
            ri += 1;
            let o = PackedOctant::<D>(k);
            if o.level() < max_level {
                for j in 0..nc {
                    let c = o.child(j).0;
                    out.push(c);
                    res.dirty.push(c);
                }
                res.refined += 1;
                i += 1;
                continue;
            }
            res.skipped += 1; // at the level cap
        }
        out.push(k);
        i += 1;
    }
    res.skipped += (refi.len() - ri) as u64 + (coar.len() - ci) as u64;
    // The merge emits in ascending key order; the radix sort's presorted
    // early-out is a pure (debug-visible) check here.
    sort_keys_with::<D>(&mut out, sort);
    debug_assert!(forestbal_octant::is_linear_keys::<D>(&out));
    *v = out;
    res
}

fn container<const D: usize>(
    local: &crate::store::LeafStore<D>,
    overlay: &Overlay,
    tree: TreeId,
    n: u128,
) -> Option<(u128, u128)> {
    let v = local.get(tree)?;
    let i = v.partition_point(|&k| k <= n);
    if i == 0 {
        return None;
    }
    let bk = v[i - 1];
    let ck = match overlay.get(&tree).and_then(|m| m.get(&bk)) {
        Some(reps) => {
            let j = reps.partition_point(|&k| k <= n);
            if j == 0 {
                return None;
            }
            reps[j - 1]
        }
        None => bk,
    };
    PackedOctant::<D>(ck)
        .contains(PackedOctant(n))
        .then_some((bk, ck))
}

/// Is key `k` still a leaf of `tree` under the overlay?
fn is_current_leaf<const D: usize>(
    local: &crate::store::LeafStore<D>,
    overlay: &Overlay,
    tree: TreeId,
    k: u128,
) -> bool {
    container::<D>(local, overlay, tree, k).is_some_and(|(_, ck)| ck == k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::balance::{BalanceVariant, ReversalScheme};
    use crate::connectivity::BrickConnectivity;
    use crate::serial::is_forest_balanced;
    use forestbal_comm::Cluster;
    use std::sync::Arc;

    fn unit2() -> Arc<BrickConnectivity<2>> {
        Arc::new(BrickConnectivity::<2>::unit())
    }

    #[test]
    fn apply_edits_refines_and_coarsens() {
        let conn = unit2();
        Cluster::run(1, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 2);
            let mut batch = AdaptBatch::new();
            // Split the first leaf, merge the last family.
            let first = f.trees().next().unwrap().1.first().unwrap();
            let last = f.trees().next().unwrap().1.last().unwrap();
            batch.refine(0, &first);
            batch.coarsen(0, &last.parent());
            let dirty = f.apply_edits(&batch, 5);
            assert_eq!(dirty.refined, 1);
            assert_eq!(dirty.coarsened, 1);
            assert_eq!(dirty.len(), 4 + 1);
            assert_eq!(f.num_local(), 16 + 3 - 3);
            // Dirty keys are all current leaves.
            for (t, keys) in dirty.iter() {
                let v = f.local.get(t).unwrap();
                for k in keys {
                    assert!(v.binary_search(k).is_ok());
                }
            }
        });
    }

    #[test]
    fn apply_edits_skips_stale_and_conflicting_requests() {
        let conn = unit2();
        Cluster::run(1, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 2);
            let first = f.trees().next().unwrap().1.first().unwrap();
            let mut batch = AdaptBatch::new();
            batch.refine(0, &Octant::root()); // not a leaf
            batch.refine(0, &first);
            batch.refine(0, &first); // duplicate
            batch.coarsen(0, &first.parent()); // conflicts with the refine
            batch.coarsen(7, &first.parent()); // no such tree
            let dirty = f.apply_edits(&batch, 5);
            assert_eq!(dirty.refined, 1);
            assert_eq!(dirty.coarsened, 0);
            assert_eq!(dirty.skipped, 4);
            assert!(f.local.check_invariants());
        });
    }

    #[test]
    fn apply_edits_respects_level_cap() {
        let conn = unit2();
        Cluster::run(1, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 2);
            let first = f.trees().next().unwrap().1.first().unwrap();
            let mut batch = AdaptBatch::new();
            batch.refine(0, &first);
            let dirty = f.apply_edits(&batch, 2);
            assert_eq!(dirty.refined, 0);
            assert_eq!(dirty.skipped, 1);
            assert_eq!(f.num_local(), 16);
        });
    }

    /// Incremental rebalance after targeted edits must match a full
    /// balance of the same post-edit forest, leaf for leaf.
    fn assert_incremental_matches_full(p: usize, edits: fn(&Forest<2>) -> AdaptBatch<2>) {
        let conn = Arc::new(BrickConnectivity::<2>::new([2, 1], [false; 2]));
        let cond = Condition::full(2);
        let out = Cluster::run(p, move |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 2);
            f.refine(true, 4, |t, o| t == 0 && o.coords == [0, 0]);
            f.balance(ctx, cond, BalanceVariant::New, ReversalScheme::Notify);
            let mut ghosts = f.ghost_layer(ctx);

            let mut full = f.clone();
            let batch = edits(&f);
            let dirty = f.apply_edits(&batch, 6);
            let rep = f.balance_incremental(ctx, cond, &dirty, &mut ghosts);

            full.apply_edits(&batch, 6);
            full.balance(ctx, cond, BalanceVariant::New, ReversalScheme::Notify);

            let got = f.gather(ctx);
            let want = full.gather(ctx);
            assert!(rep.rounds >= 1);
            assert_eq!(got, want, "P={p}: incremental differs from full");
            assert_eq!(f.checksum(ctx), full.checksum(ctx));
            assert!(is_forest_balanced(f.connectivity(), &got, cond));

            // The patched layer retains every entry of a fresh one.
            let fresh = f.ghost_layer(ctx);
            for (t, owner, g) in fresh.iter() {
                assert!(
                    ghosts.contains(t, owner, g),
                    "patched ghost layer lost {t}:{owner}:{g:?}"
                );
            }
        });
        drop(out);
    }

    #[test]
    fn incremental_refine_matches_full_balance() {
        for p in [1usize, 2, 4] {
            assert_incremental_matches_full(p, |f| {
                let mut b = AdaptBatch::new();
                // Deepest local leaf: refining it violates 2:1 around it.
                if let Some((t, v)) = f.trees().next() {
                    let deepest = v.iter().max_by_key(|o| o.level).unwrap();
                    b.refine(t, &deepest);
                }
                b
            });
        }
    }

    #[test]
    fn incremental_coarsen_matches_full_balance() {
        for p in [1usize, 2, 3] {
            assert_incremental_matches_full(p, |f| {
                let mut b = AdaptBatch::new();
                // Coarsen every complete level-2 family: the merged
                // parents sit next to finer leaves and must re-split.
                for (t, v) in f.trees() {
                    for o in v.iter() {
                        if o.level == 2 && o.child_id() == 0 {
                            b.coarsen(t, &o.parent());
                        }
                    }
                }
                b
            });
        }
    }

    #[test]
    fn incremental_empty_batch_is_quiescent() {
        let conn = unit2();
        Cluster::run(3, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 3);
            let mut ghosts = f.ghost_layer(ctx);
            let before = f.checksum(ctx);
            let dirty = DirtySet::default();
            let rep = f.balance_incremental(ctx, Condition::full(2), &dirty, &mut ghosts);
            assert_eq!(rep.rounds, 1);
            assert_eq!(rep.splits, 0);
            assert_eq!(rep.sent_leaves, 0);
            assert_eq!(f.checksum(ctx), before);
        });
    }

    #[test]
    fn incremental_preserves_markers() {
        let conn = unit2();
        Cluster::run(4, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 3);
            let mut ghosts = f.ghost_layer(ctx);
            let markers_before = f.markers().to_vec();
            let mut batch = AdaptBatch::new();
            if let Some((t, v)) = f.trees().next() {
                let mid = v.get(v.len() / 2);
                batch.refine(t, &mid);
            }
            let dirty = f.apply_edits(&batch, 6);
            f.balance_incremental(ctx, Condition::full(2), &dirty, &mut ghosts);
            assert_eq!(f.markers(), &markers_before[..]);
            // And they still agree with a re-exchange.
            f.update_markers(ctx);
            assert_eq!(f.markers(), &markers_before[..]);
        });
    }
}
