//! The one-pass parallel 2:1 balance algorithm (§II-B) in its old and new
//! variants.
//!
//! Four phases, one query/response communication round:
//!
//! 1. **Local balance** — each rank balances its own contiguous slice of
//!    each tree with a serial subtree balance (old: Figure 6; new:
//!    Figure 7) rooted at the nearest common ancestor of the slice, then
//!    clips back to the owned range.
//! 2. **Query** — for every local octant `r` whose insulation layer
//!    `I(r)` reaches other partitions (or other trees), `r` is sent — in
//!    the *receiver's* tree frame — to every rank owning part of the
//!    layer. The asymmetric pattern is reversed with Naive / Ranges /
//!    Notify (§V) so receivers know whom to expect.
//! 3. **Response** — for each received query octant, the responder finds
//!    its local leaves inside `I(r)` that might split `r` and answers
//!    with the octants themselves (old) or with λ-tested seed octants
//!    (new, §IV).
//! 4. **Local rebalance** — old: each tree's full partition is rebalanced
//!    with the received octants as exterior/interior constraints,
//!    constructing auxiliary octants across any gaps; new: each queried
//!    octant is reconstructed independently from its merged seeds and
//!    spliced into the leaf array — no full-partition work.
//!
//! Storage is packed keys end to end ([`crate::store`]); the struct-based
//! subtree kernels of `forestbal_core` run on batch-decoded arrays at the
//! phase boundaries, and the wire carries fixed-width packed keys
//! (queries as `(u32 eid, u32 tree, key)` records, responses as
//! `(u32 eid, u32 count, count × key)` groups — see [`crate::codec`]).

use crate::codec;
use crate::connectivity::{translate, TreeId};
use crate::forest::Forest;
use forestbal_comm::{ranges_expansion, reverse_naive, reverse_notify, reverse_ranges, Comm};
use forestbal_core::{
    balance_subtree_new_with_stats_scratch, balance_subtree_old_ext_scratch, find_seeds,
    reconstruct_from_seeds_scratch, BalanceScratch, BalanceStats, Condition,
};
use forestbal_octant::{
    directions, is_linear, is_linear_keys, key, linearize, pack_batch, sort_octants, unpack_batch,
    Coord, Octant, PackedOctant,
};
use forestbal_trace as trace;
use std::collections::BTreeMap;
use std::time::Duration;

/// Tag of the phase-3 query messages (for per-tag [`CommStats`] reports).
///
/// [`CommStats`]: forestbal_comm::CommStats
pub const QUERY_TAG: u32 = 0xBA1A_0001;
/// Tag of the phase-3 response messages.
pub const RESPONSE_TAG: u32 = 0xBA1A_0002;

/// Which balance implementation to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BalanceVariant {
    /// Pre-paper algorithm: raw response octants, full-partition rebalance
    /// with auxiliary octant construction.
    Old,
    /// The paper's algorithm: preclusion-based subtree balance, λ-tested
    /// seed responses, per-query reconstruction.
    New,
}

/// How to reverse the asymmetric query pattern (§V).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReversalScheme {
    /// Allgather counts + Allgatherv receiver lists (Figure 12).
    Naive,
    /// Fixed number of rank ranges per process; false positives get empty
    /// messages.
    Ranges(usize),
    /// Divide-and-conquer point-to-point reversal (Figure 13).
    Notify,
}

/// Time per phase on this rank, measured through [`Comm::now_ns`]: wall
/// clock on the threaded runtime, *virtual* cluster time under the
/// `forestbal-sim` discrete-event runtime (where computation is free and
/// only communication advances the clock).
#[derive(Clone, Copy, Debug, Default)]
pub struct BalanceTimings {
    /// Phase 1: serial subtree balance of the local partition.
    pub local_balance: Duration,
    /// Pattern reversal (Naive / Ranges / Notify).
    pub reversal: Duration,
    /// Phases 2-3: query construction, exchange, and responses.
    pub query_response: Duration,
    /// Phase 4: local rebalance.
    pub rebalance: Duration,
    /// End-to-end wall clock of the balance call.
    pub total: Duration,
}

impl BalanceTimings {
    /// Componentwise maximum — the cluster-critical path, which is what
    /// the paper's per-phase plots report.
    pub fn max(&self, o: &BalanceTimings) -> BalanceTimings {
        BalanceTimings {
            local_balance: self.local_balance.max(o.local_balance),
            reversal: self.reversal.max(o.reversal),
            query_response: self.query_response.max(o.query_response),
            rebalance: self.rebalance.max(o.rebalance),
            total: self.total.max(o.total),
        }
    }
}

/// Full per-rank accounting of one balance invocation: wall-clock per
/// phase plus the communication volume of the query/response round — the
/// axis on which the paper claims "much reduced ... communication
/// volume" for the seed-based responses.
#[derive(Clone, Copy, Debug, Default)]
pub struct BalanceReport {
    /// Wall-clock time per phase.
    pub timings: BalanceTimings,
    /// Query payload bytes sent by this rank.
    pub query_bytes: u64,
    /// Response payload bytes sent by this rank (raw octants for the old
    /// variant, seeds for the new).
    pub response_bytes: u64,
    /// Query/response messages sent (excluding pattern reversal traffic).
    pub messages: u64,
}

impl BalanceReport {
    /// Componentwise aggregate: max of timings, sum of volumes.
    pub fn combine(&self, o: &BalanceReport) -> BalanceReport {
        BalanceReport {
            timings: self.timings.max(&o.timings),
            query_bytes: self.query_bytes + o.query_bytes,
            response_bytes: self.response_bytes + o.response_bytes,
            messages: self.messages + o.messages,
        }
    }
}

/// One outbound query entry: a local octant expressed in a target tree's
/// frame, with the offset needed to map responses back home.
struct QueryEntry<const D: usize> {
    /// Index into the flat list of queried local octants.
    qid: u32,
    /// Target tree (responder frame).
    tree: TreeId,
    /// Offset such that `home + off = target frame`.
    off: [Coord; D],
}

/// Phase-4 work item: a qid's merged seed set paired with its
/// reconstruction result (tree, packed query key, packed replacements).
type ReconTask<const D: usize> = (Vec<Octant<D>>, Option<(TreeId, u128, Vec<u128>)>);

/// Phase-1 body for one tree: decode, subtree-balance, clip, re-encode in
/// place. Each tree is independent (constraints never cross tree
/// boundaries in phase 1 — that is exactly what phases 2–4 exist for), so
/// the parallel path runs this per tree with per-worker scratch and the
/// result is bit-identical to the serial loop.
fn phase1_tree<const D: usize>(
    v: &mut Vec<u128>,
    decoded: &mut Vec<Octant<D>>,
    cond: Condition,
    variant: BalanceVariant,
    scratch: &mut BalanceScratch<D>,
) -> BalanceStats {
    let (lo, hi) = (
        PackedOctant::<D>(v[0]).index(),
        PackedOctant::<D>(v[v.len() - 1]).last_index(),
    );
    decoded.clear();
    unpack_batch(v, decoded);
    let sub = decoded[0].nearest_common_ancestor(&decoded[decoded.len() - 1]);
    let (balanced, bs) = match variant {
        BalanceVariant::Old => balance_subtree_old_ext_scratch(&sub, decoded, &[], cond, scratch),
        BalanceVariant::New => balance_subtree_new_with_stats_scratch(&sub, decoded, cond, scratch),
    };
    let clipped: Vec<Octant<D>> = balanced
        .into_iter()
        .filter(|o| o.index() >= lo && o.last_index() <= hi)
        .collect();
    v.clear();
    pack_batch(&clipped, v);
    debug_assert!(is_linear_keys::<D>(v));
    bs
}

impl<const D: usize> Forest<D> {
    /// Enforce the 2:1 balance condition `cond` across the whole forest.
    /// Returns per-phase timings for this rank.
    pub fn balance(
        &mut self,
        ctx: &impl Comm,
        cond: Condition,
        variant: BalanceVariant,
        reversal: ReversalScheme,
    ) -> BalanceTimings {
        self.balance_with_report(ctx, cond, variant, reversal)
            .timings
    }

    /// Like [`Forest::balance`], additionally reporting the query/response
    /// communication volume.
    pub fn balance_with_report(
        &mut self,
        ctx: &impl Comm,
        cond: Condition,
        variant: BalanceVariant,
        reversal: ReversalScheme,
    ) -> BalanceReport {
        let mut scratch = BalanceScratch::<D>::new();
        self.balance_with_report_scratch(ctx, cond, variant, reversal, &mut scratch)
    }

    /// Like [`Forest::balance_with_report`], with caller-provided kernel
    /// working memory. Long-running consumers (the epoch loop of
    /// `forestbal-service`) hold one [`BalanceScratch`] across epochs so
    /// a fallback full balance re-enters with warm arenas instead of
    /// reallocating them every time.
    pub fn balance_with_report_scratch(
        &mut self,
        ctx: &impl Comm,
        cond: Condition,
        variant: BalanceVariant,
        reversal: ReversalScheme,
        scratch: &mut BalanceScratch<D>,
    ) -> BalanceReport {
        let t_total = ctx.now_ns();
        trace::span_begin("balance", || t_total);
        let mut report = BalanceReport::default();
        self.update_markers(ctx);

        // ---- Phase 1: local balance --------------------------------
        let t0 = ctx.now_ns();
        trace::span_begin("local_balance", || t0);
        // One arena of kernel working memory serves every subtree of this
        // rank's phase-1 loop and is threaded on through phase 4.
        let ks_base = scratch.stats();
        let mut local_stats = BalanceStats::default();
        let pool = forestbal_par::current();
        let mut tree_tasks: Vec<(&mut Vec<u128>, BalanceStats)> = self
            .local
            .iter_mut()
            .filter(|(_, v)| !v.is_empty())
            .map(|(_, v)| (v, BalanceStats::default()))
            .collect();
        if pool.threads() > 1 && tree_tasks.len() > 1 {
            // Independent subtree kernels across the work queue, one task
            // per tree, per-worker scratch arenas; stats fold in task order
            // below, so nothing about the schedule reaches the output.
            let workers = scratch.take_workers(pool.threads());
            let bases: Vec<_> = workers.iter().map(|w| w.stats()).collect();
            let mut stash = workers.into_iter();
            let arena = forestbal_par::PerWorker::new(&pool, |_| {
                (stash.next().expect("one arena per worker"), Vec::new())
            });
            pool.for_each_mut(&mut tree_tasks, |_, (v, stats), w| {
                arena.with(w, |(ws, decoded)| {
                    *stats = phase1_tree(v, decoded, cond, variant, ws);
                });
            });
            scratch.restore_workers(arena.drain().map(|(ws, _)| ws).collect(), &bases);
        } else {
            let mut decoded: Vec<Octant<D>> = Vec::new();
            for (v, stats) in tree_tasks.iter_mut() {
                *stats = phase1_tree(v, &mut decoded, cond, variant, scratch);
            }
        }
        for (_, bs) in &tree_tasks {
            local_stats.hash_queries += bs.hash_queries;
            local_stats.binary_searches += bs.binary_searches;
            local_stats.sorted_len += bs.sorted_len;
            local_stats.output_len += bs.output_len;
        }
        drop(tree_tasks);
        let t1 = ctx.now_ns();
        trace::span_end(|| t1);
        trace::counter_add("balance.local.hash_queries", local_stats.hash_queries);
        trace::counter_add("balance.local.binary_searches", local_stats.binary_searches);
        trace::counter_add("balance.local.sorted_len", local_stats.sorted_len as u64);
        trace::counter_add("balance.local.output_len", local_stats.output_len as u64);
        let ks_local = scratch.stats();
        trace::counter_add(
            "balance.local.radix_passes",
            ks_local.radix_passes - ks_base.radix_passes,
        );
        trace::counter_add(
            "balance.local.presorted_sorts",
            ks_local.presorted_hits - ks_base.presorted_hits,
        );
        trace::counter_add(
            "balance.local.table_probes",
            ks_local.table_probes - ks_base.table_probes,
        );
        trace::counter_add(
            "balance.local.table_lookups",
            ks_local.table_lookups - ks_base.table_lookups,
        );
        trace::counter_add(
            "balance.local.table_grows",
            ks_local.table_grows - ks_base.table_grows,
        );
        report.timings.local_balance = Duration::from_nanos(t1 - t0);

        // ---- Phase 2: build queries --------------------------------
        let t0 = t1;
        trace::span_begin("query_response", || t0);
        let me = ctx.rank();
        // Flat list of queried local octants.
        let mut queries: Vec<(TreeId, Octant<D>)> = Vec::new();
        // All entries, indexed by eid; `per_rank[d]` lists eids for rank d.
        let mut entries: Vec<QueryEntry<D>> = Vec::new();
        let mut per_rank: BTreeMap<usize, Vec<u32>> = BTreeMap::new();

        for (t, v) in self.local.iter() {
            if v.is_empty() {
                continue;
            }
            // Fast interior rejection: all Morton indices of cells inside
            // an axis-aligned box lie between the indices of its extreme
            // corners, so a leaf whose insulation bounding box stays
            // inside the root and within this rank's local range cannot
            // generate queries. The vast majority of leaves pass this
            // O(1) test and skip the 3^D-direction loop entirely.
            let range_lo = PackedOctant::<D>(v[0]).index();
            let range_hi = PackedOctant::<D>(v[v.len() - 1]).last_index();
            for &k in v {
                let r = key::unpack::<D>(k);
                let len = r.len();
                let ins_min: [Coord; D] = std::array::from_fn(|i| r.coords[i] - len);
                let interior = ins_min.iter().all(|&c| c >= 0)
                    && (0..D).all(|i| r.coords[i] + 2 * len <= forestbal_octant::ROOT_LEN)
                    && {
                        let lo = forestbal_octant::morton::interleave::<D>(&ins_min);
                        let max: [Coord; D] = std::array::from_fn(|i| r.coords[i] + 2 * len - 1);
                        let hi = forestbal_octant::morton::interleave::<D>(&max);
                        lo >= range_lo && hi <= range_hi
                    };
                if interior {
                    continue;
                }
                let mut qid: Option<u32> = None;
                // (rank, tree, off) destinations already recorded for r.
                let mut seen: Vec<(usize, TreeId, [Coord; D])> = Vec::new();
                for dir in directions::<D>() {
                    let n = r.neighbor(&dir);
                    let Some((t2, n2)) = self.connectivity().transform(t, &n) else {
                        continue;
                    };
                    let off: [Coord; D] = std::array::from_fn(|i| n2.coords[i] - n.coords[i]);
                    for owner in self.owners_of_range(t2, n2.index(), n2.last_index()) {
                        if owner == me && t2 == t && off == [0; D] {
                            continue; // same tree, same rank: phase 1 did it
                        }
                        let dest = (owner, t2, off);
                        if seen.contains(&dest) {
                            continue;
                        }
                        seen.push(dest);
                        let qid = *qid.get_or_insert_with(|| {
                            queries.push((t, r));
                            (queries.len() - 1) as u32
                        });
                        let eid = entries.len() as u32;
                        entries.push(QueryEntry { qid, tree: t2, off });
                        per_rank.entry(owner).or_default().push(eid);
                    }
                }
            }
        }

        // Encode per-destination query buffers (self entries bypass the
        // network): `(u32 eid, u32 tree, key)` records — per-record tree
        // ids here, since consecutive entries rarely share a tree.
        let encode_entries = |eids: &[u32]| -> Vec<u8> {
            let mut buf = Vec::with_capacity(eids.len() * (8 + codec::key_size::<D>()));
            for &eid in eids {
                let e = &entries[eid as usize];
                let (_, r) = queries[e.qid as usize];
                codec::put_u32(&mut buf, eid);
                codec::put_u32(&mut buf, e.tree);
                codec::put_key::<D>(&mut buf, key::pack(&translate(&r, &e.off)));
            }
            buf
        };

        let receivers: Vec<usize> = per_rank.keys().copied().filter(|&d| d != me).collect();
        let t1 = ctx.now_ns();
        trace::span_end(|| t1);
        trace::counter_add("balance.query_octants", queries.len() as u64);
        trace::counter_add("balance.query_entries", entries.len() as u64);
        report.timings.query_response = Duration::from_nanos(t1 - t0);

        // ---- Pattern reversal (timed separately, like Figure 15e) ---
        let t0 = t1;
        trace::span_begin("reversal", || t0);
        let s_reversal = trace::enabled().then(|| ctx.stats());
        let (senders, effective_receivers) = match reversal {
            ReversalScheme::Naive => (reverse_naive(ctx, &receivers), receivers.clone()),
            ReversalScheme::Notify => (reverse_notify(ctx, &receivers), receivers.clone()),
            ReversalScheme::Ranges(rmax) => {
                let senders = reverse_ranges(ctx, &receivers, rmax);
                let expansion: Vec<usize> = ranges_expansion(&receivers, rmax, ctx.size())
                    .into_iter()
                    .filter(|&d| d != me)
                    .collect();
                (senders, expansion)
            }
        };
        let senders: Vec<usize> = senders.into_iter().filter(|&s| s != me).collect();
        let t1 = ctx.now_ns();
        trace::span_end(|| t1);
        if let Some(before) = s_reversal {
            let d = ctx.stats().delta_since(&before);
            trace::counter_add("balance.reversal.messages", d.messages_sent);
            trace::counter_add("balance.reversal.bytes", d.bytes_sent);
            trace::counter_add("balance.reversal.collective_bytes", d.collective_bytes);
        }
        report.timings.reversal = Duration::from_nanos(t1 - t0);

        // ---- Phase 3: query / response exchange ---------------------
        let t0 = t1;
        trace::span_begin("query_response", || t0);
        let s_exchange = trace::enabled().then(|| ctx.stats());
        for &d in &effective_receivers {
            let buf = per_rank
                .get(&d)
                .map(|e| encode_entries(e))
                .unwrap_or_default();
            report.query_bytes += buf.len() as u64;
            report.messages += 1;
            ctx.send(d, QUERY_TAG, buf);
        }

        // Respond to each incoming query message.
        for &s in &senders {
            let (_, data) = ctx.recv(Some(s), QUERY_TAG);
            let reply = self.answer_queries(&data, cond, variant);
            report.response_bytes += reply.len() as u64;
            report.messages += 1;
            ctx.send(s, RESPONSE_TAG, reply);
        }

        // Self entries: answer locally.
        let self_reply = per_rank
            .get(&me)
            .map(|eids| self.answer_queries(&encode_entries(eids), cond, variant));

        // Collect responses: per qid, the constraint octants in home frame.
        let mut per_qid: Vec<Vec<Octant<D>>> = vec![Vec::new(); queries.len()];
        let absorb = |data: &[u8], per_qid: &mut Vec<Vec<Octant<D>>>| {
            let mut pos = 0;
            let mut octants = 0u64;
            while pos < data.len() {
                let eid = codec::get_u32(data, &mut pos) as usize;
                let count = codec::get_u32(data, &mut pos) as usize;
                octants += count as u64;
                let e = &entries[eid];
                let back: [Coord; D] = std::array::from_fn(|i| -e.off[i]);
                for _ in 0..count {
                    let o = key::unpack::<D>(codec::get_key::<D>(data, &mut pos));
                    per_qid[e.qid as usize].push(translate(&o, &back));
                }
            }
            trace::counter_add("balance.response_octants_recv", octants);
        };
        for &_d in &effective_receivers {
            let (_, data) = ctx.recv(None, RESPONSE_TAG);
            absorb(&data, &mut per_qid);
        }
        if let Some(data) = self_reply {
            absorb(&data, &mut per_qid);
        }
        let t1 = ctx.now_ns();
        trace::span_end(|| t1);
        if let Some(before) = s_exchange {
            let d = ctx.stats().delta_since(&before);
            trace::counter_add("balance.query_response.messages", d.messages_sent);
            trace::counter_add("balance.query_response.bytes", d.bytes_sent);
        }
        trace::counter_add("balance.query_bytes", report.query_bytes);
        trace::counter_add("balance.response_bytes", report.response_bytes);
        report.timings.query_response += Duration::from_nanos(t1 - t0);

        // ---- Phase 4: local rebalance -------------------------------
        let t0 = t1;
        trace::span_begin("rebalance", || t0);
        match variant {
            BalanceVariant::New => self.rebalance_new(&queries, per_qid, cond, scratch),
            BalanceVariant::Old => self.rebalance_old(&queries, per_qid, cond, scratch),
        }
        let t1 = ctx.now_ns();
        trace::span_end(|| t1);
        trace::span_end(|| t1); // the enclosing "balance" span
        let ks = scratch.stats();
        trace::counter_add(
            "balance.rebalance.radix_passes",
            ks.radix_passes - ks_local.radix_passes,
        );
        trace::counter_add(
            "balance.rebalance.presorted_sorts",
            ks.presorted_hits - ks_local.presorted_hits,
        );
        trace::counter_add(
            "balance.rebalance.table_probes",
            ks.table_probes - ks_local.table_probes,
        );
        trace::counter_add(
            "balance.rebalance.table_lookups",
            ks.table_lookups - ks_local.table_lookups,
        );
        trace::counter_add(
            "balance.rebalance.table_grows",
            ks.table_grows - ks_local.table_grows,
        );
        trace::counter_add("balance.scratch.reuses", ks.reuses - ks_base.reuses);
        report.timings.rebalance = Duration::from_nanos(t1 - t0);
        report.timings.total = Duration::from_nanos(t1 - t_total);
        report
    }

    /// Phase 3 responder: for each encoded query entry, find the local
    /// leaves inside the query octant's insulation layer that might cause
    /// it to split, and encode the response (raw octants or seeds). The
    /// insulation scan runs on the packed key array; only leaves that
    /// survive the level precheck are decoded.
    fn answer_queries(&self, data: &[u8], cond: Condition, variant: BalanceVariant) -> Vec<u8> {
        let mut reply = Vec::new();
        let mut pos = 0;
        while pos < data.len() {
            let eid = codec::get_u32(data, &mut pos);
            let tree = codec::get_u32(data, &mut pos);
            let r = key::unpack::<D>(codec::get_key::<D>(data, &mut pos));

            let mut out: Vec<Octant<D>> = Vec::new();
            if let Some(v) = self.local.get(tree) {
                for dir in directions::<D>() {
                    let n = r.neighbor(&dir);
                    if !n.is_inside_root() {
                        continue; // insulation falling outside this tree
                    }
                    // Local leaves strictly inside the insulation member.
                    let (n_lo, n_hi) = (n.index(), n.last_index());
                    let lo = v.partition_point(|&k| PackedOctant::<D>(k).index() < n_lo);
                    for &k in v[lo..]
                        .iter()
                        .take_while(|&&k| PackedOctant::<D>(k).last_index() <= n_hi)
                    {
                        let p = PackedOctant::<D>(k);
                        if p.level() < r.level + 2 {
                            continue; // too coarse to split r
                        }
                        let o = key::unpack::<D>(k);
                        match variant {
                            BalanceVariant::Old => out.push(o),
                            BalanceVariant::New => {
                                if let Some(seeds) = find_seeds(&o, &r, cond) {
                                    out.extend(seeds);
                                }
                            }
                        }
                    }
                }
            }
            sort_octants(&mut out);
            out.dedup();
            if variant == BalanceVariant::New {
                // Overlapping seeds from different source octants resolve
                // to the finest (already sorted: the fast path skips the
                // sort and only runs the ancestor sweep).
                linearize(&mut out);
            }
            trace::counter_add("balance.queries_answered", 1);
            trace::counter_add("balance.response_octants", out.len() as u64);
            // The paper's §IV claim made measurable: seed responses are
            // tiny (New) versus raw insulation octants (Old).
            trace::hist(
                match variant {
                    BalanceVariant::New => "balance.seeds_per_query",
                    BalanceVariant::Old => "balance.octants_per_query",
                },
                out.len() as u64,
            );
            codec::put_u32(&mut reply, eid);
            codec::put_u32(&mut reply, out.len() as u32);
            for o in &out {
                codec::put_key::<D>(&mut reply, key::pack(o));
            }
        }
        reply
    }

    /// New-variant rebalance: reconstruct each queried octant from its
    /// merged seeds and splice the result into the leaf array. No
    /// full-partition work, no auxiliary octants. The splice itself runs
    /// on packed keys: replaced leaves are found by exact key match.
    fn rebalance_new(
        &mut self,
        queries: &[(TreeId, Octant<D>)],
        per_qid: Vec<Vec<Octant<D>>>,
        cond: Condition,
        scratch: &mut BalanceScratch<D>,
    ) {
        // Per-qid reconstructions are fully independent (each queried
        // octant owns its seed set), so they form the phase-4 work queue.
        // Replacements are collected per qid and merged below in qid order
        // — the same insertion order as the serial loop, so the splice map
        // is bit-identical for any thread count.
        let pool = forestbal_par::current();
        let reconstructed: Vec<Option<(TreeId, u128, Vec<u128>)>> =
            if pool.threads() > 1 && per_qid.len() > 1 {
                let workers = scratch.take_workers(pool.threads());
                let bases: Vec<_> = workers.iter().map(|w| w.stats()).collect();
                let mut stash = workers.into_iter();
                let arena = forestbal_par::PerWorker::new(&pool, |_| {
                    stash.next().expect("one arena per worker")
                });
                let mut tasks: Vec<ReconTask<D>> = per_qid.into_iter().map(|s| (s, None)).collect();
                pool.for_each_mut(&mut tasks, |qid, (seeds, out), w| {
                    if seeds.is_empty() {
                        return;
                    }
                    let (t, r) = queries[qid];
                    arena.with(w, |ws| {
                        ws.linearize(seeds);
                        let s = reconstruct_from_seeds_scratch(&r, seeds, cond, ws);
                        if s.len() > 1 {
                            let mut packed = Vec::with_capacity(s.len());
                            pack_batch(&s, &mut packed);
                            *out = Some((t, key::pack(&r), packed));
                        }
                    });
                });
                scratch.restore_workers(arena.drain().collect(), &bases);
                tasks.into_iter().map(|(_, out)| out).collect()
            } else {
                per_qid
                    .into_iter()
                    .enumerate()
                    .map(|(qid, mut seeds)| {
                        if seeds.is_empty() {
                            return None;
                        }
                        let (t, r) = queries[qid];
                        scratch.linearize(&mut seeds);
                        let s = reconstruct_from_seeds_scratch(&r, &seeds, cond, scratch);
                        (s.len() > 1).then(|| {
                            let mut packed = Vec::with_capacity(s.len());
                            pack_batch(&s, &mut packed);
                            (t, key::pack(&r), packed)
                        })
                    })
                    .collect()
            };
        // tree -> (query key -> packed replacement leaves)
        let mut splices: BTreeMap<TreeId, BTreeMap<u128, Vec<u128>>> = BTreeMap::new();
        for (t, rkey, packed) in reconstructed.into_iter().flatten() {
            splices.entry(t).or_default().insert(rkey, packed);
        }
        for (t, mut reps) in splices {
            let v = self
                .local
                .get_mut(t)
                .expect("splice in tree without leaves");
            let mut out = Vec::with_capacity(v.len() + reps.len() * 8);
            for &k in v.iter() {
                match reps.remove(&k) {
                    Some(s) => out.extend(s),
                    None => out.push(k),
                }
            }
            debug_assert!(reps.is_empty(), "replacement for a vanished leaf");
            debug_assert!(is_linear_keys::<D>(&out));
            *v = out;
        }
    }

    /// Old-variant rebalance: per tree, re-run the full subtree balance
    /// over the partition with all received octants as constraints,
    /// constructing auxiliary octants toward remote sources.
    fn rebalance_old(
        &mut self,
        queries: &[(TreeId, Octant<D>)],
        per_qid: Vec<Vec<Octant<D>>>,
        cond: Condition,
        scratch: &mut BalanceScratch<D>,
    ) {
        let mut per_tree: BTreeMap<TreeId, Vec<Octant<D>>> = BTreeMap::new();
        for (qid, octs) in per_qid.into_iter().enumerate() {
            let (t, _) = queries[qid];
            per_tree.entry(t).or_default().extend(octs);
        }
        for (t, mut received) in per_tree {
            scratch.sort(&mut received);
            received.dedup();
            let v = self
                .local
                .get_mut(t)
                .expect("response for tree without leaves");
            if v.is_empty() {
                continue;
            }
            let (lo, hi) = (
                PackedOctant::<D>(v[0]).index(),
                PackedOctant::<D>(v[v.len() - 1]).last_index(),
            );
            let mut decoded: Vec<Octant<D>> = Vec::with_capacity(v.len());
            unpack_batch(v, &mut decoded);
            let sub = decoded[0].nearest_common_ancestor(&decoded[decoded.len() - 1]);
            let (interior_extra, exterior): (Vec<_>, Vec<_>) =
                received.into_iter().partition(|o| sub.contains(o));
            let mut interior = forestbal_octant::merge_sorted(&decoded, &interior_extra);
            // Received octants are leaves of other partitions: disjoint
            // from ours, but deduplicate defensively.
            interior.dedup();
            debug_assert!(is_linear(&interior));
            let (balanced, _) =
                balance_subtree_old_ext_scratch(&sub, &interior, &exterior, cond, scratch);
            let clipped: Vec<Octant<D>> = balanced
                .into_iter()
                .filter(|o| o.index() >= lo && o.last_index() <= hi)
                .collect();
            v.clear();
            pack_batch(&clipped, v);
            debug_assert!(is_linear_keys::<D>(v));
        }
    }
}
