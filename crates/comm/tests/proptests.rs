//! Property tests for the simulated runtime and the reversal schemes.

use forestbal_comm::{
    ranges_expansion, reverse_naive, reverse_notify, reverse_ranges, Cluster, Comm,
};
use proptest::prelude::*;

/// Transpose of a pattern: who sends to whom.
fn transpose(pattern: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let mut want = vec![Vec::new(); pattern.len()];
    for (p, rs) in pattern.iter().enumerate() {
        for &q in rs {
            want[q].push(p);
        }
    }
    for w in want.iter_mut() {
        w.sort_unstable();
        w.dedup();
    }
    want
}

fn arb_pattern() -> impl Strategy<Value = Vec<Vec<usize>>> {
    (1usize..14).prop_flat_map(|p| {
        prop::collection::vec(prop::collection::vec(0..p, 0..2 * p.min(6)), p..=p)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn notify_equals_transpose(pattern in arb_pattern()) {
        let want = transpose(&pattern);
        let pat = &pattern;
        let out = Cluster::run(pattern.len(), |ctx| {
            reverse_notify(ctx, &pat[ctx.rank()])
        });
        prop_assert_eq!(out.results, want);
    }

    #[test]
    fn naive_equals_transpose(pattern in arb_pattern()) {
        let want = transpose(&pattern);
        let pat = &pattern;
        let out = Cluster::run(pattern.len(), |ctx| {
            reverse_naive(ctx, &pat[ctx.rank()])
        });
        prop_assert_eq!(out.results, want);
    }

    #[test]
    fn ranges_is_consistent_superset(
        pattern in arb_pattern(),
        max_ranges in 1usize..4,
    ) {
        // Ranges may overreport, but (a) it never misses a sender, and
        // (b) its false positives are exactly the expansion mismatch:
        // q is reported to p iff p is in q's expansion.
        let want = transpose(&pattern);
        let size = pattern.len();
        let pat = &pattern;
        let out = Cluster::run(size, |ctx| {
            reverse_ranges(ctx, &pat[ctx.rank()], max_ranges)
        });
        for (p, got) in out.results.iter().enumerate() {
            for s in &want[p] {
                prop_assert!(got.contains(s), "rank {} missed sender {}", p, s);
            }
            for s in got {
                let exp = ranges_expansion(&pattern[*s], max_ranges, size);
                prop_assert!(
                    exp.contains(&p),
                    "rank {} reported sender {} outside its expansion", p, s
                );
            }
        }
    }

    #[test]
    fn expansion_covers_receivers(
        receivers in prop::collection::vec(0usize..32, 0..12),
        max_ranges in 1usize..5,
    ) {
        let exp = ranges_expansion(&receivers, max_ranges, 32);
        for r in &receivers {
            prop_assert!(exp.contains(r));
        }
        // Expansion is sorted and within bounds.
        prop_assert!(exp.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(exp.iter().all(|&q| q < 32));
    }

    #[test]
    fn messages_arrive_regardless_of_order(
        sizes in prop::collection::vec(0usize..200, 1..10),
    ) {
        // One rank sends messages of varied sizes under distinct tags;
        // the receiver drains them in reverse tag order, exercising the
        // out-of-order pending buffer.
        let sz = &sizes;
        Cluster::run(2, |ctx| {
            if ctx.rank() == 0 {
                for (i, &n) in sz.iter().enumerate() {
                    ctx.send(1, i as u32, vec![i as u8; n]);
                }
            } else {
                for (i, &n) in sz.iter().enumerate().rev() {
                    let (_, data) = ctx.recv(Some(0), i as u32);
                    assert_eq!(data.len(), n);
                    assert!(data.iter().all(|&b| b == i as u8));
                }
            }
        });
    }

    #[test]
    fn allgather_collects_everything(payloads in prop::collection::vec(
        prop::collection::vec(any::<u8>(), 0..64), 1..8)
    ) {
        let pl = &payloads;
        let out = Cluster::run(payloads.len(), |ctx| {
            let all = ctx.allgather(pl[ctx.rank()].clone());
            all.as_ref().clone()
        });
        for r in out.results {
            prop_assert_eq!(&r, pl);
        }
    }
}
