//! Sharing allgather-derived structures between co-located ranks.
//!
//! Every rank that participates in an allgather receives the *same*
//! `Arc<Vec<Vec<u8>>>` buffer — both runtimes hand one buffer to all
//! ranks. But each rank then *decodes* that buffer privately (partition
//! markers, inverted communication patterns, ...), which at paper scale
//! is catastrophic: P = 112,128 simulated ranks each decoding a
//! `(P+1)`-entry marker table is ~400 GB of identical copies.
//!
//! [`shared_decode`] fixes this with a thread-local memo keyed on the
//! gather buffer's identity: the first rank on a thread decodes, every
//! later rank on the same thread gets the same `Arc` back. Under the
//! simulator's fiber backend all ranks share one thread, so a
//! rank-count-independent number of copies exists per epoch; under the
//! threaded runtimes each rank decodes its own copy, exactly as before.
//!
//! Correctness notes:
//!
//! * The decoded value must be a **pure function of the gather bytes**
//!   (no dependence on the calling rank), or sharing would be wrong.
//!   Callers keep per-rank derivation (e.g. "my senders") outside the
//!   decode closure.
//! * Entries are keyed on `(T, key, Arc pointer)` and hold a clone of the
//!   gather `Arc`, so a buffer address can never be recycled by the
//!   allocator while its memo entry is alive (no ABA confusion).
//! * One entry per `(T, key)` call site: a new epoch's gather evicts the
//!   previous epoch's entry, so the memo's footprint is bounded by the
//!   number of call sites, not by run length.

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::sync::Arc;

struct Entry {
    type_id: TypeId,
    key: u64,
    ptr: *const Vec<Vec<u8>>,
    /// Pins the gather buffer so `ptr` stays unique while we hold it.
    _pin: Arc<Vec<Vec<u8>>>,
    value: Arc<dyn Any + Send + Sync>,
}

thread_local! {
    static MEMO: RefCell<Vec<Entry>> = const { RefCell::new(Vec::new()) };
}

/// Decode `gather` through `decode`, memoized per thread on the buffer's
/// identity: ranks sharing a thread (the simulator's fiber backend) share
/// one decoded value per `(T, key, buffer)`. `key` distinguishes call
/// sites that decode the same buffer type differently.
///
/// `decode` must depend only on the gather contents — never on the
/// calling rank — and must be deterministic.
pub fn shared_decode<T, F>(gather: &Arc<Vec<Vec<u8>>>, key: u64, decode: F) -> Arc<T>
where
    T: Any + Send + Sync,
    F: FnOnce(&[Vec<u8>]) -> T,
{
    let ptr: *const Vec<Vec<u8>> = Arc::as_ptr(gather);
    let type_id = TypeId::of::<T>();
    MEMO.with(|m| {
        let mut memo = m.borrow_mut();
        let slot = memo
            .iter_mut()
            .find(|e| e.type_id == type_id && e.key == key);
        if let Some(e) = &slot {
            if e.ptr == ptr {
                return e
                    .value
                    .clone()
                    .downcast::<T>()
                    .expect("entry type id matched");
            }
        }
        let value = Arc::new(decode(gather));
        let entry = Entry {
            type_id,
            key,
            ptr,
            _pin: Arc::clone(gather),
            value: value.clone(),
        };
        match slot {
            Some(e) => *e = entry,
            None => memo.push(entry),
        }
        value
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn second_caller_shares_first_decode() {
        let gather = Arc::new(vec![vec![1u8, 2], vec![3u8]]);
        let decodes = AtomicUsize::new(0);
        let a = shared_decode(&gather, 0xA, |all| {
            decodes.fetch_add(1, Ordering::Relaxed);
            all.iter().map(|v| v.len()).sum::<usize>()
        });
        let b = shared_decode(&gather, 0xA, |all| {
            decodes.fetch_add(1, Ordering::Relaxed);
            all.iter().map(|v| v.len()).sum::<usize>()
        });
        assert_eq!((*a, *b), (3, 3));
        assert!(Arc::ptr_eq(&a, &b), "same buffer+key must share");
        assert_eq!(decodes.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn new_epoch_evicts_old_entry() {
        let g1 = Arc::new(vec![vec![0u8; 4]]);
        let v1 = shared_decode(&g1, 0xB, |all| all[0].len());
        let g2 = Arc::new(vec![vec![0u8; 9]]);
        let v2 = shared_decode(&g2, 0xB, |all| all[0].len());
        assert_eq!((*v1, *v2), (4, 9));
        // g1's entry was replaced; re-decoding g1 runs the closure again.
        let v1b = shared_decode(&g1, 0xB, |all| all[0].len() + 100);
        assert_eq!(*v1b, 104);
    }

    #[test]
    fn keys_and_types_are_distinct_namespaces() {
        let g = Arc::new(vec![vec![7u8]]);
        let by_key_1 = shared_decode(&g, 1, |_| 1usize);
        let by_key_2 = shared_decode(&g, 2, |_| 2usize);
        let by_type: Arc<u64> = shared_decode(&g, 1, |_| 3u64);
        assert_eq!((*by_key_1, *by_key_2, *by_type), (1, 2, 3));
    }
}
