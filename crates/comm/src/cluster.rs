//! Ranks, point-to-point messaging, and collectives.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::cell::RefCell;
use std::sync::Arc;

/// One message in flight.
struct Envelope {
    src: usize,
    tag: u32,
    data: Vec<u8>,
}

/// Per-rank communication counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Point-to-point messages sent.
    pub messages_sent: u64,
    /// Point-to-point payload bytes sent.
    pub bytes_sent: u64,
    /// Collective operations entered (allgather, barrier).
    pub collective_calls: u64,
    /// Bytes this rank contributed to collectives.
    pub collective_bytes: u64,
}

impl CommStats {
    /// Componentwise sum, for cluster-wide totals.
    pub fn merge(&self, other: &CommStats) -> CommStats {
        CommStats {
            messages_sent: self.messages_sent + other.messages_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            collective_calls: self.collective_calls + other.collective_calls,
            collective_bytes: self.collective_bytes + other.collective_bytes,
        }
    }
}

/// Reusable generation-counted allgather/barrier state.
struct GatherState {
    /// Round currently accepting contributions.
    gen: u64,
    /// Contributions for the current round.
    entries: Vec<Option<Vec<u8>>>,
    arrived: usize,
    /// Completed round and its result.
    result_gen: Option<u64>,
    result: Option<Arc<Vec<Vec<u8>>>>,
}

struct Shared {
    size: usize,
    mailboxes: Vec<Sender<Envelope>>,
    gather: Mutex<GatherState>,
    gather_cv: Condvar,
}

/// Handle through which a simulated rank communicates.
///
/// Not `Clone`: exactly one per rank, owned by the rank's closure.
pub struct RankCtx {
    rank: usize,
    shared: Arc<Shared>,
    inbox: Receiver<Envelope>,
    /// Messages received but not yet matched by a `recv` call.
    pending: RefCell<Vec<Envelope>>,
    stats: RefCell<CommStats>,
}

impl RankCtx {
    /// This rank's id in `0..size()`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the cluster.
    #[inline]
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// Send `data` to rank `dst` with a matching `tag`.
    pub fn send(&self, dst: usize, tag: u32, data: Vec<u8>) {
        let mut st = self.stats.borrow_mut();
        st.messages_sent += 1;
        st.bytes_sent += data.len() as u64;
        drop(st);
        self.shared.mailboxes[dst]
            .send(Envelope {
                src: self.rank,
                tag,
                data,
            })
            .expect("destination rank hung up");
    }

    /// Receive a message with tag `tag`, optionally from a specific
    /// source. Blocks until a matching message arrives; non-matching
    /// messages are buffered. Returns `(src, data)`.
    pub fn recv(&self, src: Option<usize>, tag: u32) -> (usize, Vec<u8>) {
        let matches = |e: &Envelope| e.tag == tag && src.is_none_or(|s| s == e.src);
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(i) = pending.iter().position(&matches) {
                let e = pending.swap_remove(i);
                return (e.src, e.data);
            }
        }
        loop {
            let e = self
                .inbox
                .recv()
                .expect("cluster shut down while receiving");
            if matches(&e) {
                return (e.src, e.data);
            }
            self.pending.borrow_mut().push(e);
        }
    }

    /// Gather one variable-length buffer from every rank (the semantics of
    /// `MPI_Allgatherv`; with equal lengths this is `MPI_Allgather`).
    /// Returns the contributions indexed by rank.
    pub fn allgather(&self, data: Vec<u8>) -> Arc<Vec<Vec<u8>>> {
        {
            let mut st = self.stats.borrow_mut();
            st.collective_calls += 1;
            st.collective_bytes += data.len() as u64;
        }
        let shared = &self.shared;
        let mut g = shared.gather.lock();
        let my_gen = g.gen;
        debug_assert!(g.entries[self.rank].is_none(), "double allgather entry");
        g.entries[self.rank] = Some(data);
        g.arrived += 1;
        if g.arrived == shared.size {
            let entries: Vec<Vec<u8>> = g.entries.iter_mut().map(|e| e.take().unwrap()).collect();
            g.result = Some(Arc::new(entries));
            g.result_gen = Some(my_gen);
            g.gen += 1;
            g.arrived = 0;
            shared.gather_cv.notify_all();
        } else {
            shared
                .gather_cv
                .wait_while(&mut g, |g| g.result_gen != Some(my_gen));
        }
        Arc::clone(g.result.as_ref().unwrap())
    }

    /// Block until every rank has entered the barrier.
    pub fn barrier(&self) {
        self.allgather(Vec::new());
    }

    /// Allreduce a `u64` with a combining function (sum, max, ...).
    pub fn allreduce_u64(&self, v: u64, combine: impl Fn(u64, u64) -> u64) -> u64 {
        let all = self.allgather(v.to_le_bytes().to_vec());
        all.iter()
            .map(|b| u64::from_le_bytes(b.as_slice().try_into().unwrap()))
            .reduce(&combine)
            .expect("at least one rank")
    }

    /// Allreduce: cluster-wide sum of a `u64`.
    pub fn allreduce_sum(&self, v: u64) -> u64 {
        self.allreduce_u64(v, |a, b| a.wrapping_add(b))
    }

    /// Allreduce: cluster-wide maximum of a `u64`.
    pub fn allreduce_max(&self, v: u64) -> u64 {
        self.allreduce_u64(v, u64::max)
    }

    /// Allreduce: do all ranks agree this flag is true?
    pub fn allreduce_and(&self, v: bool) -> bool {
        self.allreduce_u64(v as u64, |a, b| a & b) != 0
    }

    /// Allreduce: does any rank set this flag?
    pub fn allreduce_or(&self, v: bool) -> bool {
        self.allreduce_u64(v as u64, |a, b| a | b) != 0
    }

    /// Snapshot of this rank's communication counters.
    pub fn stats(&self) -> CommStats {
        *self.stats.borrow()
    }
}

/// Results of a cluster run: per-rank closure outputs and counters, both
/// indexed by rank.
pub struct RunOutput<T> {
    /// The closure's return value per rank.
    pub results: Vec<T>,
    /// Communication counters per rank.
    pub stats: Vec<CommStats>,
}

impl<T> RunOutput<T> {
    /// Cluster-wide total of the per-rank counters.
    pub fn total_stats(&self) -> CommStats {
        self.stats
            .iter()
            .fold(CommStats::default(), |a, b| a.merge(b))
    }
}

/// A simulated cluster.
pub struct Cluster;

impl Cluster {
    /// Run `f` on `size` ranks, each on its own thread, and collect the
    /// per-rank results. Panics in any rank propagate.
    pub fn run<T, F>(size: usize, f: F) -> RunOutput<T>
    where
        T: Send,
        F: Fn(&RankCtx) -> T + Send + Sync,
    {
        assert!(size >= 1, "a cluster needs at least one rank");
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..size).map(|_| unbounded::<Envelope>()).unzip();
        let shared = Arc::new(Shared {
            size,
            mailboxes: senders,
            gather: Mutex::new(GatherState {
                gen: 0,
                entries: (0..size).map(|_| None).collect(),
                arrived: 0,
                result_gen: None,
                result: None,
            }),
            gather_cv: Condvar::new(),
        });

        let f = &f;
        let mut out: Vec<Option<(T, CommStats)>> = (0..size).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = receivers
                .into_iter()
                .enumerate()
                .map(|(rank, inbox)| {
                    let shared = Arc::clone(&shared);
                    scope.spawn(move || {
                        let ctx = RankCtx {
                            rank,
                            shared,
                            inbox,
                            pending: RefCell::new(Vec::new()),
                            stats: RefCell::new(CommStats::default()),
                        };
                        let r = f(&ctx);
                        let stats = ctx.stats();
                        (r, stats)
                    })
                })
                .collect();
            for (slot, h) in out.iter_mut().zip(handles) {
                *slot = Some(h.join().expect("rank panicked"));
            }
        });

        let (results, stats) = out.into_iter().map(Option::unwrap).unzip();
        RunOutput { results, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = Cluster::run(1, |ctx| {
            assert_eq!(ctx.rank(), 0);
            assert_eq!(ctx.size(), 1);
            42
        });
        assert_eq!(out.results, vec![42]);
    }

    #[test]
    fn ring_pass() {
        let out = Cluster::run(5, |ctx| {
            let next = (ctx.rank() + 1) % ctx.size();
            let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
            ctx.send(next, 7, vec![ctx.rank() as u8]);
            let (src, data) = ctx.recv(Some(prev), 7);
            assert_eq!(src, prev);
            data[0] as usize
        });
        assert_eq!(out.results, vec![4, 0, 1, 2, 3]);
        let total = out.total_stats();
        assert_eq!(total.messages_sent, 5);
        assert_eq!(total.bytes_sent, 5);
    }

    #[test]
    fn recv_filters_by_tag() {
        let out = Cluster::run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![1]);
                ctx.send(1, 2, vec![2]);
                0
            } else {
                // Receive tag 2 first even though tag 1 arrives first.
                let (_, d2) = ctx.recv(Some(0), 2);
                let (_, d1) = ctx.recv(Some(0), 1);
                (d2[0] * 10 + d1[0]) as usize
            }
        });
        assert_eq!(out.results[1], 21);
    }

    #[test]
    fn recv_any_source() {
        let out = Cluster::run(3, |ctx| {
            if ctx.rank() == 0 {
                let mut sum = 0u64;
                for _ in 0..2 {
                    let (_, d) = ctx.recv(None, 9);
                    sum += d[0] as u64;
                }
                sum
            } else {
                ctx.send(0, 9, vec![ctx.rank() as u8]);
                0
            }
        });
        assert_eq!(out.results[0], 3);
    }

    #[test]
    fn allgather_variable_sizes() {
        let out = Cluster::run(4, |ctx| {
            let mine = vec![ctx.rank() as u8; ctx.rank() + 1];
            let all = ctx.allgather(mine);
            all.iter().map(|v| v.len()).collect::<Vec<_>>()
        });
        for r in out.results {
            assert_eq!(r, vec![1, 2, 3, 4]);
        }
    }

    #[test]
    fn repeated_allgathers_reuse_state() {
        let out = Cluster::run(3, |ctx| {
            let mut acc = 0u64;
            for round in 0..10u8 {
                let all = ctx.allgather(vec![round, ctx.rank() as u8]);
                for v in all.iter() {
                    assert_eq!(v[0], round, "round mixing detected");
                    acc += v[1] as u64;
                }
            }
            acc
        });
        for r in out.results {
            assert_eq!(r, 10 * (1 + 2));
        }
    }

    #[test]
    fn barrier_orders_sides() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let flag = AtomicUsize::new(0);
        Cluster::run(4, |ctx| {
            flag.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            assert_eq!(flag.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn allreduce_ops() {
        let out = Cluster::run(5, |ctx| {
            let r = ctx.rank() as u64;
            (
                ctx.allreduce_sum(r),
                ctx.allreduce_max(r),
                ctx.allreduce_and(ctx.rank() < 4),
                ctx.allreduce_or(ctx.rank() == 3),
                ctx.allreduce_and(true),
            )
        });
        for r in out.results {
            assert_eq!(r, (10, 4, false, true, true));
        }
    }

    #[test]
    fn stats_are_per_rank() {
        let out = Cluster::run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, vec![0; 100]);
            } else {
                ctx.recv(Some(0), 0);
            }
            ctx.stats()
        });
        assert_eq!(out.stats[0].messages_sent, 1);
        assert_eq!(out.stats[0].bytes_sent, 100);
        assert_eq!(out.stats[1].messages_sent, 0);
    }
}
