//! The threaded runtime: ranks as OS threads, messages as channel sends.

use crate::comm::{install_quiet_panic_hook, Comm, CommStats, RunOutput, ShutdownSignal};
use std::any::Any;
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, panic_any, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;

/// Lock a mutex, tolerating poisoning: a rank that panics while holding a
/// lock is already being propagated as the run's failure, so peers may
/// still inspect the shared state to unwind cleanly.
fn lock_anyway<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One message in flight.
struct Envelope {
    src: usize,
    tag: u32,
    data: Vec<u8>,
    /// True for the wake-up sentinel broadcast when a rank panicked.
    shutdown: bool,
}

/// Reusable generation-counted allgather/barrier state.
struct GatherState {
    /// Round currently accepting contributions.
    gen: u64,
    /// Contributions for the current round.
    entries: Vec<Option<Vec<u8>>>,
    arrived: usize,
    /// Completed round and its result.
    result_gen: Option<u64>,
    result: Option<Arc<Vec<Vec<u8>>>>,
}

struct Shared {
    size: usize,
    mailboxes: Vec<Sender<Envelope>>,
    gather: Mutex<GatherState>,
    gather_cv: Condvar,
    /// Epoch of the run, for [`Comm::now_ns`].
    start: Instant,
    /// Set when any rank panicked; peers unwind out of blocking calls.
    shutdown: AtomicBool,
    /// The first panic payload, re-raised by [`Cluster::run`].
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
}

impl Shared {
    /// Record a rank's panic and wake every blocked peer so the whole run
    /// fails fast with the original panic.
    fn abort(&self, payload: Box<dyn Any + Send>) {
        {
            let mut slot = lock_anyway(&self.panic_payload);
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake receivers: a sentinel envelope per rank (sends to already
        // finished ranks fail harmlessly)...
        for mb in &self.mailboxes {
            let _ = mb.send(Envelope {
                src: 0,
                tag: 0,
                data: Vec::new(),
                shutdown: true,
            });
        }
        // ...and collective waiters.
        let _guard = lock_anyway(&self.gather);
        self.gather_cv.notify_all();
    }

    fn check_shutdown(&self) {
        if self.shutdown.load(Ordering::SeqCst) {
            panic_any(ShutdownSignal);
        }
    }
}

/// Handle through which a threaded rank communicates.
///
/// Not `Clone`: exactly one per rank, owned by the rank's closure. All
/// communication goes through the [`Comm`] trait.
pub struct RankCtx {
    rank: usize,
    shared: Arc<Shared>,
    inbox: Receiver<Envelope>,
    /// Messages received but not yet matched by a `recv` call, indexed by
    /// tag and kept in arrival order, so tag-heavy query/response rounds
    /// match in O(messages of that tag) instead of scanning everything.
    pending: RefCell<BTreeMap<u32, VecDeque<Envelope>>>,
    stats: RefCell<CommStats>,
}

impl Comm for RankCtx {
    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn size(&self) -> usize {
        self.shared.size
    }

    fn send(&self, dst: usize, tag: u32, data: Vec<u8>) {
        self.stats.borrow_mut().record_send(tag, data.len());
        let env = Envelope {
            src: self.rank,
            tag,
            data,
            shutdown: false,
        };
        if self.shared.mailboxes[dst].send(env).is_err() {
            self.shared.check_shutdown();
            panic!("destination rank hung up");
        }
    }

    fn recv(&self, src: Option<usize>, tag: u32) -> (usize, Vec<u8>) {
        self.shared.check_shutdown();
        {
            let mut pending = self.pending.borrow_mut();
            if let Some(q) = pending.get_mut(&tag) {
                let hit = match src {
                    None => (!q.is_empty()).then_some(0),
                    Some(s) => q.iter().position(|e| e.src == s),
                };
                if let Some(i) = hit {
                    let e = q.remove(i).expect("index in bounds");
                    if q.is_empty() {
                        pending.remove(&tag);
                    }
                    return (e.src, e.data);
                }
            }
        }
        loop {
            let e = self
                .inbox
                .recv()
                .expect("cluster shut down while receiving");
            if e.shutdown {
                panic_any(ShutdownSignal);
            }
            if e.tag == tag && src.is_none_or(|s| s == e.src) {
                return (e.src, e.data);
            }
            self.pending
                .borrow_mut()
                .entry(e.tag)
                .or_default()
                .push_back(e);
        }
    }

    fn allgather(&self, data: Vec<u8>) -> Arc<Vec<Vec<u8>>> {
        self.stats.borrow_mut().record_collective(data.len());
        let shared = &self.shared;
        shared.check_shutdown();
        let mut g = lock_anyway(&shared.gather);
        let my_gen = g.gen;
        debug_assert!(g.entries[self.rank].is_none(), "double allgather entry");
        g.entries[self.rank] = Some(data);
        g.arrived += 1;
        if g.arrived == shared.size {
            let entries: Vec<Vec<u8>> = g.entries.iter_mut().map(|e| e.take().unwrap()).collect();
            g.result = Some(Arc::new(entries));
            g.result_gen = Some(my_gen);
            g.gen += 1;
            g.arrived = 0;
            shared.gather_cv.notify_all();
        } else {
            g = shared
                .gather_cv
                .wait_while(g, |g| {
                    g.result_gen != Some(my_gen) && !shared.shutdown.load(Ordering::SeqCst)
                })
                .unwrap_or_else(PoisonError::into_inner);
            if g.result_gen != Some(my_gen) {
                drop(g);
                panic_any(ShutdownSignal);
            }
        }
        Arc::clone(g.result.as_ref().unwrap())
    }

    fn stats(&self) -> CommStats {
        *self.stats.borrow()
    }

    fn now_ns(&self) -> u64 {
        self.shared.start.elapsed().as_nanos() as u64
    }
}

/// The threaded cluster runtime: real parallelism, wall-clock time,
/// nondeterministic interleavings (capped at a few hundred ranks in
/// practice). For deterministic large-P runs use `forestbal_sim`.
pub struct Cluster;

impl Cluster {
    /// Run `f` on `size` ranks, each on its own thread, and collect the
    /// per-rank results. If any rank panics, every peer is unwound out of
    /// its blocking communication calls and the original panic is
    /// re-raised from this call (fail-fast instead of deadlock).
    pub fn run<T, F>(size: usize, f: F) -> RunOutput<T>
    where
        T: Send,
        F: Fn(&RankCtx) -> T + Send + Sync,
    {
        assert!(size >= 1, "a cluster needs at least one rank");
        install_quiet_panic_hook();
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..size).map(|_| channel::<Envelope>()).unzip();
        let shared = Arc::new(Shared {
            size,
            mailboxes: senders,
            gather: Mutex::new(GatherState {
                gen: 0,
                entries: (0..size).map(|_| None).collect(),
                arrived: 0,
                result_gen: None,
                result: None,
            }),
            gather_cv: Condvar::new(),
            start: Instant::now(),
            shutdown: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
        });

        let f = &f;
        let mut out: Vec<Option<(T, CommStats)>> = (0..size).map(|_| None).collect();
        std::thread::scope(|scope| {
            let handles: Vec<_> = receivers
                .into_iter()
                .enumerate()
                .map(|(rank, inbox)| {
                    let shared = Arc::clone(&shared);
                    scope.spawn(move || {
                        let ctx = RankCtx {
                            rank,
                            shared,
                            inbox,
                            pending: RefCell::new(BTreeMap::new()),
                            stats: RefCell::new(CommStats::default()),
                        };
                        match catch_unwind(AssertUnwindSafe(|| f(&ctx))) {
                            Ok(r) => {
                                let stats = ctx.stats();
                                Some((r, stats))
                            }
                            Err(payload) => {
                                if payload.downcast_ref::<ShutdownSignal>().is_none() {
                                    ctx.shared.abort(payload);
                                }
                                None
                            }
                        }
                    })
                })
                .collect();
            for (slot, h) in out.iter_mut().zip(handles) {
                *slot = h.join().expect("rank thread cannot panic past its catch");
            }
        });

        if let Some(payload) = lock_anyway(&shared.panic_payload).take() {
            resume_unwind(payload);
        }
        let (results, stats) = out
            .into_iter()
            .map(|s| s.expect("rank produced no result yet did not panic"))
            .unzip();
        RunOutput { results, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_runs() {
        let out = Cluster::run(1, |ctx| {
            assert_eq!(ctx.rank(), 0);
            assert_eq!(ctx.size(), 1);
            42
        });
        assert_eq!(out.results, vec![42]);
    }

    #[test]
    fn ring_pass() {
        let out = Cluster::run(5, |ctx| {
            let next = (ctx.rank() + 1) % ctx.size();
            let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
            ctx.send(next, 7, vec![ctx.rank() as u8]);
            let (src, data) = ctx.recv(Some(prev), 7);
            assert_eq!(src, prev);
            data[0] as usize
        });
        assert_eq!(out.results, vec![4, 0, 1, 2, 3]);
        let total = out.total_stats();
        assert_eq!(total.messages_sent, 5);
        assert_eq!(total.bytes_sent, 5);
    }

    #[test]
    fn recv_filters_by_tag() {
        let out = Cluster::run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![1]);
                ctx.send(1, 2, vec![2]);
                0
            } else {
                // Receive tag 2 first even though tag 1 arrives first.
                let (_, d2) = ctx.recv(Some(0), 2);
                let (_, d1) = ctx.recv(Some(0), 1);
                (d2[0] * 10 + d1[0]) as usize
            }
        });
        assert_eq!(out.results[1], 21);
    }

    #[test]
    fn recv_any_source() {
        let out = Cluster::run(3, |ctx| {
            if ctx.rank() == 0 {
                let mut sum = 0u64;
                for _ in 0..2 {
                    let (_, d) = ctx.recv(None, 9);
                    sum += d[0] as u64;
                }
                sum
            } else {
                ctx.send(0, 9, vec![ctx.rank() as u8]);
                0
            }
        });
        assert_eq!(out.results[0], 3);
    }

    #[test]
    fn pending_preserves_per_source_order() {
        // Two messages with the same tag from the same source, buffered
        // while an unrelated tag is received first: FIFO order must hold.
        let out = Cluster::run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 5, vec![10]);
                ctx.send(1, 5, vec![20]);
                ctx.send(1, 6, vec![30]);
                0
            } else {
                let (_, d6) = ctx.recv(Some(0), 6);
                let (_, a) = ctx.recv(Some(0), 5);
                let (_, b) = ctx.recv(None, 5);
                (d6[0] as usize) * 100 + (a[0] as usize) + (b[0] as usize) / 10
            }
        });
        assert_eq!(out.results[1], 3012);
    }

    #[test]
    fn allgather_variable_sizes() {
        let out = Cluster::run(4, |ctx| {
            let mine = vec![ctx.rank() as u8; ctx.rank() + 1];
            let all = ctx.allgather(mine);
            all.iter().map(|v| v.len()).collect::<Vec<_>>()
        });
        for r in out.results {
            assert_eq!(r, vec![1, 2, 3, 4]);
        }
    }

    #[test]
    fn repeated_allgathers_reuse_state() {
        let out = Cluster::run(3, |ctx| {
            let mut acc = 0u64;
            for round in 0..10u8 {
                let all = ctx.allgather(vec![round, ctx.rank() as u8]);
                for v in all.iter() {
                    assert_eq!(v[0], round, "round mixing detected");
                    acc += v[1] as u64;
                }
            }
            acc
        });
        for r in out.results {
            assert_eq!(r, 10 * (1 + 2));
        }
    }

    #[test]
    fn barrier_orders_sides() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let flag = AtomicUsize::new(0);
        Cluster::run(4, |ctx| {
            flag.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            assert_eq!(flag.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    fn allreduce_ops() {
        let out = Cluster::run(5, |ctx| {
            let r = ctx.rank() as u64;
            (
                ctx.allreduce_sum(r),
                ctx.allreduce_max(r),
                ctx.allreduce_and(ctx.rank() < 4),
                ctx.allreduce_or(ctx.rank() == 3),
                ctx.allreduce_and(true),
            )
        });
        for r in out.results {
            assert_eq!(r, (10, 4, false, true, true));
        }
    }

    #[test]
    fn stats_are_per_rank() {
        let out = Cluster::run(2, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, vec![0; 100]);
            } else {
                ctx.recv(Some(0), 0);
            }
            ctx.stats()
        });
        assert_eq!(out.stats[0].messages_sent, 1);
        assert_eq!(out.stats[0].bytes_sent, 100);
        assert_eq!(out.stats[1].messages_sent, 0);
    }

    #[test]
    fn now_ns_is_monotonic() {
        Cluster::run(2, |ctx| {
            let a = ctx.now_ns();
            ctx.barrier();
            let b = ctx.now_ns();
            assert!(b >= a);
        });
    }

    #[test]
    fn rank_panic_fails_fast_through_recv() {
        // Rank 1 panics; rank 0 is blocked in a recv that will never be
        // satisfied. The run must unwind promptly with the original
        // panic message rather than deadlock.
        let result = catch_unwind(AssertUnwindSafe(|| {
            Cluster::run(3, |ctx| {
                if ctx.rank() == 1 {
                    panic!("rank 1 exploded");
                }
                ctx.recv(Some(1), 77); // never sent
            });
        }));
        let payload = result.expect_err("run must propagate the panic");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_string)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("rank 1 exploded"), "got: {msg}");
    }

    #[test]
    fn rank_panic_fails_fast_through_collectives() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Cluster::run(4, |ctx| {
                if ctx.rank() == 2 {
                    panic!("collective abort");
                }
                ctx.barrier(); // three ranks wait, one never arrives
            });
        }));
        assert!(result.is_err(), "run must propagate the panic");
    }
}
