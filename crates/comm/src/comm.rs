//! The [`Comm`] trait: the runtime-independent communication interface.
//!
//! Every parallel algorithm in this workspace (pattern reversal, the
//! one-pass balance, ghost layers, partitioning, ...) is written against
//! this trait, so the same code runs unmodified on the threaded
//! [`crate::Cluster`] runtime and on the deterministic discrete-event
//! simulator in `forestbal-sim`.

use std::sync::Arc;

/// Per-tag share of the point-to-point counters (see
/// [`CommStats::per_tag`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TagStats {
    /// The message tag.
    pub tag: u32,
    /// Messages sent with this tag.
    pub messages: u64,
    /// Payload bytes sent with this tag.
    pub bytes: u64,
}

/// Capacity of the per-tag table in [`CommStats`]. A balance run uses one
/// tag each for queries and responses plus one per `Notify` level
/// (`⌈log₂ P⌉`, 14 at P = 16384), so 16 first-come slots cover a single
/// algorithm invocation; later tags spill into the `other_*` counters.
pub const TAG_SLOTS: usize = 16;

/// Per-rank communication counters.
///
/// Both runtimes count identically — through [`CommStats::record_send`]
/// and [`CommStats::record_collective`] — which is what lets differential
/// tests assert bit-equal message/byte counts (including the per-tag
/// breakdown) between a threaded run and a simulated run of the same
/// algorithm.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Point-to-point messages sent.
    pub messages_sent: u64,
    /// Point-to-point payload bytes sent.
    pub bytes_sent: u64,
    /// Collective operations entered (allgather, barrier).
    pub collective_calls: u64,
    /// Bytes this rank contributed to collectives.
    pub collective_bytes: u64,
    /// Messages whose tag arrived after all [`TAG_SLOTS`] were taken.
    pub other_messages: u64,
    /// Bytes whose tag arrived after all [`TAG_SLOTS`] were taken.
    pub other_bytes: u64,
    /// First-come per-tag table; `tags[..ntags]` are occupied.
    tags: [TagStats; TAG_SLOTS],
    /// Occupied prefix length of `tags`.
    ntags: u8,
}

impl CommStats {
    /// Count one outgoing point-to-point message. Used by both runtimes so
    /// the totals — and the per-tag breakdown — stay bit-equal.
    pub fn record_send(&mut self, tag: u32, bytes: usize) {
        self.messages_sent += 1;
        self.bytes_sent += bytes as u64;
        self.add_tagged(tag, 1, bytes as u64);
    }

    /// Count one collective this rank entered with `bytes` of payload.
    pub fn record_collective(&mut self, bytes: usize) {
        self.collective_calls += 1;
        self.collective_bytes += bytes as u64;
    }

    /// The per-tag breakdown of the point-to-point traffic, in
    /// first-recorded order. Tags beyond the table capacity are summed in
    /// [`CommStats::other_messages`]/[`CommStats::other_bytes`];
    /// `per_tag()` totals plus `other_*` always equal
    /// `messages_sent`/`bytes_sent`.
    pub fn per_tag(&self) -> &[TagStats] {
        &self.tags[..self.ntags as usize]
    }

    /// This rank's traffic under one specific tag (zero if never used).
    pub fn tag_stats(&self, tag: u32) -> TagStats {
        self.per_tag()
            .iter()
            .find(|t| t.tag == tag)
            .copied()
            .unwrap_or(TagStats {
                tag,
                messages: 0,
                bytes: 0,
            })
    }

    fn add_tagged(&mut self, tag: u32, messages: u64, bytes: u64) {
        for t in &mut self.tags[..self.ntags as usize] {
            if t.tag == tag {
                t.messages += messages;
                t.bytes += bytes;
                return;
            }
        }
        if (self.ntags as usize) < TAG_SLOTS {
            self.tags[self.ntags as usize] = TagStats {
                tag,
                messages,
                bytes,
            };
            self.ntags += 1;
        } else {
            self.other_messages += messages;
            self.other_bytes += bytes;
        }
    }

    /// Componentwise sum, for cluster-wide totals. Per-tag entries merge
    /// by tag key; the result keeps `self`'s slot order, then `other`'s.
    pub fn merge(&self, other: &CommStats) -> CommStats {
        let mut out = *self;
        out.messages_sent += other.messages_sent;
        out.bytes_sent += other.bytes_sent;
        out.collective_calls += other.collective_calls;
        out.collective_bytes += other.collective_bytes;
        out.other_messages += other.other_messages;
        out.other_bytes += other.other_bytes;
        for t in other.per_tag() {
            out.add_tagged(t.tag, t.messages, t.bytes);
        }
        out
    }

    /// The traffic recorded since an `earlier` snapshot of the same rank's
    /// counters — how algorithm phases attribute messages and bytes.
    /// Per-tag entries with no new traffic are dropped from the result.
    pub fn delta_since(&self, earlier: &CommStats) -> CommStats {
        let mut out = CommStats {
            messages_sent: self.messages_sent - earlier.messages_sent,
            bytes_sent: self.bytes_sent - earlier.bytes_sent,
            collective_calls: self.collective_calls - earlier.collective_calls,
            collective_bytes: self.collective_bytes - earlier.collective_bytes,
            other_messages: self.other_messages - earlier.other_messages,
            other_bytes: self.other_bytes - earlier.other_bytes,
            ..CommStats::default()
        };
        for t in self.per_tag() {
            let e = earlier.tag_stats(t.tag);
            if t.messages > e.messages || t.bytes > e.bytes {
                out.add_tagged(t.tag, t.messages - e.messages, t.bytes - e.bytes);
            }
        }
        out
    }
}

/// Results of a cluster run: per-rank closure outputs and counters, both
/// indexed by rank.
pub struct RunOutput<T> {
    /// The closure's return value per rank.
    pub results: Vec<T>,
    /// Communication counters per rank.
    pub stats: Vec<CommStats>,
}

impl<T> RunOutput<T> {
    /// Cluster-wide total of the per-rank counters.
    pub fn total_stats(&self) -> CommStats {
        self.stats
            .iter()
            .fold(CommStats::default(), |a, b| a.merge(b))
    }
}

/// The message-passing interface the paper's algorithms rely on:
/// asymmetric point-to-point messages with tag matching, plus
/// `Allgather`/`Allgatherv`-style collectives.
///
/// Implemented by the threaded [`crate::RankCtx`] (ranks are OS threads,
/// wall-clock time) and by `forestbal_sim::SimCtx` (ranks are simulated,
/// [`Comm::now_ns`] is deterministic virtual time).
pub trait Comm {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks in the cluster.
    fn size(&self) -> usize;

    /// Send `data` to rank `dst` with a matching `tag`. Non-blocking.
    fn send(&self, dst: usize, tag: u32, data: Vec<u8>);

    /// Receive a message with tag `tag`, optionally from a specific
    /// source. Blocks until a matching message arrives; non-matching
    /// messages are buffered. Returns `(src, data)`.
    fn recv(&self, src: Option<usize>, tag: u32) -> (usize, Vec<u8>);

    /// Gather one variable-length buffer from every rank (the semantics of
    /// `MPI_Allgatherv`; with equal lengths this is `MPI_Allgather`).
    /// Returns the contributions indexed by rank.
    fn allgather(&self, data: Vec<u8>) -> Arc<Vec<Vec<u8>>>;

    /// Snapshot of this rank's communication counters.
    fn stats(&self) -> CommStats;

    /// Monotonic per-rank clock in nanoseconds: wall clock since the run
    /// started on the threaded runtime, *virtual* time on the simulator.
    /// Phase timings derived from this clock therefore report simulated
    /// cluster time when the algorithm runs under `forestbal-sim`.
    fn now_ns(&self) -> u64;

    /// Block until every rank has entered the barrier.
    fn barrier(&self) {
        self.allgather(Vec::new());
    }

    /// Allreduce a `u64` with a combining function (sum, max, ...).
    ///
    /// `combine` must be the same deterministic function on every rank of
    /// the collective (true of any correct allreduce). The reduction is a
    /// pure function of the gathered bytes, so it runs once per gather per
    /// thread via [`crate::shared_decode`] — under the simulator's fiber
    /// backend that is once per *cluster*, turning the naive O(P) fold per
    /// rank (O(P²) aggregate) into O(P) total.
    fn allreduce_u64(&self, v: u64, combine: impl Fn(u64, u64) -> u64) -> u64
    where
        Self: Sized,
    {
        let all = self.allgather(v.to_le_bytes().to_vec());
        // One key for every allreduce call site is sound: collectives run
        // in lockstep, so all ranks fold a given gather buffer with the
        // same `combine`, and a new epoch's buffer evicts the old entry.
        *crate::shared_decode(&all, 0x5244_5543 /* "RDUC" */, |all| {
            all.iter()
                .map(|b| u64::from_le_bytes(b.as_slice().try_into().unwrap()))
                .reduce(&combine)
                .expect("at least one rank")
        })
    }

    /// Allreduce: cluster-wide sum of a `u64`.
    fn allreduce_sum(&self, v: u64) -> u64
    where
        Self: Sized,
    {
        self.allreduce_u64(v, |a, b| a.wrapping_add(b))
    }

    /// Allreduce: cluster-wide maximum of a `u64`.
    fn allreduce_max(&self, v: u64) -> u64
    where
        Self: Sized,
    {
        self.allreduce_u64(v, u64::max)
    }

    /// Allreduce: do all ranks agree this flag is true?
    fn allreduce_and(&self, v: bool) -> bool
    where
        Self: Sized,
    {
        self.allreduce_u64(v as u64, |a, b| a & b) != 0
    }

    /// Allreduce: does any rank set this flag?
    fn allreduce_or(&self, v: bool) -> bool
    where
        Self: Sized,
    {
        self.allreduce_u64(v as u64, |a, b| a | b) != 0
    }
}

/// Panic payload used to unwind ranks out of blocking communication calls
/// when a *different* rank failed and the runtime is shutting down. The
/// original panic is preserved and re-raised by the runtime's `run`; ranks
/// unwound with this sentinel stay silent (see
/// [`install_quiet_panic_hook`]).
#[derive(Debug)]
pub struct ShutdownSignal;

/// Install (once per process) a panic hook that suppresses the default
/// "thread panicked" report for [`ShutdownSignal`] unwinds, delegating
/// everything else to the previously installed hook. Runtimes call this
/// before spawning ranks so a single failing rank produces a single panic
/// report instead of one per peer.
pub fn install_quiet_panic_hook() {
    use std::sync::Once;
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ShutdownSignal>().is_some() {
                return;
            }
            prev(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_tag_tracks_and_totals() {
        let mut s = CommStats::default();
        s.record_send(7, 100);
        s.record_send(9, 10);
        s.record_send(7, 50);
        s.record_collective(4);
        assert_eq!(s.messages_sent, 3);
        assert_eq!(s.bytes_sent, 160);
        assert_eq!(s.collective_calls, 1);
        assert_eq!(s.collective_bytes, 4);
        // First-come slot order; totals reconcile.
        assert_eq!(
            s.per_tag(),
            &[
                TagStats {
                    tag: 7,
                    messages: 2,
                    bytes: 150
                },
                TagStats {
                    tag: 9,
                    messages: 1,
                    bytes: 10
                },
            ]
        );
        assert_eq!(s.tag_stats(7).bytes, 150);
        assert_eq!(s.tag_stats(42).messages, 0);
    }

    #[test]
    fn per_tag_overflow_spills_to_other() {
        let mut s = CommStats::default();
        for tag in 0..(TAG_SLOTS as u32 + 3) {
            s.record_send(tag, 1);
        }
        s.record_send(0, 1); // existing slot still accumulates
        assert_eq!(s.per_tag().len(), TAG_SLOTS);
        assert_eq!(s.other_messages, 3);
        assert_eq!(s.other_bytes, 3);
        assert_eq!(s.tag_stats(0).messages, 2);
        let slot_total: u64 = s.per_tag().iter().map(|t| t.messages).sum();
        assert_eq!(slot_total + s.other_messages, s.messages_sent);
    }

    #[test]
    fn merge_combines_by_tag() {
        let mut a = CommStats::default();
        a.record_send(1, 10);
        a.record_send(2, 20);
        let mut b = CommStats::default();
        b.record_send(2, 5);
        b.record_send(3, 7);
        let m = a.merge(&b);
        assert_eq!(m.messages_sent, 4);
        assert_eq!(m.bytes_sent, 42);
        assert_eq!(m.tag_stats(1).bytes, 10);
        assert_eq!(m.tag_stats(2).bytes, 25);
        assert_eq!(m.tag_stats(3).messages, 1);
    }

    #[test]
    fn delta_since_isolates_a_phase() {
        let mut s = CommStats::default();
        s.record_send(1, 10);
        s.record_collective(8);
        let snapshot = s;
        s.record_send(1, 5);
        s.record_send(2, 3);
        s.record_collective(2);
        let d = s.delta_since(&snapshot);
        assert_eq!(d.messages_sent, 2);
        assert_eq!(d.bytes_sent, 8);
        assert_eq!(d.collective_calls, 1);
        assert_eq!(d.collective_bytes, 2);
        assert_eq!(d.per_tag().len(), 2);
        assert_eq!(d.tag_stats(1).bytes, 5);
        assert_eq!(d.tag_stats(2).bytes, 3);
        // A no-op interval deltas to the default (empty) stats.
        assert_eq!(s.delta_since(&s), CommStats::default());
    }
}
