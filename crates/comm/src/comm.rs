//! The [`Comm`] trait: the runtime-independent communication interface.
//!
//! Every parallel algorithm in this workspace (pattern reversal, the
//! one-pass balance, ghost layers, partitioning, ...) is written against
//! this trait, so the same code runs unmodified on the threaded
//! [`crate::Cluster`] runtime and on the deterministic discrete-event
//! simulator in `forestbal-sim`.

use std::sync::Arc;

/// Per-rank communication counters.
///
/// Both runtimes count identically, which is what lets differential tests
/// assert bit-equal message/byte counts between a threaded run and a
/// simulated run of the same algorithm.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Point-to-point messages sent.
    pub messages_sent: u64,
    /// Point-to-point payload bytes sent.
    pub bytes_sent: u64,
    /// Collective operations entered (allgather, barrier).
    pub collective_calls: u64,
    /// Bytes this rank contributed to collectives.
    pub collective_bytes: u64,
}

impl CommStats {
    /// Componentwise sum, for cluster-wide totals.
    pub fn merge(&self, other: &CommStats) -> CommStats {
        CommStats {
            messages_sent: self.messages_sent + other.messages_sent,
            bytes_sent: self.bytes_sent + other.bytes_sent,
            collective_calls: self.collective_calls + other.collective_calls,
            collective_bytes: self.collective_bytes + other.collective_bytes,
        }
    }
}

/// Results of a cluster run: per-rank closure outputs and counters, both
/// indexed by rank.
pub struct RunOutput<T> {
    /// The closure's return value per rank.
    pub results: Vec<T>,
    /// Communication counters per rank.
    pub stats: Vec<CommStats>,
}

impl<T> RunOutput<T> {
    /// Cluster-wide total of the per-rank counters.
    pub fn total_stats(&self) -> CommStats {
        self.stats
            .iter()
            .fold(CommStats::default(), |a, b| a.merge(b))
    }
}

/// The message-passing interface the paper's algorithms rely on:
/// asymmetric point-to-point messages with tag matching, plus
/// `Allgather`/`Allgatherv`-style collectives.
///
/// Implemented by the threaded [`crate::RankCtx`] (ranks are OS threads,
/// wall-clock time) and by `forestbal_sim::SimCtx` (ranks are simulated,
/// [`Comm::now_ns`] is deterministic virtual time).
pub trait Comm {
    /// This rank's id in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of ranks in the cluster.
    fn size(&self) -> usize;

    /// Send `data` to rank `dst` with a matching `tag`. Non-blocking.
    fn send(&self, dst: usize, tag: u32, data: Vec<u8>);

    /// Receive a message with tag `tag`, optionally from a specific
    /// source. Blocks until a matching message arrives; non-matching
    /// messages are buffered. Returns `(src, data)`.
    fn recv(&self, src: Option<usize>, tag: u32) -> (usize, Vec<u8>);

    /// Gather one variable-length buffer from every rank (the semantics of
    /// `MPI_Allgatherv`; with equal lengths this is `MPI_Allgather`).
    /// Returns the contributions indexed by rank.
    fn allgather(&self, data: Vec<u8>) -> Arc<Vec<Vec<u8>>>;

    /// Snapshot of this rank's communication counters.
    fn stats(&self) -> CommStats;

    /// Monotonic per-rank clock in nanoseconds: wall clock since the run
    /// started on the threaded runtime, *virtual* time on the simulator.
    /// Phase timings derived from this clock therefore report simulated
    /// cluster time when the algorithm runs under `forestbal-sim`.
    fn now_ns(&self) -> u64;

    /// Block until every rank has entered the barrier.
    fn barrier(&self) {
        self.allgather(Vec::new());
    }

    /// Allreduce a `u64` with a combining function (sum, max, ...).
    fn allreduce_u64(&self, v: u64, combine: impl Fn(u64, u64) -> u64) -> u64
    where
        Self: Sized,
    {
        let all = self.allgather(v.to_le_bytes().to_vec());
        all.iter()
            .map(|b| u64::from_le_bytes(b.as_slice().try_into().unwrap()))
            .reduce(&combine)
            .expect("at least one rank")
    }

    /// Allreduce: cluster-wide sum of a `u64`.
    fn allreduce_sum(&self, v: u64) -> u64
    where
        Self: Sized,
    {
        self.allreduce_u64(v, |a, b| a.wrapping_add(b))
    }

    /// Allreduce: cluster-wide maximum of a `u64`.
    fn allreduce_max(&self, v: u64) -> u64
    where
        Self: Sized,
    {
        self.allreduce_u64(v, u64::max)
    }

    /// Allreduce: do all ranks agree this flag is true?
    fn allreduce_and(&self, v: bool) -> bool
    where
        Self: Sized,
    {
        self.allreduce_u64(v as u64, |a, b| a & b) != 0
    }

    /// Allreduce: does any rank set this flag?
    fn allreduce_or(&self, v: bool) -> bool
    where
        Self: Sized,
    {
        self.allreduce_u64(v as u64, |a, b| a | b) != 0
    }
}

/// Panic payload used to unwind ranks out of blocking communication calls
/// when a *different* rank failed and the runtime is shutting down. The
/// original panic is preserved and re-raised by the runtime's `run`; ranks
/// unwound with this sentinel stay silent (see
/// [`install_quiet_panic_hook`]).
#[derive(Debug)]
pub struct ShutdownSignal;

/// Install (once per process) a panic hook that suppresses the default
/// "thread panicked" report for [`ShutdownSignal`] unwinds, delegating
/// everything else to the previously installed hook. Runtimes call this
/// before spawning ranks so a single failing rank produces a single panic
/// report instead of one per peer.
pub fn install_quiet_panic_hook() {
    use std::sync::Once;
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<ShutdownSignal>().is_some() {
                return;
            }
            prev(info);
        }));
    });
}
