//! A simulated distributed-memory runtime.
//!
//! The paper's parallel algorithms are formulated against MPI. Rust MPI
//! bindings are immature, so this crate reproduces the *semantics* the
//! algorithms rely on — asymmetric point-to-point messages, `Allgather`/
//! `Allgatherv` collectives, barriers — behind the runtime-independent
//! [`Comm`] trait. The threaded [`Cluster`] runtime here runs ranks as OS
//! threads with messages as channel sends; the `forestbal-sim` crate
//! implements the same trait with a deterministic discrete-event
//! scheduler under virtual time, so every algorithm written against
//! [`Comm`] runs unmodified on either. Every rank records message and
//! byte counters so benchmarks can compare communication volumes exactly
//! as the paper does.
//!
//! [`reversal`] implements the three schemes of §V for reversing an
//! asymmetric communication pattern (determining one's senders from one's
//! receivers): the `Allgatherv`-based naive scheme (Figure 12), the
//! `Ranges` encoding, and the divide-and-conquer `Notify` algorithm
//! (Figure 13) including its non-power-of-two redirection rule.
//!
//! # Example
//!
//! ```
//! use forestbal_comm::{reverse_notify, Cluster, Comm};
//!
//! // Five ranks; each addresses its successor, plus rank 0 -> rank 3.
//! let out = Cluster::run(5, |ctx| {
//!     let mut receivers = vec![(ctx.rank() + 1) % 5];
//!     if ctx.rank() == 0 {
//!         receivers.push(3);
//!     }
//!     // Learn who will send to me using only point-to-point messages.
//!     reverse_notify(ctx, &receivers)
//! });
//! assert_eq!(out.results[1], vec![0]);
//! assert_eq!(out.results[3], vec![0, 2]);
//! assert!(out.total_stats().messages_sent > 0);
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod comm;
pub mod reversal;
pub mod share;

pub use cluster::{Cluster, RankCtx};
pub use comm::{
    install_quiet_panic_hook, Comm, CommStats, RunOutput, ShutdownSignal, TagStats, TAG_SLOTS,
};
pub use reversal::{
    is_notify_tag, ranges_expansion, reverse_naive, reverse_notify, reverse_notify_wildcard_bug,
    reverse_ranges,
};
pub use share::shared_decode;
