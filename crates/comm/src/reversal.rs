//! Reversing an asymmetric communication pattern (§V).
//!
//! Before the Query phase each rank knows, from its local octants, which
//! ranks it will *send* to — but not which ranks will send to *it*. The
//! three schemes below compute the sender list from the receiver list:
//!
//! * [`reverse_naive`] — Figure 12: `Allgather` the counts, `Allgatherv`
//!   the receiver lists, scan everything. Exact, but transports the whole
//!   global pattern to every rank.
//! * [`reverse_ranges`] — the first improvement deployed in p4est: each
//!   rank encodes its receivers as at most `R` rank ranges and one
//!   `Allgather` of `2R` integers is scanned. May return false positives
//!   (ranks that will send an empty message) when the receiver set does
//!   not fit in `R` ranges.
//! * [`reverse_notify`] — the paper's `Notify` algorithm (Figure 13):
//!   bottom-up divide-and-conquer over process groups of doubling size
//!   using only point-to-point messages, O(P log P) messages total, exact.
//!   Non-powers-of-two are handled by redirecting a missing peer
//!   `p xor 2^l >= P` to `p - 2^l`, which balances duplicate messages
//!   across peers instead of bottlenecking the highest rank.

use crate::comm::Comm;
use crate::share::shared_decode;
use forestbal_trace as trace;

/// Message tag space reserved by the reversal algorithms.
const NOTIFY_TAG_BASE: u32 = 0xB000_0000;

/// Memo keys for [`shared_decode`] (one per allgather call site).
const SHARE_KEY_NAIVE: u64 = 0x4e41_4956;
const SHARE_KEY_RANGES: u64 = 0x524e_4745;

/// The transposed communication pattern in CSR form: senders of rank `r`
/// are `senders[offsets[r]..offsets[r+1]]`, sorted ascending, deduped.
/// Decoded **once per gather buffer per thread** via [`shared_decode`]:
/// the naive and ranges scans used to be O(P·pattern) per rank — O(P²)
/// and worse in aggregate, ~10¹⁰ list scans at P = 112k — and are O(out)
/// per rank against this index.
struct InvertedPattern {
    offsets: Vec<u32>,
    senders: Vec<u32>,
}

impl InvertedPattern {
    fn senders_of(&self, r: usize) -> &[u32] {
        &self.senders[self.offsets[r] as usize..self.offsets[r + 1] as usize]
    }
}

/// Invert allgathered receiver lists (`all[q]` = rank q's receivers as
/// LE u32s, possibly with duplicates). Out-of-range receivers are
/// ignored, matching the scan they replace (no rank matches them).
fn invert_lists(all: &[Vec<u8>]) -> InvertedPattern {
    let size = all.len();
    // Two passes (count, fill); `scratch` dedups each list so a rank
    // naming the same receiver twice still counts as one sender, exactly
    // like the `contains` scan did. One reused buffer, no per-list
    // allocation.
    let mut counts = vec![0u32; size + 1];
    let mut scratch: Vec<u32> = Vec::new();
    let dedup = |data: &[u8], scratch: &mut Vec<u32>| {
        scratch.clear();
        scratch.extend(
            data.chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap())),
        );
        scratch.sort_unstable();
        scratch.dedup();
    };
    for data in all {
        dedup(data, &mut scratch);
        for &r in scratch.iter().filter(|&&r| (r as usize) < size) {
            counts[r as usize + 1] += 1;
        }
    }
    let mut offsets = counts;
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    let mut cursor = offsets.clone();
    let mut senders = vec![0u32; offsets[size] as usize];
    for (q, data) in all.iter().enumerate() {
        dedup(data, &mut scratch);
        for &r in scratch.iter().filter(|&&r| (r as usize) < size) {
            senders[cursor[r as usize] as usize] = q as u32;
            cursor[r as usize] += 1;
        }
    }
    // Buckets are sorted by construction: q ascends across the fill.
    InvertedPattern { offsets, senders }
}

/// Inverted `Ranges` encoding, or `None` when the expansion is too large
/// to materialize (heavily merged ranges can cover nearly the whole
/// cluster per rank, making the inverse O(P²) in space — fall back to
/// the per-rank scan instead).
struct InvertedRanges(Option<InvertedPattern>);

/// Iterate a rank's fixed-size range encoding as `(lo, hi)` pairs,
/// clamped to the cluster and skipping unused (`u32::MAX`) slots.
fn iter_ranges(data: &[u8], size: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
    data.chunks_exact(8).filter_map(move |c| {
        let lo = u32::from_le_bytes(c[0..4].try_into().unwrap());
        let hi = u32::from_le_bytes(c[4..8].try_into().unwrap());
        (lo != u32::MAX && (lo as usize) < size).then(|| (lo as usize, (hi as usize).min(size - 1)))
    })
}

fn invert_ranges(all: &[Vec<u8>]) -> InvertedRanges {
    let size = all.len();
    // Expansion budget: the honest (unmerged) case is O(pattern) total;
    // allow generous slack before declaring the inverse not worth it.
    let cap = 16 * size as u64 + 1024;
    let expansion: u64 = all
        .iter()
        .flat_map(|d| iter_ranges(d, size))
        .map(|(lo, hi)| (hi - lo + 1) as u64)
        .sum();
    if expansion > cap {
        return InvertedRanges(None);
    }
    // Count via a difference array (ranges within one rank are disjoint
    // by construction, so no per-rank dedup is needed): cover[r] = how
    // many ranks' encodings contain r = that bucket's size.
    let mut diff = vec![0i64; size + 1];
    for (lo, hi) in all.iter().flat_map(|d| iter_ranges(d, size)) {
        diff[lo] += 1;
        diff[hi + 1] -= 1;
    }
    let mut offsets = vec![0u32; size + 1];
    let mut cover = 0i64;
    for r in 0..size {
        cover += diff[r];
        offsets[r + 1] = offsets[r] + cover as u32;
    }
    let mut cursor = offsets.clone();
    let mut senders = vec![0u32; offsets[size] as usize];
    for (q, data) in all.iter().enumerate() {
        for (lo, hi) in iter_ranges(data, size) {
            for r in lo..=hi {
                senders[cursor[r] as usize] = q as u32;
                cursor[r] += 1;
            }
        }
    }
    InvertedRanges(Some(InvertedPattern { offsets, senders }))
}

/// Does this tag belong to the [`reverse_notify`] tag space? Lets callers
/// attribute per-tag [`crate::CommStats`] traffic to pattern reversal.
pub fn is_notify_tag(tag: u32) -> bool {
    (NOTIFY_TAG_BASE..NOTIFY_TAG_BASE + 64).contains(&tag)
}

fn encode_u32s(vals: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn decode_u32s(data: &[u8]) -> Vec<u32> {
    debug_assert!(data.len().is_multiple_of(4));
    data.chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

/// Naive reversal (Figure 12): allgather counts, then receiver lists.
/// Returns the exact sorted list of ranks that name `ctx.rank()` among
/// their receivers.
pub fn reverse_naive(ctx: &impl Comm, receivers: &[usize]) -> Vec<usize> {
    trace::span_begin("reverse_naive", || ctx.now_ns());
    // Allgather the counts (mirrors the MPI_Allgather of |R|)...
    let counts = ctx.allgather(encode_u32s(&[receivers.len() as u32]));
    debug_assert_eq!(counts.len(), ctx.size());
    // ...then allgatherv the receiver lists themselves.
    let lists: Vec<u32> = receivers.iter().map(|&r| r as u32).collect();
    let all = ctx.allgather(encode_u32s(&lists));
    // Invert once per gather (shared across co-threaded ranks) and read
    // this rank's bucket, instead of scanning all P lists per rank.
    let inv = shared_decode(&all, SHARE_KEY_NAIVE, invert_lists);
    let senders: Vec<usize> = inv
        .senders_of(ctx.rank())
        .iter()
        .map(|&q| q as usize)
        .collect();
    trace::counter_add("reversal.receivers", receivers.len() as u64);
    trace::counter_add("reversal.senders", senders.len() as u64);
    trace::span_end(|| ctx.now_ns());
    senders
}

/// `Ranges` reversal: encode the receiver set in at most `max_ranges`
/// inclusive rank ranges (merging the closest gaps first when over
/// budget), allgather the fixed-size encoding, scan. The result is a
/// superset of the true sender list — callers must tolerate the
/// corresponding zero-length messages.
pub fn reverse_ranges(ctx: &impl Comm, receivers: &[usize], max_ranges: usize) -> Vec<usize> {
    assert!(max_ranges >= 1);
    trace::span_begin("reverse_ranges", || ctx.now_ns());
    let ranges = encode_ranges(receivers, max_ranges);
    // Fixed-size encoding: 2 * max_ranges u32 slots, unused slots marked
    // with u32::MAX (matching the fixed bytes-per-process property of the
    // original implementation).
    let mut slots = vec![u32::MAX; 2 * max_ranges];
    for (i, &(lo, hi)) in ranges.iter().enumerate() {
        slots[2 * i] = lo as u32;
        slots[2 * i + 1] = hi as u32;
    }
    let all = ctx.allgather(encode_u32s(&slots));
    let me = ctx.rank();
    let inv = shared_decode(&all, SHARE_KEY_RANGES, invert_ranges);
    let senders: Vec<usize> = match &inv.0 {
        // Inverted once per gather, shared across co-threaded ranks.
        Some(pat) => pat.senders_of(me).iter().map(|&q| q as usize).collect(),
        // Expansion too large to materialize: allocation-free scan of
        // the fixed-size encodings.
        None => all
            .iter()
            .enumerate()
            .filter(|(_, data)| iter_ranges(data, ctx.size()).any(|(lo, hi)| lo <= me && me <= hi))
            .map(|(q, _)| q)
            .collect(),
    };
    trace::counter_add("reversal.receivers", receivers.len() as u64);
    // Ranges may overshoot: report real receivers and advertised senders
    // so the false-positive rate is visible in merged counters.
    trace::counter_add("reversal.senders", senders.len() as u64);
    trace::span_end(|| ctx.now_ns());
    senders
}

/// The set of ranks covered by this rank's own `Ranges` encoding — the
/// receivers [`reverse_ranges`] advertises on its behalf. A rank using the
/// Ranges scheme must send a (possibly empty) message to every rank in
/// this expansion, because false-positive receivers will be waiting.
pub fn ranges_expansion(receivers: &[usize], max_ranges: usize, size: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for (lo, hi) in encode_ranges(receivers, max_ranges) {
        for q in lo..=hi.min(size - 1) {
            out.push(q);
        }
    }
    out
}

/// Merge a sorted receiver list into at most `max_ranges` inclusive
/// ranges, closing the smallest gaps first.
fn encode_ranges(receivers: &[usize], max_ranges: usize) -> Vec<(usize, usize)> {
    let mut sorted: Vec<usize> = receivers.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    if sorted.is_empty() {
        return Vec::new();
    }
    let mut ranges: Vec<(usize, usize)> = sorted.iter().map(|&r| (r, r)).collect();
    while ranges.len() > max_ranges {
        // Merge the pair of adjacent ranges with the smallest gap.
        let (i, _) = ranges
            .windows(2)
            .map(|w| w[1].0 - w[0].1)
            .enumerate()
            .min_by_key(|&(_, gap)| gap)
            .unwrap();
        let hi = ranges[i + 1].1;
        ranges[i].1 = hi;
        ranges.remove(i + 1);
    }
    ranges
}

/// The `Notify` algorithm (Figure 13): exact reversal using point-to-point
/// messages only.
///
/// Invariant (equation 2): after level `l`, the items known to rank `p`
/// concern receivers `q` with `q ≡ p (mod 2^l)`, distributed across the
/// residue class. After the last level each rank holds exactly the items
/// addressed to itself; their original senders are the answer.
pub fn reverse_notify(ctx: &impl Comm, receivers: &[usize]) -> Vec<usize> {
    trace::span_begin("reverse_notify", || ctx.now_ns());
    let p = ctx.rank();
    let size = ctx.size();
    // (receiver, original sender) pairs.
    let mut items: Vec<(u32, u32)> = receivers.iter().map(|&q| (q as u32, p as u32)).collect();

    let mut l = 0u32;
    while (1usize << l) < size {
        let bit = 1usize << l;
        let tag = NOTIFY_TAG_BASE + l;
        // Load balance of the divide-and-conquer: how many items this
        // rank carries into each level (equation 2's residue classes).
        trace::hist("reversal.notify.items_per_level", items.len() as u64);

        // Split: items whose receiver residue matches mine stay.
        let (keep, give): (Vec<_>, Vec<_>) = items
            .into_iter()
            .partition(|&(q, _)| (q as usize >> l) & 1 == (p >> l) & 1);

        // Outgoing peer with the non-power-of-two redirection rule.
        let natural = p ^ bit;
        let target = if natural < size {
            Some(natural)
        } else if p >= bit {
            Some(p - bit)
        } else {
            None
        };
        match target {
            Some(t) => {
                let flat: Vec<u32> = give.iter().flat_map(|&(q, s)| [q, s]).collect();
                ctx.send(t, tag, encode_u32s(&flat));
            }
            None => debug_assert!(
                give.is_empty(),
                "items addressed beyond the cluster cannot exist"
            ),
        }

        // Deterministic incoming peers: the natural partner, plus the
        // redirected rank p + 2^l when its own natural partner is missing.
        let mut expect: Vec<usize> = Vec::with_capacity(2);
        let s1 = p ^ bit;
        if s1 < size {
            expect.push(s1);
        }
        let s2 = p + bit;
        if s2 < size && s2 != s1 && (s2 ^ bit) >= size {
            expect.push(s2);
        }

        items = keep;
        for s in expect {
            let (_, data) = ctx.recv(Some(s), tag);
            let vals = decode_u32s(&data);
            items.extend(vals.chunks_exact(2).map(|c| (c[0], c[1])));
        }
        l += 1;
    }

    let mut senders: Vec<usize> = items
        .into_iter()
        .map(|(q, s)| {
            debug_assert_eq!(q as usize, p, "invariant (2) violated");
            s as usize
        })
        .collect();
    senders.sort_unstable();
    senders.dedup();
    trace::counter_add("reversal.notify.levels", l as u64);
    trace::counter_add("reversal.receivers", receivers.len() as u64);
    trace::counter_add("reversal.senders", senders.len() as u64);
    trace::span_end(|| ctx.now_ns());
    senders
}

/// A deliberately broken `Notify` variant used as the mutation target of
/// the `forestbal-mc` model checker: it collapses every level onto one
/// tag **and** receives with a wildcard source, so a message belonging to
/// a later level can be consumed by an earlier level's `recv` when
/// deliveries are reordered (requires `fifo: false` to be observable).
/// The correct [`reverse_notify`] is immune because it keys each level on
/// its own tag and filters `recv` by source. Produces silently wrong
/// sender lists under adversarial schedules; correct ones under the
/// default time-ordered schedule.
#[doc(hidden)]
pub fn reverse_notify_wildcard_bug(ctx: &impl Comm, receivers: &[usize]) -> Vec<usize> {
    let p = ctx.rank();
    let size = ctx.size();
    let mut items: Vec<(u32, u32)> = receivers.iter().map(|&q| (q as u32, p as u32)).collect();

    let mut l = 0u32;
    while (1usize << l) < size {
        let bit = 1usize << l;
        // BUG 1: every level shares one tag.
        let tag = NOTIFY_TAG_BASE;

        let (keep, give): (Vec<_>, Vec<_>) = items
            .into_iter()
            .partition(|&(q, _)| (q as usize >> l) & 1 == (p >> l) & 1);

        let natural = p ^ bit;
        let target = if natural < size {
            Some(natural)
        } else if p >= bit {
            Some(p - bit)
        } else {
            None
        };
        if let Some(t) = target {
            let flat: Vec<u32> = give.iter().flat_map(|&(q, s)| [q, s]).collect();
            ctx.send(t, tag, encode_u32s(&flat));
        }

        let mut expect = 0usize;
        let s1 = p ^ bit;
        if s1 < size {
            expect += 1;
        }
        let s2 = p + bit;
        if s2 < size && s2 != s1 && (s2 ^ bit) >= size {
            expect += 1;
        }

        items = keep;
        for _ in 0..expect {
            // BUG 2: wildcard source — any same-tag message satisfies it.
            let (_, data) = ctx.recv(None, tag);
            let vals = decode_u32s(&data);
            items.extend(vals.chunks_exact(2).map(|c| (c[0], c[1])));
        }
        l += 1;
    }

    // No invariant assert: a misrouted item yields a silently wrong
    // answer instead of a panic, which is what the checker must detect
    // via its oracle invariant.
    let mut senders: Vec<usize> = items.into_iter().map(|(_, s)| s as usize).collect();
    senders.sort_unstable();
    senders.dedup();
    senders
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Cluster;

    /// Run all three schemes on a fixed pattern and check them against the
    /// transpose. `pattern[p]` is rank `p`'s receiver list.
    fn check_pattern(pattern: Vec<Vec<usize>>) {
        let size = pattern.len();
        let mut want: Vec<Vec<usize>> = vec![Vec::new(); size];
        for (p, rs) in pattern.iter().enumerate() {
            for &q in rs {
                want[q].push(p);
            }
        }
        for w in want.iter_mut() {
            w.sort_unstable();
            w.dedup();
        }

        let pat = &pattern;
        let naive = Cluster::run(size, |ctx| reverse_naive(ctx, &pat[ctx.rank()]));
        assert_eq!(naive.results, want, "naive");

        let notify = Cluster::run(size, |ctx| reverse_notify(ctx, &pat[ctx.rank()]));
        assert_eq!(notify.results, want, "notify");

        // Ranges may overshoot: each result must be a superset.
        let ranges = Cluster::run(size, |ctx| reverse_ranges(ctx, &pat[ctx.rank()], 2));
        for (got, want) in ranges.results.iter().zip(&want) {
            for s in want {
                assert!(got.contains(s), "ranges missed sender {s}");
            }
        }
    }

    #[test]
    fn empty_pattern() {
        check_pattern(vec![vec![], vec![], vec![]]);
    }

    #[test]
    fn ring_pattern() {
        let size = 6;
        check_pattern((0..size).map(|p| vec![(p + 1) % size]).collect());
    }

    #[test]
    fn all_to_one() {
        let size = 7;
        check_pattern((0..size).map(|_| vec![0]).collect());
    }

    #[test]
    fn one_to_all() {
        let size = 5;
        check_pattern(
            (0..size)
                .map(|p| if p == 2 { (0..size).collect() } else { vec![] })
                .collect(),
        );
    }

    #[test]
    fn power_of_two_sizes() {
        for size in [1usize, 2, 4, 8, 16] {
            check_pattern((0..size).map(|p| vec![p % 2, size - 1 - p]).collect());
        }
    }

    #[test]
    fn non_power_of_two_sizes() {
        // The redirection rule of §V; the paper exercises 12 cores/node.
        for size in [3usize, 5, 6, 7, 11, 12, 13] {
            check_pattern(
                (0..size)
                    .map(|p| vec![(p * 5 + 1) % size, (p + size / 2) % size])
                    .collect(),
            );
        }
    }

    #[test]
    fn self_notification() {
        check_pattern(vec![vec![0], vec![1, 0], vec![2, 1]]);
    }

    #[test]
    fn notify_message_count_is_p_log_p() {
        let size = 16;
        let out = Cluster::run(size, |ctx| {
            reverse_notify(ctx, &[(ctx.rank() + 1) % 16]);
            ctx.stats()
        });
        let total: u64 = out.stats.iter().map(|s| s.messages_sent).sum();
        assert_eq!(total, (size * 4) as u64, "P log2(P) messages for P=16");
    }

    #[test]
    fn naive_volume_exceeds_notify_volume() {
        // The headline of §V: Notify moves far less data than the
        // Allgatherv-based scheme on sparse patterns at larger P.
        let size = 24;
        let pat: Vec<Vec<usize>> = (0..size)
            .map(|p| vec![(p + 1) % size, (p + 2) % size])
            .collect();
        let pat = &pat;
        let naive = Cluster::run(size, |ctx| {
            reverse_naive(ctx, &pat[ctx.rank()]);
        });
        let notify = Cluster::run(size, |ctx| {
            reverse_notify(ctx, &pat[ctx.rank()]);
        });
        // Naive transports the whole pattern to every rank via
        // collectives; count collective bytes * P (broadcast fan-out) vs
        // notify's p2p bytes.
        let naive_moved = naive.total_stats().collective_bytes * (size as u64);
        let notify_moved = notify.total_stats().bytes_sent;
        assert!(
            notify_moved < naive_moved,
            "notify {notify_moved} >= naive {naive_moved}"
        );
    }

    #[test]
    fn encode_ranges_merges_smallest_gaps() {
        let r = encode_ranges(&[0, 1, 2, 9, 10, 40], 2);
        assert_eq!(r, vec![(0, 10), (40, 40)]);
        let exact = encode_ranges(&[3, 4, 5], 4);
        assert_eq!(exact, vec![(3, 3), (4, 4), (5, 5)]);
        assert!(encode_ranges(&[], 3).is_empty());
    }

    #[test]
    fn random_patterns_all_sizes() {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed);
        for &size in &[2usize, 3, 9, 10, 17] {
            let pattern: Vec<Vec<usize>> = (0..size)
                .map(|_| {
                    let n = rng.random_range(0..size);
                    (0..n).map(|_| rng.random_range(0..size)).collect()
                })
                .collect();
            check_pattern(pattern);
        }
    }
}
