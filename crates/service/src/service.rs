//! The epoch runtime: snapshot queries, batched adaptations,
//! incremental commit with full-balance fallback.

use forestbal_comm::Comm;
use forestbal_core::{BalanceScratch, Condition};
use forestbal_forest::incremental::IncrementalReport;
use forestbal_forest::{
    AdaptBatch, BalanceReport, BalanceVariant, FaceNeighbor, Forest, GhostLayer, ReversalScheme,
    TreeId,
};
use forestbal_octant::{Coord, Octant, MAX_LEVEL};
use forestbal_trace::Histogram;

/// Tuning knobs of a [`ForestService`]. Every rank must construct the
/// service with identical values — the fallback decision is collective.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Balance condition re-established at every commit.
    pub cond: Condition,
    /// Refine requests beyond this level are skipped.
    pub max_level: u8,
    /// When the global dirty fraction of an epoch exceeds this, commit
    /// runs a full balance (and rebuilds the ghost layer) instead of
    /// the incremental rebalance. `0.0` forces full balance always;
    /// `1.0` (or anything ≥ 1) never falls back.
    pub fallback_dirty_fraction: f64,
    /// Algorithm variant used by the full-balance fallback.
    pub variant: BalanceVariant,
    /// Sender-reversal scheme used by the full-balance fallback.
    pub reversal: ReversalScheme,
}

impl ServiceConfig {
    /// Defaults for a `D`-dimensional forest: full condition (faces,
    /// edges, corners), no level cap, 10% fallback threshold, New
    /// variant with Notify reversal.
    pub fn new(d: u8) -> Self {
        ServiceConfig {
            cond: Condition::full(d),
            max_level: MAX_LEVEL,
            fallback_dirty_fraction: 0.10,
            variant: BalanceVariant::New,
            reversal: ReversalScheme::Notify,
        }
    }
}

/// One request against the service. Adaptations are queued until the
/// next [`ForestService::commit`]; queries are answered immediately
/// from the current snapshot.
#[derive(Clone, Debug)]
pub enum Request<const D: usize> {
    /// Split this local leaf at the next commit.
    Refine {
        /// Tree holding the leaf.
        tree: TreeId,
        /// The leaf to split.
        leaf: Octant<D>,
    },
    /// Merge this parent's family at the next commit.
    Coarsen {
        /// Tree holding the family.
        tree: TreeId,
        /// The parent replacing its children.
        parent: Octant<D>,
    },
    /// Which local leaf contains this point?
    PointLocate {
        /// Tree to search.
        tree: TreeId,
        /// Integer coordinates in `[0, ROOT_LEN)^D`.
        point: [Coord; D],
    },
    /// Who borders this local leaf across a face?
    NeighborQuery {
        /// Tree holding the leaf.
        tree: TreeId,
        /// The querying leaf.
        octant: Octant<D>,
        /// Face axis, `< D`.
        axis: usize,
        /// Face side, `+1` or `-1`.
        sign: i8,
    },
}

/// The immediate answer to a [`Request`].
#[derive(Clone, Debug)]
pub enum Response<const D: usize> {
    /// The adaptation is queued for the next commit.
    Queued,
    /// Point location: the covering local leaf, or `None` when the
    /// point is owned by another rank (or outside the tree).
    Leaf(Option<Octant<D>>),
    /// Neighbor query result (local, ghost, or domain boundary).
    Neighbor(FaceNeighbor<D>),
}

/// Request classes, indexing the per-class latency histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestClass {
    /// Queueing a refine request.
    Refine = 0,
    /// Queueing a coarsen request.
    Coarsen = 1,
    /// Serving a point-location query.
    PointLocate = 2,
    /// Serving a neighbor query.
    NeighborQuery = 3,
    /// Committing an epoch (apply + rebalance).
    Commit = 4,
}

impl RequestClass {
    /// Every class, in histogram-index order.
    pub const ALL: [RequestClass; 5] = [
        RequestClass::Refine,
        RequestClass::Coarsen,
        RequestClass::PointLocate,
        RequestClass::NeighborQuery,
        RequestClass::Commit,
    ];

    /// Short name, used as the BENCH field prefix.
    pub fn name(self) -> &'static str {
        match self {
            RequestClass::Refine => "refine",
            RequestClass::Coarsen => "coarsen",
            RequestClass::PointLocate => "point_locate",
            RequestClass::NeighborQuery => "neighbor_query",
            RequestClass::Commit => "commit",
        }
    }

    fn hist_name(self) -> &'static str {
        match self {
            RequestClass::Refine => "service.refine_ns",
            RequestClass::Coarsen => "service.coarsen_ns",
            RequestClass::PointLocate => "service.point_locate_ns",
            RequestClass::NeighborQuery => "service.neighbor_query_ns",
            RequestClass::Commit => "service.commit_ns",
        }
    }
}

/// What one [`ForestService::commit`] did.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochReport {
    /// Epoch number just committed (first commit is epoch 1).
    pub epoch: u64,
    /// Global number of dirty leaves produced by the batch.
    pub dirty_global: u64,
    /// Global leaf count after the edits.
    pub leaves_global: u64,
    /// Leaves split by this rank's batch.
    pub refined: u64,
    /// Families merged by this rank's batch.
    pub coarsened: u64,
    /// Requests skipped by this rank (stale, conflicting, capped).
    pub skipped: u64,
    /// Did the dirty fraction trip the full-balance fallback?
    pub fallback: bool,
    /// Incremental rebalance counters (when not falling back).
    pub incremental: Option<IncrementalReport>,
    /// Full-balance report (when falling back).
    pub full: Option<BalanceReport>,
    /// Wall (or virtual) nanoseconds spent in commit on this rank.
    pub commit_ns: u64,
}

/// A request-driven epoch runtime owning one [`Forest`]. See the crate
/// docs for the lifecycle.
pub struct ForestService<const D: usize> {
    forest: Forest<D>,
    ghosts: GhostLayer<D>,
    scratch: BalanceScratch<D>,
    cfg: ServiceConfig,
    batch: AdaptBatch<D>,
    epoch: u64,
    latency: [Histogram; 5],
}

impl<const D: usize> ForestService<D> {
    /// Take ownership of `forest`, bring it to a balanced snapshot (one
    /// full balance) and build the initial ghost layer. Collective.
    pub fn new(ctx: &impl Comm, mut forest: Forest<D>, cfg: ServiceConfig) -> Self {
        let mut scratch = BalanceScratch::new();
        forest.balance_with_report_scratch(ctx, cfg.cond, cfg.variant, cfg.reversal, &mut scratch);
        let ghosts = forest.ghost_layer(ctx);
        ForestService {
            forest,
            ghosts,
            scratch,
            cfg,
            batch: AdaptBatch::new(),
            epoch: 0,
            latency: [Histogram::default(); 5],
        }
    }

    /// The current balanced snapshot.
    pub fn forest(&self) -> &Forest<D> {
        &self.forest
    }

    /// The current ghost layer (patched in place by incremental epochs).
    pub fn ghosts(&self) -> &GhostLayer<D> {
        &self.ghosts
    }

    /// Commits so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Adaptation requests queued for the next commit.
    pub fn pending(&self) -> usize {
        self.batch.len()
    }

    /// Latency histogram of a request class (log2 nanosecond buckets).
    pub fn latency(&self, class: RequestClass) -> &Histogram {
        &self.latency[class as usize]
    }

    /// Handle one request: answer queries against the snapshot, queue
    /// adaptations. Local (not collective) — ranks submit independently
    /// between commits.
    pub fn submit(&mut self, ctx: &impl Comm, req: Request<D>) -> Response<D> {
        let t0 = ctx.now_ns();
        let (class, resp) = match req {
            Request::Refine { tree, leaf } => {
                self.batch.refine(tree, &leaf);
                (RequestClass::Refine, Response::Queued)
            }
            Request::Coarsen { tree, parent } => {
                self.batch.coarsen(tree, &parent);
                (RequestClass::Coarsen, Response::Queued)
            }
            Request::PointLocate { tree, point } => (
                RequestClass::PointLocate,
                Response::Leaf(self.forest.find_leaf_at_point(tree, point)),
            ),
            Request::NeighborQuery {
                tree,
                octant,
                axis,
                sign,
            } => (
                RequestClass::NeighborQuery,
                Response::Neighbor(self.forest.face_neighbor(
                    &self.ghosts,
                    tree,
                    &octant,
                    axis,
                    sign,
                )),
            ),
        };
        let dt = ctx.now_ns().saturating_sub(t0);
        self.latency[class as usize].record(dt);
        forestbal_trace::hist(class.hist_name(), dt);
        resp
    }

    /// Queue a whole pre-built batch (the workload-generator path).
    pub fn submit_batch(&mut self, batch: &AdaptBatch<D>) {
        self.batch.extend(batch);
    }

    /// End the epoch: apply every queued adaptation, re-establish the
    /// balance condition, and advance to the next snapshot. Collective —
    /// every rank must call `commit` the same number of times, even
    /// with an empty local batch (the fallback decision and the
    /// incremental termination vote are allreduces).
    ///
    /// Below the fallback threshold this runs
    /// [`Forest::balance_incremental`] seeded by the batch's dirty set,
    /// reusing the prior ghost layer; above it, a full
    /// [`Forest::balance`] with the retained scratch, then a ghost
    /// layer rebuild.
    pub fn commit(&mut self, ctx: &impl Comm) -> EpochReport {
        let t0 = ctx.now_ns();
        forestbal_trace::span_begin("service.commit", || ctx.now_ns());
        let batch = std::mem::take(&mut self.batch);
        let dirty = self.forest.apply_edits(&batch, self.cfg.max_level);

        let dirty_global = ctx.allreduce_sum(dirty.len() as u64);
        let leaves_global = ctx.allreduce_sum(self.forest.num_local() as u64);
        let fallback =
            dirty_global as f64 > self.cfg.fallback_dirty_fraction * leaves_global as f64;

        let mut report = EpochReport {
            epoch: self.epoch + 1,
            dirty_global,
            leaves_global,
            refined: dirty.refined,
            coarsened: dirty.coarsened,
            skipped: dirty.skipped,
            fallback,
            ..EpochReport::default()
        };
        if dirty_global > 0 {
            if fallback {
                report.full = Some(self.forest.balance_with_report_scratch(
                    ctx,
                    self.cfg.cond,
                    self.cfg.variant,
                    self.cfg.reversal,
                    &mut self.scratch,
                ));
                self.ghosts = self.forest.ghost_layer(ctx);
                forestbal_trace::counter_add("service.fallbacks", 1);
            } else {
                report.incremental = Some(self.forest.balance_incremental(
                    ctx,
                    self.cfg.cond,
                    &dirty,
                    &mut self.ghosts,
                ));
            }
        }
        self.epoch += 1;
        let dt = ctx.now_ns().saturating_sub(t0);
        report.commit_ns = dt;
        self.latency[RequestClass::Commit as usize].record(dt);
        forestbal_trace::hist(RequestClass::Commit.hist_name(), dt);
        forestbal_trace::counter_add("service.epochs", 1);
        forestbal_trace::span_end(|| ctx.now_ns());
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use forestbal_comm::Cluster;
    use forestbal_forest::serial::is_forest_balanced;
    use forestbal_forest::BrickConnectivity;
    use std::sync::Arc;

    fn service_2d(ctx: &impl Comm, p_cfg: ServiceConfig) -> ForestService<2> {
        let conn = Arc::new(BrickConnectivity::<2>::unit());
        let mut f = Forest::new_uniform(conn, ctx, 2);
        f.refine(true, 4, |_, o| o.coords == [0, 0]);
        ForestService::new(ctx, f, p_cfg)
    }

    #[test]
    fn epoch_loop_stays_balanced_and_serves_queries() {
        Cluster::run(2, |ctx| {
            let mut cfg = ServiceConfig::new(2);
            // The test forest is tiny; any real batch exceeds 10%.
            cfg.fallback_dirty_fraction = 1.0;
            let mut svc = service_2d(ctx, cfg);
            for epoch in 0..3u32 {
                // Refine the deepest local leaf each epoch.
                let deepest = svc
                    .forest()
                    .trees()
                    .flat_map(|(t, v)| v.iter().map(move |o| (t, o)))
                    .max_by_key(|(_, o)| o.level);
                if let Some((t, o)) = deepest {
                    let r = svc.submit(ctx, Request::Refine { tree: t, leaf: o });
                    assert!(matches!(r, Response::Queued));
                }
                let rep = svc.commit(ctx);
                assert_eq!(rep.epoch, epoch as u64 + 1);
                assert!(!rep.fallback, "tiny batch must stay incremental");
                let g = svc.forest().gather(ctx);
                assert!(is_forest_balanced(
                    svc.forest().connectivity(),
                    &g,
                    cfg.cond
                ));

                // Snapshot queries between epochs.
                let r = svc.submit(
                    ctx,
                    Request::PointLocate {
                        tree: 0,
                        point: [0, 0],
                    },
                );
                let Response::Leaf(leaf) = r else {
                    panic!("wrong response variant")
                };
                let one = ctx.allreduce_sum(leaf.is_some() as u64);
                assert_eq!(one, 1, "exactly one rank resolves the origin");
                let first = svc.forest().trees().next().map(|(t, v)| (t, v.get(0)));
                if let Some((t, o)) = first {
                    let r = svc.submit(
                        ctx,
                        Request::NeighborQuery {
                            tree: t,
                            octant: o,
                            axis: 0,
                            sign: 1,
                        },
                    );
                    assert!(matches!(r, Response::Neighbor(_)));
                }
            }
            assert_eq!(svc.epoch(), 3);
            assert_eq!(svc.latency(RequestClass::Commit).count(), 3);
            assert!(svc.latency(RequestClass::PointLocate).count() >= 3);
        });
    }

    #[test]
    fn zero_threshold_forces_fallback() {
        Cluster::run(2, |ctx| {
            let mut cfg = ServiceConfig::new(2);
            cfg.fallback_dirty_fraction = 0.0;
            let mut svc = service_2d(ctx, cfg);
            let first = svc.forest().trees().next().map(|(t, v)| (t, v.get(0)));
            if let Some((t, o)) = first {
                svc.submit(ctx, Request::Refine { tree: t, leaf: o });
            }
            let rep = svc.commit(ctx);
            assert!(rep.fallback);
            assert!(rep.full.is_some() && rep.incremental.is_none());
            // The rebuilt ghost layer serves the next epoch.
            let rep2 = svc.commit(ctx);
            assert_eq!(rep2.dirty_global, 0);
        });
    }

    #[test]
    fn empty_commit_is_cheap_and_collective() {
        Cluster::run(3, |ctx| {
            let cfg = ServiceConfig::new(2);
            let mut svc = service_2d(ctx, cfg);
            let before = svc.forest().checksum(ctx);
            let rep = svc.commit(ctx);
            assert_eq!(rep.dirty_global, 0);
            assert!(rep.incremental.is_none() && rep.full.is_none());
            assert_eq!(svc.forest().checksum(ctx), before);
        });
    }
}
