//! Simulated-client adaptation workloads: a moving refinement front
//! (the physics-chasing pattern of AMR time loops) and spatially
//! clustered batches with exact dirty-fraction control (the benchmark
//! knob for the full-vs-incremental comparison).

use forestbal_forest::{AdaptBatch, Forest};
use forestbal_octant::{Octant, ROOT_LEN};

/// A spherical refinement front moving through the brick: leaves whose
/// center falls inside the front are refined toward `max_level`, and
/// families that have fallen behind it (outside `2 * radius`) are
/// coarsened back toward `base_level`. Coordinates are in units of
/// trees (a brick of `[3, 2, 1]` trees spans `[0,3]×[0,2]×[0,1]`).
///
/// Each call to [`MovingFront::batch`] proposes edits against the
/// current snapshot; `Forest::apply_edits` re-validates them, so a
/// proposal that raced with the front (incomplete family, level cap)
/// is skipped, exactly like a stale client request.
#[derive(Clone, Copy, Debug)]
pub struct MovingFront<const D: usize> {
    /// Front center, in tree units.
    pub center: [f64; D],
    /// Per-step displacement, in tree units.
    pub velocity: [f64; D],
    /// Front radius, in tree units.
    pub radius: f64,
    /// Leaves inside the front refine up to this level.
    pub max_level: u8,
    /// Leaves behind the front coarsen down to this level.
    pub base_level: u8,
}

impl<const D: usize> MovingFront<D> {
    /// Advance the front one step, bouncing off the brick boundary
    /// `[0, dims]` so long workloads keep a moving dirty region.
    #[allow(clippy::needless_range_loop)] // parallel arrays indexed together
    pub fn step(&mut self, dims: [usize; D]) {
        for a in 0..D {
            self.center[a] += self.velocity[a];
            let hi = dims[a] as f64;
            if self.center[a] < 0.0 {
                self.center[a] = -self.center[a];
                self.velocity[a] = -self.velocity[a];
            } else if self.center[a] > hi {
                self.center[a] = 2.0 * hi - self.center[a];
                self.velocity[a] = -self.velocity[a];
            }
        }
    }

    /// Distance² from the front center to the center of leaf `o` of the
    /// tree at grid coordinates `tc`, in tree units.
    #[allow(clippy::needless_range_loop)] // parallel arrays indexed together
    fn dist2(&self, tc: [usize; D], o: &Octant<D>) -> f64 {
        let half = (o.len() / 2) as f64;
        let mut d2 = 0.0;
        for a in 0..D {
            let c = tc[a] as f64 + (o.coords[a] as f64 + half) / ROOT_LEN as f64;
            let d = c - self.center[a];
            d2 += d * d;
        }
        d2
    }

    /// Propose this step's edits against the snapshot `forest`.
    pub fn batch(&self, forest: &Forest<D>) -> AdaptBatch<D> {
        let r2 = self.radius * self.radius;
        let behind2 = 4.0 * r2;
        let conn = forest.connectivity().clone();
        let mut b = AdaptBatch::new();
        for (t, v) in forest.trees() {
            let tc = conn.tree_coords(t);
            for o in v.iter() {
                let d2 = self.dist2(tc, &o);
                if d2 <= r2 && o.level < self.max_level {
                    b.refine(t, &o);
                } else if d2 > behind2 && o.level > self.base_level && o.child_id() == 0 {
                    // Propose once per family; apply_edits verifies the
                    // siblings are present (and not refining).
                    b.coarsen(t, &o.parent());
                }
            }
        }
        b
    }
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// A spatially clustered refine batch of exactly `budget` local leaves
/// (fewer only when the rank owns fewer eligible leaves): a contiguous
/// Morton run starting at a seeded pseudo-random local position.
/// Contiguity in Morton order is spatial clustering, so the dirty
/// insulation region stays compact — and `budget / num_local` is an
/// exact dirty-fraction knob for the incremental-vs-full benchmark.
pub fn clustered_batch<const D: usize>(
    forest: &Forest<D>,
    seed: u64,
    budget: usize,
    max_level: u8,
) -> AdaptBatch<D> {
    let mut b = AdaptBatch::new();
    let n = forest.num_local();
    if n == 0 || budget == 0 {
        return b;
    }
    let mut s = seed | 1;
    let start = (xorshift(&mut s) as usize) % n;
    let mut taken = 0usize;
    let mut pos = 0usize;
    // Two passes over the tree list: [start, n) then wrap to [0, start).
    for wrap in 0..2 {
        for (t, v) in forest.trees() {
            for i in 0..v.len() {
                let in_window = match wrap {
                    0 => pos >= start,
                    _ => pos < start,
                };
                if in_window && taken < budget {
                    let o = v.get(i);
                    if o.level < max_level {
                        b.refine(t, &o);
                        taken += 1;
                    }
                }
                pos += 1;
            }
        }
        pos = 0;
        if taken >= budget {
            break;
        }
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use forestbal_comm::Cluster;
    use forestbal_forest::BrickConnectivity;
    use std::sync::Arc;

    #[test]
    fn clustered_batch_hits_budget_exactly() {
        let conn = Arc::new(BrickConnectivity::<2>::unit());
        Cluster::run(2, |ctx| {
            let f = Forest::new_uniform(Arc::clone(&conn), ctx, 3);
            for budget in [1usize, 7, 32] {
                let b = clustered_batch(&f, 2012, budget, 6);
                assert_eq!(b.len(), budget.min(f.num_local()));
            }
            // Budget larger than the rank's share saturates.
            let b = clustered_batch(&f, 7, 10_000, 6);
            assert_eq!(b.len(), f.num_local());
        });
    }

    #[test]
    fn moving_front_refines_then_coarsens() {
        let conn = Arc::new(BrickConnectivity::<2>::new([2, 1], [false; 2]));
        Cluster::run(1, |ctx| {
            let mut f = Forest::new_uniform(Arc::clone(&conn), ctx, 2);
            let mut front = MovingFront::<2> {
                center: [0.25, 0.25],
                velocity: [0.5, 0.0],
                radius: 0.2,
                max_level: 4,
                base_level: 2,
            };
            let b = front.batch(&f);
            assert!(!b.is_empty(), "front must request refinement");
            let before = f.num_local();
            f.apply_edits(&b, front.max_level);
            assert!(f.num_local() > before);

            // March the front away; leaves behind it coarsen again.
            for _ in 0..6 {
                front.step(conn.dims());
                let b = front.batch(&f);
                f.apply_edits(&b, front.max_level);
            }
            assert!(front.center[0] >= 0.0 && front.center[0] <= 2.0);
        });
    }

    #[test]
    fn front_bounces_inside_brick() {
        let mut front = MovingFront::<2> {
            center: [0.9, 0.5],
            velocity: [0.3, 0.0],
            radius: 0.1,
            max_level: 3,
            base_level: 1,
        };
        for _ in 0..50 {
            front.step([1, 1]);
            assert!(front.center[0] >= 0.0 && front.center[0] <= 1.0);
        }
    }
}
