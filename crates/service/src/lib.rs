//! A request-driven AMR runtime on top of [`forestbal_forest`].
//!
//! Mesh consumers (solvers, visualization, steering frontends) do not
//! adapt a forest one octant at a time — they stream *requests*:
//! "refine here", "coarsen there", "which leaf holds this point",
//! "who is my neighbor". [`ForestService`] owns a [`Forest`] and turns
//! that stream into **epochs**: queries are answered immediately
//! against the immutable snapshot (packed-key binary search, the prior
//! epoch's ghost layer), adaptations are batched, and
//! [`ForestService::commit`] applies the whole batch at once and
//! re-establishes 2:1 balance — *incrementally*, touching only the
//! dirty insulation regions, unless the batch is so large that a full
//! balance is cheaper (the fallback threshold of [`ServiceConfig`]).
//!
//! This is the serving-system shape of the paper's *Local* balance
//! (§III-D, Fig. 16): balance cost proportional to the size of the
//! change, not the mesh, with the ghost layer and the balance scratch
//! reused across epochs. Every request class records a log2 latency
//! histogram ([`forestbal_trace::Histogram`]), exported per epoch by
//! the `local` experiment in `forestbal-bench`.
//!
//! The epoch loop is runtime-agnostic: it runs unchanged on the
//! threaded [`forestbal_comm::Cluster`] and the deterministic
//! simulator (`forestbal_sim`), which is what the differential tests
//! and the model-checker scenario exercise.
//!
//! [`Forest`]: forestbal_forest::Forest

#![warn(missing_docs)]

pub mod service;
pub mod workload;

pub use service::{EpochReport, ForestService, Request, RequestClass, Response, ServiceConfig};
pub use workload::{clustered_batch, MovingFront};
