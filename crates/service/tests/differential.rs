//! Differential proptests: the service's incremental (dirty-region)
//! rebalance must be **bit-identical** to a full [`Forest::balance`] of
//! the same post-edit forest — leaves and checksums — on random
//! (forest, adaptation-batch) pairs, in 2D and 3D, on the threaded
//! cluster and the deterministic simulator (with delivery jitter).
//!
//! Identity holds by construction (2:1 balance has a unique minimal
//! balanced refinement and both algorithms compute it); these tests pin
//! the construction.

use forestbal_comm::{Cluster, Comm};
use forestbal_forest::{AdaptBatch, BrickConnectivity, Forest};
use forestbal_octant::key;
use forestbal_service::{ForestService, ServiceConfig};
use forestbal_sim::{SimCluster, SimConfig};
use proptest::prelude::*;
use std::sync::Arc;

/// SplitMix64 — a pure hash, so every rank (and both twins) derive the
/// same pseudo-random decision for the same (seed, tree, leaf).
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn leaf_hash(seed: u64, tree: u32, k: u128) -> u64 {
    mix(seed ^ mix(tree as u64) ^ mix((k ^ (k >> 64)) as u64))
}

/// A random adaptation batch derived purely from the snapshot: ~1/8 of
/// the leaves refine, ~1/16 of the families coarsen.
fn random_batch<const D: usize>(f: &Forest<D>, seed: u64, max_level: u8) -> AdaptBatch<D> {
    let mut b = AdaptBatch::new();
    for (t, v) in f.trees() {
        for o in v.iter() {
            let h = leaf_hash(seed, t, key::pack(&o));
            match h % 16 {
                0 | 1 if o.level < max_level => b.refine(t, &o),
                2 if o.level > 0 && o.child_id() == 0 => b.coarsen(t, &o.parent()),
                _ => {}
            }
        }
    }
    b
}

/// Build a randomly refined forest, run `epochs` random batches through
/// a never-falling-back service (incremental path) and through a full
/// balance twin, asserting leaf-for-leaf identity each epoch. Returns
/// the final checksum for cross-runtime comparison.
fn epochs_vs_full<C: Comm, const D: usize>(
    ctx: &C,
    conn: Arc<BrickConnectivity<D>>,
    base_level: u8,
    max_level: u8,
    seed: u64,
    epochs: u32,
) -> u64 {
    let mut f = Forest::new_uniform(conn, ctx, base_level);
    f.refine(true, max_level, |t, o| {
        leaf_hash(seed ^ 0xF0F0, t, key::pack(o)).is_multiple_of(4)
    });
    let mut cfg = ServiceConfig::new(D as u8);
    cfg.max_level = max_level;
    cfg.fallback_dirty_fraction = f64::INFINITY; // always incremental
    let mut svc = ForestService::new(ctx, f, cfg);
    let mut full = svc.forest().clone();

    for e in 0..epochs {
        let batch = random_batch(
            svc.forest(),
            seed ^ (e as u64).wrapping_mul(0xA5A5),
            max_level,
        );
        svc.submit_batch(&batch);
        let rep = svc.commit(ctx);
        assert!(!rep.fallback);

        full.apply_edits(&batch, max_level);
        full.balance(ctx, cfg.cond, cfg.variant, cfg.reversal);

        let got = svc.forest().gather(ctx);
        let want = full.gather(ctx);
        assert_eq!(got, want, "epoch {e}: incremental differs from full");
        assert_eq!(svc.forest().checksum(ctx), full.checksum(ctx));
    }
    svc.forest().checksum(ctx)
}

proptest! {
    // Each case runs threaded + simulated + jittered epochs twice over
    // (incremental and full twin), so keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// 2D: random forests and batches, threaded vs simulated vs
    /// jittered delivery order — all identical to full balance.
    fn incremental_matches_full_2d(p in 1usize..5, seed in any::<u64>()) {
        let threaded = Cluster::run(p, move |ctx| {
            let conn = Arc::new(BrickConnectivity::<2>::new([2, 1], [false; 2]));
            epochs_vs_full(ctx, conn, 2, 5, seed, 2)
        });
        let sim = SimCluster::run(p, SimConfig::default(), move |ctx| {
            let conn = Arc::new(BrickConnectivity::<2>::new([2, 1], [false; 2]));
            epochs_vs_full(ctx, conn, 2, 5, seed, 2)
        });
        prop_assert_eq!(&threaded.results, &sim.results);

        let jittered = SimCluster::run(
            p,
            SimConfig::default().with_seed(seed).with_jitter(2_500),
            move |ctx| {
                let conn = Arc::new(BrickConnectivity::<2>::new([2, 1], [false; 2]));
                epochs_vs_full(ctx, conn, 2, 5, seed, 2)
            },
        );
        prop_assert_eq!(&threaded.results, &jittered.results);
    }

    /// 3D: same contract on a two-tree brick.
    fn incremental_matches_full_3d(p in 1usize..4, seed in any::<u64>()) {
        let threaded = Cluster::run(p, move |ctx| {
            let conn = Arc::new(BrickConnectivity::<3>::new([2, 1, 1], [false; 3]));
            epochs_vs_full(ctx, conn, 1, 4, seed, 2)
        });
        let jittered = SimCluster::run(
            p,
            SimConfig::default().with_seed(seed).with_jitter(2_500),
            move |ctx| {
                let conn = Arc::new(BrickConnectivity::<3>::new([2, 1, 1], [false; 3]));
                epochs_vs_full(ctx, conn, 1, 4, seed, 2)
            },
        );
        prop_assert_eq!(&threaded.results, &jittered.results);
    }
}

/// The mixed service loop — queries interleaved with adaptations — on
/// the fractal mesh, with the *default* fallback threshold: epochs that
/// trip the threshold run full balance, the rest run incrementally, and
/// every snapshot matches the full-balance twin either way.
#[test]
fn fallback_boundary_matches_full_on_fractal() {
    use forestbal_mesh::fractal_forest;
    Cluster::run(3, |ctx| {
        let f = fractal_forest(ctx, 1, 2);
        let mut cfg = ServiceConfig::new(3);
        cfg.max_level = 5;
        let mut svc = ForestService::new(ctx, f, cfg);
        let mut full = svc.forest().clone();
        let mut saw_fallback = false;
        let mut saw_incremental = false;
        for e in 0..4u64 {
            // Epoch size swings across the 10% threshold: big batches
            // on even epochs, a single leaf on odd ones.
            let batch = if e % 2 == 0 {
                random_batch(svc.forest(), mix(e), cfg.max_level)
            } else {
                let mut b = AdaptBatch::new();
                let first = svc.forest().trees().next().map(|(t, v)| (t, v.get(0)));
                if let Some((t, o)) = first {
                    if o.level < cfg.max_level {
                        b.refine(t, &o);
                    }
                }
                b
            };
            svc.submit_batch(&batch);
            let rep = svc.commit(ctx);
            saw_fallback |= rep.fallback;
            saw_incremental |= !rep.fallback;

            full.apply_edits(&batch, cfg.max_level);
            full.balance(ctx, cfg.cond, cfg.variant, cfg.reversal);
            assert_eq!(svc.forest().gather(ctx), full.gather(ctx), "epoch {e}");
            assert_eq!(svc.forest().checksum(ctx), full.checksum(ctx));
        }
        assert!(saw_fallback, "large batches must trip the threshold");
        assert!(saw_incremental, "small batches must stay incremental");
    });
}
