//! `forestbal-par` — a zero-dependency, std-only fork-join thread pool with a
//! hard determinism contract.
//!
//! # Why a first-party pool
//!
//! The workspace builds offline with std only (no rayon, no crossbeam), and the
//! distributed runtimes already own threads: the threaded `Cluster` runs every
//! rank as an OS thread, and tests routinely oversubscribe ranks × workers on
//! small machines. The pool therefore has to be small enough to reason about
//! exhaustively, safe to share between rank threads, and impossible to
//! deadlock under oversubscription. It is ~400 lines of `Mutex`/`Condvar` code
//! with three invariants:
//!
//! 1. **One batch at a time.** A dispatch takes the job slot, publishes its
//!    tasks, participates as worker 0, and releases the slot only after every
//!    task has finished. Concurrent dispatchers (e.g. several `Cluster` ranks
//!    sharing one pool) queue on the slot; each batch still makes progress
//!    because its dispatcher always executes tasks itself.
//! 2. **The dispatcher participates.** Even with zero workers (threads = 1) or
//!    with every worker stuck on another rank's batch, the dispatching thread
//!    drains the task queue, so a dispatch can never block on thread
//!    availability — this is what makes rank × worker oversubscription
//!    deadlock-free by construction.
//! 3. **Nested dispatch runs inline.** A task that itself calls into the pool
//!    (a parallel kernel calling another parallel kernel) executes serially on
//!    the calling thread, keeping its ambient worker id. No re-entrancy, no
//!    lock recursion.
//!
//! # The determinism contract
//!
//! Every parallel kernel built on this pool must produce output **bit-identical
//! for every thread count**, including 1. The pool enforces the only structure
//! that guarantees this: *partition → independent compute → ordered
//! deterministic merge*.
//!
//! * Task indices are a pure function of the input (`chunk_ranges` splits by
//!   arithmetic, never by load).
//! * Tasks may communicate only through their own task-indexed output slot
//!   ([`Pool::map`]) or their own element ([`Pool::for_each_mut`]); worker ids
//!   choose *scratch buffers* ([`PerWorker`]), never *results*.
//! * Merges iterate task-index order or worker-index order
//!   ([`PerWorker::iter_mut`]) — never completion order.
//!
//! Which worker runs which task is scheduling noise (tasks self-schedule off a
//! shared cursor); anything derived from it must be either scratch or merged in
//! a fixed order. Trace counters accumulated in per-worker scratch are merged
//! in worker-index order for reproducible *totals*; the totals themselves are
//! sums, hence schedule-invariant.
//!
//! # Control
//!
//! The global pool is sized by `FORESTBAL_THREADS` (or
//! `available_parallelism`) on first use; [`set_global_threads`] pins it
//! earlier (e.g. from a `--threads` CLI flag). Tests that need several thread
//! counts in one process build private pools and scope them with
//! [`Pool::install`], which overrides [`current`] on the calling thread only —
//! exactly right for `Cluster` rank closures.

use std::any::Any;
use std::cell::{Cell, RefCell, UnsafeCell};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Configuration for a [`Pool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    /// Total workers, *including* the dispatching thread. `1` means fully
    /// serial (no threads are spawned).
    pub threads: usize,
}

impl ParConfig {
    /// Read `FORESTBAL_THREADS`, falling back to `available_parallelism`.
    ///
    /// Invalid or zero values fall back too — the pool never panics on
    /// environment garbage.
    pub fn from_env() -> ParConfig {
        let threads = std::env::var("FORESTBAL_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        ParConfig {
            threads: threads.min(MAX_THREADS),
        }
    }
}

/// Hard cap on pool width; protects against `FORESTBAL_THREADS=999999`.
pub const MAX_THREADS: usize = 256;

type Payload = Box<dyn Any + Send + 'static>;

/// The erased task function: `f(task_index, worker_index)`.
///
/// Lifetime-erased view of the caller's closure; validity is guaranteed
/// because the dispatcher blocks until `finished == tasks` before returning.
type RawFn = *const (dyn Fn(usize, usize) + Sync);

/// The currently running batch. Lives in the job slot under the state mutex.
struct Job {
    f: RawFn,
    tasks: usize,
    /// Next unclaimed task index — the self-scheduling cursor.
    next: usize,
    /// Tasks that have finished executing (or were skipped after a panic).
    finished: usize,
    /// First panic payload; remaining tasks are claimed but skipped.
    panic: Option<Payload>,
}

// SAFETY: `Job` moves between threads only under the state mutex, and the
// erased `f` is only ever called while the dispatcher keeps the original
// closure alive.
unsafe impl Send for Job {}

struct PoolState {
    job: Option<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers wait here for claimable tasks.
    work_cv: Condvar,
    /// The active dispatcher waits here for its batch to finish.
    done_cv: Condvar,
    /// Queued dispatchers wait here for the job slot to free up.
    idle_cv: Condvar,
}

/// A fork-join pool of `threads - 1` persistent workers plus the dispatcher.
pub struct Pool {
    shared: Arc<Shared>,
    threads: usize,
    workers: Vec<JoinHandle<()>>,
}

thread_local! {
    /// Pool override installed by [`Pool::install`] on this thread.
    static CURRENT: RefCell<Option<Arc<Pool>>> = const { RefCell::new(None) };
    /// Are we inside a pool task on this thread? Nested dispatch runs inline.
    static IN_TASK: Cell<bool> = const { Cell::new(false) };
    /// Ambient worker index (0 outside the pool / on the dispatcher).
    static WORKER_ID: Cell<usize> = const { Cell::new(0) };
}

static GLOBAL: OnceLock<Arc<Pool>> = OnceLock::new();

/// Pin the global pool to `threads` workers. Returns `false` if the global
/// pool was already created (first use wins); call this before any kernel
/// touches the pool — e.g. at the top of `main`.
pub fn set_global_threads(threads: usize) -> bool {
    GLOBAL
        .set(Arc::new(Pool::new(threads.clamp(1, MAX_THREADS))))
        .is_ok()
}

/// The pool the current thread should use: the innermost [`Pool::install`]
/// override, else the process-global pool (created on first use from
/// [`ParConfig::from_env`]).
pub fn current() -> Arc<Pool> {
    CURRENT.with(|c| c.borrow().clone()).unwrap_or_else(|| {
        GLOBAL
            .get_or_init(|| Arc::new(Pool::new(ParConfig::from_env().threads)))
            .clone()
    })
}

impl Pool {
    /// Build a pool with `threads` total workers (including the dispatcher).
    /// `threads = 1` spawns nothing and runs every dispatch inline.
    pub fn new(threads: usize) -> Pool {
        let threads = threads.clamp(1, MAX_THREADS);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                job: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            idle_cv: Condvar::new(),
        });
        let workers = (1..threads)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("forestbal-par-{id}"))
                    .spawn(move || worker_loop(&shared, id))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool {
            shared,
            threads,
            workers,
        }
    }

    /// Total workers, including the dispatching thread.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Install this pool as [`current`] on the calling thread for the
    /// duration of `f`. Nests; the previous override is restored on exit
    /// (including unwinds).
    pub fn install<R>(self: &Arc<Self>, f: impl FnOnce() -> R) -> R {
        struct Restore(Option<Arc<Pool>>);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT.with(|c| *c.borrow_mut() = self.0.take());
            }
        }
        let prev = CURRENT.with(|c| c.borrow_mut().replace(Arc::clone(self)));
        let _restore = Restore(prev);
        f()
    }

    /// Split `0..len` into at most `threads` contiguous ranges of at least
    /// `min_chunk` elements (except when `len < min_chunk`, which yields a
    /// single range). Pure arithmetic — the partition depends only on `len`,
    /// `min_chunk` and the pool width, never on load.
    pub fn chunk_ranges(&self, len: usize, min_chunk: usize) -> Vec<Range<usize>> {
        let min_chunk = min_chunk.max(1);
        let chunks = (len / min_chunk).clamp(1, self.threads.max(1));
        let (base, rem) = (len / chunks, len % chunks);
        let mut out = Vec::with_capacity(chunks);
        let mut start = 0;
        for c in 0..chunks {
            let end = start + base + usize::from(c < rem);
            out.push(start..end);
            start = end;
        }
        out
    }

    /// Run `tasks` invocations of `f(task, worker)` across the pool and block
    /// until all have finished. Tasks self-schedule (dynamic load balance);
    /// worker ids are in `0..threads` and unique within the batch, with the
    /// dispatcher as worker 0. Panics in any task are re-raised here after
    /// the batch drains.
    pub fn run(&self, tasks: usize, f: impl Fn(usize, usize) + Sync) {
        self.run_dyn(tasks, &f);
    }

    fn run_dyn(&self, tasks: usize, f: &(dyn Fn(usize, usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        // Serial paths: width-1 pools, single tasks, and nested dispatch all
        // run inline on the calling thread with its ambient worker id, so
        // per-worker scratch stays consistent.
        if self.threads == 1 || tasks == 1 || IN_TASK.get() {
            let worker = WORKER_ID.get();
            for t in 0..tasks {
                f(t, worker);
            }
            return;
        }
        // SAFETY: we erase the closure's lifetime to park it in the shared
        // job slot. The dispatcher (this frame) does not return until
        // `finished == tasks`, so no task can outlive the borrow.
        let erased: RawFn = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize, usize) + Sync),
                *const (dyn Fn(usize, usize) + Sync + 'static),
            >(f as *const _)
        };
        let mut st = self.shared.state.lock().unwrap();
        while st.job.is_some() {
            st = self.shared.idle_cv.wait(st).unwrap();
        }
        st.job = Some(Job {
            f: erased,
            tasks,
            next: 0,
            finished: 0,
            panic: None,
        });
        self.shared.work_cv.notify_all();
        // Participate as worker 0.
        st = run_share(&self.shared, st, 0);
        while st.job.as_ref().is_some_and(|j| j.finished < j.tasks) {
            st = self.shared.done_cv.wait(st).unwrap();
        }
        let job = st.job.take().expect("dispatcher owns the job slot");
        self.shared.idle_cv.notify_all();
        drop(st);
        if let Some(p) = job.panic {
            resume_unwind(p);
        }
    }

    /// Run `f(task, worker)` for each task and collect the `tasks` results in
    /// **task-index order** — the ordered merge half of the determinism
    /// contract.
    pub fn map<R: Send>(&self, tasks: usize, f: impl Fn(usize, usize) -> R + Sync) -> Vec<R> {
        struct Slots<R>(Box<[UnsafeCell<Option<R>>]>);
        // SAFETY: slot `t` is written exactly once, by task `t`.
        unsafe impl<R: Send> Sync for Slots<R> {}
        impl<R> Slots<R> {
            // Method (not field) access so closures capture the whole `Sync`
            // wrapper, not the raw `UnsafeCell` field.
            fn slot(&self, t: usize) -> *mut Option<R> {
                self.0[t].get()
            }
        }
        let slots: Slots<R> = Slots((0..tasks).map(|_| UnsafeCell::new(None)).collect());
        self.run_dyn(tasks, &|t, w| {
            let r = f(t, w);
            // SAFETY: each task index runs exactly once, so writes are
            // unaliased; the dispatch barrier orders them before the reads.
            unsafe { *slots.slot(t) = Some(r) };
        });
        slots
            .0
            .into_vec()
            .into_iter()
            .map(|c| c.into_inner().expect("task completed"))
            .collect()
    }

    /// Run `f(index, &mut item, worker)` over each element of `items`, one
    /// task per element. Results land in the caller's slice — ordered merge
    /// for free.
    pub fn for_each_mut<T: Send>(&self, items: &mut [T], f: impl Fn(usize, &mut T, usize) + Sync) {
        struct Ptr<T>(*mut T);
        // SAFETY: element `t` is accessed exactly once, by task `t`.
        unsafe impl<T: Send> Sync for Ptr<T> {}
        impl<T> Ptr<T> {
            fn at(&self, t: usize) -> *mut T {
                // SAFETY: caller stays in bounds (t < len, asserted below).
                unsafe { self.0.add(t) }
            }
        }
        let base = Ptr(items.as_mut_ptr());
        let len = items.len();
        self.run_dyn(len, &|t, w| {
            debug_assert!(t < len);
            // SAFETY: distinct task indices touch distinct elements.
            let item = unsafe { &mut *base.at(t) };
            f(t, item, w);
        });
    }

    /// Fork-join two closures; one runs on the dispatcher when workers are
    /// busy, so this never blocks on thread availability.
    pub fn join<RA: Send, RB: Send>(
        &self,
        a: impl FnOnce() -> RA + Send,
        b: impl FnOnce() -> RB + Send,
    ) -> (RA, RB) {
        struct Once<T>(UnsafeCell<Option<T>>);
        // SAFETY: each cell is touched by exactly one task index (pool
        // contract: every task index runs exactly once), and `T: Send` lets
        // the value migrate to whichever thread claims the task.
        unsafe impl<T: Send> Sync for Once<T> {}
        impl<T> Once<T> {
            fn new(v: Option<T>) -> Self {
                Once(UnsafeCell::new(v))
            }
            fn ptr(&self) -> *mut Option<T> {
                self.0.get()
            }
        }
        let fa = Once::new(Some(a));
        let fb = Once::new(Some(b));
        let ra: Once<RA> = Once::new(None);
        let rb: Once<RB> = Once::new(None);
        self.run_dyn(2, &|t, _| {
            // SAFETY: sole accessor per task index; see `Once`.
            if t == 0 {
                let f = unsafe { (*fa.ptr()).take() }.expect("join task 0 once");
                unsafe { *ra.ptr() = Some(f()) };
            } else {
                let f = unsafe { (*fb.ptr()).take() }.expect("join task 1 once");
                unsafe { *rb.ptr() = Some(f()) };
            }
        });
        (
            ra.0.into_inner().expect("join task 0 completed"),
            rb.0.into_inner().expect("join task 1 completed"),
        )
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Persistent worker body: wait for claimable work, help drain it, repeat.
fn worker_loop(shared: &Shared, worker: usize) {
    let mut st = shared.state.lock().unwrap();
    loop {
        if st.shutdown {
            return;
        }
        if st.job.as_ref().is_some_and(|j| j.next < j.tasks) {
            st = run_share(shared, st, worker);
        } else {
            st = shared.work_cv.wait(st).unwrap();
        }
    }
}

/// Claim and execute tasks from the current job until the cursor is
/// exhausted. Called with the state lock held; returns with it held.
fn run_share<'m>(
    shared: &'m Shared,
    mut st: std::sync::MutexGuard<'m, PoolState>,
    worker: usize,
) -> std::sync::MutexGuard<'m, PoolState> {
    loop {
        let Some(job) = st.job.as_mut() else {
            return st;
        };
        if job.next >= job.tasks {
            return st;
        }
        let t = job.next;
        job.next += 1;
        let f = job.f;
        let poisoned = job.panic.is_some();
        drop(st);
        let result = if poisoned {
            // A sibling task panicked: claim and skip, so `finished` still
            // reaches `tasks` and the dispatcher can report the panic.
            Ok(())
        } else {
            let prev_in = IN_TASK.replace(true);
            let prev_id = WORKER_ID.replace(worker);
            let r = catch_unwind(AssertUnwindSafe(|| {
                // SAFETY: see run_dyn — the dispatcher outlives the batch.
                unsafe { (*f)(t, worker) }
            }));
            WORKER_ID.set(prev_id);
            IN_TASK.set(prev_in);
            r
        };
        st = shared.state.lock().unwrap();
        let job = st.job.as_mut().expect("job outlives its tasks");
        job.finished += 1;
        if let Err(p) = result {
            job.panic.get_or_insert(p);
        }
        if job.finished == job.tasks {
            shared.done_cv.notify_all();
        }
    }
}

/// Shared raw view of a mutable slice for kernels whose tasks write
/// provably disjoint index ranges (chunked scatters, partitioned codecs).
///
/// This is the one escape hatch the determinism contract allows for
/// zero-copy parallel writes: the *caller* proves disjointness (ranges are
/// computed by arithmetic before the dispatch), and the accessors are
/// `unsafe` so every use site states that proof.
pub struct DisjointSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _borrow: std::marker::PhantomData<&'a mut [T]>,
}

// SAFETY: access is partitioned by caller-proven disjoint ranges; `T: Send`
// lets elements be written from whichever thread owns the range.
unsafe impl<T: Send> Sync for DisjointSlice<'_, T> {}

impl<'a, T> DisjointSlice<'a, T> {
    /// Wrap `slice`; the borrow is held for the wrapper's lifetime.
    pub fn new(slice: &'a mut [T]) -> Self {
        DisjointSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _borrow: std::marker::PhantomData,
        }
    }

    /// Length of the underlying slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable view of `range`.
    ///
    /// # Safety
    /// No two concurrent calls may pass overlapping ranges.
    #[allow(clippy::mut_from_ref)] // &self is the point: disjoint ranges alias nothing
    pub unsafe fn range_mut(&self, range: Range<usize>) -> &mut [T] {
        assert!(range.start <= range.end && range.end <= self.len);
        // SAFETY: bounds checked above; disjointness is the caller's proof.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.add(range.start), range.len()) }
    }

    /// Write one element.
    ///
    /// # Safety
    /// No two concurrent calls may pass the same index.
    pub unsafe fn write(&self, i: usize, v: T) {
        assert!(i < self.len);
        // SAFETY: bounds checked above; uniqueness is the caller's proof.
        unsafe { self.ptr.add(i).write(v) }
    }
}

/// One scratch slot per pool worker, indexed by the `worker` argument that
/// [`Pool::run`] hands each task.
///
/// Scratch is the *only* sanctioned use of worker ids: a task may mutate slot
/// `worker` freely because worker ids are unique within a batch and batches
/// never overlap. Anything accumulated here (trace counters, allocation
/// high-water marks) must be merged through [`iter_mut`](Self::iter_mut) /
/// [`drain`](Self::drain), which walk **worker-index order** so the merge is
/// reproducible; determinism of the totals comes from them being sums over a
/// schedule-invariant set of contributions.
pub struct PerWorker<S> {
    slots: Box<[UnsafeCell<S>]>,
    busy: Box<[AtomicBool]>,
}

// SAFETY: access is partitioned by worker index (checked at runtime by the
// `busy` flags), and `S: Send` lets slots migrate to whichever thread holds
// the matching worker id this batch.
unsafe impl<S: Send> Sync for PerWorker<S> {}

impl<S> PerWorker<S> {
    /// One slot per worker of `pool`, built with `init(worker_index)`.
    pub fn new(pool: &Pool, mut init: impl FnMut(usize) -> S) -> Self {
        let n = pool.threads();
        PerWorker {
            slots: (0..n).map(|w| UnsafeCell::new(init(w))).collect(),
            busy: (0..n).map(|_| AtomicBool::new(false)).collect(),
        }
    }

    /// Number of slots (== pool width at construction).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the pool had width 0 — never, in practice.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Exclusive access to worker `w`'s slot for the duration of `f`.
    ///
    /// Panics if the slot is already borrowed — which can only happen if a
    /// caller passes a worker id it does not own this batch.
    pub fn with<R>(&self, w: usize, f: impl FnOnce(&mut S) -> R) -> R {
        assert!(
            !self.busy[w].swap(true, Ordering::Acquire),
            "PerWorker slot {w} accessed concurrently — worker id misuse"
        );
        struct Unbusy<'a>(&'a AtomicBool);
        impl Drop for Unbusy<'_> {
            fn drop(&mut self) {
                self.0.store(false, Ordering::Release);
            }
        }
        let _unbusy = Unbusy(&self.busy[w]);
        // SAFETY: the busy flag proves exclusivity; &self keeps the slot alive.
        f(unsafe { &mut *self.slots[w].get() })
    }

    /// All slots in worker-index order — the deterministic merge walk.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut S> {
        self.slots.iter_mut().map(|c| c.get_mut())
    }

    /// Consume into the slot values, worker-index order.
    pub fn drain(self) -> impl Iterator<Item = S> {
        self.slots.into_vec().into_iter().map(|c| c.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn map_returns_task_order() {
        for threads in [1, 2, 3, 8] {
            let pool = Pool::new(threads);
            let out = pool.map(37, |t, _| t * t);
            assert_eq!(out, (0..37).map(|t| t * t).collect::<Vec<_>>());
        }
    }

    #[test]
    fn for_each_mut_touches_every_element_once() {
        for threads in [1, 2, 8] {
            let pool = Pool::new(threads);
            let mut v = vec![0usize; 101];
            pool.for_each_mut(&mut v, |i, x, _| *x += i + 1);
            assert!(v.iter().enumerate().all(|(i, &x)| x == i + 1));
        }
    }

    #[test]
    fn join_runs_both_closures() {
        for threads in [1, 2, 4] {
            let pool = Pool::new(threads);
            let (a, b) = pool.join(|| 2 + 2, || "ok".to_string());
            assert_eq!((a, b.as_str()), (4, "ok"));
        }
    }

    #[test]
    fn worker_ids_unique_within_batch() {
        let pool = Pool::new(4);
        let in_use: Vec<AtomicBool> = (0..4).map(|_| AtomicBool::new(false)).collect();
        pool.run(64, |_, w| {
            assert!(
                !in_use[w].swap(true, Ordering::SeqCst),
                "worker {w} aliased"
            );
            std::thread::sleep(std::time::Duration::from_micros(50));
            in_use[w].store(false, Ordering::SeqCst);
        });
    }

    #[test]
    fn nested_dispatch_runs_inline() {
        let pool = Arc::new(Pool::new(3));
        let count = AtomicUsize::new(0);
        let p2 = Arc::clone(&pool);
        pool.install(|| {
            pool.run(6, |_, w| {
                // Nested call must not deadlock and must keep the worker id.
                p2.run(4, |_, inner_w| {
                    assert_eq!(inner_w, w);
                    count.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert_eq!(count.load(Ordering::Relaxed), 24);
    }

    #[test]
    fn panics_propagate_after_drain() {
        let pool = Pool::new(3);
        let ran = AtomicUsize::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            pool.run(16, |t, _| {
                ran.fetch_add(1, Ordering::SeqCst);
                if t == 5 {
                    panic!("task 5 exploded");
                }
            });
        }));
        assert!(r.is_err());
        // Pool is still usable after a panic.
        assert_eq!(pool.map(3, |t, _| t).len(), 3);
    }

    #[test]
    fn concurrent_dispatchers_share_one_pool() {
        let pool = Arc::new(Pool::new(2));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for rep in 0..20 {
                        let out = pool.map(9, move |t, _| t + rep);
                        assert_eq!(out, (0..9).map(|t| t + rep).collect::<Vec<_>>());
                    }
                });
            }
        });
    }

    #[test]
    fn install_overrides_current_per_thread() {
        let pool = Arc::new(Pool::new(7));
        pool.install(|| {
            assert_eq!(current().threads(), 7);
        });
        // Restored after install.
        let t = std::thread::spawn(|| current().threads()).join().unwrap();
        assert!(t >= 1);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        let pool = Pool::new(4);
        for len in [0usize, 1, 5, 1000, 4097] {
            for min in [1usize, 64, 4096] {
                let ranges = pool.chunk_ranges(len, min);
                assert!(!ranges.is_empty());
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges.last().unwrap().end, len);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                if len >= min {
                    assert!(ranges.iter().all(|r| r.len() >= min.min(len)));
                }
            }
        }
    }

    #[test]
    fn per_worker_slots_merge_in_order() {
        let pool = Pool::new(4);
        let mut scratch = PerWorker::new(&pool, |w| vec![w]);
        pool.run(40, |t, w| scratch.with(w, |s| s.push(t)));
        let firsts: Vec<usize> = scratch.iter_mut().map(|s| s[0]).collect();
        assert_eq!(firsts, vec![0, 1, 2, 3]);
        let total: usize = scratch.drain().flat_map(|s| s.into_iter().skip(1)).sum();
        assert_eq!(total, (0..40).sum::<usize>());
    }

    #[test]
    fn serial_pool_spawns_nothing() {
        let pool = Pool::new(1);
        assert_eq!(pool.workers.len(), 0);
        let out = pool.map(5, |t, w| {
            assert_eq!(w, 0);
            t
        });
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }
}
