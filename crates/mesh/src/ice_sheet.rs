//! A synthetic ice-sheet mesh (Figures 16 and 17).
//!
//! The paper's strong-scaling mesh covers the Antarctic ice sheet with
//! more than 28,000 octrees and refines until every octant touching the
//! boundary between floating and grounded ice (the *grounding line*) is
//! below a threshold size. We reproduce the refinement *profile* — a thin
//! slab, strongly graded toward a wiggly closed interface on the bottom
//! surface — with a procedural grounding line: a circle whose radius is
//! modulated by a few random Fourier modes, evaluated exactly against
//! octant footprints, on a masked (continent-shaped) brick.

use forestbal_comm::Comm;
use forestbal_forest::{BrickConnectivity, Forest, TreeId};
use forestbal_octant::{Coord, Octant, ROOT_LEN};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::sync::Arc;

/// A closed curve `r(θ) = r0 (1 + Σ a_m cos(m θ + φ_m))` on the bottom
/// surface of the slab, in global (multi-tree) coordinates.
#[derive(Clone, Debug)]
pub struct GroundingLine {
    /// Center of the curve in global units of `ROOT_LEN`.
    center: [f64; 2],
    /// Base radius in units of `ROOT_LEN`.
    r0: f64,
    /// Fourier modes `(m, amplitude, phase)`.
    modes: Vec<(u32, f64, f64)>,
}

impl GroundingLine {
    /// A reproducible random grounding line fitting a `nx x ny` tree grid.
    pub fn new(seed: u64, nx: usize, ny: usize) -> GroundingLine {
        let mut rng = StdRng::seed_from_u64(seed);
        let center = [nx as f64 / 2.0, ny as f64 / 2.0];
        let r0 = 0.35 * nx.min(ny) as f64;
        let modes = (0..5)
            .map(|i| {
                (
                    2 + i as u32 * 2 + rng.random_range(0..2),
                    rng.random_range(0.03..0.13),
                    rng.random_range(0.0..std::f64::consts::TAU),
                )
            })
            .collect();
        GroundingLine { center, r0, modes }
    }

    /// Signed distance proxy: negative inside (grounded), positive
    /// outside (floating), in units of `ROOT_LEN`. `p` is in global
    /// coordinates (tree grid units).
    pub fn signed(&self, p: [f64; 2]) -> f64 {
        let dx = p[0] - self.center[0];
        let dy = p[1] - self.center[1];
        let rho = (dx * dx + dy * dy).sqrt();
        let theta = dy.atan2(dx);
        let mut r = self.r0;
        for &(m, a, phi) in &self.modes {
            r += self.r0 * a * (m as f64 * theta + phi).cos();
        }
        rho - r
    }

    /// Does the axis-aligned box `[lo, hi]` (global coordinates)
    /// intersect the curve? Conservative corner-sampling test with a
    /// center probe, adequate for refinement driving.
    pub fn intersects(&self, lo: [f64; 2], hi: [f64; 2]) -> bool {
        let corners = [
            [lo[0], lo[1]],
            [hi[0], lo[1]],
            [lo[0], hi[1]],
            [hi[0], hi[1]],
            [(lo[0] + hi[0]) / 2.0, (lo[1] + hi[1]) / 2.0],
        ];
        let mut pos = false;
        let mut neg = false;
        for c in corners {
            let s = self.signed(c);
            pos |= s >= 0.0;
            neg |= s <= 0.0;
        }
        // Also catch boxes whose diagonal is large relative to their
        // distance to the curve (corner sampling can miss thin lobes).
        let diag = ((hi[0] - lo[0]).powi(2) + (hi[1] - lo[1]).powi(2)).sqrt();
        let center_dist = self
            .signed([(lo[0] + hi[0]) / 2.0, (lo[1] + hi[1]) / 2.0])
            .abs();
        (pos && neg) || center_dist < diag / 2.0
    }
}

/// Parameters of the synthetic ice-sheet workload.
#[derive(Clone, Copy, Debug)]
pub struct IceSheetParams {
    /// Trees along x (the slab is 1 tree thick in z).
    pub nx: usize,
    /// Trees along y.
    pub ny: usize,
    /// Uniform background level.
    pub base_level: u8,
    /// Maximum level at the grounding line.
    pub max_level: u8,
    /// RNG seed for the grounding line shape.
    pub seed: u64,
}

impl Default for IceSheetParams {
    fn default() -> Self {
        IceSheetParams {
            nx: 6,
            ny: 6,
            base_level: 2,
            max_level: 6,
            seed: 2012,
        }
    }
}

/// Build the synthetic ice-sheet forest: a *masked* `nx x ny x 1` brick
/// whose active trees cover the ice (grounded region plus a one-tree
/// margin) — an irregular, continent-shaped macro mesh like the paper's
/// 28,000-plus-tree Antarctica connectivity — refined toward the grounding
/// line on the bottom surface (z = 0), with refinement depth decaying
/// upward.
pub fn ice_sheet_forest(ctx: &impl Comm, params: IceSheetParams) -> Forest<3> {
    let line = GroundingLine::new(params.seed, params.nx, params.ny);
    let mask_line = line.clone();
    let conn = Arc::new(BrickConnectivity::<3>::masked(
        [params.nx, params.ny, 1],
        [false; 3],
        move |c| {
            // Keep columns inside the ice or within one tree of the
            // grounding line.
            let center = [c[0] as f64 + 0.5, c[1] as f64 + 0.5];
            mask_line.signed(center) < 1.0
        },
    ));
    let conn2 = Arc::clone(&conn);
    let mut f = Forest::new_uniform(conn, ctx, params.base_level);
    f.refine(true, params.max_level, move |t: TreeId, o: &Octant<3>| {
        // Column footprint in global grid units.
        let tc = conn2.tree_coords(t);
        let to_f = |c: Coord, axis: usize| tc[axis] as f64 + c as f64 / ROOT_LEN as f64;
        let lo = [to_f(o.coords[0], 0), to_f(o.coords[1], 1)];
        let hi = [
            to_f(o.coords[0] + o.len(), 0),
            to_f(o.coords[1] + o.len(), 1),
        ];
        if !line.intersects(lo, hi) {
            return false;
        }
        // Depth-dependent cap: full depth near the bottom surface,
        // shallower with height (the physics lives at the ice base).
        let z_frac = o.coords[2] as f64 / ROOT_LEN as f64;
        let cap = if z_frac < 0.25 {
            params.max_level
        } else if z_frac < 0.5 {
            params.max_level.saturating_sub(1)
        } else {
            params.max_level.saturating_sub(2)
        };
        o.level < cap
    });
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use forestbal_comm::Cluster;

    #[test]
    fn grounding_line_is_closed_and_wiggly() {
        let line = GroundingLine::new(7, 6, 6);
        // Center is inside, far corner is outside.
        assert!(line.signed([3.0, 3.0]) < 0.0);
        assert!(line.signed([0.0, 0.0]) > 0.0);
        // Radius varies with angle (the modes do something).
        let r1 = line.signed([3.0 + 1.5, 3.0]);
        let r2 = line.signed([3.0, 3.0 + 1.5]);
        assert!((r1 - r2).abs() > 1e-6);
    }

    #[test]
    fn box_intersection_detects_crossing() {
        let line = GroundingLine::new(7, 6, 6);
        assert!(line.intersects([0.0, 0.0], [6.0, 6.0]));
        assert!(!line.intersects([0.0, 0.0], [0.2, 0.2]));
    }

    #[test]
    fn ice_sheet_refines_at_interface_only() {
        Cluster::run(2, |ctx| {
            let p = IceSheetParams {
                nx: 4,
                ny: 4,
                base_level: 1,
                max_level: 4,
                seed: 3,
            };
            let f = ice_sheet_forest(ctx, p);
            let total = f.num_global(ctx);
            let uniform = 16u64 * 8u64.pow(1);
            assert!(total > uniform, "refinement happened");
            // Graded: the mesh is much smaller than uniformly refined.
            let full = 16u64 * 8u64.pow(4);
            assert!(
                total < full / 4,
                "refinement is localized: {total} vs {full}"
            );
        });
    }

    #[test]
    fn ice_sheet_is_deterministic() {
        let runs: Vec<u64> = (0..2)
            .map(|_| {
                Cluster::run(3, |ctx| {
                    let f = ice_sheet_forest(ctx, IceSheetParams::default());
                    f.checksum(ctx)
                })
                .results[0]
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
    }

    #[test]
    fn bottom_layer_is_finer_than_top() {
        Cluster::run(1, |ctx| {
            let p = IceSheetParams {
                nx: 4,
                ny: 4,
                base_level: 1,
                max_level: 5,
                seed: 3,
            };
            let f = ice_sheet_forest(ctx, p);
            let mut bottom_max = 0u8;
            let mut top_max = 0u8;
            for (_, v) in f.trees() {
                for o in v {
                    if o.coords[2] == 0 {
                        bottom_max = bottom_max.max(o.level);
                    }
                    if o.coords[2] + o.len() == ROOT_LEN {
                        top_max = top_max.max(o.level);
                    }
                }
            }
            assert!(bottom_max > top_max, "{bottom_max} vs {top_max}");
        });
    }
}
