//! The fractal weak-scaling workload (Figures 14 and 15).
//!
//! "The refinement is defined by choosing the forest in Figure 14, and
//! recursively splitting octants with child identifiers 0, 3, 5 and 6
//! while not exceeding four levels of size difference in the forest."

use forestbal_comm::Comm;
use forestbal_forest::{BrickConnectivity, Forest};
use forestbal_octant::Octant;
use std::sync::Arc;

/// Child ids that keep splitting in the fractal rule.
pub const FRACTAL_CHILDREN: [usize; 4] = [0, 3, 5, 6];

/// Build the fractal forest on the Figure 14 brick (3x2x1 octrees in 3D):
/// start uniform at `base_level` and recursively split octants whose
/// child id is in [`FRACTAL_CHILDREN`], up to `base_level + spread`
/// levels (the paper uses a spread of 4 and grows `base_level` with the
/// core count for isogranular scaling).
pub fn fractal_forest(ctx: &impl Comm, base_level: u8, spread: u8) -> Forest<3> {
    let conn = Arc::new(BrickConnectivity::<3>::new([3, 2, 1], [false; 3]));
    let mut f = Forest::new_uniform(conn, ctx, base_level);
    let max_level = base_level + spread;
    f.refine(true, max_level, |_, o: &Octant<3>| {
        o.level > 0 && FRACTAL_CHILDREN.contains(&o.child_id())
    });
    f
}

/// The same fractal rule on a single 2D quadtree, for cheap tests.
pub fn fractal_forest_2d(ctx: &impl Comm, base_level: u8, spread: u8) -> Forest<2> {
    let conn = Arc::new(BrickConnectivity::<2>::unit());
    let mut f = Forest::new_uniform(conn, ctx, base_level);
    f.refine(true, base_level + spread, |_, o: &Octant<2>| {
        o.level > 0 && [0usize, 3].contains(&o.child_id())
    });
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use forestbal_comm::{Cluster, Comm};

    #[test]
    fn fractal_counts_scale_with_level() {
        let counts: Vec<u64> = [1u8, 2]
            .iter()
            .map(|&l| {
                Cluster::run(2, move |ctx| {
                    let f = fractal_forest(ctx, l, 2);
                    f.num_global(ctx)
                })
                .results[0]
            })
            .collect();
        // One level deeper multiplies the base mesh by 8; the fractal
        // tail scales along.
        assert!(counts[1] > 6 * counts[0]);
    }

    #[test]
    fn fractal_respects_spread() {
        Cluster::run(3, |ctx| {
            let f = fractal_forest(ctx, 1, 3);
            let all = ctx.allgather(vec![f.max_local_level()]);
            let max = all.iter().map(|v| v[0]).max().unwrap();
            assert_eq!(max, 4, "deepest level is base + spread");
        });
    }

    #[test]
    fn fractal_is_partition_independent() {
        let mut sums = vec![];
        for p in [1usize, 4] {
            let out = Cluster::run(p, |ctx| {
                let f = fractal_forest(ctx, 1, 2);
                f.checksum(ctx)
            });
            sums.push(out.results[0]);
        }
        assert_eq!(sums[0], sums[1]);
    }

    #[test]
    fn fractal_is_unbalanced_before_balance() {
        // With spread 4 the raw fractal violates 2:1 (that is the point
        // of the benchmark).
        Cluster::run(1, |ctx| {
            let f = fractal_forest(ctx, 1, 4);
            let g = f.gather(ctx);
            let balanced = forestbal_forest::serial::is_forest_balanced(
                f.connectivity(),
                &g,
                forestbal_core::Condition::full(3),
            );
            assert!(!balanced);
        });
    }
}
