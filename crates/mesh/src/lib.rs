//! Workload generators for the evaluation meshes of §VI.
//!
//! * [`fractal`] — the weak-scaling workload (Figures 14/15): recursive
//!   refinement of a six-octree brick where children with ids {0, 3, 5, 6}
//!   split further, producing a fractal mesh with bounded level spread.
//! * [`ice_sheet`] — a synthetic stand-in for the Antarctic ice-sheet
//!   mesh of the strong-scaling study (Figures 16/17): a thin multi-tree
//!   slab refined wherever an octant column intersects a procedurally
//!   generated *grounding line* on the bottom surface, yielding the same
//!   highly graded, interface-concentrated refinement profile. The real
//!   mesh comes from a finite-element simulation we do not have; the
//!   balance cost depends only on the grading geometry, which this
//!   reproduces.
//! * [`random`] — seeded random refinement for fuzzing and benchmarks.

#![warn(missing_docs)]

pub mod fractal;
pub mod ice_sheet;
pub mod random;
pub mod sphere;

pub use fractal::{fractal_forest, fractal_forest_2d, FRACTAL_CHILDREN};
pub use ice_sheet::{ice_sheet_forest, GroundingLine, IceSheetParams};
pub use random::random_forest;
pub use sphere::{sphere_forest, SphereParams};

use forestbal_octant::{Octant, MAX_LEVEL};

/// Histogram of leaf counts per level for a local forest view.
pub fn level_histogram<const D: usize>(
    forest: &forestbal_forest::Forest<D>,
) -> [u64; MAX_LEVEL as usize + 1] {
    let mut h = [0u64; MAX_LEVEL as usize + 1];
    for (_, v) in forest.trees() {
        for o in v {
            h[o.level as usize] += 1;
        }
    }
    h
}

/// Fraction of the covered volume held by leaves finer than `level` — a
/// crude grading measure used in benchmark reports.
pub fn fine_fraction<const D: usize>(leaves: &[Octant<D>], level: u8) -> f64 {
    let total: u128 = leaves.iter().map(|o| o.cell_count()).sum();
    if total == 0 {
        return 0.0;
    }
    let fine: u128 = leaves
        .iter()
        .filter(|o| o.level > level)
        .map(|o| o.cell_count())
        .sum();
    fine as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use forestbal_comm::Cluster;
    use forestbal_forest::BrickConnectivity;
    use std::sync::Arc;

    #[test]
    fn level_histogram_counts_leaves() {
        let conn = Arc::new(BrickConnectivity::<2>::unit());
        Cluster::run(1, |ctx| {
            let mut f = forestbal_forest::Forest::new_uniform(Arc::clone(&conn), ctx, 2);
            f.refine(false, 3, |_, o| o.coords == [0, 0]);
            let h = level_histogram(&f);
            assert_eq!(h[2], 15);
            assert_eq!(h[3], 4);
            assert_eq!(h.iter().sum::<u64>(), 19);
        });
    }

    #[test]
    fn fine_fraction_measures_grading() {
        let root = Octant::<2>::root();
        // Uniform level-1 tree: nothing finer than level 1.
        let uni: Vec<Octant<2>> = (0..4).map(|i| root.child(i)).collect();
        assert_eq!(fine_fraction(&uni, 1), 0.0);
        assert_eq!(fine_fraction(&uni, 0), 1.0);
        // Refine one quadrant: a quarter of the area is finer than 1.
        let mut v = vec![root.child(1), root.child(2), root.child(3)];
        v.extend((0..4).map(|i| root.child(0).child(i)));
        v.sort();
        let frac = fine_fraction(&v, 1);
        assert!((frac - 0.25).abs() < 1e-12);
        assert_eq!(fine_fraction::<2>(&[], 0), 0.0);
    }
}
