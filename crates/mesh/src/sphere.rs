//! Spherical-shell refinement — the mantle-convection / seismic-wave
//! style workload from the paper's introduction (refinement tracking a
//! spherical interface, e.g. a plate boundary or wavefront).

use forestbal_comm::Comm;
use forestbal_forest::{BrickConnectivity, Forest, TreeId};
use forestbal_octant::{Coord, Octant, ROOT_LEN};
use std::sync::Arc;

/// Parameters of the spherical-shell workload.
#[derive(Clone, Copy, Debug)]
pub struct SphereParams {
    /// Trees per axis (a cube of trees).
    pub n: usize,
    /// Shell center in tree-grid units.
    pub center: [f64; 3],
    /// Shell radius in tree-grid units.
    pub radius: f64,
    /// Uniform background level.
    pub base_level: u8,
    /// Level at the shell.
    pub max_level: u8,
}

impl Default for SphereParams {
    fn default() -> Self {
        SphereParams {
            n: 2,
            center: [1.0, 1.0, 1.0],
            radius: 0.7,
            base_level: 2,
            max_level: 5,
        }
    }
}

/// Does the octant's global bounding box intersect the sphere surface?
#[allow(clippy::needless_range_loop)] // indexing three parallel sequences
fn crosses_shell<const D: usize>(
    tc: &[usize; D],
    o: &Octant<D>,
    center: &[f64],
    radius: f64,
) -> bool {
    // Distance from center to the box: min and max over the box.
    let to_f = |c: Coord, i: usize| tc[i] as f64 + c as f64 / ROOT_LEN as f64;
    let mut dmin2 = 0.0f64;
    let mut dmax2 = 0.0f64;
    for i in 0..D {
        let lo = to_f(o.coords[i], i);
        let hi = to_f(o.coords[i] + o.len(), i);
        let c = center[i];
        // Nearest and farthest points of the interval to the center.
        let dmin = if c < lo {
            lo - c
        } else if c > hi {
            c - hi
        } else {
            0.0
        };
        let dmax = (c - lo).abs().max((hi - c).abs());
        dmin2 += dmin * dmin;
        dmax2 += dmax * dmax;
    }
    dmin2.sqrt() <= radius && radius <= dmax2.sqrt()
}

/// Build the spherical-shell forest: an `n^3` brick refined wherever an
/// octant crosses the shell surface.
pub fn sphere_forest(ctx: &impl Comm, params: SphereParams) -> Forest<3> {
    let conn = Arc::new(BrickConnectivity::<3>::new([params.n; 3], [false; 3]));
    let conn2 = Arc::clone(&conn);
    let mut f = Forest::new_uniform(conn, ctx, params.base_level);
    f.refine(true, params.max_level, move |t: TreeId, o: &Octant<3>| {
        let tc = conn2.tree_coords(t);
        crosses_shell(&tc, o, &params.center, params.radius)
    });
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use forestbal_comm::Cluster;

    #[test]
    fn shell_refinement_is_localized() {
        Cluster::run(2, |ctx| {
            let p = SphereParams {
                base_level: 1,
                max_level: 4,
                ..Default::default()
            };
            let f = sphere_forest(ctx, p);
            let total = f.num_global(ctx);
            let uniform_base = (2u64 * 2 * 2) * 8u64.pow(1);
            let uniform_max = (2u64 * 2 * 2) * 8u64.pow(4);
            assert!(total > uniform_base);
            assert!(total < uniform_max / 4, "shell refinement must be sparse");
        });
    }

    #[test]
    fn crosses_shell_geometry() {
        let o = Octant::<3>::root();
        // Unit tree at origin; sphere centered at tree corner (1,1,1).
        assert!(crosses_shell(&[0, 0, 0], &o, &[1.0, 1.0, 1.0], 0.5));
        // Tiny radius around the far corner: the root still crosses.
        assert!(crosses_shell(&[0, 0, 0], &o, &[1.0, 1.0, 1.0], 0.1));
        // Shell entirely outside the box.
        assert!(!crosses_shell(&[0, 0, 0], &o, &[3.0, 3.0, 3.0], 0.5));
        // Shell entirely containing the box.
        assert!(!crosses_shell(&[0, 0, 0], &o, &[0.5, 0.5, 0.5], 5.0));
    }

    #[test]
    fn refined_leaves_hug_the_shell() {
        Cluster::run(1, |ctx| {
            let p = SphereParams {
                base_level: 1,
                max_level: 3,
                ..Default::default()
            };
            let f = sphere_forest(ctx, p);
            let conn = Arc::clone(f.connectivity());
            for (t, v) in f.trees() {
                let tc = conn.tree_coords(t);
                for o in v.iter().filter(|o| o.level == 3) {
                    // A finest leaf exists because its parent crossed the
                    // shell (children themselves need not cross).
                    assert!(
                        crosses_shell(&tc, &o.parent(), &p.center, p.radius),
                        "finest leaf {o:?} has a parent away from the shell"
                    );
                }
            }
        });
    }
}
