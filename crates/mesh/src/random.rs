//! Seeded random refinement, reproducible across rank counts.
//!
//! The refinement decision hashes the octant identity together with the
//! seed, so every rank count produces the same global mesh — important
//! for cross-`P` comparisons in tests and benchmarks.

use forestbal_comm::Comm;
use forestbal_forest::{BrickConnectivity, Forest, TreeId};
use forestbal_octant::Octant;
use std::sync::Arc;

/// Splittable hash of (seed, tree, octant).
fn decide<const D: usize>(seed: u64, t: TreeId, o: &Octant<D>, denom: u64) -> bool {
    let mut h = seed ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &c in &o.coords {
        h ^= (c as u32 as u64).wrapping_mul(0xff51_afd7_ed55_8ccd);
        h = h.rotate_left(29);
    }
    h ^= (o.level as u64).wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h = h.wrapping_mul(0x2545_f491_4f6c_dd1d);
    (h >> 32).is_multiple_of(denom)
}

/// Build a randomly refined forest on a `D`-dimensional brick: uniform at
/// `base_level`, then each octant splits with probability `1/denom`
/// (recursively, capped at `max_level`).
pub fn random_forest<const D: usize>(
    ctx: &impl Comm,
    conn: Arc<BrickConnectivity<D>>,
    base_level: u8,
    max_level: u8,
    denom: u64,
    seed: u64,
) -> Forest<D> {
    let mut f = Forest::new_uniform(conn, ctx, base_level);
    f.refine(true, max_level, |t, o| decide(seed, t, o, denom));
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use forestbal_comm::Cluster;

    #[test]
    fn random_forest_partition_invariant() {
        let mut sums = vec![];
        for p in [1usize, 3, 4] {
            let out = Cluster::run(p, |ctx| {
                let conn = Arc::new(BrickConnectivity::<2>::new([2, 2], [false; 2]));
                let f = random_forest(ctx, conn, 2, 5, 4, 42);
                f.checksum(ctx)
            });
            sums.push(out.results[0]);
        }
        assert_eq!(sums[0], sums[1]);
        assert_eq!(sums[0], sums[2]);
    }

    #[test]
    fn seeds_change_the_mesh() {
        let counts: Vec<u64> = [1u64, 2]
            .iter()
            .map(|&s| {
                Cluster::run(1, move |ctx| {
                    let conn = Arc::new(BrickConnectivity::<2>::unit());
                    random_forest(ctx, conn, 2, 6, 3, s).num_global(ctx)
                })
                .results[0]
            })
            .collect();
        assert_ne!(counts[0], counts[1]);
    }

    #[test]
    fn denom_controls_density() {
        let counts: Vec<u64> = [2u64, 16]
            .iter()
            .map(|&d| {
                Cluster::run(1, move |ctx| {
                    let conn = Arc::new(BrickConnectivity::<2>::unit());
                    random_forest(ctx, conn, 2, 6, d, 7).num_global(ctx)
                })
                .results[0]
            })
            .collect();
        assert!(counts[0] > counts[1]);
    }
}
