//! P=4 differential pin for the packed-key data plane: the threaded
//! `Cluster` and the discrete-event `SimCluster` must produce the *same
//! bits* — gathered meshes octant by octant, balance volume counters,
//! and per-rank `CommStats` including the per-tag table — now that every
//! octant-bearing message ships fixed-width packed keys
//! (`forestbal_forest::codec`). The per-tag byte counts double as a wire
//! format check: query traffic is an exact multiple of the
//! `(u32 eid, u32 tree, key)` record size, 8 + `key_size` bytes.

use forestbal_comm::{Cluster, Comm};
use forestbal_core::Condition;
use forestbal_forest::balance::{QUERY_TAG, RESPONSE_TAG};
use forestbal_forest::{codec, BalanceVariant, Forest, ReversalScheme, TreeId};
use forestbal_mesh::fractal_forest;
use forestbal_octant::Octant;
use forestbal_sim::{SimCluster, SimConfig};
use std::collections::BTreeMap;

const P: usize = 4;

type Gathered<const D: usize> = BTreeMap<TreeId, Vec<Octant<D>>>;

/// Everything a rank observes from one balance, minus wall-clock time.
fn balanced_3d<C: Comm>(ctx: &C, variant: BalanceVariant) -> (Gathered<3>, u64, u64, u64, u64) {
    let mut f = fractal_forest(ctx, 2, 3);
    let rep = f.balance_with_report(ctx, Condition::full(3), variant, ReversalScheme::Notify);
    let sum = f.checksum(ctx);
    (
        f.gather(ctx),
        rep.query_bytes,
        rep.response_bytes,
        rep.messages,
        sum,
    )
}

#[test]
fn packed_balance_bit_identical_across_runtimes_p4() {
    for variant in [BalanceVariant::New, BalanceVariant::Old] {
        let threaded = Cluster::run(P, move |ctx| balanced_3d(ctx, variant));
        let sim = SimCluster::run(P, SimConfig::default(), move |ctx| {
            balanced_3d(ctx, variant)
        });

        // Full mesh, volume counters, and checksum, rank by rank.
        assert_eq!(threaded.results, sim.results, "{variant:?}");
        // Per-rank CommStats, including the per-tag (messages, bytes)
        // table for every protocol tag in the run.
        assert_eq!(threaded.stats, sim.stats, "{variant:?}");

        for (rank, s) in threaded.stats.iter().enumerate() {
            // Wire format: queries are fixed-width (eid, tree, key)
            // records — 8 + 16 bytes each in 3D.
            let q = s.tag_stats(QUERY_TAG);
            let record = 8 + codec::key_size::<3>() as u64;
            assert_eq!(
                q.bytes % record,
                0,
                "rank {rank} {variant:?}: query bytes not a whole number of records"
            );
            // Responses are (eid, count, count × key) records: their
            // bytes are 8 per answered query plus a whole number of keys.
            let r = s.tag_stats(RESPONSE_TAG);
            assert_eq!(
                r.bytes % 8,
                0,
                "rank {rank} {variant:?}: response bytes misaligned"
            );
        }

        // The balance actually communicated (P=4 splits the fractal
        // brick across ranks), so the pins above are not vacuous.
        let total_q: u64 = threaded.results.iter().map(|r| r.1).sum();
        assert!(total_q > 0, "{variant:?}: no query traffic at P=4");
    }
}

/// The same pin in 2D, where keys are 8 bytes: a 2x2 brick with an
/// asymmetric refinement that couples trees across faces and corners.
#[test]
fn packed_balance_bit_identical_across_runtimes_p4_2d() {
    use forestbal_forest::BrickConnectivity;
    use std::sync::Arc;

    fn run<C: Comm>(ctx: &C) -> (Gathered<2>, u64, u64, u64) {
        let conn = Arc::new(BrickConnectivity::<2>::new([2, 2], [false; 2]));
        let mut f = Forest::new_uniform(conn, ctx, 2);
        f.refine(true, 6, |t, o| {
            (t == 0 && o.child_id() == 3) || (t == 3 && o.child_id() == 0)
        });
        let rep = f.balance_with_report(
            ctx,
            Condition::full(2),
            BalanceVariant::New,
            ReversalScheme::Notify,
        );
        (
            f.gather(ctx),
            rep.query_bytes,
            rep.response_bytes,
            rep.messages,
        )
    }

    let threaded = Cluster::run(P, run);
    let sim = SimCluster::run(P, SimConfig::default(), run);
    assert_eq!(threaded.results, sim.results);
    assert_eq!(threaded.stats, sim.stats);
    let record = 8 + codec::key_size::<2>() as u64; // 16 bytes per query in 2D
    for s in &threaded.stats {
        assert_eq!(s.tag_stats(QUERY_TAG).bytes % record, 0);
    }
}
