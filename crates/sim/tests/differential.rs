//! Differential tests: the threaded `Cluster` and the discrete-event
//! `SimCluster` run the *same* closures over the `Comm` trait, so on any
//! workload they must produce identical results and identical
//! communication counters. Only timing differs (wall clock vs virtual).

use forestbal_comm::{reverse_naive, reverse_notify, reverse_ranges, Cluster, Comm, CommStats};
use forestbal_core::Condition;
use forestbal_forest::{BalanceVariant, ReversalScheme};
use forestbal_mesh::fractal_forest;
use forestbal_sim::{SimCluster, SimConfig};
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::sync::Arc;

/// Per-rank pseudo-random receiver sets: up to 4 distinct peers each.
fn random_receivers(p: usize, seed: u64) -> Arc<Vec<Vec<usize>>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let sets = (0..p)
        .map(|r| {
            let k = rng.random_range(0..=4.min(p.saturating_sub(1)));
            let mut rs: Vec<usize> = (0..k)
                .map(|_| rng.random_range(0..p))
                .filter(|&q| q != r)
                .collect();
            rs.sort_unstable();
            rs.dedup();
            rs
        })
        .collect();
    Arc::new(sets)
}

fn run_reversal_on<C: Comm>(
    ctx: &C,
    recv: &[Vec<usize>],
    which: u8,
    max_ranges: usize,
) -> Vec<usize> {
    let rs = &recv[ctx.rank()];
    match which {
        0 => reverse_naive(ctx, rs),
        1 => reverse_ranges(ctx, rs, max_ranges),
        _ => reverse_notify(ctx, rs),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All three reversal schemes agree between runtimes, result and
    /// stats alike, on random communication patterns.
    fn reversal_differential(p in 1usize..8, seed in any::<u64>(), which in 0u8..3) {
        let recv = random_receivers(p, seed);
        let max_ranges = 2;

        let r1 = recv.clone();
        let threaded = Cluster::run(p, move |ctx| run_reversal_on(ctx, &r1, which, max_ranges));
        let r2 = recv.clone();
        let sim = SimCluster::run(p, SimConfig::default(), move |ctx| {
            run_reversal_on(ctx, &r2, which, max_ranges)
        });

        prop_assert_eq!(&threaded.results, &sim.results);
        prop_assert_eq!(&threaded.stats, &sim.stats);

        // Jitter reorders deliveries but must not change the answer or
        // the message counts (order-robustness of the algorithms).
        let r3 = recv.clone();
        let jittered = SimCluster::run(
            p,
            SimConfig::default().with_seed(seed).with_jitter(2_500),
            move |ctx| run_reversal_on(ctx, &r3, which, max_ranges),
        );
        prop_assert_eq!(&threaded.results, &jittered.results);
        prop_assert_eq!(&threaded.stats, &jittered.stats);
    }

}

proptest! {
    // Fewer cases: each one runs a full threaded *and* simulated balance.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A full one-pass parallel balance of the fractal forest produces
    /// the same mesh (checksummed) and the same per-rank communication
    /// counters on both runtimes, for every variant and scheme.
    fn balance_differential(
        p in 1usize..5,
        level in 1u8..3,
        variant_new in any::<bool>(),
        which in 0u8..3,
    ) {
        let variant = if variant_new { BalanceVariant::New } else { BalanceVariant::Old };
        let scheme = match which {
            0 => ReversalScheme::Naive,
            1 => ReversalScheme::Ranges(2),
            _ => ReversalScheme::Notify,
        };
        let spread = 3;

        let threaded = Cluster::run(p, move |ctx| {
            let mut f = fractal_forest(ctx, level, spread);
            let before = f.num_global(ctx);
            f.balance(ctx, Condition::full(3), variant, scheme);
            (before, f.checksum(ctx))
        });
        let sim = SimCluster::run(p, SimConfig::default(), move |ctx| {
            let mut f = fractal_forest(ctx, level, spread);
            let before = f.num_global(ctx);
            f.balance(ctx, Condition::full(3), variant, scheme);
            (before, f.checksum(ctx))
        });

        prop_assert_eq!(&threaded.results, &sim.results);
        prop_assert_eq!(&threaded.stats, &sim.stats);
    }
}

/// Aggregate stats also line up (sanity on `total_stats`).
#[test]
fn totals_match_across_runtimes() {
    let p = 6;
    let recv = random_receivers(p, 7);
    let r1 = recv.clone();
    let threaded = Cluster::run(p, move |ctx| run_reversal_on(ctx, &r1, 2, 2));
    let sim = SimCluster::run(p, SimConfig::default(), move |ctx| {
        run_reversal_on(ctx, &recv, 2, 2)
    });
    let a: CommStats = threaded.total_stats();
    let b: CommStats = sim.total_stats();
    assert_eq!(a, b);
}
