//! Acceptance tests at the paper's rank counts: a full one-pass balance
//! of the fractal forest at P = 4096 simulated ranks, every variant and
//! reversal scheme, bit-identical across repeated seeded runs.
//!
//! These are release-mode tests (`cargo test --release -p forestbal-sim`);
//! under `debug_assertions` they are `#[ignore]`d so plain `cargo test`
//! stays fast.

use forestbal_comm::Comm;
use forestbal_core::Condition;
use forestbal_forest::{BalanceVariant, ReversalScheme};
use forestbal_mesh::fractal_forest;
use forestbal_sim::{SimCluster, SimConfig};

fn balance_at(
    p: usize,
    cfg: SimConfig,
    variant: BalanceVariant,
    scheme: ReversalScheme,
) -> (Vec<(u64, u64)>, u64, u64) {
    let out = SimCluster::run(p, cfg, move |ctx| {
        let mut f = fractal_forest(ctx, 2, 3);
        let before = f.num_global(ctx);
        f.balance(ctx, Condition::full(3), variant, scheme);
        (before, f.checksum(ctx))
    });
    let msgs = out.total_stats().messages_sent;
    let makespan = out.makespan_ns();
    (out.results, makespan, msgs)
}

#[test]
#[cfg_attr(debug_assertions, ignore = "P = 4096 is a release-mode test")]
fn p4096_balance_all_variants_and_schemes() {
    let p = 4096;
    let cfg = SimConfig::default().with_seed(42).with_jitter(750);
    let mut sizes: Option<(u64, u64)> = None;
    for scheme in [
        ReversalScheme::Naive,
        ReversalScheme::Ranges(25),
        ReversalScheme::Notify,
    ] {
        for variant in [BalanceVariant::Old, BalanceVariant::New] {
            let (results, makespan, msgs) = balance_at(p, cfg, variant, scheme);
            assert_eq!(results.len(), p);
            assert!(makespan > 0);
            // Every rank agrees on the global counts.
            assert!(results.windows(2).all(|w| w[0] == w[1]));
            match sizes {
                None => sizes = Some(results[0]),
                Some(s) => assert_eq!(
                    s, results[0],
                    "{variant:?}/{scheme:?} disagrees on the balanced mesh"
                ),
            }
            if matches!(scheme, ReversalScheme::Notify) {
                assert!(msgs > 0, "notify must use point-to-point messages");
            }
        }
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "P = 4096 is a release-mode test")]
fn p4096_is_bit_identical_across_runs() {
    let p = 4096;
    let cfg = SimConfig::default().with_seed(2012).with_jitter(1_500);
    let a = balance_at(p, cfg, BalanceVariant::New, ReversalScheme::Notify);
    let b = balance_at(p, cfg, BalanceVariant::New, ReversalScheme::Notify);
    assert_eq!(a, b, "same seed must reproduce results, makespan, stats");
    // A different fault-injection seed may change the schedule but never
    // the answer.
    let c = balance_at(
        p,
        cfg.with_seed(7),
        BalanceVariant::New,
        ReversalScheme::Notify,
    );
    assert_eq!(a.0, c.0);
}

/// Always-on smoke at P = 1024 with the cheap reversal-only workload, so
/// plain debug `cargo test` still exercises four-digit rank counts.
#[test]
fn p1024_reversal_smoke() {
    let p = 1024;
    let out = SimCluster::run(p, SimConfig::default(), move |ctx| {
        let rs = vec![(ctx.rank() + 1) % p, (ctx.rank() + 7) % p];
        forestbal_comm::reverse_notify(ctx, &rs)
    });
    assert_eq!(out.results.len(), p);
    assert!(out.results.iter().all(|s| s.len() == 2));
    assert!(out.makespan_ns() > 0);
}
