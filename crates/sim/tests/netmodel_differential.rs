//! Network-model differential tests.
//!
//! The refactor that introduced [`NetworkModel`] must be invisible under
//! the default configuration: `NetworkSpec::Flat` has to reproduce the
//! previously hard-coded cost arithmetic *bit-identically* — virtual
//! times, communication counters and balanced-forest checksums alike.
//! The pin is differential: `Historical` below re-implements the exact
//! pre-refactor formulas (per-call `f64` rounding and all) as a custom
//! model plugged in through `run_with_model`, and whole runs are compared
//! against the built-in default.
//!
//! Also pinned here: the hierarchical model with equal intra/inter
//! parameters degenerates to the flat model bit-identically (proptest).

use forestbal_comm::{reverse_naive, reverse_notify, reverse_ranges, Comm};
use forestbal_core::Condition;
use forestbal_forest::{BalanceVariant, ReversalScheme};
use forestbal_mesh::fractal_forest;
use forestbal_sim::{
    HierarchicalParams, NetStats, NetworkModel, NetworkSpec, SimCluster, SimConfig, SimRunOutput,
};
use proptest::prelude::*;

/// The simulator's cost arithmetic exactly as hard-coded before the
/// [`NetworkModel`] refactor: flat `α + round(β·bytes)` per message and
/// `⌈log₂P⌉·α + round(β·total)` per collective, rounding independently
/// per call.
struct Historical {
    latency_ns: u64,
    ns_per_byte: f64,
    stats: NetStats,
}

impl Historical {
    fn from(cfg: &SimConfig) -> Historical {
        Historical {
            latency_ns: cfg.latency_ns,
            ns_per_byte: cfg.ns_per_byte,
            stats: NetStats::default(),
        }
    }

    fn transfer_ns(&self, bytes: usize) -> u64 {
        (bytes as f64 * self.ns_per_byte).round() as u64
    }
}

impl NetworkModel for Historical {
    fn message_arrival_ns(&mut self, _src: usize, _dst: usize, bytes: usize, send_ns: u64) -> u64 {
        self.stats.p2p_messages += 1;
        self.stats.intra_node_messages += 1;
        send_ns + self.latency_ns + self.transfer_ns(bytes)
    }

    fn collective_done_ns(&mut self, size: usize, total_bytes: usize, start_ns: u64) -> u64 {
        self.stats.collectives += 1;
        let depth = usize::BITS - size.saturating_sub(1).leading_zeros();
        start_ns + depth as u64 * self.latency_ns + self.transfer_ns(total_bytes)
    }

    fn net_stats(&self) -> NetStats {
        self.stats
    }
}

/// Bit-identity of two runs: results, per-rank counters, per-rank virtual
/// finish times, and the models' own traffic counters.
fn assert_identical<T: PartialEq + std::fmt::Debug>(a: &SimRunOutput<T>, b: &SimRunOutput<T>) {
    assert_eq!(a.results, b.results);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.finish_ns, b.finish_ns);
    assert_eq!(a.net, b.net);
}

/// Mixed reversal workload touching p2p, wildcard recv and collectives,
/// returning per-rank virtual timestamps so any cost divergence surfaces.
fn reversal_workload<C: Comm>(ctx: &C) -> (Vec<usize>, Vec<usize>, Vec<usize>, u64) {
    let p = ctx.size();
    let rs = vec![(ctx.rank() + 1) % p, (ctx.rank() + 7) % p];
    let a = reverse_naive(ctx, &rs);
    let b = reverse_ranges(ctx, &rs, 4);
    let c = reverse_notify(ctx, &rs);
    (a, b, c, ctx.now_ns())
}

#[test]
fn default_model_is_bitwise_historical_at_p1024() {
    let p = 1024;
    let cfg = SimConfig::default().with_seed(9).with_jitter(400);
    let mut hist = Historical::from(&cfg);
    let new = SimCluster::run(p, cfg, reversal_workload);
    let old = SimCluster::run_with_model(p, cfg, &mut hist, reversal_workload);
    assert_identical(&new, &old);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "P = 1024 balance is a release-mode test")]
fn default_model_is_bitwise_historical_for_balance_at_p1024() {
    let p = 1024;
    let cfg = SimConfig::default().with_seed(2012);
    let balance = |ctx: &forestbal_sim::SimCtx| {
        let mut f = fractal_forest(ctx, 2, 3);
        let before = f.num_global(ctx);
        f.balance(
            ctx,
            Condition::full(3),
            BalanceVariant::New,
            ReversalScheme::Notify,
        );
        (before, f.checksum(ctx), ctx.now_ns())
    };
    let mut hist = Historical::from(&cfg);
    let new = SimCluster::run(p, cfg, balance);
    let old = SimCluster::run_with_model(p, cfg, &mut hist, balance);
    assert_identical(&new, &old);
}

/// Debug-mode stand-in for the release-gated P = 1024 balance pin: same
/// workload and checks at a size plain `cargo test` can afford.
#[test]
fn default_model_is_bitwise_historical_for_balance_small() {
    let p = 24;
    let cfg = SimConfig::default().with_seed(5).with_jitter(900);
    let balance = |ctx: &forestbal_sim::SimCtx| {
        let mut f = fractal_forest(ctx, 2, 3);
        f.balance(
            ctx,
            Condition::full(3),
            BalanceVariant::New,
            ReversalScheme::Ranges(4),
        );
        (f.checksum(ctx), ctx.now_ns())
    };
    let mut hist = Historical::from(&cfg);
    let new = SimCluster::run(p, cfg, balance);
    let old = SimCluster::run_with_model(p, cfg, &mut hist, balance);
    assert_identical(&new, &old);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Hierarchical with intra == inter parameters is indistinguishable
    /// from flat: same virtual times, same results, for arbitrary
    /// latency/bandwidth and rank grouping. (Traffic-class counters
    /// differ by design — the hierarchical model still classifies.)
    fn hierarchical_degenerates_to_flat(
        p in 1usize..24,
        k in 1usize..16,
        latency in 0u64..5_000,
        // Integral and fractional rates; both classes share one carry
        // accumulator so the split cannot drift.
        rate_milli in 0u64..4_000,
        seed in any::<u64>(),
    ) {
        let ns_per_byte = rate_milli as f64 / 1000.0;
        let flat_cfg = SimConfig::builder()
            .latency_ns(latency)
            .ns_per_byte(ns_per_byte)
            .seed(seed)
            .jitter_ns(300)
            .build();
        let hier_cfg = flat_cfg.with_network(NetworkSpec::Hierarchical(HierarchicalParams {
            ranks_per_node: k,
            intra_latency_ns: latency,
            intra_ns_per_byte: ns_per_byte,
            inter_latency_ns: latency,
            inter_ns_per_byte: ns_per_byte,
        }));
        let flat = SimCluster::run(p, flat_cfg, reversal_workload);
        let hier = SimCluster::run(p, hier_cfg, reversal_workload);
        prop_assert_eq!(&flat.results, &hier.results);
        prop_assert_eq!(&flat.stats, &hier.stats);
        prop_assert_eq!(&flat.finish_ns, &hier.finish_ns);
        prop_assert_eq!(
            flat.net.p2p_messages + flat.net.collectives,
            hier.net.p2p_messages + hier.net.collectives
        );
    }
}
