//! The marker exchange under maximal jitter: partition markers and the
//! balanced forest must be *bit-identical* across delivery schedules.
//!
//! Jitter up to thousands of times the base latency reorders nearly every
//! message arrival, so 32 random `(seed, jitter_ns)` pairs sample widely
//! separated schedules. (The `forestbal-mc` crate complements this by
//! exploring *every* schedule exhaustively at small P.)

use forestbal_core::Condition;
use forestbal_forest::{BalanceVariant, ReversalScheme};
use forestbal_mesh::fractal::fractal_forest_2d;
use forestbal_mesh::fractal_forest;
use forestbal_sim::{SimCluster, SimConfig};
use proptest::prelude::*;

/// Balance the 2D fractal forest at P = 4 and digest the outcome: the
/// full marker array plus the global checksum, per rank.
fn digest_2d(cfg: SimConfig) -> Vec<(String, u64)> {
    SimCluster::run(4, cfg, |ctx| {
        let mut f = fractal_forest_2d(ctx, 1, 2);
        f.balance(
            ctx,
            Condition::full(2),
            BalanceVariant::New,
            ReversalScheme::Notify,
        );
        f.update_markers(ctx);
        (format!("{:?}", f.markers()), f.checksum(ctx))
    })
    .results
}

/// The same digest on the 3D fractal brick.
fn digest_3d(cfg: SimConfig) -> Vec<(String, u64)> {
    SimCluster::run(4, cfg, |ctx| {
        let mut f = fractal_forest(ctx, 1, 1);
        f.balance(
            ctx,
            Condition::full(3),
            BalanceVariant::New,
            ReversalScheme::Notify,
        );
        f.update_markers(ctx);
        (format!("{:?}", f.markers()), f.checksum(ctx))
    })
    .results
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// 32 random `(seed, jitter_ns)` pairs, 2D and 3D, against the
    /// jitter-free baseline.
    fn markers_bit_identical_under_maximal_jitter(
        seed in any::<u64>(),
        jitter_ns in 1_000u64..10_000_000,
    ) {
        let jittered = SimConfig::default().with_seed(seed).with_jitter(jitter_ns);
        prop_assert_eq!(digest_2d(SimConfig::default()), digest_2d(jittered));
        prop_assert_eq!(digest_3d(SimConfig::default()), digest_3d(jittered));
    }
}
