//! Differential tests for the tracing subsystem: the threaded `Cluster`
//! and the discrete-event `SimCluster` must record the *same trace* —
//! span tree, counters and histogram buckets — for the same algorithm;
//! only the timestamps differ (wall clock vs virtual time). And arming a
//! tracer must not perturb the simulation at all: results, communication
//! counters and virtual finish times stay bit-identical.

use forestbal_comm::{Cluster, Comm};
use forestbal_core::Condition;
use forestbal_forest::{BalanceVariant, ReversalScheme};
use forestbal_mesh::fractal_forest;
use forestbal_sim::{SimCluster, SimConfig};
use forestbal_trace::{TraceStructure, Tracer};
use proptest::prelude::*;

/// Balance the fractal forest with recording armed; return the checksum
/// plus the timestamp-free shape of the trace.
fn traced_balance<C: Comm>(
    ctx: &C,
    level: u8,
    variant: BalanceVariant,
    scheme: ReversalScheme,
) -> (u64, TraceStructure) {
    let mut f = fractal_forest(ctx, level, 3);
    ctx.barrier();
    let tracer = Tracer::begin(ctx.rank());
    f.balance(ctx, Condition::full(3), variant, scheme);
    let structure = tracer.finish().structure();
    (f.checksum(ctx), structure)
}

proptest! {
    // Each case runs a full threaded *and* simulated traced balance.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Span trees, counters and histogram buckets agree between runtimes
    /// for every variant and reversal scheme: the trace is a function of
    /// the algorithm, not of the runtime executing it.
    fn trace_structures_match_across_runtimes(
        p in 1usize..5,
        level in 1u8..3,
        variant_new in any::<bool>(),
        which in 0u8..3,
    ) {
        let variant = if variant_new { BalanceVariant::New } else { BalanceVariant::Old };
        let scheme = match which {
            0 => ReversalScheme::Naive,
            1 => ReversalScheme::Ranges(2),
            _ => ReversalScheme::Notify,
        };

        let threaded = Cluster::run(p, move |ctx| traced_balance(ctx, level, variant, scheme));
        let sim = SimCluster::run(p, SimConfig::default(), move |ctx| {
            traced_balance(ctx, level, variant, scheme)
        });
        prop_assert_eq!(&threaded.results, &sim.results);

        // Delivery jitter reorders message arrivals; counters and
        // histograms are order-free sums, so the trace shape must hold.
        let jittered = SimCluster::run(
            p,
            SimConfig::default().with_seed(level as u64).with_jitter(2_500),
            move |ctx| traced_balance(ctx, level, variant, scheme),
        );
        prop_assert_eq!(&threaded.results, &jittered.results);
    }
}

/// Recording must be a pure observer: with and without a tracer armed,
/// the simulated run produces bit-identical meshes, communication
/// counters (per-tag breakdown included) and virtual finish times.
#[test]
fn tracing_does_not_perturb_the_simulation() {
    let run = |traced: bool| {
        SimCluster::run(6, SimConfig::default(), move |ctx| {
            let mut f = fractal_forest(ctx, 2, 3);
            ctx.barrier();
            let tracer = traced.then(|| Tracer::begin(ctx.rank()));
            f.balance(
                ctx,
                Condition::full(3),
                BalanceVariant::New,
                ReversalScheme::Notify,
            );
            if let Some(t) = tracer {
                let rt = t.finish();
                assert!(!rt.events.is_empty(), "recording must actually record");
            }
            f.checksum(ctx)
        })
    };
    let plain = run(false);
    let traced = run(true);
    assert_eq!(plain.results, traced.results);
    assert_eq!(plain.stats, traced.stats);
    assert_eq!(plain.finish_ns, traced.finish_ns);
}

/// Same purity check on the threaded runtime: the mesh and the per-rank
/// communication counters do not change when recording is armed.
#[test]
fn tracing_does_not_perturb_the_threaded_runtime() {
    let run = |traced: bool| {
        Cluster::run(4, move |ctx| {
            let mut f = fractal_forest(ctx, 2, 3);
            let tracer = traced.then(|| Tracer::begin(ctx.rank()));
            f.balance(
                ctx,
                Condition::full(3),
                BalanceVariant::Old,
                ReversalScheme::Ranges(2),
            );
            drop(tracer);
            f.checksum(ctx)
        })
    };
    let plain = run(false);
    let traced = run(true);
    assert_eq!(plain.results, traced.results);
    assert_eq!(plain.stats, traced.stats);
}
