//! Userspace stackful coroutines — the backend that makes P ≈ 112k
//! virtual ranks fit in one process.
//!
//! The threaded backend parks one OS thread per simulated rank. That is
//! simple and portable, but each thread costs a kernel task and ~4 kernel
//! memory maps, so `kernel.pid_max` (32768 by default) and
//! `vm.max_map_count` (65530) cap it at a few thousand ranks — far short
//! of the paper's P = 112,128 weak-scaling point (Fig. 15). Since the
//! scheduler only ever runs **one rank at a time** (baton passing), the
//! threads were never buying parallelism, just suspendable stacks. This
//! module provides the suspendable stacks directly:
//!
//! * one `mmap(MAP_NORESERVE)` slab holds *all* fiber stacks — a single
//!   kernel memory map regardless of P, with pages faulted in lazily so
//!   an idle rank costs only the few stack pages it has actually written
//!   (measured ≈ 1–3 pages per rank for the balance workloads);
//! * a 20-instruction `global_asm!` context switch saves the sysv64
//!   callee-saved registers and swaps `rsp` — no syscalls, no signal
//!   masks, ~2 ns per switch vs. ~2 µs for a thread handoff;
//! * when the kernel's map budget allows (small/medium P), the lowest
//!   page of every stack is `mprotect(PROT_NONE)`d so overflow faults
//!   loudly. At very large P guard pages would exhaust
//!   `vm.max_map_count` (each splits the slab mapping), so they are
//!   skipped — per-rank stack depth does not grow with P, which is why
//!   the guarded CI smoke at P = 8192 bounds the unguarded 112k run.
//!
//! The pool is deliberately type-agnostic: bodies are `FnOnce()`
//! closures, and all rank⇄scheduler message passing lives in the runtime
//! module's mailboxes. Panics unwind normally off a fiber stack into the
//! `catch_unwind` at the body's base (every frame below the catch is a
//! Rust frame with unwind info).
//!
//! Only x86_64 Linux is supported; [`supported`] reports availability and
//! `Backend::Auto` falls back to threads elsewhere.

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub(crate) use imp::supported;
#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
pub(crate) use imp::FiberPool;

#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
pub(crate) use stub::supported;
#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
pub(crate) use stub::FiberPool;

#[cfg(all(target_arch = "x86_64", target_os = "linux"))]
mod imp {
    use std::arch::global_asm;
    use std::cell::Cell;

    /// Is the fiber backend available on this platform? (This module only
    /// compiles on x86_64 Linux, so: yes.)
    pub(crate) fn supported() -> bool {
        true
    }

    // The context switch. `rdi` = where to store the suspending context's
    // stack pointer, `rsi` = the stack pointer to resume. Everything the
    // sysv64 ABI requires a callee to preserve is pushed around the swap;
    // caller-saved state is dead across any call, so `ret` on the resumed
    // stack continues that context as if its own `forestbal_fiber_switch`
    // call had returned.
    //
    // `forestbal_fiber_boot` is the entry shim a fresh stack "returns"
    // into: the seeded frame placed the payload pointer in the `rbp` slot,
    // so boot moves it to `rdi`, clears the frame pointer (terminating
    // backtraces), fixes alignment (rsp ≡ 0 mod 16 before `call`, hence
    // ≡ 8 at the callee's first instruction, as the ABI demands) and calls
    // the Rust entry, which never returns.
    global_asm!(
        ".text",
        ".balign 16",
        ".globl forestbal_fiber_switch",
        "forestbal_fiber_switch:",
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "mov [rdi], rsp",
        "mov rsp, rsi",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
        ".balign 16",
        ".globl forestbal_fiber_boot",
        "forestbal_fiber_boot:",
        "mov rdi, rbp",
        "xor ebp, ebp",
        "sub rsp, 8",
        "call forestbal_fiber_entry",
        "ud2",
    );

    extern "sysv64" {
        fn forestbal_fiber_switch(save_into: *mut *mut u8, resume_from: *mut u8);
        fn forestbal_fiber_boot();
    }

    // Raw mmap/mprotect/munmap through the C runtime std already links.
    // `std::alloc` would commit the whole slab's accounting eagerly and
    // cannot express MAP_NORESERVE or PROT_NONE guards.
    extern "C" {
        fn mmap(
            addr: *mut core::ffi::c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut core::ffi::c_void;
        fn munmap(addr: *mut core::ffi::c_void, len: usize) -> i32;
        fn mprotect(addr: *mut core::ffi::c_void, len: usize, prot: i32) -> i32;
    }

    const PROT_NONE: i32 = 0;
    const PROT_READ_WRITE: i32 = 0x1 | 0x2;
    const MAP_PRIVATE_ANON_NORESERVE: i32 = 0x02 | 0x20 | 0x4000;
    const MAP_FAILED: *mut core::ffi::c_void = usize::MAX as *mut core::ffi::c_void;
    const PAGE: usize = 4096;

    /// What the boot shim hands to `forestbal_fiber_entry`.
    struct FiberPayload {
        pool: *const FiberPool,
        index: usize,
        body: Option<Box<dyn FnOnce()>>,
    }

    /// The Rust side of a fiber's first activation. Runs the body, marks
    /// the fiber finished, and switches back to the scheduler for the
    /// last time. Must never return (there is no frame to return to).
    #[no_mangle]
    unsafe extern "sysv64" fn forestbal_fiber_entry(payload: *mut FiberPayload) -> ! {
        let (pool, index) = {
            let p = &mut *payload;
            let body = p.body.take().expect("fiber booted twice");
            body();
            (p.pool, p.index)
        };
        let pool = &*pool;
        pool.slots[index].finished.set(true);
        // Final switch out. The scheduler never resumes a finished fiber,
        // so the context saved here is dead; abort if it ever runs.
        forestbal_fiber_switch(pool.slots[index].rsp.as_ptr(), pool.sched_rsp.get());
        std::process::abort();
    }

    struct Slot {
        /// Saved stack pointer while the fiber is suspended.
        rsp: Cell<*mut u8>,
        started: Cell<bool>,
        finished: Cell<bool>,
        /// Boxed so the payload's address is stable; `None` once booted
        /// or never spawned.
        payload: Cell<Option<Box<FiberPayload>>>,
    }

    /// A fixed-size pool of lazily-materialized fiber stacks plus the
    /// scheduler's saved context. See the module docs for the design.
    pub(crate) struct FiberPool {
        slab: *mut u8,
        slab_len: usize,
        stack_size: usize,
        guarded: bool,
        sched_rsp: Cell<*mut u8>,
        slots: Vec<Slot>,
    }

    impl FiberPool {
        /// Reserve stacks for `count` fibers of `stack_size` bytes each
        /// (rounded up to whole pages, minimum 64 KiB). Memory is only
        /// reserved, not committed: untouched stacks cost nothing.
        pub(crate) fn new(count: usize, stack_size: usize) -> FiberPool {
            let stack_size = stack_size.max(64 * 1024).next_multiple_of(PAGE);
            let slab_len = count
                .checked_mul(stack_size)
                .expect("fiber slab size overflows");
            let slab = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    slab_len,
                    PROT_READ_WRITE,
                    MAP_PRIVATE_ANON_NORESERVE,
                    -1,
                    0,
                )
            };
            assert!(
                !std::ptr::eq(slab, MAP_FAILED),
                "cannot reserve {slab_len} bytes of fiber stacks ({count} ranks × \
                 {stack_size} B); lower SimConfig::stack_size or P"
            );
            let slab = slab as *mut u8;
            let guarded = guard_budget_allows(count);
            if guarded {
                for i in 0..count {
                    let guard = unsafe { slab.add(i * stack_size) };
                    let rc = unsafe { mprotect(guard as *mut _, PAGE, PROT_NONE) };
                    assert_eq!(rc, 0, "cannot protect fiber guard page {i}");
                }
            }
            FiberPool {
                slab,
                slab_len,
                stack_size,
                guarded,
                sched_rsp: Cell::new(std::ptr::null_mut()),
                slots: (0..count)
                    .map(|_| Slot {
                        rsp: Cell::new(std::ptr::null_mut()),
                        started: Cell::new(false),
                        finished: Cell::new(false),
                        payload: Cell::new(None),
                    })
                    .collect(),
            }
        }

        /// Are stack-overflow guard pages armed for this pool?
        #[allow(dead_code)]
        pub(crate) fn guarded(&self) -> bool {
            self.guarded
        }

        /// Install fiber `index`'s body. The `'static` bound is a lie the
        /// runtime is licensed to tell: callers must ensure everything the
        /// body borrows outlives the pool (the sim runtime keeps the pool
        /// on the stack frame that owns all borrowed state and drops it
        /// before that frame unwinds), and that dropping an un-run body is
        /// harmless (dropping `&T` captures is).
        pub(crate) unsafe fn spawn_unchecked(&self, index: usize, body: Box<dyn FnOnce() + '_>) {
            let body: Box<dyn FnOnce() + 'static> = std::mem::transmute(body);
            self.slots[index].payload.set(Some(Box::new(FiberPayload {
                pool: self,
                index,
                body: Some(body),
            })));
        }

        pub(crate) fn is_started(&self, index: usize) -> bool {
            self.slots[index].started.get()
        }

        pub(crate) fn is_finished(&self, index: usize) -> bool {
            self.slots[index].finished.get()
        }

        /// Transfer control to fiber `index` (booting it on first use);
        /// returns when the fiber yields or finishes. Scheduler side only.
        pub(crate) fn switch_into(&self, index: usize) {
            let slot = &self.slots[index];
            debug_assert!(!slot.finished.get(), "resumed a finished fiber");
            if !slot.started.replace(true) {
                // The slot keeps owning the payload box (it is freed at
                // pool drop); the fiber receives a raw alias to consume
                // the body through. Boxed contents do not move when the
                // box does, so the pointer stays valid.
                let mut payload = slot.payload.take().expect("fiber has no body");
                let payload_ptr: *mut FiberPayload = &mut *payload;
                slot.payload.set(Some(payload));
                slot.rsp.set(unsafe { self.seed_stack(index, payload_ptr) });
            }
            unsafe { forestbal_fiber_switch(self.sched_rsp.as_ptr(), slot.rsp.get()) };
        }

        /// Suspend the currently running fiber `index` and return control
        /// to the scheduler. Fiber side only (called from rank code).
        pub(crate) fn yield_out(&self, index: usize) {
            unsafe { forestbal_fiber_switch(self.slots[index].rsp.as_ptr(), self.sched_rsp.get()) };
        }

        /// Lay out the initial frame `forestbal_fiber_switch` restores on
        /// first entry: callee-saved zeros, the payload pointer in the
        /// `rbp` slot, and `forestbal_fiber_boot` as the return address.
        unsafe fn seed_stack(&self, index: usize, payload: *mut FiberPayload) -> *mut u8 {
            let top = self.slab.add((index + 1) * self.stack_size);
            debug_assert_eq!(top as usize % 16, 0, "stack top must be 16-aligned");
            let words = top as *mut u64;
            let base = words.sub(8);
            for i in 0..5 {
                base.add(i).write(0); // r15, r14, r13, r12, rbx
            }
            base.add(5).write(payload as u64); // rbp slot → boot's rdi
            base.add(6)
                .write(forestbal_fiber_boot as *const () as usize as u64); // ret target
            base.add(7).write(0); // scratch above boot's frame
            base as *mut u8
        }
    }

    impl Drop for FiberPool {
        fn drop(&mut self) {
            // Un-booted payloads (shutdown before start) drop here, while
            // everything they borrow is still alive.
            for slot in &self.slots {
                drop(slot.payload.take());
            }
            let rc = unsafe { munmap(self.slab as *mut _, self.slab_len) };
            debug_assert_eq!(rc, 0, "munmap of the fiber slab failed");
        }
    }

    /// Guard pages split the slab mapping (~2 extra kernel maps each), so
    /// they are only armed when `vm.max_map_count` has room. Per-rank
    /// stack depth is P-independent, so guarded smaller runs bound the
    /// unguarded huge ones.
    fn guard_budget_allows(count: usize) -> bool {
        let max: u64 = std::fs::read_to_string("/proc/sys/vm/max_map_count")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(65530);
        let used = std::fs::read_to_string("/proc/self/maps")
            .map(|m| m.lines().count() as u64)
            .unwrap_or(0);
        used + 2 * count as u64 + 512 <= max
    }
}

#[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
mod stub {
    /// Fiber backend availability: not on this platform.
    pub(crate) fn supported() -> bool {
        false
    }

    /// Unavailable on this platform; `Backend::Auto` selects threads and
    /// an explicit `Backend::Fiber` panics before construction, so none
    /// of these methods can be reached.
    pub(crate) struct FiberPool;

    #[allow(dead_code)]
    impl FiberPool {
        pub(crate) fn new(_count: usize, _stack_size: usize) -> FiberPool {
            unreachable!("fiber backend is only supported on x86_64 Linux")
        }
        pub(crate) fn guarded(&self) -> bool {
            false
        }
        pub(crate) unsafe fn spawn_unchecked(&self, _index: usize, _body: Box<dyn FnOnce() + '_>) {
            unreachable!()
        }
        pub(crate) fn is_started(&self, _index: usize) -> bool {
            unreachable!()
        }
        pub(crate) fn is_finished(&self, _index: usize) -> bool {
            unreachable!()
        }
        pub(crate) fn switch_into(&self, _index: usize) {
            unreachable!()
        }
        pub(crate) fn yield_out(&self, _index: usize) {
            unreachable!()
        }
    }
}
