//! Pluggable network cost models: the [`NetworkModel`] trait and its
//! three first-party implementations.
//!
//! The simulator used to hard-code a flat `α + β·bytes` charge for every
//! message and `⌈log₂P⌉·α + β·total` for every collective. Real machines
//! are neither flat nor contention-free: ranks on one node talk through
//! shared memory, nodes share switch links, and concurrent transfers on a
//! link split its throughput — which is exactly the regime where the
//! paper's `Notify` reversal wins over allgather-based schemes (§V,
//! Fig. 15). This module makes the cost model a first-class, swappable
//! object:
//!
//! * [`FlatAlphaBeta`] — the historical model, now with deterministic
//!   fractional-nanosecond accumulation (no per-message `f64` rounding
//!   drift). The default; reproduces the previous hard-coded virtual
//!   times bit-identically for integral `ns_per_byte`.
//! * [`Hierarchical`] — node-local vs. remote costs: ranks are grouped
//!   into nodes of `ranks_per_node`, intra-node and inter-node messages
//!   pay distinct `α`/`β`, and collectives decompose their
//!   `⌈log₂P⌉`-level tree into intra-node then inter-node levels. With
//!   equal intra/inter parameters it degenerates to [`FlatAlphaBeta`]
//!   bit-identically (shared carry accumulator, exact level split).
//! * [`FatTree`] — a two-tier fat tree (node ⇄ edge switch ⇄ core) with
//!   **per-link shared-bandwidth contention**: every transfer occupies
//!   each link on its route for `bytes · β_link`, and a transfer finding
//!   a link busy queues behind it (the dslab-network shared-throughput
//!   idea in deterministic, event-free form: `k` simultaneous transfers
//!   on one link finish no earlier than fair `B/k` sharing predicts for
//!   the aggregate). Queueing delays are counted in [`NetStats`].
//!
//! # The model contract
//!
//! Implementations must be **deterministic** (equal call sequences give
//! equal answers — no wall clock, no randomness) and **monotone**
//! (arrival/completion times never precede the send/start times they are
//! derived from). Internal state (carry accumulators, link occupancy) is
//! allowed — the scheduler calls the model in a deterministic order — but
//! virtual time must never run backwards. Custom models plug in through
//! [`crate::SimCluster::run_with_model`].

/// Contention and traffic-class counters accumulated by a
/// [`NetworkModel`] over one run. All zeros for contention-free models
/// unless noted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Point-to-point messages costed.
    pub p2p_messages: u64,
    /// Messages between two ranks of the same node (hierarchical and
    /// fat-tree models; flat counts everything here).
    pub intra_node_messages: u64,
    /// Messages that crossed a node boundary within one pod.
    pub inter_node_messages: u64,
    /// Messages that crossed a pod boundary (fat-tree core traffic).
    pub inter_pod_messages: u64,
    /// Link occupations that had to queue behind an earlier transfer.
    pub link_waits: u64,
    /// Total virtual time transfers spent queued on busy links.
    pub link_wait_ns: u64,
    /// Largest single queueing delay.
    pub max_link_wait_ns: u64,
    /// Collectives costed.
    pub collectives: u64,
}

impl NetStats {
    /// Componentwise sum (`max` for the max field), for aggregating over
    /// repetitions.
    pub fn merge(&self, other: &NetStats) -> NetStats {
        NetStats {
            p2p_messages: self.p2p_messages + other.p2p_messages,
            intra_node_messages: self.intra_node_messages + other.intra_node_messages,
            inter_node_messages: self.inter_node_messages + other.inter_node_messages,
            inter_pod_messages: self.inter_pod_messages + other.inter_pod_messages,
            link_waits: self.link_waits + other.link_waits,
            link_wait_ns: self.link_wait_ns + other.link_wait_ns,
            max_link_wait_ns: self.max_link_wait_ns.max(other.max_link_wait_ns),
            collectives: self.collectives + other.collectives,
        }
    }
}

/// A swappable virtual-time cost model for the simulator's network.
///
/// See the [module docs](self) for the determinism/monotonicity contract
/// and the built-in implementations.
pub trait NetworkModel {
    /// Virtual arrival time of a `bytes`-byte message from `src` to `dst`
    /// handed to the network at `send_ns`. Must return a value
    /// `>= send_ns`; jitter and FIFO (non-overtaking) adjustments are
    /// applied by the scheduler *after* this call.
    fn message_arrival_ns(&mut self, src: usize, dst: usize, bytes: usize, send_ns: u64) -> u64;

    /// Virtual completion time of an allgather over `size` ranks moving
    /// `total_bytes` in aggregate, whose last participant entered at
    /// `start_ns`. Must return a value `>= start_ns`.
    fn collective_done_ns(&mut self, size: usize, total_bytes: usize, start_ns: u64) -> u64;

    /// Counters accumulated so far.
    fn net_stats(&self) -> NetStats;
}

/// `⌈log₂ size⌉`: depth of the recursive-doubling collective tree.
#[inline]
fn tree_depth(size: usize) -> u32 {
    usize::BITS - size.saturating_sub(1).leading_zeros()
}

/// Convert a `ns/byte` rate into integer picoseconds per byte. Rates
/// below 0.0005 ns/B (2 TB/s) truncate to a free link.
fn ps_per_byte(ns_per_byte: f64) -> u64 {
    (ns_per_byte * 1000.0).round().max(0.0) as u64
}

/// Byte-transfer accumulator in integer picoseconds: whole nanoseconds
/// are charged immediately and the sub-nanosecond remainder carries into
/// the next transfer, so long runs never drift from the exact rational
/// total (the historical per-message `f64::round` drifted by up to half
/// a nanosecond per message).
#[derive(Clone, Copy, Debug, Default)]
struct PsCarry {
    carry_ps: u64,
}

impl PsCarry {
    /// Nanoseconds to charge for `bytes` at `rate_ps` picoseconds/byte.
    #[inline]
    fn transfer_ns(&mut self, bytes: usize, rate_ps: u64) -> u64 {
        let ps = bytes as u64 * rate_ps + self.carry_ps;
        self.carry_ps = ps % 1000;
        ps / 1000
    }
}

/// The flat `α + β·bytes` model: every pair of ranks is one latency and
/// one bandwidth apart, collectives are a `⌈log₂P⌉`-deep latency tree
/// plus the payload over the wire once. This is the default model and
/// reproduces the simulator's historical virtual times bit-identically
/// whenever `ns_per_byte` is an integral number of nanoseconds (the
/// fractional case now accumulates deterministically instead of rounding
/// per message).
#[derive(Clone, Copy, Debug)]
pub struct FlatAlphaBeta {
    latency_ns: u64,
    rate_ps: u64,
    carry: PsCarry,
    stats: NetStats,
}

impl FlatAlphaBeta {
    /// A flat model with the given per-message latency and per-byte cost.
    pub fn new(latency_ns: u64, ns_per_byte: f64) -> FlatAlphaBeta {
        FlatAlphaBeta {
            latency_ns,
            rate_ps: ps_per_byte(ns_per_byte),
            carry: PsCarry::default(),
            stats: NetStats::default(),
        }
    }
}

impl NetworkModel for FlatAlphaBeta {
    fn message_arrival_ns(&mut self, _src: usize, _dst: usize, bytes: usize, send_ns: u64) -> u64 {
        self.stats.p2p_messages += 1;
        self.stats.intra_node_messages += 1;
        send_ns + self.latency_ns + self.carry.transfer_ns(bytes, self.rate_ps)
    }

    fn collective_done_ns(&mut self, size: usize, total_bytes: usize, start_ns: u64) -> u64 {
        self.stats.collectives += 1;
        start_ns
            + tree_depth(size) as u64 * self.latency_ns
            + self.carry.transfer_ns(total_bytes, self.rate_ps)
    }

    fn net_stats(&self) -> NetStats {
        self.stats
    }
}

/// Parameters of the [`Hierarchical`] node-local/remote model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HierarchicalParams {
    /// Ranks per node; ranks `[n·K, (n+1)·K)` share node `n`.
    pub ranks_per_node: usize,
    /// Latency of an intra-node (shared-memory) message.
    pub intra_latency_ns: u64,
    /// Per-byte cost within a node.
    pub intra_ns_per_byte: f64,
    /// Latency of an inter-node message.
    pub inter_latency_ns: u64,
    /// Per-byte cost between nodes.
    pub inter_ns_per_byte: f64,
}

impl Default for HierarchicalParams {
    /// A 12-core node (the paper's Cray XT5 has 12 ranks/node) with
    /// 10 GB/s shared memory at 200 ns, and the flat model's 1 GB/s at
    /// 1 µs between nodes.
    fn default() -> Self {
        HierarchicalParams {
            ranks_per_node: 12,
            intra_latency_ns: 200,
            intra_ns_per_byte: 0.1,
            inter_latency_ns: 1_000,
            inter_ns_per_byte: 1.0,
        }
    }
}

/// Two-level node-local vs. remote cost model (no link contention).
///
/// Collectives split their `⌈log₂P⌉` tree levels into
/// `⌈log₂(nodes)⌉` inter-node levels (clamped to the total) and the rest
/// intra-node, so reductions price hops by where they happen. The byte
/// carry accumulator is shared between the two classes, which makes the
/// degenerate case (intra = inter parameters) bit-identical to
/// [`FlatAlphaBeta`] — a property pinned by proptest.
#[derive(Clone, Copy, Debug)]
pub struct Hierarchical {
    k: usize,
    intra_latency_ns: u64,
    intra_rate_ps: u64,
    inter_latency_ns: u64,
    inter_rate_ps: u64,
    carry: PsCarry,
    stats: NetStats,
}

impl Hierarchical {
    /// A hierarchical model with the given parameters.
    pub fn new(p: HierarchicalParams) -> Hierarchical {
        assert!(p.ranks_per_node >= 1, "a node holds at least one rank");
        Hierarchical {
            k: p.ranks_per_node,
            intra_latency_ns: p.intra_latency_ns,
            intra_rate_ps: ps_per_byte(p.intra_ns_per_byte),
            inter_latency_ns: p.inter_latency_ns,
            inter_rate_ps: ps_per_byte(p.inter_ns_per_byte),
            carry: PsCarry::default(),
            stats: NetStats::default(),
        }
    }
}

impl NetworkModel for Hierarchical {
    fn message_arrival_ns(&mut self, src: usize, dst: usize, bytes: usize, send_ns: u64) -> u64 {
        self.stats.p2p_messages += 1;
        let (alpha, rate) = if src / self.k == dst / self.k {
            self.stats.intra_node_messages += 1;
            (self.intra_latency_ns, self.intra_rate_ps)
        } else {
            self.stats.inter_node_messages += 1;
            (self.inter_latency_ns, self.inter_rate_ps)
        };
        send_ns + alpha + self.carry.transfer_ns(bytes, rate)
    }

    fn collective_done_ns(&mut self, size: usize, total_bytes: usize, start_ns: u64) -> u64 {
        self.stats.collectives += 1;
        let total_depth = tree_depth(size) as u64;
        let nodes = size.div_ceil(self.k);
        let inter_depth = (tree_depth(nodes) as u64).min(total_depth);
        let intra_depth = total_depth - inter_depth;
        let rate = if inter_depth > 0 {
            self.inter_rate_ps
        } else {
            self.intra_rate_ps
        };
        start_ns
            + intra_depth * self.intra_latency_ns
            + inter_depth * self.inter_latency_ns
            + self.carry.transfer_ns(total_bytes, rate)
    }

    fn net_stats(&self) -> NetStats {
        self.stats
    }
}

/// Parameters of the [`FatTree`] contended-topology model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FatTreeParams {
    /// Ranks per node (share memory; their traffic never touches links).
    pub ranks_per_node: usize,
    /// Nodes per pod (share one edge switch).
    pub nodes_per_pod: usize,
    /// Latency of an intra-node message.
    pub intra_latency_ns: u64,
    /// Per-byte cost within a node.
    pub intra_ns_per_byte: f64,
    /// Latency of each switch hop (node→edge, edge→core, ...).
    pub hop_latency_ns: u64,
    /// Per-byte occupancy each transfer charges on every link it
    /// traverses — the shared resource concurrent transfers queue on.
    pub link_ns_per_byte: f64,
}

impl Default for FatTreeParams {
    /// 12-rank nodes, 16 nodes per edge switch, 20 GB/s shared memory,
    /// 500 ns hops, 2 GB/s links.
    fn default() -> Self {
        FatTreeParams {
            ranks_per_node: 12,
            nodes_per_pod: 16,
            intra_latency_ns: 200,
            intra_ns_per_byte: 0.05,
            hop_latency_ns: 500,
            link_ns_per_byte: 0.5,
        }
    }
}

/// A two-tier fat tree with per-link shared-bandwidth contention.
///
/// Topology: `ranks_per_node` ranks per node, `nodes_per_pod` nodes per
/// edge switch ("pod"), all pods joined by a core layer. Each node has a
/// full-duplex up/down link to its edge switch and each pod a full-duplex
/// up/down link to the core. A message's route:
///
/// * same node — shared memory, no links (`α_intra + β_intra·bytes`);
/// * same pod — node uplink, edge switch, node downlink (2 hops);
/// * cross pod — node uplink, pod uplink, core, pod downlink, node
///   downlink (4 hops).
///
/// Contention: each traversed link is *occupied* for
/// `bytes · link_ns_per_byte`; a transfer arriving while the link is
/// occupied queues behind it (FIFO in deterministic send order). This is
/// the discrete, event-free counterpart of dslab-network's
/// shared-throughput model: `k` transfers crowding one link drain at an
/// aggregate `B/k` effective bandwidth, and the queueing delays appear in
/// [`NetStats::link_wait_ns`].
///
/// Collectives decompose the `⌈log₂P⌉` doubling tree into intra-node,
/// intra-pod and cross-pod levels; level `l` (of ascending payload
/// `total/2^(depth-l)`) charges its bytes at the link rate scaled by the
/// number of ranks sharing the traversed link class (`K` for node links,
/// `K·M` for pod links) — collectives synchronize all ranks, so the
/// shared links see the whole class's traffic at once.
#[derive(Clone, Debug)]
pub struct FatTree {
    k: usize,
    m: usize,
    intra_latency_ns: u64,
    intra_rate_ps: u64,
    hop_latency_ps: u64,
    link_rate_ps: u64,
    carry: PsCarry,
    /// Per-link busy-until times in picoseconds, grown on demand.
    node_up_ps: Vec<u64>,
    node_down_ps: Vec<u64>,
    pod_up_ps: Vec<u64>,
    pod_down_ps: Vec<u64>,
    stats: NetStats,
}

impl FatTree {
    /// A fat-tree model with the given parameters.
    pub fn new(p: FatTreeParams) -> FatTree {
        assert!(p.ranks_per_node >= 1, "a node holds at least one rank");
        assert!(p.nodes_per_pod >= 1, "a pod holds at least one node");
        FatTree {
            k: p.ranks_per_node,
            m: p.nodes_per_pod,
            intra_latency_ns: p.intra_latency_ns,
            intra_rate_ps: ps_per_byte(p.intra_ns_per_byte),
            hop_latency_ps: p.hop_latency_ns * 1000,
            link_rate_ps: ps_per_byte(p.link_ns_per_byte),
            carry: PsCarry::default(),
            node_up_ps: Vec::new(),
            node_down_ps: Vec::new(),
            pod_up_ps: Vec::new(),
            pod_down_ps: Vec::new(),
            stats: NetStats::default(),
        }
    }

    /// Occupy one link from `t_ps`, queueing behind earlier transfers.
    /// Returns the time the transfer clears the link.
    fn occupy(busy: &mut Vec<u64>, idx: usize, t_ps: u64, tx_ps: u64, stats: &mut NetStats) -> u64 {
        if busy.len() <= idx {
            busy.resize(idx + 1, 0);
        }
        let start = t_ps.max(busy[idx]);
        if start > t_ps {
            let wait = start - t_ps;
            stats.link_waits += 1;
            stats.link_wait_ns += wait / 1000;
            stats.max_link_wait_ns = stats.max_link_wait_ns.max(wait / 1000);
        }
        busy[idx] = start + tx_ps;
        busy[idx]
    }
}

impl NetworkModel for FatTree {
    fn message_arrival_ns(&mut self, src: usize, dst: usize, bytes: usize, send_ns: u64) -> u64 {
        self.stats.p2p_messages += 1;
        let (sn, dn) = (src / self.k, dst / self.k);
        if sn == dn {
            self.stats.intra_node_messages += 1;
            return send_ns
                + self.intra_latency_ns
                + self.carry.transfer_ns(bytes, self.intra_rate_ps);
        }
        let (sp, dp) = (sn / self.m, dn / self.m);
        let tx_ps = bytes as u64 * self.link_rate_ps;
        let mut t = send_ns * 1000 + self.hop_latency_ps;
        t = Self::occupy(&mut self.node_up_ps, sn, t, tx_ps, &mut self.stats);
        if sp == dp {
            self.stats.inter_node_messages += 1;
        } else {
            self.stats.inter_pod_messages += 1;
            t += self.hop_latency_ps;
            t = Self::occupy(&mut self.pod_up_ps, sp, t, tx_ps, &mut self.stats);
            t += self.hop_latency_ps;
            t = Self::occupy(&mut self.pod_down_ps, dp, t, tx_ps, &mut self.stats);
        }
        t += self.hop_latency_ps;
        t = Self::occupy(&mut self.node_down_ps, dn, t, tx_ps, &mut self.stats);
        t / 1000
    }

    fn collective_done_ns(&mut self, size: usize, total_bytes: usize, start_ns: u64) -> u64 {
        self.stats.collectives += 1;
        let depth = tree_depth(size);
        let nodes = size.div_ceil(self.k);
        let pods = nodes.div_ceil(self.m);
        let pod_depth = tree_depth(pods).min(depth);
        let node_depth = tree_depth(nodes).min(depth) - pod_depth;
        let intra_depth = depth - pod_depth - node_depth;
        let mut cost_ps = 0u64;
        for l in 0..depth {
            // Doubling level l moves total/2^(depth-l) bytes per rank.
            let b = (total_bytes as u64) >> (depth - l);
            cost_ps += if l < intra_depth {
                self.intra_latency_ns * 1000 + b * self.intra_rate_ps
            } else if l < intra_depth + node_depth {
                2 * self.hop_latency_ps + b * self.link_rate_ps * self.k as u64
            } else {
                4 * self.hop_latency_ps + b * self.link_rate_ps * (self.k * self.m) as u64
            };
        }
        start_ns + cost_ps / 1000
    }

    fn net_stats(&self) -> NetStats {
        self.stats
    }
}

/// Declarative, `Copy` description of a network model — the form a model
/// takes inside [`crate::SimConfig`]. [`NetworkSpec::build`] instantiates
/// the stateful model at the start of each run, so two runs of one config
/// never share carry or link-occupancy state.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum NetworkSpec {
    /// [`FlatAlphaBeta`] using the config's `latency_ns`/`ns_per_byte`.
    #[default]
    Flat,
    /// [`Hierarchical`] with the given parameters.
    Hierarchical(HierarchicalParams),
    /// [`FatTree`] with the given parameters.
    FatTree(FatTreeParams),
}

impl NetworkSpec {
    /// Instantiate the model this spec describes. `latency_ns` and
    /// `ns_per_byte` are the config's flat parameters, used by
    /// [`NetworkSpec::Flat`].
    pub fn build(&self, latency_ns: u64, ns_per_byte: f64) -> NetModel {
        match *self {
            NetworkSpec::Flat => NetModel::Flat(FlatAlphaBeta::new(latency_ns, ns_per_byte)),
            NetworkSpec::Hierarchical(p) => NetModel::Hierarchical(Hierarchical::new(p)),
            NetworkSpec::FatTree(p) => NetModel::FatTree(FatTree::new(p)),
        }
    }
}

/// A built-in model instantiated from a [`NetworkSpec`] (enum dispatch so
/// the scheduler's default path stays allocation-free).
#[derive(Clone, Debug)]
pub enum NetModel {
    /// Flat α + β·bytes.
    Flat(FlatAlphaBeta),
    /// Node-local vs. remote.
    Hierarchical(Hierarchical),
    /// Contended fat tree.
    FatTree(FatTree),
}

impl NetworkModel for NetModel {
    fn message_arrival_ns(&mut self, src: usize, dst: usize, bytes: usize, send_ns: u64) -> u64 {
        match self {
            NetModel::Flat(m) => m.message_arrival_ns(src, dst, bytes, send_ns),
            NetModel::Hierarchical(m) => m.message_arrival_ns(src, dst, bytes, send_ns),
            NetModel::FatTree(m) => m.message_arrival_ns(src, dst, bytes, send_ns),
        }
    }

    fn collective_done_ns(&mut self, size: usize, total_bytes: usize, start_ns: u64) -> u64 {
        match self {
            NetModel::Flat(m) => m.collective_done_ns(size, total_bytes, start_ns),
            NetModel::Hierarchical(m) => m.collective_done_ns(size, total_bytes, start_ns),
            NetModel::FatTree(m) => m.collective_done_ns(size, total_bytes, start_ns),
        }
    }

    fn net_stats(&self) -> NetStats {
        match self {
            NetModel::Flat(m) => m.net_stats(),
            NetModel::Hierarchical(m) => m.net_stats(),
            NetModel::FatTree(m) => m.net_stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_matches_historical_costs() {
        let mut m = FlatAlphaBeta::new(1_000, 1.0);
        assert_eq!(m.message_arrival_ns(0, 1, 0, 0), 1_000);
        assert_eq!(m.message_arrival_ns(0, 1, 500, 0), 1_500);
        assert_eq!(m.collective_done_ns(1, 0, 0), 0);
        assert_eq!(m.collective_done_ns(2, 0, 0), 1_000);
        assert_eq!(m.collective_done_ns(1024, 0, 0), 10_000);
        assert_eq!(m.collective_done_ns(1025, 0, 0), 11_000);
    }

    #[test]
    fn fractional_rate_accumulates_without_drift() {
        // β = 0.25 ns/B, 4000 one-byte messages: exactly 1000 ns of
        // transfer in total (the old per-message round() charged 0 each).
        let mut m = FlatAlphaBeta::new(0, 0.25);
        let total: u64 = (0..4000).map(|_| m.message_arrival_ns(0, 1, 1, 0)).sum();
        assert_eq!(total, 1_000);
    }

    #[test]
    fn hierarchical_distinguishes_node_boundaries() {
        let mut m = Hierarchical::new(HierarchicalParams {
            ranks_per_node: 4,
            intra_latency_ns: 100,
            intra_ns_per_byte: 0.0,
            inter_latency_ns: 1_000,
            inter_ns_per_byte: 0.0,
        });
        assert_eq!(m.message_arrival_ns(0, 3, 0, 0), 100); // same node
        assert_eq!(m.message_arrival_ns(3, 4, 0, 0), 1_000); // neighbors, different node
        assert_eq!(m.net_stats().intra_node_messages, 1);
        assert_eq!(m.net_stats().inter_node_messages, 1);
    }

    #[test]
    fn hierarchical_collective_depth_is_exact() {
        // Level split must sum to ⌈log₂P⌉ for every (P, K), so the
        // degenerate case stays bit-identical to flat.
        for p in 1..200usize {
            for k in [1usize, 2, 3, 4, 7, 12, 64] {
                let mut h = Hierarchical::new(HierarchicalParams {
                    ranks_per_node: k,
                    intra_latency_ns: 1_000,
                    intra_ns_per_byte: 1.0,
                    inter_latency_ns: 1_000,
                    inter_ns_per_byte: 1.0,
                });
                let mut f = FlatAlphaBeta::new(1_000, 1.0);
                assert_eq!(
                    h.collective_done_ns(p, 123, 7),
                    f.collective_done_ns(p, 123, 7),
                    "P={p} K={k}"
                );
            }
        }
    }

    #[test]
    fn fat_tree_contention_queues_transfers() {
        let p = FatTreeParams {
            ranks_per_node: 2,
            nodes_per_pod: 2,
            intra_latency_ns: 100,
            intra_ns_per_byte: 0.0,
            hop_latency_ns: 0,
            link_ns_per_byte: 1.0,
        };
        let mut m = FatTree::new(p);
        // Two messages leave node 0 at t = 0; the second queues on the
        // node uplink behind the first.
        let a = m.message_arrival_ns(0, 2, 1_000, 0);
        let b = m.message_arrival_ns(1, 2, 1_000, 0);
        assert_eq!(a, 2_000); // uplink 1000 + downlink 1000
        assert!(b > a, "second transfer must queue ({b} <= {a})");
        // Queued once, on the shared uplink; it reaches the downlink
        // exactly as the first transfer clears it.
        assert_eq!(m.net_stats().link_waits, 1);
        assert_eq!(b, 3_000);
        assert!(m.net_stats().link_wait_ns > 0);
        // Same-node traffic touches no links.
        let before = m.net_stats().link_waits;
        m.message_arrival_ns(0, 1, 1 << 20, 0);
        assert_eq!(m.net_stats().link_waits, before);
    }

    #[test]
    fn fat_tree_routes_by_tier() {
        let mut m = FatTree::new(FatTreeParams {
            ranks_per_node: 2,
            nodes_per_pod: 2,
            intra_latency_ns: 1,
            intra_ns_per_byte: 0.0,
            hop_latency_ns: 100,
            link_ns_per_byte: 0.0,
        });
        assert_eq!(m.message_arrival_ns(0, 1, 0, 0), 1); // intra-node
        assert_eq!(m.message_arrival_ns(0, 2, 0, 0), 200); // intra-pod: 2 hops
        assert_eq!(m.message_arrival_ns(0, 4, 0, 0), 400); // cross-pod: 4 hops
        let s = m.net_stats();
        assert_eq!(
            (
                s.intra_node_messages,
                s.inter_node_messages,
                s.inter_pod_messages
            ),
            (1, 1, 1)
        );
    }

    #[test]
    fn monotone_under_interleaved_traffic() {
        let mut m = FatTree::new(FatTreeParams::default());
        let mut last = 0;
        for i in 0..1000usize {
            let t = (i as u64) * 37;
            let a = m.message_arrival_ns(i % 48, (i * 7) % 48, i % 4096, t);
            assert!(a >= t, "arrival precedes send");
            last = last.max(a);
        }
        assert!(last > 0);
    }
}
