//! A deterministic discrete-event cluster simulator.
//!
//! The threaded `forestbal_comm::Cluster` runs one OS thread per rank
//! with real parallelism, which caps experiments at a few hundred ranks
//! and makes interleavings nondeterministic. This crate provides
//! [`SimCluster`]: the *same* [`Comm`](forestbal_comm::Comm) interface,
//! but ranks execute one at a time under a discrete-event scheduler and
//! all communication advances a *virtual* clock:
//!
//! - every point-to-point message and collective is priced by a
//!   pluggable [`NetworkModel`]: the default [`NetworkSpec::Flat`]
//!   charges `α + β·bytes` per message and `⌈log₂P⌉·α + β·(total
//!   payload)` per collective (the classic tree/recursive-doubling
//!   model); [`NetworkSpec::Hierarchical`] distinguishes node-local from
//!   remote traffic, and [`NetworkSpec::FatTree`] adds per-link
//!   shared-bandwidth contention,
//! - ties are resolved deterministically by `(virtual time, rank id,
//!   sequence number)`, so a seeded run is bit-identical every time,
//! - seeded per-message delay jitter ([`SimConfig::jitter_ns`]) injects
//!   message reordering faults without giving up reproducibility,
//! - a [`DeliveryStrategy`] hook replaces time-ordered delivery with an
//!   externally chosen order — the executor interface behind the
//!   `forestbal-mc` exhaustive model checker,
//! - rank coroutines are hosted by a pluggable [`Backend`]: OS threads
//!   (portable) or userspace fibers (x86_64 Linux, the default there),
//!   which make paper-scale virtual runs at P = 112,128 ranks feasible
//!   in one process.
//!
//! Because the paper's algorithms are written against the `Comm` trait,
//! they run unmodified here at P = 4096–65536 on one machine — which is
//! what lets the benches reproduce the Notify-vs-Naive-vs-Ranges scaling
//! behavior of §V and the balance scaling of §VI at Jaguar-like rank
//! counts. Phase timings taken through [`Comm::now_ns`]
//! (forestbal-forest's `BalanceTimings`) automatically report virtual
//! cluster time under this runtime.
//!
//! # Example
//!
//! ```
//! use forestbal_comm::{reverse_notify, Comm};
//! use forestbal_sim::{SimCluster, SimConfig};
//!
//! let out = SimCluster::run(64, SimConfig::default(), |ctx| {
//!     let receivers = vec![(ctx.rank() + 1) % ctx.size()];
//!     reverse_notify(ctx, &receivers)
//! });
//! assert_eq!(out.results[1], vec![0]);
//! assert!(out.makespan_ns() > 0); // virtual, not wall-clock, time
//! ```
//!
//! [`Comm::now_ns`]: forestbal_comm::Comm::now_ns

#![warn(missing_docs)]

mod config;
mod fiber;
pub mod net;
mod runtime;
pub mod strategy;

pub use config::{Backend, SimConfig, SimConfigBuilder};
pub use net::{
    FatTree, FatTreeParams, FlatAlphaBeta, Hierarchical, HierarchicalParams, NetModel, NetStats,
    NetworkModel, NetworkSpec,
};
pub use runtime::{SimCluster, SimCtx, SimRunOutput};
pub use strategy::{Candidate, Choice, Delivered, DeliveryStrategy, MsgMeta, Op};
