//! The discrete-event scheduler and its [`Comm`] implementation.
//!
//! # How ranks execute
//!
//! Each simulated rank runs the user closure as a coroutine, and the
//! scheduler enforces that **exactly one rank executes at a time**: a
//! rank only runs between a `Resume` message from the scheduler and its
//! next blocking communication call, at which point it hands control back
//! (with its outbox of sends) and parks. There is no parallelism, no
//! shared mutable state between ranks, and therefore no nondeterminism.
//!
//! Two interchangeable backends host the coroutines
//! ([`crate::Backend`]):
//!
//! - **Threads** — one parked OS thread per rank, baton-passed through
//!   channels. Portable, but kernel task/map limits cap P at a few
//!   thousand.
//! - **Fiber** — userspace stackful coroutines sharing one OS thread and
//!   one lazily-faulted stack slab (see [`crate::fiber`]), which is what
//!   makes P = 112,128 virtual ranks fit in one process. Default where
//!   supported (x86_64 Linux).
//!
//! Backends affect wall-clock cost only; virtual times, delivery orders,
//! stats and results are bit-identical (pinned by a differential test).
//!
//! # How time advances
//!
//! The scheduler owns a priority queue of events ordered by
//! `(virtual time, destination rank, sequence number)` — the total order
//! that makes runs bit-identical. Computation between communication calls
//! is charged zero virtual time (the paper's experiments measure
//! communication structure; CPU cost is measured by the real benches).
//! A rank's clock advances only when a blocking call completes:
//!
//! - `send` is asynchronous and free for the sender; the message's
//!   *arrival* time comes from the configured [`NetworkModel`]
//!   (`α + β·bytes` under the default flat model, plus topology and
//!   link-contention effects under the hierarchical/fat-tree models),
//!   then jitter and the FIFO floor apply,
//! - `recv` completes at `max(arrival time, receiver's clock)`,
//! - `allgather` completes for every participant at the model's
//!   collective completion time (`max(entry times) + ⌈log₂P⌉·α +
//!   β·total_bytes` under the flat model).

use crate::config::{Backend, SimConfig};
use crate::fiber;
use crate::net::{NetStats, NetworkModel};
use crate::strategy::{hash_bytes, Candidate, Delivered, DeliveryStrategy, MsgMeta, Op};
use forestbal_comm::{install_quiet_panic_hook, Comm, CommStats, ShutdownSignal};
use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::{BinaryHeap, HashMap};
use std::panic::{catch_unwind, panic_any, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// A send buffered in the rank's outbox, flushed at the next yield.
struct OutMsg {
    dst: usize,
    tag: u32,
    data: Vec<u8>,
}

/// Why a rank handed control back to the scheduler.
enum BlockKind {
    Recv { src: Option<usize>, tag: u32 },
    Allgather { data: Vec<u8> },
}

/// Rank → scheduler.
enum RankYield {
    Block {
        kind: BlockKind,
        outbox: Vec<OutMsg>,
    },
    Finished {
        outbox: Vec<OutMsg>,
        // Boxed: CommStats carries the per-tag table and would otherwise
        // dominate the enum's size.
        stats: Box<CommStats>,
    },
    Panicked(Box<dyn Any + Send>),
    /// Fiber backend only: the rank unwound in response to `Shutdown`.
    /// (A shut-down thread just exits; a fiber must report back so the
    /// scheduler knows its stack is dead.)
    ShutdownDone,
}

/// Scheduler → rank.
enum Resume {
    Start,
    Deliver { src: usize, data: Vec<u8>, now: u64 },
    Gather { all: Arc<Vec<Vec<u8>>>, now: u64 },
    Shutdown,
}

/// An entry in the event queue. Ordered by `(time, rank, seq)` — `seq` is
/// globally unique, so the order is total and runs are reproducible.
struct Event {
    time: u64,
    rank: usize,
    seq: u64,
    kind: EventKind,
}

enum EventKind {
    /// Begin executing the rank's closure at t = 0.
    Start,
    /// A point-to-point message reaches its destination.
    Arrival { src: usize, tag: u32, data: Vec<u8> },
    /// An allgather round completes for this rank.
    GatherDone { gen: u64 },
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop smallest first.
        (other.time, other.rank, other.seq).cmp(&(self.time, self.rank, self.seq))
    }
}

/// What a parked rank is blocked on, for deadlock diagnostics and
/// arrival matching.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Parked {
    /// Running, or has a wake event already queued.
    No,
    Recv {
        src: Option<usize>,
        tag: u32,
    },
    Gather,
}

struct RankState {
    clock: u64,
    /// Arrived-but-unmatched messages as `(tag, src, data)` in arrival
    /// order — a flat vector, not a per-tag map: unmatched backlogs are
    /// tiny, and at P = 112k a `BTreeMap` + `VecDeque` per rank wastes
    /// hundreds of bytes each before holding anything.
    pending: Vec<(u32, usize, Vec<u8>)>,
    parked: Parked,
    alive: bool,
    stats: CommStats,
    finish_ns: u64,
}

/// In-progress allgather round. Rounds are strictly sequential (a rank
/// cannot enter round `g+1` before every rank finished round `g`), so one
/// accumulator plus one outstanding result is enough.
struct GatherRound {
    gen: u64,
    entries: Vec<Option<Vec<u8>>>,
    arrived: usize,
    latest_entry: u64,
}

/// A completed allgather: `(gen, result, undelivered wake events)`.
type GatherResult = (u64, Arc<Vec<Vec<u8>>>, usize);

/// Where undelivered events live. The default runtime pops them in
/// `(time, rank, seq)` order from a heap; under a [`DeliveryStrategy`]
/// they sit in an unordered pool and the strategy picks.
enum EventQueue {
    Heap(BinaryHeap<Event>),
    Pool(Vec<Event>),
}

/// Mailboxes of one fiber-backed rank. Replaces the two mpsc channels of
/// the thread backend with two refcells: the scheduler and the fiber are
/// never runnable at once, so a slot each way is enough (and ~200 bytes
/// per rank cheaper, which matters ×112k).
#[derive(Default)]
struct FiberBox {
    resume: RefCell<Option<Resume>>,
    yielded: RefCell<Option<RankYield>>,
    /// The rank's parked tracer state while it is switched out (the trace
    /// recorder is thread-local and all fibers share one thread).
    trace: RefCell<forestbal_trace::SavedTrace>,
}

/// How the scheduler reaches the rank coroutines.
enum RankIo<'s> {
    Threads {
        resume_txs: Vec<Sender<Resume>>,
        yield_rx: Receiver<(usize, RankYield)>,
    },
    Fibers {
        pool: &'s fiber::FiberPool,
        boxes: &'s [FiberBox],
    },
}

/// Hand `resume` to fiber `r`, run it until it parks again, and return
/// its yield. Swaps the thread-local tracer state both ways so per-rank
/// `Tracer`s behave as if each rank had its own thread.
fn fiber_roundtrip(
    pool: &fiber::FiberPool,
    boxes: &[FiberBox],
    r: usize,
    resume: Resume,
) -> RankYield {
    *boxes[r].resume.borrow_mut() = Some(resume);
    let sched_trace = forestbal_trace::swap_active(boxes[r].trace.take());
    pool.switch_into(r);
    *boxes[r].trace.borrow_mut() = forestbal_trace::swap_active(sched_trace);
    boxes[r]
        .yielded
        .borrow_mut()
        .take()
        .expect("fiber must yield before returning control")
}

// Two lifetimes on purpose: `'io` is the (function-local) borrow of the
// fiber pool and mailboxes, `'x` the caller-supplied trait objects'.
// Folding them into one would — via `&mut` invariance — force the pool
// borrow to outlive the function and block dropping the pool.
struct Scheduler<'io, 'x> {
    cfg: SimConfig,
    size: usize,
    ranks: Vec<RankState>,
    io: RankIo<'io>,
    /// Prices every message and collective; see [`crate::net`].
    net: &'io mut (dyn NetworkModel + 'x),
    queue: EventQueue,
    /// Delivery-order policy in [`EventQueue::Pool`] mode.
    strategy: Option<&'io mut (dyn DeliveryStrategy + 'x)>,
    gather: GatherRound,
    gather_result: Option<GatherResult>,
    /// Latest arrival time per (src, dst), for FIFO (non-overtaking)
    /// delivery under jitter.
    fifo_floor: HashMap<(usize, usize), u64>,
    event_seq: u64,
    msg_seq: u64,
    live: usize,
    /// First rank panic, re-raised after the coroutines are torn down.
    panic_payload: Option<Box<dyn Any + Send>>,
    /// Scheduler-detected failure (deadlock, send to finished rank).
    fatal: Option<String>,
}

pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Strategy-facing metadata of a queued arrival event.
fn msg_meta(ev: &Event) -> MsgMeta {
    match &ev.kind {
        EventKind::Arrival { src, tag, data } => MsgMeta {
            src: *src,
            dst: ev.rank,
            tag: *tag,
            bytes: data.len(),
            send_seq: ev.seq,
            payload_hash: hash_bytes(data),
        },
        _ => unreachable!("metadata of a non-message event"),
    }
}

impl<'io, 'x> Scheduler<'io, 'x> {
    fn push(&mut self, time: u64, rank: usize, kind: EventKind) {
        let seq = self.event_seq;
        self.event_seq += 1;
        let ev = Event {
            time,
            rank,
            seq,
            kind,
        };
        match &mut self.queue {
            EventQueue::Heap(h) => h.push(ev),
            EventQueue::Pool(p) => p.push(ev),
        }
    }

    /// The next event to act on: heap order in the default mode; in
    /// strategy mode, eager `Start`s first, then whatever the strategy
    /// picks from the deliverable set (handling `Drop`/`Duplicate` faults
    /// internally).
    ///
    /// Note the strategy-mode candidate set depends only on *which*
    /// messages are in flight and their send sequence numbers — never on
    /// their model-priced arrival times. Swapping in a contended network
    /// model therefore cannot change what the model checker explores;
    /// only the (ignored) timestamps differ.
    fn next_event(&mut self) -> Option<Event> {
        let pool = match &mut self.queue {
            EventQueue::Heap(h) => return h.pop(),
            EventQueue::Pool(p) => p,
        };
        loop {
            if pool.is_empty() {
                return None;
            }
            // Rank starts are never choice points: executing a rank up to
            // its first blocking call commutes with everything else.
            if let Some(i) = pool
                .iter()
                .enumerate()
                .filter(|(_, e)| matches!(e.kind, EventKind::Start))
                .min_by_key(|(_, e)| e.rank)
                .map(|(i, _)| i)
            {
                let ev = pool.swap_remove(i);
                let strat = self.strategy.as_mut().expect("pool mode has a strategy");
                strat.delivered(&Delivered::Start { rank: ev.rank });
                return Some(ev);
            }
            // Build the deliverable set in canonical order: collectives
            // first by (rank, gen), then messages by (dst, src, tag, seq).
            // Under FIFO, a message is deliverable only if it is the
            // earliest-sent in-flight message of its (src, dst) pair.
            let fifo = self.cfg.fifo;
            let mut order: Vec<(u8, usize, usize, u32, u64, usize)> = pool
                .iter()
                .enumerate()
                .filter_map(|(i, e)| match &e.kind {
                    EventKind::Start => unreachable!("starts drained above"),
                    EventKind::GatherDone { gen } => Some((0, e.rank, 0, 0, *gen, i)),
                    EventKind::Arrival { src, tag, .. } => {
                        let blocked = fifo
                            && pool.iter().any(|o| {
                                o.seq < e.seq
                                    && o.rank == e.rank
                                    && matches!(&o.kind,
                                        EventKind::Arrival { src: s2, .. } if *s2 == *src)
                            });
                        (!blocked).then_some((1, e.rank, *src, *tag, e.seq, i))
                    }
                })
                .collect();
            order.sort_unstable();
            let candidates: Vec<Candidate> = order
                .iter()
                .map(|&(_, _, _, _, _, i)| match &pool[i] {
                    Event {
                        rank,
                        kind: EventKind::GatherDone { gen },
                        ..
                    } => Candidate::Collective {
                        dst: *rank,
                        gen: *gen,
                    },
                    ev => Candidate::Message(msg_meta(ev)),
                })
                .collect();
            debug_assert!(!candidates.is_empty(), "non-empty pool, no candidates");
            let strat = self.strategy.as_mut().expect("pool mode has a strategy");
            let choice = strat.choose(&candidates);
            let pool_idx = order[choice.index].5;
            match (choice.op, &candidates[choice.index]) {
                (Op::Deliver, Candidate::Collective { dst, gen }) => {
                    strat.delivered(&Delivered::Collective {
                        dst: *dst,
                        gen: *gen,
                    });
                    return Some(pool.swap_remove(pool_idx));
                }
                (Op::Deliver, Candidate::Message(m)) => {
                    strat.delivered(&Delivered::Message(*m));
                    return Some(pool.swap_remove(pool_idx));
                }
                (Op::Drop, Candidate::Message(m)) => {
                    strat.delivered(&Delivered::Dropped(*m));
                    pool.swap_remove(pool_idx);
                }
                (Op::Duplicate, Candidate::Message(m)) => {
                    strat.delivered(&Delivered::Duplicated(*m));
                    // Deliver a copy; the original stays in flight under
                    // the same send seq.
                    let ev = &pool[pool_idx];
                    return Some(Event {
                        time: ev.time,
                        rank: ev.rank,
                        seq: ev.seq,
                        kind: match &ev.kind {
                            EventKind::Arrival { src, tag, data } => EventKind::Arrival {
                                src: *src,
                                tag: *tag,
                                data: data.clone(),
                            },
                            _ => unreachable!("duplicate of a non-message"),
                        },
                    });
                }
                (op, c) => panic!("strategy chose {op:?} for {c:?}"),
            }
        }
    }

    /// Schedule arrivals for everything the rank sent since it last
    /// yielded, stamped at its current clock. The network model prices
    /// the raw arrival; jitter (drawn per message) and the FIFO floor are
    /// layered on top and do not feed back into link-contention state.
    fn flush_outbox(&mut self, src: usize, outbox: Vec<OutMsg>) {
        let now = self.ranks[src].clock;
        for m in outbox {
            let seq = self.msg_seq;
            self.msg_seq += 1;
            let jitter = if self.cfg.jitter_ns == 0 {
                0
            } else {
                splitmix64(self.cfg.seed ^ seq.wrapping_mul(0xA24B_AED4_963E_E407))
                    % (self.cfg.jitter_ns + 1)
            };
            let arrival = self.net.message_arrival_ns(src, m.dst, m.data.len(), now);
            debug_assert!(arrival >= now, "network model moved time backwards");
            let mut t = arrival + jitter;
            if self.cfg.fifo {
                let floor = self.fifo_floor.entry((src, m.dst)).or_insert(0);
                t = t.max(*floor);
                *floor = t;
            }
            self.push(
                t,
                m.dst,
                EventKind::Arrival {
                    src,
                    tag: m.tag,
                    data: m.data,
                },
            );
        }
    }

    /// Pop the oldest pending message matching `(src, tag)`.
    fn match_pending(
        &mut self,
        rank: usize,
        src: Option<usize>,
        tag: u32,
    ) -> Option<(usize, Vec<u8>)> {
        let pending = &mut self.ranks[rank].pending;
        let i = pending
            .iter()
            .position(|(t, s, _)| *t == tag && src.is_none_or(|want| want == *s))?;
        let (_, s, data) = pending.remove(i);
        Some((s, data))
    }

    fn gather_enter(&mut self, rank: usize, data: Vec<u8>) {
        self.ranks[rank].parked = Parked::Gather;
        let clock = self.ranks[rank].clock;
        let g = &mut self.gather;
        debug_assert!(g.entries[rank].is_none(), "double allgather entry");
        g.entries[rank] = Some(data);
        g.arrived += 1;
        g.latest_entry = g.latest_entry.max(clock);
        if g.arrived == self.size {
            let entries: Vec<Vec<u8>> = g.entries.iter_mut().map(|e| e.take().unwrap()).collect();
            let total: usize = entries.iter().map(Vec::len).sum();
            let start = g.latest_entry;
            let done = self.net.collective_done_ns(self.size, total, start);
            debug_assert!(done >= start, "network model moved time backwards");
            let g = &mut self.gather;
            let gen = g.gen;
            g.gen += 1;
            g.arrived = 0;
            g.latest_entry = 0;
            debug_assert!(self.gather_result.is_none(), "overlapping gather results");
            self.gather_result = Some((gen, Arc::new(entries), self.size));
            for r in 0..self.size {
                self.push(done, r, EventKind::GatherDone { gen });
            }
        }
    }

    /// Resume rank `r` and keep it running until it parks, finishes, or
    /// panics. Instant recv hits (matched from pending) loop without
    /// advancing time.
    fn run_rank(&mut self, r: usize, resume: Resume) {
        let mut resume = resume;
        loop {
            self.ranks[r].parked = Parked::No;
            let y = match &self.io {
                RankIo::Threads {
                    resume_txs,
                    yield_rx,
                } => {
                    resume_txs[r]
                        .send(resume)
                        .expect("parked rank thread is alive");
                    let (yr, y) = yield_rx.recv().expect("the running rank always yields");
                    debug_assert_eq!(yr, r, "only the resumed rank can yield");
                    y
                }
                RankIo::Fibers { pool, boxes } => fiber_roundtrip(pool, boxes, r, resume),
            };
            match y {
                RankYield::Block { kind, outbox } => {
                    self.flush_outbox(r, outbox);
                    match kind {
                        BlockKind::Recv { src, tag } => {
                            if let Some((s, data)) = self.match_pending(r, src, tag) {
                                resume = Resume::Deliver {
                                    src: s,
                                    data,
                                    now: self.ranks[r].clock,
                                };
                                continue;
                            }
                            self.ranks[r].parked = Parked::Recv { src, tag };
                            return;
                        }
                        BlockKind::Allgather { data } => {
                            self.gather_enter(r, data);
                            return;
                        }
                    }
                }
                RankYield::Finished { outbox, stats } => {
                    self.flush_outbox(r, outbox);
                    let st = &mut self.ranks[r];
                    st.alive = false;
                    st.stats = *stats;
                    st.finish_ns = st.clock;
                    self.live -= 1;
                    return;
                }
                RankYield::Panicked(payload) => {
                    self.ranks[r].alive = false;
                    self.live -= 1;
                    if self.panic_payload.is_none() {
                        self.panic_payload = Some(payload);
                    }
                    self.shutdown_survivors();
                    return;
                }
                RankYield::ShutdownDone => {
                    unreachable!("shutdown yield outside shutdown_survivors")
                }
            }
        }
    }

    /// Unwind every still-parked rank (they panic with [`ShutdownSignal`]
    /// and exit silently). Threads just exit; started fibers are switched
    /// in once more so their stacks unwind and run destructors.
    fn shutdown_survivors(&mut self) {
        for r in 0..self.ranks.len() {
            if !self.ranks[r].alive {
                continue;
            }
            self.ranks[r].alive = false;
            self.live -= 1;
            match &self.io {
                RankIo::Threads { resume_txs, .. } => {
                    let _ = resume_txs[r].send(Resume::Shutdown);
                }
                RankIo::Fibers { pool, boxes } => {
                    if pool.is_started(r) && !pool.is_finished(r) {
                        let y = fiber_roundtrip(pool, boxes, r, Resume::Shutdown);
                        debug_assert!(
                            matches!(y, RankYield::ShutdownDone),
                            "shut-down fiber yielded something else"
                        );
                    }
                    // Never-started fibers have nothing on their stacks;
                    // their un-run bodies drop with the pool.
                }
            }
        }
    }

    fn fail(&mut self, msg: String) {
        if self.fatal.is_none() {
            self.fatal = Some(msg);
        }
        self.shutdown_survivors();
    }

    fn run(&mut self) {
        while let Some(ev) = self.next_event() {
            if self.panic_payload.is_some() || self.fatal.is_some() {
                return;
            }
            match ev.kind {
                EventKind::Start => self.run_rank(ev.rank, Resume::Start),
                EventKind::Arrival { src, tag, data } => {
                    let dst = ev.rank;
                    if !self.ranks[dst].alive {
                        self.fail(format!(
                            "rank {src} sent tag {tag:#x} to rank {dst}, which finished \
                             before the message arrived (t = {} ns)",
                            ev.time
                        ));
                        return;
                    }
                    let matched = matches!(
                        self.ranks[dst].parked,
                        Parked::Recv { src: wsrc, tag: wtag }
                            if wtag == tag && wsrc.is_none_or(|s| s == src)
                    );
                    if matched {
                        let st = &mut self.ranks[dst];
                        st.clock = st.clock.max(ev.time);
                        let now = st.clock;
                        self.run_rank(dst, Resume::Deliver { src, data, now });
                    } else {
                        self.ranks[dst].pending.push((tag, src, data));
                    }
                }
                EventKind::GatherDone { gen } => {
                    let r = ev.rank;
                    let all = {
                        let (rgen, arc, remaining) = self
                            .gather_result
                            .as_mut()
                            .expect("gather result outstanding");
                        debug_assert_eq!(*rgen, gen, "gather generations interleaved");
                        let all = Arc::clone(arc);
                        *remaining -= 1;
                        if *remaining == 0 {
                            self.gather_result = None;
                        }
                        all
                    };
                    let st = &mut self.ranks[r];
                    st.clock = st.clock.max(ev.time);
                    let now = st.clock;
                    self.run_rank(r, Resume::Gather { all, now });
                }
            }
        }
        if self.live > 0 {
            let blocked: Vec<String> = self
                .ranks
                .iter()
                .enumerate()
                .filter(|(_, st)| st.alive)
                .map(|(r, st)| match st.parked {
                    Parked::Recv { src, tag } => format!(
                        "rank {r} in recv(src={src:?}, tag={tag:#x}) at t={} ns",
                        st.clock
                    ),
                    Parked::Gather => format!("rank {r} in allgather at t={} ns", st.clock),
                    Parked::No => format!("rank {r} (runnable?) at t={} ns", st.clock),
                })
                .collect();
            self.fail(format!(
                "simulated deadlock: no events left but {} rank(s) blocked: {}",
                blocked.len(),
                blocked.join("; ")
            ));
            return;
        }
        // Quiescence: after every rank finished with no failure, nothing
        // may remain buffered — a leftover message was sent but never
        // received, which is a protocol bug (an orphan message).
        let orphans: Vec<String> = self
            .ranks
            .iter()
            .enumerate()
            .flat_map(|(dst, st)| {
                st.pending.iter().map(move |(tag, src, data)| {
                    format!("(src={src}, dst={dst}, tag={tag:#x}, {} bytes)", data.len())
                })
            })
            .collect();
        if !orphans.is_empty() {
            self.fail(format!(
                "quiescence violated: {} orphan message(s) arrived but were never \
                 received: {}",
                orphans.len(),
                orphans.join(", ")
            ));
        }
    }
}

/// How a [`SimCtx`] reaches the scheduler — the rank-side mirror of
/// [`RankIo`].
enum CtxIo {
    Thread {
        yield_tx: Sender<(usize, RankYield)>,
        resume_rx: Receiver<Resume>,
    },
    /// Raw pointers because the fiber body cannot name the lifetimes of
    /// the pool/mailboxes it runs under; both live on the `run_inner`
    /// frame that hosts every fiber, so they strictly outlive it.
    Fiber {
        pool: *const fiber::FiberPool,
        bx: *const FiberBox,
    },
}

/// Handle through which a simulated rank communicates. Rank code is
/// generic over [`Comm`] and cannot tell this apart from the threaded
/// `RankCtx` — except that [`Comm::now_ns`] reports virtual time.
pub struct SimCtx {
    rank: usize,
    size: usize,
    io: CtxIo,
    outbox: RefCell<Vec<OutMsg>>,
    stats: RefCell<CommStats>,
    now: Cell<u64>,
}

impl SimCtx {
    /// Park until the scheduler hands back a resume, yielding the outbox.
    fn block(&self, kind: BlockKind) -> Resume {
        let outbox = self.outbox.take();
        let y = RankYield::Block { kind, outbox };
        match &self.io {
            CtxIo::Thread {
                yield_tx,
                resume_rx,
            } => {
                if yield_tx.send((self.rank, y)).is_err() {
                    panic_any(ShutdownSignal);
                }
                match resume_rx.recv() {
                    Ok(Resume::Shutdown) | Err(_) => panic_any(ShutdownSignal),
                    Ok(r) => r,
                }
            }
            CtxIo::Fiber { pool, bx } => {
                let bx = unsafe { &**bx };
                *bx.yielded.borrow_mut() = Some(y);
                unsafe { (**pool).yield_out(self.rank) };
                match bx.resume.borrow_mut().take() {
                    Some(Resume::Shutdown) | None => panic_any(ShutdownSignal),
                    Some(r) => r,
                }
            }
        }
    }
}

impl Comm for SimCtx {
    #[inline]
    fn rank(&self) -> usize {
        self.rank
    }

    #[inline]
    fn size(&self) -> usize {
        self.size
    }

    fn send(&self, dst: usize, tag: u32, data: Vec<u8>) {
        assert!(dst < self.size, "destination rank out of range");
        self.stats.borrow_mut().record_send(tag, data.len());
        self.outbox.borrow_mut().push(OutMsg { dst, tag, data });
    }

    fn recv(&self, src: Option<usize>, tag: u32) -> (usize, Vec<u8>) {
        match self.block(BlockKind::Recv { src, tag }) {
            Resume::Deliver { src, data, now } => {
                self.now.set(now);
                (src, data)
            }
            _ => unreachable!("recv resumed with a non-delivery"),
        }
    }

    fn allgather(&self, data: Vec<u8>) -> Arc<Vec<Vec<u8>>> {
        self.stats.borrow_mut().record_collective(data.len());
        match self.block(BlockKind::Allgather { data }) {
            Resume::Gather { all, now } => {
                self.now.set(now);
                all
            }
            _ => unreachable!("allgather resumed with a non-gather"),
        }
    }

    fn stats(&self) -> CommStats {
        *self.stats.borrow()
    }

    fn now_ns(&self) -> u64 {
        self.now.get()
    }
}

/// Per-rank outputs of a simulated run, indexed by rank.
pub struct SimRunOutput<T> {
    /// The closure's return value per rank.
    pub results: Vec<T>,
    /// Communication counters per rank (identical to a threaded run of
    /// the same deterministic algorithm).
    pub stats: Vec<CommStats>,
    /// Virtual time at which each rank's closure returned.
    pub finish_ns: Vec<u64>,
    /// Traffic-class and link-contention counters from the network model
    /// (all p2p under `intra_node` for the flat model).
    pub net: NetStats,
}

impl<T> SimRunOutput<T> {
    /// Cluster-wide total of the per-rank counters.
    pub fn total_stats(&self) -> CommStats {
        self.stats
            .iter()
            .fold(CommStats::default(), |a, b| a.merge(b))
    }

    /// Virtual time at which the last rank finished — the simulated
    /// wall-clock of the whole run.
    pub fn makespan_ns(&self) -> u64 {
        self.finish_ns.iter().copied().max().unwrap_or(0)
    }
}

/// Preflight for large `size` on the thread backend: every simulated rank
/// parks on one OS thread, and each thread costs ~4 kernel memory maps
/// (stack, guard page, alternate signal stack). Exhausting
/// `vm.max_map_count` mid-spawn aborts the whole process from inside the
/// std runtime — uncatchable — so predict the shortfall and panic cleanly
/// instead. (The fiber backend needs one map total and skips this.)
#[cfg(target_os = "linux")]
fn map_count_shortfall(size: usize) -> Option<String> {
    const MAPS_PER_THREAD: u64 = 4;
    const SLACK: u64 = 256;
    let max: u64 = std::fs::read_to_string("/proc/sys/vm/max_map_count")
        .ok()?
        .trim()
        .parse()
        .ok()?;
    let used = std::fs::read_to_string("/proc/self/maps")
        .ok()?
        .lines()
        .count() as u64;
    let needed = used + MAPS_PER_THREAD * size as u64 + SLACK;
    (needed > max).then(|| {
        format!(
            "{size} simulated ranks need ~{needed} kernel memory maps but \
             vm.max_map_count is {max}; use Backend::Auto (fibers), raise the \
             sysctl, or lower P"
        )
    })
}

#[cfg(not(target_os = "linux"))]
fn map_count_shortfall(_size: usize) -> Option<String> {
    None
}

/// The deterministic discrete-event cluster runtime.
pub struct SimCluster;

impl SimCluster {
    /// Run `f` on `size` simulated ranks under `config` and collect the
    /// per-rank results, counters, and virtual finish times.
    ///
    /// Identical `(size, config, f)` produce bit-identical outputs. A
    /// panic in any rank unwinds the whole run with the original payload;
    /// a communication pattern that can never complete (e.g. a recv
    /// nothing will send) panics with a "simulated deadlock" report
    /// instead of hanging. A run in which every rank finishes but some
    /// message was never received panics with a "quiescence violated"
    /// report listing the orphan messages.
    pub fn run<T, F>(size: usize, config: SimConfig, f: F) -> SimRunOutput<T>
    where
        T: Send,
        F: Fn(&SimCtx) -> T + Send + Sync,
    {
        Self::run_inner(size, config, None, None, f)
    }

    /// Like [`SimCluster::run`], but event delivery order is picked by
    /// `strategy` instead of virtual time — the executor interface used by
    /// the `forestbal-mc` model checker to explore every interleaving.
    /// See [`crate::strategy`] for the contract.
    pub fn run_with_strategy<T, F>(
        size: usize,
        config: SimConfig,
        strategy: &mut dyn DeliveryStrategy,
        f: F,
    ) -> SimRunOutput<T>
    where
        T: Send,
        F: Fn(&SimCtx) -> T + Send + Sync,
    {
        Self::run_inner(size, config, Some(strategy), None, f)
    }

    /// Like [`SimCluster::run`], but every message and collective is
    /// priced by the caller's `model` instead of one built from
    /// [`SimConfig::network`] — the hook for custom [`NetworkModel`]
    /// implementations. The model is used in a deterministic call order,
    /// and its accumulated state (e.g. link occupancy) can be inspected
    /// by the caller afterwards; [`SimRunOutput::net`] carries its final
    /// [`NetStats`] either way.
    pub fn run_with_model<T, F>(
        size: usize,
        config: SimConfig,
        model: &mut dyn NetworkModel,
        f: F,
    ) -> SimRunOutput<T>
    where
        T: Send,
        F: Fn(&SimCtx) -> T + Send + Sync,
    {
        Self::run_inner(size, config, None, Some(model), f)
    }

    fn run_inner<'a, T, F>(
        size: usize,
        config: SimConfig,
        strategy: Option<&'a mut dyn DeliveryStrategy>,
        model: Option<&'a mut dyn NetworkModel>,
        f: F,
    ) -> SimRunOutput<T>
    where
        T: Send,
        F: Fn(&SimCtx) -> T + Send + Sync,
    {
        assert!(size >= 1, "a cluster needs at least one rank");
        let backend = match config.backend {
            Backend::Auto => {
                if fiber::supported() {
                    Backend::Fiber
                } else {
                    Backend::Threads
                }
            }
            Backend::Fiber => {
                assert!(
                    fiber::supported(),
                    "Backend::Fiber is only available on x86_64 Linux; \
                     use Backend::Auto (falls back to threads) or Backend::Threads"
                );
                Backend::Fiber
            }
            Backend::Threads => Backend::Threads,
        };
        if backend == Backend::Threads {
            if let Some(msg) = map_count_shortfall(size) {
                panic!("{msg}");
            }
        }
        install_quiet_panic_hook();

        let mut owned_model;
        let net: &mut dyn NetworkModel = match model {
            Some(m) => m,
            None => {
                owned_model = config.network.build(config.latency_ns, config.ns_per_byte);
                &mut owned_model
            }
        };

        let f = &f;
        // Fiber-backend state. Declaration order is load-bearing: the
        // scheduler (declared last) borrows the pool and boxes, and the
        // pool's un-run bodies borrow `fiber_results` and `f`, so drops
        // must run scheduler → pool → results — which is exactly the
        // reverse of this declaration order.
        let fiber_results: RefCell<Vec<Option<T>>> = RefCell::new(Vec::new());
        let fiber_boxes: Vec<FiberBox> = match backend {
            Backend::Fiber => (0..size).map(|_| FiberBox::default()).collect(),
            _ => Vec::new(),
        };
        let fiber_pool: Option<fiber::FiberPool> = match backend {
            Backend::Fiber => Some(fiber::FiberPool::new(size, config.stack_size)),
            _ => None,
        };

        let mut thread_yield_tx = None;
        let mut thread_resume_rxs = Vec::new();

        let io = match backend {
            Backend::Fiber => {
                fiber_results.borrow_mut().extend((0..size).map(|_| None));
                let pool = fiber_pool.as_ref().expect("just constructed");
                let pool_ptr: *const fiber::FiberPool = pool;
                for (rank, fiber_box) in fiber_boxes.iter().enumerate() {
                    let bx: *const FiberBox = fiber_box;
                    let results = &fiber_results;
                    let body = move || {
                        let bx_ref = unsafe { &*bx };
                        match bx_ref.resume.borrow_mut().take() {
                            Some(Resume::Start) => {}
                            // Shut down before starting: nothing ran,
                            // nothing to report.
                            _ => return,
                        }
                        let ctx = SimCtx {
                            rank,
                            size,
                            io: CtxIo::Fiber { pool: pool_ptr, bx },
                            outbox: RefCell::new(Vec::new()),
                            stats: RefCell::new(CommStats::default()),
                            now: Cell::new(0),
                        };
                        let y = match catch_unwind(AssertUnwindSafe(|| f(&ctx))) {
                            Ok(v) => {
                                results.borrow_mut()[rank] = Some(v);
                                RankYield::Finished {
                                    outbox: ctx.outbox.take(),
                                    stats: Box::new(ctx.stats()),
                                }
                            }
                            Err(p) => {
                                if p.downcast_ref::<ShutdownSignal>().is_some() {
                                    RankYield::ShutdownDone
                                } else {
                                    RankYield::Panicked(p)
                                }
                            }
                        };
                        *bx_ref.yielded.borrow_mut() = Some(y);
                    };
                    // Safety: the pool is dropped (consuming or dropping
                    // every body) before `f`, `fiber_results` and the
                    // boxes go away — see the declaration-order note.
                    unsafe { pool.spawn_unchecked(rank, Box::new(body)) };
                }
                RankIo::Fibers {
                    pool,
                    boxes: &fiber_boxes,
                }
            }
            _ => {
                let (yield_tx, yield_rx) = channel::<(usize, RankYield)>();
                let (resume_txs, resume_rxs): (Vec<_>, Vec<_>) =
                    (0..size).map(|_| channel::<Resume>()).unzip();
                thread_yield_tx = Some(yield_tx);
                thread_resume_rxs = resume_rxs;
                RankIo::Threads {
                    resume_txs,
                    yield_rx,
                }
            }
        };

        let mut sched = Scheduler {
            cfg: config,
            size,
            ranks: (0..size)
                .map(|_| RankState {
                    clock: 0,
                    pending: Vec::new(),
                    parked: Parked::No,
                    alive: true,
                    stats: CommStats::default(),
                    finish_ns: 0,
                })
                .collect(),
            io,
            net,
            queue: if strategy.is_some() {
                EventQueue::Pool(Vec::new())
            } else {
                EventQueue::Heap(BinaryHeap::new())
            },
            strategy,
            gather: GatherRound {
                gen: 0,
                entries: (0..size).map(|_| None).collect(),
                arrived: 0,
                latest_entry: 0,
            },
            gather_result: None,
            fifo_floor: HashMap::new(),
            event_seq: 0,
            msg_seq: 0,
            live: size,
            panic_payload: None,
            fatal: None,
        };
        for r in 0..size {
            sched.push(0, r, EventKind::Start);
        }

        let mut thread_results: Vec<Option<T>> = Vec::new();
        match backend {
            Backend::Fiber => sched.run(),
            _ => {
                let yield_tx = thread_yield_tx.take().expect("thread backend has a sender");
                std::thread::scope(|scope| {
                    // Spawn failures (e.g. hitting the OS thread limit at
                    // large P) must not leave already-parked ranks blocked
                    // in `recv` — shut the cluster down and report, instead
                    // of deadlocking the join.
                    let mut spawn_error = None;
                    let mut handles = Vec::with_capacity(size);
                    for (rank, resume_rx) in thread_resume_rxs.drain(..).enumerate() {
                        let yield_tx = yield_tx.clone();
                        let spawned = std::thread::Builder::new()
                            .name(format!("simrank-{rank}"))
                            .stack_size(config.stack_size)
                            .spawn_scoped(scope, move || -> Option<T> {
                                let ctx = SimCtx {
                                    rank,
                                    size,
                                    io: CtxIo::Thread {
                                        yield_tx,
                                        resume_rx,
                                    },
                                    outbox: RefCell::new(Vec::new()),
                                    stats: RefCell::new(CommStats::default()),
                                    now: Cell::new(0),
                                };
                                let (yield_tx, resume_rx) = match &ctx.io {
                                    CtxIo::Thread {
                                        yield_tx,
                                        resume_rx,
                                    } => (yield_tx, resume_rx),
                                    _ => unreachable!(),
                                };
                                match resume_rx.recv() {
                                    Ok(Resume::Start) => {}
                                    _ => return None,
                                }
                                match catch_unwind(AssertUnwindSafe(|| f(&ctx))) {
                                    Ok(v) => {
                                        let _ = yield_tx.send((
                                            rank,
                                            RankYield::Finished {
                                                outbox: ctx.outbox.take(),
                                                stats: Box::new(ctx.stats()),
                                            },
                                        ));
                                        Some(v)
                                    }
                                    Err(payload) => {
                                        if payload.downcast_ref::<ShutdownSignal>().is_none() {
                                            let _ =
                                                yield_tx.send((rank, RankYield::Panicked(payload)));
                                        }
                                        None
                                    }
                                }
                            });
                        match spawned {
                            Ok(h) => handles.push(h),
                            Err(e) => {
                                spawn_error = Some((rank, e));
                                break;
                            }
                        }
                    }
                    drop(yield_tx);
                    match spawn_error {
                        None => sched.run(),
                        Some((rank, e)) => sched.fail(format!(
                            "failed to spawn simulated rank {rank} of {size}: {e}; each \
                             simulated rank needs one OS thread under Backend::Threads, \
                             so raise the process limit (`ulimit -u`) — or use \
                             Backend::Auto, whose fiber backend needs no threads"
                        )),
                    }
                    thread_results = handles
                        .into_iter()
                        .map(|h| h.join().expect("rank thread cannot panic past its catch"))
                        .collect();
                });
            }
        }

        let net_stats = sched.net.net_stats();
        if let Some(payload) = sched.panic_payload.take() {
            resume_unwind(payload);
        }
        if let Some(msg) = sched.fatal.take() {
            panic!("{msg}");
        }
        let stats = sched.ranks.iter().map(|st| st.stats).collect();
        let finish_ns = sched.ranks.iter().map(|st| st.finish_ns).collect();
        drop(sched);
        drop(fiber_pool);
        let raw = match backend {
            Backend::Fiber => fiber_results.into_inner(),
            _ => thread_results,
        };
        let results = raw
            .into_iter()
            .map(|r| r.expect("rank produced no result yet did not panic"))
            .collect();
        SimRunOutput {
            results,
            stats,
            finish_ns,
            net: net_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{FatTreeParams, HierarchicalParams, NetworkSpec};
    use crate::strategy::Choice;

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    #[test]
    fn single_rank_runs() {
        let out = SimCluster::run(1, cfg(), |ctx| {
            assert_eq!(ctx.rank(), 0);
            assert_eq!(ctx.size(), 1);
            42
        });
        assert_eq!(out.results, vec![42]);
        assert_eq!(out.makespan_ns(), 0);
    }

    #[test]
    fn ring_pass_charges_alpha_beta() {
        let out = SimCluster::run(5, cfg(), |ctx| {
            let next = (ctx.rank() + 1) % ctx.size();
            let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
            ctx.send(next, 7, vec![ctx.rank() as u8]);
            let (src, data) = ctx.recv(Some(prev), 7);
            assert_eq!(src, prev);
            (data[0] as usize, ctx.now_ns())
        });
        for (r, &(v, t)) in out.results.iter().enumerate() {
            assert_eq!(v, (r + 4) % 5);
            // One 1-byte hop: α + β·1 = 1001 ns.
            assert_eq!(t, 1_001);
        }
        assert_eq!(out.total_stats().messages_sent, 5);
        assert_eq!(out.makespan_ns(), 1_001);
        assert_eq!(out.net.p2p_messages, 5);
    }

    #[test]
    fn recv_filters_by_tag_and_source() {
        let out = SimCluster::run(3, cfg(), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(2, 1, vec![1]);
                ctx.send(2, 2, vec![2]);
                0
            } else if ctx.rank() == 1 {
                ctx.send(2, 1, vec![10]);
                0
            } else {
                let (_, a) = ctx.recv(Some(1), 1);
                let (_, b) = ctx.recv(Some(0), 2);
                let (_, c) = ctx.recv(None, 1);
                (a[0] as usize) * 100 + (b[0] as usize) * 10 + c[0] as usize
            }
        });
        assert_eq!(out.results[2], 10 * 100 + 2 * 10 + 1);
    }

    #[test]
    fn allgather_and_collectives() {
        let out = SimCluster::run(4, cfg(), |ctx| {
            let all = ctx.allgather(vec![ctx.rank() as u8; ctx.rank() + 1]);
            let lens: Vec<usize> = all.iter().map(Vec::len).collect();
            let s = ctx.allreduce_sum(ctx.rank() as u64);
            (lens, s, ctx.now_ns())
        });
        for (lens, s, t) in out.results {
            assert_eq!(lens, vec![1, 2, 3, 4]);
            assert_eq!(s, 6);
            // Gather 1: 2·α + β·10 = 2010. Gather 2 (allreduce): starts at
            // 2010, + 2·α + β·32 = 2032 → 4042.
            assert_eq!(t, 4_042);
        }
    }

    #[test]
    fn chained_sends_respect_clock() {
        // 0 → 1 → 2: the second hop starts only after rank 1 received.
        let out = SimCluster::run(3, cfg(), |ctx| match ctx.rank() {
            0 => {
                ctx.send(1, 0, vec![0; 99]);
                0
            }
            1 => {
                let (_, d) = ctx.recv(Some(0), 0);
                ctx.send(2, 0, d);
                ctx.now_ns()
            }
            _ => {
                ctx.recv(Some(1), 0);
                ctx.now_ns()
            }
        });
        assert_eq!(out.results[1], 1_099);
        assert_eq!(out.results[2], 2_198);
    }

    #[test]
    fn runs_are_bit_identical() {
        let run = || {
            SimCluster::run(16, cfg().with_seed(7).with_jitter(500), |ctx| {
                // Everyone shouts at everyone; receive in arrival order.
                for dst in 0..ctx.size() {
                    if dst != ctx.rank() {
                        ctx.send(dst, 3, vec![ctx.rank() as u8]);
                    }
                }
                let mut order = Vec::new();
                for _ in 0..ctx.size() - 1 {
                    let (src, _) = ctx.recv(None, 3);
                    order.push(src);
                }
                (order, ctx.now_ns())
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.results, b.results);
        assert_eq!(a.finish_ns, b.finish_ns);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.net, b.net);
    }

    /// The two backends must be observationally identical: same results,
    /// same virtual times, same stats, for p2p, collectives and jitter.
    #[test]
    fn fiber_and_thread_backends_agree() {
        if !fiber::supported() {
            return;
        }
        let work = |ctx: &SimCtx| {
            let next = (ctx.rank() + 1) % ctx.size();
            ctx.send(next, 1, vec![ctx.rank() as u8; 1 + ctx.rank() % 7]);
            let (src, d) = ctx.recv(None, 1);
            let total = ctx.allreduce_sum(d.len() as u64);
            ctx.barrier();
            (src, total, ctx.now_ns())
        };
        for jitter in [0, 700] {
            let base = cfg().with_seed(11).with_jitter(jitter);
            let t = SimCluster::run(37, base.with_backend(Backend::Threads), work);
            let f = SimCluster::run(37, base.with_backend(Backend::Fiber), work);
            assert_eq!(t.results, f.results);
            assert_eq!(t.finish_ns, f.finish_ns);
            assert_eq!(t.stats, f.stats);
            assert_eq!(t.net, f.net);
        }
    }

    #[test]
    fn fiber_backend_handles_deep_recursion_within_stack() {
        if !fiber::supported() {
            return;
        }
        // Consume a good chunk of fiber stack to prove real frames live
        // there (and, in guarded pools, that the guard is not hit by
        // legitimate depth).
        fn burn(n: usize) -> u64 {
            let pad = [n as u64; 16];
            if n == 0 {
                pad.iter().sum()
            } else {
                burn(n - 1) + pad[0]
            }
        }
        let out = SimCluster::run(4, cfg().with_backend(Backend::Fiber), |ctx| {
            let x = burn(500);
            ctx.barrier();
            x
        });
        assert!(out.results.iter().all(|&x| x == burn(500)));
    }

    #[test]
    fn jitter_reorders_but_fifo_holds() {
        // With heavy jitter and FIFO on, two same-pair messages must
        // still arrive in send order.
        let out = SimCluster::run(2, cfg().with_seed(123).with_jitter(1_000_000), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 9, vec![1]);
                ctx.send(1, 9, vec![2]);
                Vec::new()
            } else {
                let (_, a) = ctx.recv(None, 9);
                let (_, b) = ctx.recv(None, 9);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(out.results[1], vec![1, 2]);
    }

    #[test]
    fn deadlock_is_reported_not_hung() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            SimCluster::run(2, cfg(), |ctx| {
                if ctx.rank() == 0 {
                    ctx.recv(Some(1), 5); // never sent
                }
            });
        }));
        let payload = result.expect_err("deadlock must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("simulated deadlock"), "got: {msg}");
        assert!(msg.contains("rank 0"), "got: {msg}");
    }

    #[test]
    fn rank_panic_propagates_original_message() {
        for backend in [Backend::Threads, Backend::Fiber] {
            if backend == Backend::Fiber && !fiber::supported() {
                continue;
            }
            let result = catch_unwind(AssertUnwindSafe(|| {
                SimCluster::run(8, cfg().with_backend(backend), |ctx| {
                    if ctx.rank() == 3 {
                        panic!("sim rank 3 exploded");
                    }
                    ctx.barrier();
                });
            }));
            let payload = result.expect_err("run must propagate the panic");
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .map(str::to_string)
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_default();
            assert!(msg.contains("sim rank 3 exploded"), "got: {msg}");
        }
    }

    #[test]
    fn now_ns_is_virtual_not_wall_clock() {
        let wall = std::time::Instant::now();
        let out = SimCluster::run(2, cfg(), |ctx| {
            ctx.barrier();
            ctx.barrier();
            ctx.now_ns()
        });
        // Two barriers at α = 1 µs: exactly 2 µs of virtual time, no
        // matter how long the host took.
        assert_eq!(out.results, vec![2_000, 2_000]);
        // Sanity: the virtual clock is not derived from the wall clock.
        let _ = wall.elapsed();
    }

    /// Always picks the last candidate — the exact reverse of the
    /// canonical order, maximally far from the default schedule.
    struct PickLast;
    impl DeliveryStrategy for PickLast {
        fn choose(&mut self, candidates: &[Candidate]) -> Choice {
            Choice {
                index: candidates.len() - 1,
                op: Op::Deliver,
            }
        }
        fn delivered(&mut self, _: &Delivered) {}
    }

    #[test]
    fn strategy_reorders_same_pair_without_fifo() {
        let two_sends = |ctx: &SimCtx| {
            if ctx.rank() == 0 {
                ctx.send(1, 9, vec![1]);
                ctx.send(1, 9, vec![2]);
                Vec::new()
            } else {
                let (_, a) = ctx.recv(None, 9);
                let (_, b) = ctx.recv(None, 9);
                vec![a[0], b[0]]
            }
        };
        let mut cfg_nofifo = cfg();
        cfg_nofifo.fifo = false;
        let out = SimCluster::run_with_strategy(2, cfg_nofifo, &mut PickLast, two_sends);
        assert_eq!(out.results[1], vec![2, 1], "strategy must overtake");
        // With FIFO on, only the earliest-sent same-pair message is ever
        // a candidate, so even the adversarial strategy preserves order.
        let out = SimCluster::run_with_strategy(2, cfg(), &mut PickLast, two_sends);
        assert_eq!(out.results[1], vec![1, 2], "FIFO must hold");
    }

    #[test]
    fn strategy_runs_collectives_and_matches_default() {
        let work = |ctx: &SimCtx| {
            let next = (ctx.rank() + 1) % ctx.size();
            ctx.send(next, 1, vec![ctx.rank() as u8]);
            let (_, d) = ctx.recv(None, 1);
            ctx.allreduce_sum(d[0] as u64)
        };
        let base = SimCluster::run(3, cfg(), work);
        let strat = SimCluster::run_with_strategy(3, cfg(), &mut PickLast, work);
        assert_eq!(base.results, strat.results);
        assert_eq!(base.stats, strat.stats);
    }

    /// Recording strategy: the sequence of delivered events, stripped of
    /// anything time-derived. Used to prove network models cannot change
    /// what a strategy explores.
    struct RecordChoices {
        picks: Vec<usize>,
        log: Vec<String>,
        step: usize,
    }
    impl DeliveryStrategy for RecordChoices {
        fn choose(&mut self, candidates: &[Candidate]) -> Choice {
            let index = self.picks[self.step % self.picks.len()] % candidates.len();
            self.step += 1;
            Choice {
                index,
                op: Op::Deliver,
            }
        }
        fn delivered(&mut self, d: &Delivered) {
            self.log.push(match d {
                Delivered::Start { rank } => format!("start {rank}"),
                Delivered::Message(m) => {
                    format!("msg {}->{} tag {} seq {}", m.src, m.dst, m.tag, m.send_seq)
                }
                Delivered::Collective { dst, gen } => format!("coll {dst} gen {gen}"),
                Delivered::Dropped(m) => format!("drop {}->{}", m.src, m.dst),
                Delivered::Duplicated(m) => format!("dup {}->{}", m.src, m.dst),
            });
        }
    }

    /// Strategy-pool soundness under model-dependent delivery times: the
    /// candidate sets (and hence the whole exploration) are identical
    /// under flat and contended fat-tree pricing, because candidates are
    /// ordered by send sequence, never by arrival time.
    #[test]
    fn strategy_exploration_is_network_model_independent() {
        let work = |ctx: &SimCtx| {
            let next = (ctx.rank() + 1) % ctx.size();
            let prev = (ctx.rank() + ctx.size() - 1) % ctx.size();
            ctx.send(next, 1, vec![ctx.rank() as u8; 64]);
            ctx.send(prev, 2, vec![ctx.rank() as u8; 512]);
            let (_, a) = ctx.recv(None, 1);
            let (_, b) = ctx.recv(None, 2);
            ctx.allreduce_sum((a[0] + b[0]) as u64)
        };
        let run = |network| {
            let mut strat = RecordChoices {
                picks: vec![2, 0, 3, 1, 5],
                log: Vec::new(),
                step: 0,
            };
            let out =
                SimCluster::run_with_strategy(6, cfg().with_network(network), &mut strat, work);
            (out.results, strat.log)
        };
        let (flat_results, flat_log) = run(NetworkSpec::Flat);
        let (fat_results, fat_log) = run(NetworkSpec::FatTree(FatTreeParams::default()));
        assert_eq!(flat_results, fat_results);
        assert_eq!(flat_log, fat_log, "exploration diverged across models");
    }

    #[test]
    fn orphan_message_violates_quiescence() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            SimCluster::run(2, cfg(), |ctx| {
                if ctx.rank() == 0 {
                    ctx.send(1, 5, vec![9; 3]); // never received
                }
                ctx.barrier();
                ctx.barrier();
            });
        }));
        let payload = result.expect_err("orphan message must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("quiescence violated"), "got: {msg}");
        assert!(
            msg.contains("(src=0, dst=1, tag=0x5, 3 bytes)"),
            "got: {msg}"
        );
    }

    #[test]
    fn thousand_ranks_smoke() {
        let out = SimCluster::run(1024, cfg(), |ctx| {
            let next = (ctx.rank() + 1) % ctx.size();
            ctx.send(next, 1, vec![7]);
            let (_, d) = ctx.recv(None, 1);
            ctx.allreduce_sum(d[0] as u64)
        });
        assert!(out.results.iter().all(|&s| s == 7 * 1024));
    }

    #[test]
    fn fat_tree_contention_slows_hot_links() {
        // 48 ranks all sending to rank 0: under the fat tree, rank 0's
        // node downlink serializes the transfers, so the makespan beats
        // flat-model α+β but the model must report queueing.
        let work = |ctx: &SimCtx| {
            if ctx.rank() == 0 {
                let mut total = 0usize;
                for _ in 1..ctx.size() {
                    let (_, d) = ctx.recv(None, 4);
                    total += d.len();
                }
                total
            } else {
                ctx.send(0, 4, vec![0; 4096]);
                0
            }
        };
        let flat = SimCluster::run(48, cfg(), work);
        let fat = SimCluster::run(
            48,
            cfg().with_network(NetworkSpec::FatTree(FatTreeParams::default())),
            work,
        );
        assert_eq!(flat.results, fat.results);
        assert_eq!(flat.net.link_waits, 0);
        assert!(fat.net.link_waits > 0, "incast must queue on links");
        assert!(fat.net.link_wait_ns > 0);
        assert!(
            fat.makespan_ns() > flat.makespan_ns(),
            "contended incast must be slower than flat ({} <= {})",
            fat.makespan_ns(),
            flat.makespan_ns()
        );
    }

    #[test]
    fn hierarchical_model_prices_node_boundaries() {
        let params = HierarchicalParams {
            ranks_per_node: 4,
            intra_latency_ns: 100,
            intra_ns_per_byte: 0.0,
            inter_latency_ns: 10_000,
            inter_ns_per_byte: 0.0,
        };
        let out = SimCluster::run(
            8,
            cfg().with_network(NetworkSpec::Hierarchical(params)),
            |ctx| {
                // Rank 0 pings its node-mate (1) and a remote rank (4).
                match ctx.rank() {
                    0 => {
                        ctx.send(1, 1, vec![0]);
                        ctx.send(4, 1, vec![0]);
                        0
                    }
                    1 | 4 => {
                        ctx.recv(Some(0), 1);
                        ctx.now_ns()
                    }
                    _ => 0,
                }
            },
        );
        assert_eq!(out.results[1], 100, "intra-node latency");
        assert_eq!(out.results[4], 10_000, "inter-node latency");
        assert_eq!(out.net.intra_node_messages, 1);
        assert_eq!(out.net.inter_node_messages, 1);
    }
}
