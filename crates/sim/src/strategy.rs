//! Strategy-driven event delivery: the scheduler hook behind the
//! `forestbal-mc` model checker.
//!
//! In its default mode the simulator delivers events in virtual-time
//! order — one schedule per `(seed, jitter)` configuration. A
//! [`DeliveryStrategy`] replaces that policy: at every step the scheduler
//! presents the *entire* set of currently-deliverable events
//! ([`Candidate`]s, in a canonical deterministic order) and the strategy
//! picks which one fires next — and, for messages, whether to deliver it
//! normally, [drop](Op::Drop) it, or [duplicate](Op::Duplicate) it
//! (fault injection). This turns the simulator into an executor for
//! exhaustive interleaving exploration: a model checker can enumerate
//! every delivery order instead of sampling one per jitter seed.
//!
//! Rules the scheduler enforces in strategy mode:
//!
//! - **Rank starts are not choice points.** Executing a rank's closure up
//!   to its first blocking call commutes with every other event (ranks
//!   interact only through messages), so `Start` events are delivered
//!   eagerly in rank order and never offered to the strategy.
//! - **FIFO restriction.** When [`crate::SimConfig::fifo`] is set, a
//!   message is deliverable only if no earlier-sent message from the same
//!   source to the same destination is still in flight (MPI's
//!   non-overtaking rule). With `fifo` off, every in-flight message is a
//!   candidate, which is what lets a checker explore same-pair
//!   reorderings.
//! - **Virtual time is ignored for ordering** (clocks still advance
//!   monotonically per rank, so `now_ns` stays usable, but makespans are
//!   not meaningful under a non-time-ordered strategy).

/// Metadata of one in-flight point-to-point message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MsgMeta {
    /// Sending rank.
    pub src: usize,
    /// Destination rank.
    pub dst: usize,
    /// Message tag.
    pub tag: u32,
    /// Payload length in bytes.
    pub bytes: usize,
    /// Global send-order stamp: messages from one source to one
    /// destination carry strictly increasing values in send order.
    pub send_seq: u64,
    /// Deterministic hash of the payload bytes (content identity for
    /// state hashing; independent of send order).
    pub payload_hash: u64,
}

/// One event the strategy may schedule next. Candidates are presented in
/// a canonical order — collectives first, then messages sorted by
/// `(dst, src, tag, send_seq)` — so replaying the same choice indices
/// reproduces the same schedule bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Candidate {
    /// An in-flight message that may be delivered (or dropped or
    /// duplicated, see [`Op`]).
    Message(MsgMeta),
    /// A completed allgather round waiting to resume one rank.
    Collective {
        /// Rank to resume.
        dst: usize,
        /// Allgather round number.
        gen: u64,
    },
}

/// What to do with the chosen candidate. Fault operations apply to
/// messages only; a strategy must choose [`Op::Deliver`] for
/// [`Candidate::Collective`] entries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Hand the event to its destination rank.
    Deliver,
    /// Discard the message: it never arrives (lost-message fault).
    Drop,
    /// Deliver a copy and keep the original in flight, so the same
    /// message can arrive again later (duplicated-message fault).
    Duplicate,
}

/// The strategy's decision: which candidate, and what to do with it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Choice {
    /// Index into the candidate slice passed to
    /// [`DeliveryStrategy::choose`].
    pub index: usize,
    /// Operation to apply to that candidate.
    pub op: Op,
}

/// A scheduling action the scheduler just performed. Reported for *every*
/// event — including the eagerly-delivered `Start`s the strategy is never
/// asked about — so a strategy can maintain an exact incremental model of
/// the system state (e.g. per-rank delivery-history hashes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delivered {
    /// A rank began executing its closure.
    Start {
        /// The rank that started.
        rank: usize,
    },
    /// A message reached its destination (delivered to the rank's pending
    /// buffer or directly into a blocked `recv`).
    Message(MsgMeta),
    /// An allgather round completed for one rank.
    Collective {
        /// Rank that resumed.
        dst: usize,
        /// Allgather round number.
        gen: u64,
    },
    /// A message was discarded by [`Op::Drop`].
    Dropped(MsgMeta),
    /// A copy of a message was delivered by [`Op::Duplicate`]; the
    /// original remains in flight.
    Duplicated(MsgMeta),
}

/// Scheduler hook: picks the next deliverable event. See the
/// [module docs](self) for the contract.
pub trait DeliveryStrategy {
    /// Pick the next action among `candidates` (never empty). Must return
    /// a valid index; `op` must be [`Op::Deliver`] for collectives.
    fn choose(&mut self, candidates: &[Candidate]) -> Choice;

    /// Observe an action the scheduler performed (chosen ones *and*
    /// eager `Start` deliveries).
    fn delivered(&mut self, event: &Delivered);
}

/// Deterministic payload hash (splitmix-folded, 8 bytes at a time).
pub(crate) fn hash_bytes(data: &[u8]) -> u64 {
    let mut h = 0x243F_6A88_85A3_08D3u64 ^ (data.len() as u64);
    for chunk in data.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        h = crate::runtime::splitmix64(h ^ u64::from_le_bytes(w));
    }
    h
}
