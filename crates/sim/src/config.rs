//! Simulator tuning knobs.

/// Cost model and determinism parameters for a [`crate::SimCluster`] run.
///
/// The defaults model a commodity cluster interconnect: 1 µs message
/// latency and 1 GB/s effective bandwidth (1 ns per byte). They are
/// deliberately round so virtual-time numbers are easy to read; scaling
/// *trends* (the paper's subject) are insensitive to the exact constants.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// α: fixed per-message latency in nanoseconds.
    pub latency_ns: u64,
    /// β: transfer time per payload byte in nanoseconds.
    pub ns_per_byte: f64,
    /// Seed for the fault-injection PRNG (and any future stochastic
    /// model). Two runs with equal seeds are bit-identical.
    pub seed: u64,
    /// Maximum extra random per-message delay in nanoseconds, drawn
    /// deterministically from `seed` and the message sequence number.
    /// `0` disables jitter. Nonzero values reorder message arrivals,
    /// which is the fault model used to test order-robustness.
    ///
    /// Interaction with [`fifo`](Self::fifo): jitter draws delays
    /// independently per message, so with `fifo: true` (the default) a
    /// later same-`(src, dst)` message that drew a smaller delay is
    /// *held back* to the earlier message's arrival time (MPI
    /// non-overtaking) — jitter then only reorders messages *between
    /// different pairs*. Set `fifo: false` to let jitter also overtake
    /// within a pair. Either way a jitter seed samples **one** schedule
    /// per `(seed, jitter_ns)`; for exhaustive coverage of *every*
    /// delivery order at small P, use the `forestbal-mc` model checker,
    /// which drives the simulator through a [`crate::DeliveryStrategy`]
    /// instead of jitter sampling.
    pub jitter_ns: u64,
    /// Enforce MPI's non-overtaking rule: two messages from the same
    /// source to the same destination arrive in send order even under
    /// jitter. Disable to inject pairwise reordering faults. Under a
    /// [`crate::DeliveryStrategy`] the same flag decides whether
    /// same-pair reorderings are offered to the strategy at all.
    pub fifo: bool,
    /// Stack size for each simulated rank's coroutine thread. Ranks run
    /// one at a time, but each still needs its own (mostly untouched)
    /// stack; keep this small so P = 16384 ranks stay cheap.
    pub stack_size: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            latency_ns: 1_000,
            ns_per_byte: 1.0,
            seed: 0,
            jitter_ns: 0,
            fifo: true,
            stack_size: 1 << 20,
        }
    }
}

impl SimConfig {
    /// This config with a different fault-injection seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// This config with message-delay jitter up to `jitter_ns`.
    pub fn with_jitter(mut self, jitter_ns: u64) -> Self {
        self.jitter_ns = jitter_ns;
        self
    }

    /// Transfer cost of a `bytes`-byte payload, in nanoseconds.
    pub(crate) fn transfer_ns(&self, bytes: usize) -> u64 {
        (bytes as f64 * self.ns_per_byte).round() as u64
    }

    /// Cost of one point-to-point message.
    pub(crate) fn message_ns(&self, bytes: usize) -> u64 {
        self.latency_ns + self.transfer_ns(bytes)
    }

    /// Cost of an allgather over `size` ranks moving `total_bytes` in
    /// aggregate: a `⌈log₂ size⌉`-depth tree of latencies plus the full
    /// payload over the wire once (recursive-doubling model).
    pub(crate) fn collective_ns(&self, size: usize, total_bytes: usize) -> u64 {
        let depth = usize::BITS - size.saturating_sub(1).leading_zeros();
        depth as u64 * self.latency_ns + self.transfer_ns(total_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_shapes() {
        let c = SimConfig::default();
        assert_eq!(c.message_ns(0), 1_000);
        assert_eq!(c.message_ns(500), 1_500);
        // Barrier over one rank is free of tree depth.
        assert_eq!(c.collective_ns(1, 0), 0);
        assert_eq!(c.collective_ns(2, 0), 1_000);
        assert_eq!(c.collective_ns(1024, 0), 10_000);
        assert_eq!(c.collective_ns(1025, 0), 11_000);
    }
}
