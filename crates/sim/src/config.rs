//! Simulator tuning knobs.

use crate::net::NetworkSpec;

/// Which execution backend hosts the per-rank coroutines.
///
/// Ranks always run one at a time (baton passing); the backend only
/// decides what a suspended rank *is*: a parked OS thread or a userspace
/// fiber. Virtual times, delivery orders and results are identical across
/// backends — pinned by a differential test.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Backend {
    /// Pick [`Backend::Fiber`] where supported (x86_64 Linux), else
    /// [`Backend::Threads`]. The default.
    #[default]
    Auto,
    /// One OS thread per rank. Portable, but the kernel's thread and
    /// memory-map budgets (`kernel.pid_max`, `vm.max_map_count`) cap P
    /// at a few thousand ranks.
    Threads,
    /// Userspace stackful coroutines: all ranks share one OS thread and
    /// one lazily-faulted stack slab, so P = 112k ranks fit in one
    /// process with no kernel tunables. Panics at run start on platforms
    /// without fiber support.
    Fiber,
}

/// Cost model and determinism parameters for a [`crate::SimCluster`] run.
///
/// The defaults model a commodity cluster interconnect: 1 µs message
/// latency and 1 GB/s effective bandwidth (1 ns per byte). They are
/// deliberately round so virtual-time numbers are easy to read; scaling
/// *trends* (the paper's subject) are insensitive to the exact constants.
///
/// Prefer [`SimConfig::builder`] over struct-literal construction or
/// direct field assignment: the builder reads as a sentence and keeps
/// working when fields are added. The public fields remain for backward
/// compatibility (`SimConfig { latency_ns: 5, ..Default::default() }`
/// still compiles) but direct field poking is deprecated in spirit —
/// new code should not rely on the field set being stable.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// α: fixed per-message latency in nanoseconds (used by the flat
    /// network model; topology models carry their own latencies).
    pub latency_ns: u64,
    /// β: transfer time per payload byte in nanoseconds (flat model).
    pub ns_per_byte: f64,
    /// Seed for the fault-injection PRNG (and any future stochastic
    /// model). Two runs with equal seeds are bit-identical.
    pub seed: u64,
    /// Maximum extra random per-message delay in nanoseconds, drawn
    /// deterministically from `seed` and the message sequence number.
    /// `0` disables jitter. Nonzero values reorder message arrivals,
    /// which is the fault model used to test order-robustness.
    ///
    /// Interaction with [`fifo`](Self::fifo): jitter draws delays
    /// independently per message, so with `fifo: true` (the default) a
    /// later same-`(src, dst)` message that drew a smaller delay is
    /// *held back* to the earlier message's arrival time (MPI
    /// non-overtaking) — jitter then only reorders messages *between
    /// different pairs*. Set `fifo: false` to let jitter also overtake
    /// within a pair. Either way a jitter seed samples **one** schedule
    /// per `(seed, jitter_ns)`; for exhaustive coverage of *every*
    /// delivery order at small P, use the `forestbal-mc` model checker,
    /// which drives the simulator through a [`crate::DeliveryStrategy`]
    /// instead of jitter sampling.
    pub jitter_ns: u64,
    /// Enforce MPI's non-overtaking rule: two messages from the same
    /// source to the same destination arrive in send order even under
    /// jitter. Disable to inject pairwise reordering faults. Under a
    /// [`crate::DeliveryStrategy`] the same flag decides whether
    /// same-pair reorderings are offered to the strategy at all.
    pub fifo: bool,
    /// Stack size for each simulated rank's coroutine. Ranks run one at
    /// a time, but each still needs its own (mostly untouched) stack.
    /// Fiber stacks are reserved lazily — only pages actually written
    /// cost memory — so the default stays comfortable; shrink it (e.g.
    /// to 256 KiB) for P ≈ 112k runs to keep the virtual reservation
    /// within the address-space budget.
    pub stack_size: usize,
    /// The network cost model ([`NetworkSpec::Flat`] by default, which
    /// reproduces the historical `α + β·bytes` virtual times
    /// bit-identically).
    pub network: NetworkSpec,
    /// Execution backend for the rank coroutines.
    pub backend: Backend,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            latency_ns: 1_000,
            ns_per_byte: 1.0,
            seed: 0,
            jitter_ns: 0,
            fifo: true,
            stack_size: 1 << 20,
            network: NetworkSpec::Flat,
            backend: Backend::Auto,
        }
    }
}

impl SimConfig {
    /// Start building a config from the defaults:
    /// `SimConfig::builder().latency_ns(500).network(spec).build()`.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            cfg: SimConfig::default(),
        }
    }

    /// This config with a different fault-injection seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// This config with message-delay jitter up to `jitter_ns`.
    pub fn with_jitter(mut self, jitter_ns: u64) -> Self {
        self.jitter_ns = jitter_ns;
        self
    }

    /// This config with a different network model.
    pub fn with_network(mut self, network: NetworkSpec) -> Self {
        self.network = network;
        self
    }

    /// This config with a specific execution backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }
}

/// Fluent constructor for [`SimConfig`], obtained from
/// [`SimConfig::builder`]. Every knob has a method; unset knobs keep
/// their [`Default`] values.
#[derive(Clone, Copy, Debug)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// α: fixed per-message latency in nanoseconds (flat model).
    pub fn latency_ns(mut self, v: u64) -> Self {
        self.cfg.latency_ns = v;
        self
    }

    /// β: transfer time per payload byte in nanoseconds (flat model).
    pub fn ns_per_byte(mut self, v: f64) -> Self {
        self.cfg.ns_per_byte = v;
        self
    }

    /// Fault-injection PRNG seed.
    pub fn seed(mut self, v: u64) -> Self {
        self.cfg.seed = v;
        self
    }

    /// Maximum per-message delay jitter in nanoseconds.
    pub fn jitter_ns(mut self, v: u64) -> Self {
        self.cfg.jitter_ns = v;
        self
    }

    /// Enforce (or relax) MPI non-overtaking delivery.
    pub fn fifo(mut self, v: bool) -> Self {
        self.cfg.fifo = v;
        self
    }

    /// Per-rank coroutine stack size in bytes.
    pub fn stack_size(mut self, v: usize) -> Self {
        self.cfg.stack_size = v;
        self
    }

    /// Network cost model.
    pub fn network(mut self, v: NetworkSpec) -> Self {
        self.cfg.network = v;
        self
    }

    /// Execution backend.
    pub fn backend(mut self, v: Backend) -> Self {
        self.cfg.backend = v;
        self
    }

    /// Finish: the assembled [`SimConfig`].
    pub fn build(self) -> SimConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::{FatTreeParams, NetworkModel, NetworkSpec};

    #[test]
    fn builder_and_struct_literal_agree() {
        let b = SimConfig::builder()
            .latency_ns(500)
            .ns_per_byte(2.0)
            .seed(7)
            .jitter_ns(3)
            .fifo(false)
            .stack_size(1 << 16)
            .network(NetworkSpec::FatTree(FatTreeParams::default()))
            .backend(Backend::Threads)
            .build();
        let s = SimConfig {
            latency_ns: 500,
            ns_per_byte: 2.0,
            seed: 7,
            jitter_ns: 3,
            fifo: false,
            stack_size: 1 << 16,
            network: NetworkSpec::FatTree(FatTreeParams::default()),
            backend: Backend::Threads,
        };
        assert_eq!(format!("{b:?}"), format!("{s:?}"));
    }

    #[test]
    fn default_network_matches_historical_cost_shapes() {
        let c = SimConfig::default();
        let mut m = c.network.build(c.latency_ns, c.ns_per_byte);
        assert_eq!(m.message_arrival_ns(0, 1, 0, 0), 1_000);
        assert_eq!(m.message_arrival_ns(0, 1, 500, 0), 1_500);
        // Barrier over one rank is free of tree depth.
        assert_eq!(m.collective_done_ns(1, 0, 0), 0);
        assert_eq!(m.collective_done_ns(2, 0, 0), 1_000);
        assert_eq!(m.collective_done_ns(1024, 0, 0), 10_000);
        assert_eq!(m.collective_done_ns(1025, 0, 0), 11_000);
    }
}
