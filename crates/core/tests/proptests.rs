//! Property tests validating the paper's fast algorithms against the
//! independent ripple oracle, for all dimensions and balance conditions.

use forestbal_core::oracle::{is_balanced_tree, oracle_balanced_pair, ripple_balance};
use forestbal_core::{
    balance_subtree_new, balance_subtree_old, complete_reduced, find_seeds, is_balanced_pair,
    reconstruct_from_seeds, reduce, Condition,
};
use forestbal_octant::{is_complete, linearize, Octant};
use proptest::prelude::*;

/// A random octant: a child-id path of bounded depth from the root.
fn arb_octant<const D: usize>(min_depth: u8, max_depth: u8) -> impl Strategy<Value = Octant<D>> {
    prop::collection::vec(0usize..(1 << D), min_depth as usize..=max_depth as usize).prop_map(
        |path| {
            let mut o = Octant::<D>::root();
            for id in path {
                o = o.child(id);
            }
            o
        },
    )
}

fn arb_cond(d: u8) -> impl Strategy<Value = Condition> {
    (1..=d).prop_map(move |k| Condition::new(k, d).unwrap())
}

/// A random linear input set.
fn arb_input<const D: usize>(max_depth: u8, max_n: usize) -> impl Strategy<Value = Vec<Octant<D>>> {
    prop::collection::vec(arb_octant::<D>(0, max_depth), 1..max_n).prop_map(|mut v| {
        linearize(&mut v);
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    // ---- §III: subtree balance ----------------------------------------

    #[test]
    fn subtree_algorithms_match_oracle_2d(
        input in arb_input::<2>(6, 8),
        cond in arb_cond(2),
    ) {
        let root = Octant::<2>::root();
        let want = ripple_balance(&root, &input, cond);
        prop_assert!(is_balanced_tree(&want, &root, cond));
        prop_assert!(is_complete(&want, &root));
        let old = balance_subtree_old(&root, &input, cond);
        prop_assert_eq!(&old, &want, "old vs oracle");
        let new = balance_subtree_new(&root, &input, cond);
        prop_assert_eq!(&new, &want, "new vs oracle");
    }

    #[test]
    fn subtree_algorithms_match_oracle_3d(
        input in arb_input::<3>(4, 5),
        cond in arb_cond(3),
    ) {
        let root = Octant::<3>::root();
        let want = ripple_balance(&root, &input, cond);
        prop_assert!(is_balanced_tree(&want, &root, cond));
        let old = balance_subtree_old(&root, &input, cond);
        prop_assert_eq!(&old, &want, "old vs oracle");
        let new = balance_subtree_new(&root, &input, cond);
        prop_assert_eq!(&new, &want, "new vs oracle");
    }

    #[test]
    fn subtree_balance_on_sub_roots_2d(
        path in prop::collection::vec(0usize..4, 1..3),
        input_paths in prop::collection::vec(
            prop::collection::vec(0usize..4, 0..5), 1..6),
        cond in arb_cond(2),
    ) {
        // Balance within an arbitrary subtree root.
        let mut sub = Octant::<2>::root();
        for id in path {
            sub = sub.child(id);
        }
        let mut input: Vec<_> = input_paths
            .into_iter()
            .map(|p| {
                let mut o = sub;
                for id in p {
                    o = o.child(id);
                }
                o
            })
            .collect();
        linearize(&mut input);
        let want = ripple_balance(&sub, &input, cond);
        prop_assert_eq!(balance_subtree_old(&sub, &input, cond), want.clone());
        prop_assert_eq!(balance_subtree_new(&sub, &input, cond), want);
    }

    // ---- §III-B: Reduce / Complete -------------------------------------

    #[test]
    fn reduce_complete_roundtrip_2d(input in arb_input::<2>(6, 10)) {
        // For COMPLETE trees, completion of the reduction is the identity.
        let root = Octant::<2>::root();
        let complete = forestbal_octant::complete_subtree(&root, &input);
        let red = reduce(&complete);
        prop_assert!(red.len() * 4 <= complete.len().max(4),
            "|R| = {} vs |S| = {}", red.len(), complete.len());
        let back = complete_reduced(&root, &red);
        prop_assert_eq!(back, complete);
    }

    #[test]
    fn reduce_complete_roundtrip_3d(input in arb_input::<3>(4, 6)) {
        let root = Octant::<3>::root();
        let complete = forestbal_octant::complete_subtree(&root, &input);
        let red = reduce(&complete);
        let back = complete_reduced(&root, &red);
        prop_assert_eq!(back, complete);
    }

    // ---- §IV: λ-based O(1) balance decisions ---------------------------

    #[test]
    fn lambda_decision_matches_oracle_2d(
        o in arb_octant::<2>(2, 7),
        r in arb_octant::<2>(1, 5),
        cond in arb_cond(2),
    ) {
        prop_assume!(!o.overlaps(&r));
        let root = Octant::<2>::root();
        let fast = is_balanced_pair(&o, &r, cond);
        let slow = oracle_balanced_pair(&root, &o, &r, cond);
        prop_assert_eq!(fast, slow, "o={:?} r={:?} k={}", o, r, cond.k());
    }

    #[test]
    fn lambda_decision_matches_oracle_3d(
        o in arb_octant::<3>(2, 5),
        r in arb_octant::<3>(1, 4),
        cond in arb_cond(3),
    ) {
        prop_assume!(!o.overlaps(&r));
        let root = Octant::<3>::root();
        let fast = is_balanced_pair(&o, &r, cond);
        let slow = oracle_balanced_pair(&root, &o, &r, cond);
        prop_assert_eq!(fast, slow, "o={:?} r={:?} k={}", o, r, cond.k());
    }

    #[test]
    fn closest_octant_size_matches_tk_leaf_2d(
        o in arb_octant::<2>(3, 7),
        r in arb_octant::<2>(1, 3),
        cond in arb_cond(2),
    ) {
        // The λ-computed size of `a` equals the level of the finest
        // T_k(o) leaf overlapping r... at a's own position it IS a leaf.
        prop_assume!(!o.overlaps(&r) && r.level < o.level);
        let root = Octant::<2>::root();
        let a = forestbal_core::closest_balanced_octant(&o, cond, &r);
        prop_assert!(r.contains(&a));
        let t = ripple_balance(&root, &[o], cond);
        if a.level > r.level {
            // T_k(o) refines r: `a` must be its finest leaf inside r.
            prop_assert!(
                t.binary_search(&a).is_ok(),
                "a={:?} is not a leaf of T_k(o); o={:?} r={:?} k={}", a, o, r, cond.k()
            );
            let finest = t.iter().filter(|l| r.contains(l)).map(|l| l.level).max().unwrap();
            prop_assert_eq!(a.level, finest);
        } else {
            // Clamped to r: T_k(o) must have no leaf strictly inside r.
            prop_assert!(
                t.iter().all(|l| !r.is_ancestor_of(l)),
                "clamped to r but T_k(o) refines r; o={:?} r={:?} k={}", o, r, cond.k()
            );
        }
    }

    #[test]
    fn closest_octant_size_matches_tk_leaf_3d(
        o in arb_octant::<3>(3, 5),
        r in arb_octant::<3>(1, 2),
        cond in arb_cond(3),
    ) {
        prop_assume!(!o.overlaps(&r) && r.level < o.level);
        let root = Octant::<3>::root();
        let a = forestbal_core::closest_balanced_octant(&o, cond, &r);
        prop_assert!(r.contains(&a));
        let t = ripple_balance(&root, &[o], cond);
        if a.level > r.level {
            prop_assert!(
                t.binary_search(&a).is_ok(),
                "a={:?} not a T_k(o) leaf; o={:?} r={:?} k={}", a, o, r, cond.k()
            );
            let finest = t.iter().filter(|l| r.contains(l)).map(|l| l.level).max().unwrap();
            prop_assert_eq!(a.level, finest);
        } else {
            prop_assert!(t.iter().all(|l| !r.is_ancestor_of(l)));
        }
    }

    // ---- §IV: seeds -----------------------------------------------------

    #[test]
    fn seeds_reconstruct_oracle_overlap_2d(
        o in arb_octant::<2>(3, 8),
        r in arb_octant::<2>(1, 3),
        cond in arb_cond(2),
    ) {
        prop_assume!(!o.overlaps(&r) && r.level < o.level);
        let root = Octant::<2>::root();
        let t = ripple_balance(&root, &[o], cond);
        let want: Vec<_> = t.iter().filter(|l| r.contains(l)).copied().collect();
        match find_seeds(&o, &r, cond) {
            None => prop_assert!(
                want.is_empty() || want == vec![r],
                "no seeds but r must split: overlap {:?}", want
            ),
            Some(seeds) => {
                prop_assert!(seeds.len() <= 3, "2D seed bound 3^{{d-1}}");
                for s in &seeds {
                    prop_assert!(r.contains(s));
                    prop_assert!(t.binary_search(s).is_ok(), "seed not a T_k leaf");
                }
                let rebuilt = reconstruct_from_seeds(&r, &seeds, cond);
                prop_assert_eq!(rebuilt, want);
            }
        }
    }

    #[test]
    fn seeds_reconstruct_oracle_overlap_3d(
        o in arb_octant::<3>(3, 5),
        r in arb_octant::<3>(1, 2),
        cond in arb_cond(3),
    ) {
        prop_assume!(!o.overlaps(&r) && r.level < o.level);
        let root = Octant::<3>::root();
        let t = ripple_balance(&root, &[o], cond);
        let want: Vec<_> = t.iter().filter(|l| r.contains(l)).copied().collect();
        match find_seeds(&o, &r, cond) {
            None => prop_assert!(
                want.is_empty() || want == vec![r],
                "no seeds but r must split: overlap {:?}", want
            ),
            Some(seeds) => {
                prop_assert!(seeds.len() <= 9, "3D seed bound 3^{{d-1}}");
                for s in &seeds {
                    prop_assert!(r.contains(s));
                    prop_assert!(t.binary_search(s).is_ok(), "seed not a T_k leaf");
                }
                let rebuilt = reconstruct_from_seeds(&r, &seeds, cond);
                prop_assert_eq!(rebuilt, want);
            }
        }
    }

    // ---- invariants of the result ---------------------------------------

    #[test]
    fn balance_never_coarsens_2d(input in arb_input::<2>(6, 8), cond in arb_cond(2)) {
        // Balance may split input leaves (when inputs are mutually
        // unbalanced) but never coarsens: every output leaf overlapping an
        // input leaf is at least as fine.
        let root = Octant::<2>::root();
        let out = balance_subtree_new(&root, &input, cond);
        for o in &input {
            for l in out.iter().filter(|l| l.overlaps(o)) {
                prop_assert!(
                    l.level >= o.level,
                    "input {:?} coarsened to {:?}", o, l
                );
            }
        }
    }

    #[test]
    fn balance_is_idempotent_2d(input in arb_input::<2>(5, 6), cond in arb_cond(2)) {
        let root = Octant::<2>::root();
        let once = balance_subtree_new(&root, &input, cond);
        let twice = balance_subtree_new(&root, &once, cond);
        prop_assert_eq!(once, twice);
    }

    // ---- exterior constraints (auxiliary octants, Figure 4b) ------------

    #[test]
    fn exterior_constraints_match_global_oracle_2d(
        sub_id in 0usize..4,
        ext_paths in prop::collection::vec(
            prop::collection::vec(0usize..4, 1..6), 1..4),
        int_paths in prop::collection::vec(
            prop::collection::vec(0usize..4, 0..4), 0..3),
        cond in arb_cond(2),
    ) {
        // Balance a root child with random exterior octants living in the
        // other children: must equal the global cone overlay clipped to
        // the subtree.
        use forestbal_core::balance_subtree_old_ext;
        let g = Octant::<2>::root();
        let sub = g.child(sub_id);
        let mut exterior: Vec<Octant<2>> = Vec::new();
        for p in &ext_paths {
            let mut o = g.child((sub_id + 1) % 4);
            for &id in p {
                o = o.child(id);
            }
            exterior.push(o);
        }
        linearize(&mut exterior);
        let mut interior: Vec<Octant<2>> = Vec::new();
        for p in &int_paths {
            let mut o = sub;
            for &id in p {
                o = o.child(id);
            }
            interior.push(o);
        }
        linearize(&mut interior);
        let (got, _) = balance_subtree_old_ext(&sub, &interior, &exterior, cond);
        let mut all = interior.clone();
        all.extend_from_slice(&exterior);
        linearize(&mut all);
        let global = ripple_balance(&g, &all, cond);
        let want: Vec<_> = global.into_iter().filter(|l| sub.contains(l)).collect();
        prop_assert_eq!(got, want);
    }
}
